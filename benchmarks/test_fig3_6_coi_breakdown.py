"""Figure 3.6 — cycles of interest for mult: the instructions in the
machine at each power peak and the per-module power breakdown."""

from conftest import heading

from repro.bench import runner
from repro.bench.suite import ALL_BENCHMARKS
from repro.core.coi import cycles_of_interest, dominant_modules


def regenerate():
    report = runner.full_report("mult")
    program = ALL_BENCHMARKS["mult"].program()
    reports = cycles_of_interest(
        report.tree, report.peak_power, program, count=5
    )
    return reports


def test_fig3_6(benchmark):
    reports = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 3.6 — cycles of interest for mult")
    for coi in reports:
        print(coi.describe())
    top = dominant_modules(reports)
    print(f"\ndominant modules across COIs: {top[:4]}")

    assert len(reports) == 5
    # every COI names a concrete instruction and a non-trivial breakdown
    for coi in reports:
        assert coi.power_mw > 0
        assert coi.module_breakdown[0][1] > 0
        assert coi.executing[1] != "?"
    # mult's peaks involve loads/multiplier traffic, as in the paper
    texts = " ".join(coi.executing[1] for coi in reports)
    assert "mov" in texts
