"""Figure 5.6 — performance degradation and energy overhead introduced by
the peak power optimizations are small."""

from conftest import heading

from repro.bench import runner


def regenerate():
    return {name: runner.optimized(name) for name in runner.all_names()}


def test_fig5_6(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 5.6 — optimization overheads")
    print(f"{'app':>10} {'opts':>18} {'perf degradation %':>19} {'energy overhead %':>18}")
    for name, result in results.items():
        print(
            f"{name:>10} {'+'.join(result.opts) or '-':>18} "
            f"{result.perf_degradation_pct:>19.2f} "
            f"{result.energy_overhead_pct:>18.2f}"
        )
    optimized = [r for r in results.values() if r.opts]
    avg_perf = sum(r.perf_degradation_pct for r in results.values()) / len(results)
    avg_energy = sum(r.energy_overhead_pct for r in results.values()) / len(results)
    print(
        f"\naverage perf degradation {avg_perf:.1f}%, energy overhead "
        f"{avg_energy:.1f}%   (paper: ~1% and ~3%)"
    )

    assert optimized
    for result in optimized:
        # overheads exist but stay modest (the paper's point)
        assert result.perf_degradation_pct >= -1e-6, result.name
        assert result.perf_degradation_pct < 40.0, result.name
        assert result.energy_overhead_pct < 40.0, result.name
