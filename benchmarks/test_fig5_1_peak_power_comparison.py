"""Figure 5.1 — peak power requirements: design tool vs input-based vs
guardbanded input-based vs X-based, per application (plus the stressmark
and design-tool bars)."""

from conftest import heading

from repro.bench import runner


def regenerate():
    rows = []
    for name in runner.all_names():
        x = runner.x_based(name)
        profile = runner.profiling(name)
        low, high = profile.peak_power_range_mw()
        rows.append(
            {
                "app": name,
                "input_low": low,
                "input_high": high,
                "gb_input": profile.guardbanded_peak_power_mw,
                "x_based": x.peak_power_mw,
            }
        )
    stress = runner.stressmark("peak")
    design = runner.design_baseline()
    return rows, stress, design


def test_fig5_1(benchmark):
    rows, stress, design = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    heading("Figure 5.1 — peak power requirements [mW]")
    print(f"{'app':>10} {'input-based':>16} {'GB input':>9} {'X-based':>8}")
    for row in rows:
        print(
            f"{row['app']:>10} {row['input_low']:7.3f}-{row['input_high']:6.3f} "
            f"{row['gb_input']:9.3f} {row['x_based']:8.3f}"
        )
    print(f"{'stressmark':>10} {'':>16} {stress.guardbanded_peak_power_mw:9.3f}")
    print(f"{'design_tool':>10} {'':>16} {design.peak_power_mw:9.3f}")

    x_values = [row["x_based"] for row in rows]
    gb_values = [row["gb_input"] for row in rows]
    vs_gb = 100 * (1 - sum(x / g for x, g in zip(x_values, gb_values)) / len(rows))
    vs_stress = 100 * (
        1 - sum(x / stress.guardbanded_peak_power_mw for x in x_values) / len(rows)
    )
    vs_design = 100 * (
        1 - sum(x / design.peak_power_mw for x in x_values) / len(rows)
    )
    print(
        f"\nX-based is lower by: {vs_gb:.1f}% vs GB-input, "
        f"{vs_stress:.1f}% vs GB-stressmark, {vs_design:.1f}% vs design tool"
        f"   (paper: 15%, 26%, 27%)"
    )

    # Soundness and ordering claims of the figure
    for row in rows:
        assert row["x_based"] >= row["input_high"] - 1e-9, (
            f"{row['app']}: X-based bound below an observed input peak"
        )
    assert vs_gb > 0, "X-based must be tighter than guardbanded profiling"
    assert vs_stress > 0
    assert vs_design > 0
    assert design.peak_power_mw >= max(x_values), (
        "design-tool rating must bound every application"
    )
