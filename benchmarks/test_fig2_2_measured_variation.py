"""Figure 2.2 — measured peak power and NPE on the MSP430F1610 rig vary by
application and by input set (motivating the whole paper)."""

from conftest import heading

from repro.bench import runner
from repro.bench.suite import ALL_BENCHMARKS
from repro.hw import MeasurementRig

APPS = ["autoCorr", "binSearch", "FFT", "intFilt", "mult", "PI", "tea8", "tHold"]
N_INPUTS = 3


def regenerate():
    rig = MeasurementRig(runner.shared_cpu())
    rows = {}
    for name in APPS:
        benchmark = ALL_BENCHMARKS[name]
        program = benchmark.program()
        peaks, npes = [], []
        for inputs in benchmark.input_sets(N_INPUTS, seed=22):
            capture = rig.measure(program.with_inputs(inputs))
            peaks.append(capture.peak_mw)
            npes.append(capture.npe_j_per_cycle)
        rows[name] = (peaks, npes)
    return rows, rig.rated_peak_mw()


def test_fig2_2(benchmark):
    rows, rated = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 2.2 — measured peak power and NPE on MSP430F1610 rig")
    print(f"{'app':>10} {'peak power [mW] (min-max)':>28} {'NPE [nJ/cycle] (min-max)':>26}")
    for name, (peaks, npes) in rows.items():
        print(
            f"{name:>10} {min(peaks):10.3f} - {max(peaks):8.3f} "
            f"{min(npes)*1e9:10.3f} - {max(npes)*1e9:8.3f}"
        )
    print(f"\nrated (datasheet-style) peak power: {rated:.3f} mW "
          f"(paper: 4.8 mW rated vs ~1.8-2.3 observed)")

    all_peaks = [p for peaks, _ in rows.values() for p in peaks]
    # Chapter 2's three observations:
    # 1. peak power differs across applications
    per_app_peak = {name: max(peaks) for name, (peaks, _n) in rows.items()}
    assert max(per_app_peak.values()) > 1.05 * min(per_app_peak.values())
    # 2. peak power differs across inputs of one application
    assert any(
        max(peaks) > 1.01 * min(peaks) for peaks, _n in rows.values()
    )
    # 3. the rated chip power is far above any observed peak
    assert rated > 1.3 * max(all_peaks)
