"""Figure 3.4 — X-based analysis marks a superset of the gates that any
concrete input toggles (shown for mult with low- and high-activity
inputs)."""

from conftest import heading

from repro.bench import runner
from repro.bench.suite import ALL_BENCHMARKS
from repro.core.validation import run_concrete, validate_toggles

LOW_INPUTS = [0, 0, 0, 0, 0, 0, 0, 0]          # X*0: no partial products
HIGH_INPUTS = [0xFFFF] * 8                      # full-width operands


def regenerate():
    report = runner.full_report("mult")
    cpu = runner.shared_cpu()
    program = ALL_BENCHMARKS["mult"].program()
    comparisons = {}
    for label, inputs in (("low", LOW_INPUTS), ("high", HIGH_INPUTS)):
        concrete = run_concrete(cpu, program, inputs)
        comparisons[label] = validate_toggles(report.tree, concrete)
    return comparisons


def test_fig3_4(benchmark):
    comparisons = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 3.4 — toggled gates: X-based vs input-based (mult)")
    print(f"{'inputs':>8} {'common':>8} {'only X-based':>13} {'only input':>11}")
    for label, result in comparisons.items():
        print(
            f"{label:>8} {result.n_common:>8} {result.n_only_symbolic:>13} "
            f"{result.n_only_concrete:>11}"
        )

    for label, result in comparisons.items():
        # the validation claim: no gate is toggled only by an input run
        assert result.is_superset, label
    # high-activity inputs exercise more of the multiplier than low ones
    assert (
        comparisons["high"].n_common > comparisons["low"].n_common
    )
