"""Figure 2.3 — instantaneous measured power of mult is significantly
lower, on average, than its peak (why peak energy matters separately)."""

from conftest import heading

from repro.bench import runner
from repro.bench.suite import ALL_BENCHMARKS
from repro.hw import MeasurementRig


def regenerate():
    rig = MeasurementRig(runner.shared_cpu())
    benchmark = ALL_BENCHMARKS["mult"]
    inputs = benchmark.input_sets(1, seed=5)[0]
    return rig.measure(benchmark.program().with_inputs(inputs))


def test_fig2_3(benchmark):
    capture = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 2.3 — instantaneous power of mult on the rig")
    print(f"samples: {len(capture.power_mw)} over {capture.time_s[-1]*1e6:.1f} us")
    print(f"peak:    {capture.peak_mw:.3f} mW")
    print(f"average: {capture.avg_mw:.3f} mW")
    print(f"peak/avg ratio: {capture.peak_mw / capture.avg_mw:.2f}")

    # the figure's point: average instantaneous power is well below peak
    assert capture.avg_mw < 0.8 * capture.peak_mw
    assert len(capture.power_mw) >= capture.cycles  # >= 1 sample per cycle
