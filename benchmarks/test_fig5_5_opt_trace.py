"""Figure 5.5 — mult's peak power trace before and after optimization."""

from conftest import heading

import numpy as np

from repro.bench import runner


def regenerate():
    return runner.optimized("mult"), runner.x_based("mult")


def test_fig5_5(benchmark):
    result, base = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    before = np.asarray(base.trace_mw)
    after = np.asarray(result.opt_trace_mw)
    heading("Figure 5.5 — mult peak power trace, before vs after OPTs")
    print(f"opts applied: {result.opts}")
    print(f"before: {len(before)} cycles, peak {before.max():.3f} mW")
    print(f"after:  {len(after)} cycles, peak {after.max():.3f} mW")

    assert result.opts, "mult must trigger at least one optimization"
    # optimization trades a longer trace for a (no worse) ceiling
    assert after.max() <= before.max() * 1.01
    assert len(after) >= len(before)
