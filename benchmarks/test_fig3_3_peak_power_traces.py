"""Figure 3.3 — per-cycle peak power varies significantly over each
application's execution, so peak energy << peak power x runtime."""

from conftest import heading

import numpy as np

from repro.bench import runner


def regenerate():
    return {
        name: runner.x_based(name) for name in runner.all_names()
    }


def _sparkline(series, width=48) -> str:
    blocks = " .:-=+*#%@"
    chunks = np.array_split(series, width)
    lo, hi = series.min(), series.max()
    span = (hi - lo) or 1.0
    return "".join(
        blocks[int((chunk.mean() - lo) / span * (len(blocks) - 1))]
        for chunk in chunks
    )


def test_fig3_3(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 3.3 — per-cycle peak power traces [mW]")
    for name, result in results.items():
        trace = np.asarray(result.trace_mw)
        print(
            f"{name:>10} min={trace.min():.3f} mean={trace.mean():.3f} "
            f"max={trace.max():.3f}  {_sparkline(trace)}"
        )

    for name, result in results.items():
        trace = np.asarray(result.trace_mw)
        # the figure's claim: worst-case average power is significantly
        # below peak power in every application
        assert trace.mean() < 0.98 * trace.max(), name
        # and therefore peak energy < peak power x runtime
        peak_times_runtime = trace.max() * len(trace) * 10.0
        assert result.peak_energy_pj < peak_times_runtime
