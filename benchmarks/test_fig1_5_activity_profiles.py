"""Figure 1.5 — active (toggling) gates at the peak-power cycle for tHold
vs PI, grouped by the paper's module labels."""

from conftest import heading

from repro.bench import runner

#: the paper's Figure 1.5 region labels -> our module prefixes
GROUPS = {
    "MULT": ("multiplier",),
    "WDG": ("watchdog",),
    "REGISTER FILE": ("exec_unit/regfile",),
    "ALU": ("exec_unit/alu",),
    "FRONTEND": ("frontend",),
    "MEM_BACKBONE": ("mem_backbone",),
    "MISC": ("clk_module", "dbg", "sfr", "exec_unit"),
}


def active_by_group(name: str) -> tuple[dict[str, int], int]:
    report = runner.full_report(name)
    cpu = runner.shared_cpu()
    peak_cycle = report.peak_power.peak_cycle
    active = report.tree.flat_trace.records[peak_cycle].active
    counts = {label: 0 for label in GROUPS}
    total = 0
    for gate in cpu.netlist.gates:
        if not active[gate.index]:
            continue
        if gate.kind in ("INPUT", "CONST0", "CONST1"):
            continue
        total += 1
        for label, prefixes in GROUPS.items():
            if any(
                gate.module == p or gate.module.startswith(p + "/")
                for p in prefixes
            ):
                counts[label] += 1
                break
    # longest-prefix groups listed first, so exec_unit/* lands correctly:
    return counts, total


def regenerate():
    return {name: active_by_group(name) for name in ("tHold", "PI")}


def test_fig1_5(benchmark):
    profiles = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 1.5 — active gates at each app's peak cycle")
    print(f"{'module':>15} {'tHold':>8} {'PI':>8}")
    for label in GROUPS:
        print(
            f"{label:>15} {profiles['tHold'][0][label]:>8} "
            f"{profiles['PI'][0][label]:>8}"
        )
    thold_total = profiles["tHold"][1]
    pi_total = profiles["PI"][1]
    print(f"{'TOTAL':>15} {thold_total:>8} {pi_total:>8}   (paper: 452 vs 743)")

    # The figure's claim: PI exercises a larger fraction of the processor
    # at its peak than tHold (PI drives the multiplier, tHold does not).
    assert pi_total > thold_total
    assert profiles["PI"][0]["MULT"] > profiles["tHold"][0]["MULT"]
