"""Tables 1.1 and 1.2 — battery energy densities and harvester power
densities, as consumed by the sizing models."""

from conftest import heading

from repro.sizing import BATTERY_TYPES, HARVESTER_TYPES, harvester_area_cm2


def regenerate():
    return dict(BATTERY_TYPES), dict(HARVESTER_TYPES)


def test_tab1_1_and_1_2(benchmark):
    batteries, harvesters = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    heading("Table 1.1 — battery specific energy / energy density")
    print(f"{'type':>14} {'J/g':>8} {'MJ/L':>8}")
    for battery in batteries.values():
        print(
            f"{battery.name:>14} {battery.specific_energy_j_per_g:>8.0f} "
            f"{battery.energy_density_mj_per_l:>8.3f}"
        )
    heading("Table 1.2 — harvester power density")
    for harvester in harvesters.values():
        print(f"{harvester.name:>24} {harvester.power_density_mw_per_cm2:>10.3f} mW/cm2")

    assert batteries["li-ion"].energy_density_mj_per_l == 1.152
    assert harvesters["photovoltaic-sun"].power_density_mw_per_cm2 == 100.0
    # Li-ion stores the most per gram; indoor PV needs ~1000x the area of sun
    assert max(
        batteries.values(), key=lambda b: b.specific_energy_j_per_g
    ).name == "Li-ion"
    assert harvester_area_cm2(1.0, "photovoltaic-indoor") == 1000 * (
        harvester_area_cm2(1.0, "photovoltaic-sun")
    )
