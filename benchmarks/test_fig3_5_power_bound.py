"""Figure 3.5 — the X-based peak power trace upper-bounds every concrete
input-based power trace, cycle by cycle (shown for mult)."""

from conftest import heading


from repro.bench import runner
from repro.bench.suite import ALL_BENCHMARKS
from repro.core.validation import run_concrete, validate_power_bound


def regenerate():
    report = runner.full_report("mult")
    cpu = runner.shared_cpu()
    model = runner.shared_model()
    benchmark = ALL_BENCHMARKS["mult"]
    program = benchmark.program()
    results = []
    for inputs in benchmark.input_sets(4, seed=33):
        concrete = run_concrete(cpu, program, inputs)
        results.append(
            validate_power_bound(cpu, report.tree, report.peak_power, model, concrete)
        )
    return results


def test_fig3_5(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 3.5 — X-based bound vs input-based power traces (mult)")
    print(f"{'run':>4} {'cycles':>7} {'bound peak':>11} {'input peak':>11} "
          f"{'mean margin':>12} {'violations':>11}")
    for index, result in enumerate(results):
        print(
            f"{index:>4} {result.n_cycles:>7} {result.bound_mw.max():>11.3f} "
            f"{result.concrete_mw.max():>11.3f} {result.mean_margin_mw:>12.3f} "
            f"{result.max_violation_mw:>11.6f}"
        )

    for result in results:
        assert result.is_bound, "bound violated by a concrete trace"
        # the bound should track the concrete trace, not sit far above it
        ratio = result.bound_mw.max() / result.concrete_mw.max()
        assert ratio < 2.0, f"bound is overly conservative ({ratio:.2f}x)"
