"""Figure 5.2 — normalized peak energy (J/cycle): design tool vs
input-based vs guardbanded input-based vs X-based, per application."""

from conftest import heading

from repro.bench import runner


def regenerate():
    rows = []
    for name in runner.all_names():
        x = runner.x_based(name)
        profile = runner.profiling(name)
        low, high = profile.npe_range()
        rows.append(
            {
                "app": name,
                "npe_low": low,
                "npe_high": high,
                "gb_input": profile.guardbanded_npe_pj_per_cycle,
                "x_based": x.npe_pj_per_cycle,
            }
        )
    stress = runner.stressmark("average")
    design = runner.design_baseline()
    clock_ns = runner.shared_model().clock_ns
    gb_stress_npe = stress.npe_pj_per_cycle(clock_ns) * 4.0 / 3.0
    return rows, gb_stress_npe, design


def test_fig5_2(benchmark):
    rows, gb_stress_npe, design = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )

    heading("Figure 5.2 — normalized peak energy [pJ/cycle]")
    print(f"{'app':>10} {'input-based':>16} {'GB input':>9} {'X-based':>8}")
    for row in rows:
        print(
            f"{row['app']:>10} {row['npe_low']:7.2f}-{row['npe_high']:6.2f} "
            f"{row['gb_input']:9.2f} {row['x_based']:8.2f}"
        )
    print(f"{'stressmark':>10} {'':>16} {gb_stress_npe:9.2f}")
    print(f"{'design_tool':>10} {'':>16} {design.npe_pj_per_cycle:9.2f}")

    x_values = [row["x_based"] for row in rows]
    vs_gb = 100 * (
        1 - sum(row["x_based"] / row["gb_input"] for row in rows) / len(rows)
    )
    vs_stress = 100 * (1 - sum(x / gb_stress_npe for x in x_values) / len(rows))
    vs_design = 100 * (
        1 - sum(x / design.npe_pj_per_cycle for x in x_values) / len(rows)
    )
    print(
        f"\nX-based NPE lower by: {vs_gb:.1f}% vs GB-input, "
        f"{vs_stress:.1f}% vs GB-stressmark, {vs_design:.1f}% vs design tool"
        f"   (paper: 17%, 26%, 47%)"
    )

    for row in rows:
        assert row["x_based"] >= row["npe_high"] - 1e-9, (
            f"{row['app']}: X-based NPE below an observed input NPE"
        )
    assert vs_gb > 0
    assert vs_design > 0
