"""Figure 5.4 — peak power reduction and peak-power dynamic-range
reduction achieved by the OPT1/OPT2/OPT3 transforms."""

from conftest import heading

from repro.bench import runner


def regenerate():
    return {name: runner.optimized(name) for name in runner.all_names()}


def test_fig5_4(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 5.4 — optimization gains")
    print(f"{'app':>10} {'opts':>18} {'peak reduction %':>17} {'DR reduction %':>15}")
    for name, result in results.items():
        print(
            f"{name:>10} {'+'.join(result.opts) or '-':>18} "
            f"{result.peak_reduction_pct:>17.2f} "
            f"{result.dynamic_range_reduction_pct:>15.2f}"
        )
    reductions = [r.peak_reduction_pct for r in results.values()]
    optimized = [r for r in results.values() if r.opts]
    print(
        f"\npeak power reduction: max {max(reductions):.1f}%, "
        f"avg {sum(reductions)/len(reductions):.1f}%   (paper: up to 10%, avg 5%)"
    )
    print(
        "note: our multicycle core dispatches one instruction at a time, so"
        "\npeaks are single-instruction cycles rather than the fetch/execute"
        "\noverlap coincidences OPT1-3 flatten on the pipelined openMSP430;"
        "\nreductions are correspondingly small here (see EXPERIMENTS.md)."
    )

    assert optimized, "no benchmark had an applicable optimization"
    # shape claims that survive the microarchitectural difference:
    # the transforms never *raise* the guaranteed peak materially ...
    for result in optimized:
        assert result.peak_reduction_pct > -2.0, result.name
    # ... and at least one application sees a measurable improvement
    assert max(reductions) > 0.0
