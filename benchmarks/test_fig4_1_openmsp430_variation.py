"""Figure 4.1 — peak power and NPE on openMSP430 (the 65 nm evaluation
core) also depend on application and inputs."""

from conftest import heading

from repro.bench import runner


def regenerate():
    return {name: runner.profiling(name) for name in runner.all_names()}


def test_fig4_1(benchmark):
    profiles = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Figure 4.1 — openMSP430-class core: input-based variation")
    print(f"{'app':>10} {'peak power [mW] (min-max)':>27} {'NPE [pJ/cyc] (min-max)':>24}")
    for name, profile in profiles.items():
        p_low, p_high = profile.peak_power_range_mw()
        n_low, n_high = profile.npe_range()
        print(
            f"{name:>10} {p_low:10.3f} - {p_high:7.3f} "
            f"{n_low:10.2f} - {n_high:7.2f}"
        )

    peaks = {n: p.observed_peak_power_mw for n, p in profiles.items()}
    # application-dependent ...
    assert max(peaks.values()) > 1.1 * min(peaks.values())
    # ... and input-dependent for data-driven kernels
    spreads = {
        name: profile.peak_power_range_mw() for name, profile in profiles.items()
    }
    assert any(high > 1.01 * low for low, high in spreads.values())
