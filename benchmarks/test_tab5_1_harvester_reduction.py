"""Table 5.1 — % harvester-area reduction vs each baseline technique for
different processor contributions to system peak power."""

from conftest import heading

from repro.bench import runner
from repro.sizing import reduction_table

CONTRIBUTIONS = (10, 25, 50, 75, 90, 100)

#: the paper's Table 5.1 row for comparison in the printed output
PAPER = {
    "GB-Input": [1.49, 3.73, 7.47, 11.21, 13.45, 14.94],
    "GB-Stress": [2.60, 6.47, 12.95, 19.42, 23.31, 25.90],
    "Design Tool": [2.68, 6.70, 13.41, 20.12, 24.14, 26.82],
}


def regenerate():
    x_by_app = {n: runner.x_based(n).peak_power_mw for n in runner.all_names()}
    gb_input = {
        n: runner.profiling(n).guardbanded_peak_power_mw
        for n in runner.all_names()
    }
    stress = runner.stressmark("peak").guardbanded_peak_power_mw
    design = runner.design_baseline().peak_power_mw
    return {
        "GB-Input": reduction_table(gb_input, x_by_app, CONTRIBUTIONS),
        "GB-Stress": reduction_table(
            {n: stress for n in x_by_app}, x_by_app, CONTRIBUTIONS
        ),
        "Design Tool": reduction_table(
            {n: design for n in x_by_app}, x_by_app, CONTRIBUTIONS
        ),
    }


def test_tab5_1(benchmark):
    tables = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Table 5.1 — % harvester-area reduction (measured | paper)")
    header = " ".join(f"{c:>6}%" for c in CONTRIBUTIONS)
    print(f"{'Baseline':>12} {header}")
    for baseline, table in tables.items():
        ours = " ".join(f"{table[c]:6.2f}" for c in CONTRIBUTIONS)
        paper = " ".join(f"{v:6.2f}" for v in PAPER[baseline])
        print(f"{baseline:>12} {ours}")
        print(f"{'(paper)':>12} {paper}")

    for baseline, table in tables.items():
        values = [table[c] for c in CONTRIBUTIONS]
        assert all(v > 0 for v in values), f"{baseline}: no reduction"
        # linear in the contribution, like the paper's table
        assert abs(values[-1] - 10 * values[0]) < 0.06  # 2-decimal rounding
        # 100%-contribution reduction equals the headline average reduction
        assert values[-1] < 60
