"""Table 6.1 — microarchitectural features of embedded processors: the
ULP class the technique targets has no branch prediction or caches, and
neither does our core."""

from conftest import heading

from repro.bench import runner

#: Table 6.1 verbatim: processor -> (branch predictor, cache)
TABLE_6_1 = {
    "ARM Cortex-M0": (False, False),
    "ARM Cortex-M3": (True, False),
    "Atmel ATxmega128A4": (False, False),
    "Freescale/NXP MC13224v": (False, False),
    "Intel Quark-D1000": (True, True),
    "Jennic/NXP JN5169": (False, False),
    "SiLab Si2012": (False, False),
    "TI MSP430": (False, False),
}


def regenerate():
    cpu = runner.shared_cpu()
    modules = set(cpu.netlist.top_modules())
    return modules, cpu.netlist.stats()


def test_tab6_1(benchmark):
    modules, stats = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Table 6.1 — microarchitectural features of embedded processors")
    print(f"{'processor':>24} {'branch predictor':>17} {'cache':>6}")
    for name, (predictor, cache) in TABLE_6_1.items():
        print(f"{name:>24} {'yes' if predictor else 'no':>17} "
              f"{'yes' if cache else 'no':>6}")
    print(f"\nour core's modules: {sorted(modules)}")
    print(f"gate count: {stats['cells']} cells, {stats['DFF']} flip-flops")

    # most ULP parts are deterministic, like our core: no predictor/cache
    deterministic = sum(
        1 for predictor, cache in TABLE_6_1.values() if not predictor and not cache
    )
    assert deterministic >= 6
    assert not {"branch_predictor", "icache", "dcache"} & modules
