"""Table 5.2 — % battery-volume reduction vs each baseline technique for
different processor contributions to system energy."""

from conftest import heading

from repro.bench import runner
from repro.sizing import reduction_table

CONTRIBUTIONS = (10, 25, 50, 75, 90, 100)

PAPER = {
    "GB-Input": [1.74, 4.37, 8.74, 13.11, 15.73, 17.48],
    "GB-Stress": [2.59, 6.49, 12.98, 19.48, 23.37, 25.97],
    "Design Tool": [4.66, 11.66, 23.32, 34.98, 41.97, 46.64],
}


def regenerate():
    x_npe = {n: runner.x_based(n).npe_pj_per_cycle for n in runner.all_names()}
    gb_input = {
        n: runner.profiling(n).guardbanded_npe_pj_per_cycle
        for n in runner.all_names()
    }
    clock_ns = runner.shared_model().clock_ns
    stress_npe = runner.stressmark("average").npe_pj_per_cycle(clock_ns) * 4 / 3
    design_npe = runner.design_baseline().npe_pj_per_cycle
    return {
        "GB-Input": reduction_table(gb_input, x_npe, CONTRIBUTIONS),
        "GB-Stress": reduction_table(
            {n: stress_npe for n in x_npe}, x_npe, CONTRIBUTIONS
        ),
        "Design Tool": reduction_table(
            {n: design_npe for n in x_npe}, x_npe, CONTRIBUTIONS
        ),
    }


def test_tab5_2(benchmark):
    tables = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    heading("Table 5.2 — % battery-volume reduction (measured | paper)")
    header = " ".join(f"{c:>6}%" for c in CONTRIBUTIONS)
    print(f"{'Baseline':>12} {header}")
    for baseline, table in tables.items():
        ours = " ".join(f"{table[c]:6.2f}" for c in CONTRIBUTIONS)
        paper = " ".join(f"{v:6.2f}" for v in PAPER[baseline])
        print(f"{baseline:>12} {ours}")
        print(f"{'(paper)':>12} {paper}")

    for baseline, table in tables.items():
        values = [table[c] for c in CONTRIBUTIONS]
        assert all(v > 0 for v in values)
        assert abs(values[-1] - 10 * values[0]) < 0.06  # 2-decimal rounding
