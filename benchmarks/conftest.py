"""Shared helpers for the figure/table regeneration harnesses.

Each benchmark regenerates the data behind one table or figure of the
paper and prints it in rows comparable to the original.  Expensive
artifacts are cached under ``.repro_cache`` by :mod:`repro.bench.runner`,
so figures that share inputs (e.g. 5.1 and 5.2) agree exactly.
"""

import pytest


def heading(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture
def show():
    """Print a paper-style row; keeps harness bodies terse."""

    def _show(*columns):
        print("  ".join(str(column) for column in columns))

    return _show
