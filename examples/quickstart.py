"""Quickstart: bound the peak power and energy of a tiny application.

Builds the gate-level ULP processor, assembles a small sensor-style
program with symbolic (unknown) inputs, runs the paper's full analysis,
and prints the guaranteed input-independent requirements next to a couple
of concrete-input measurements.

Run:  python examples/quickstart.py
"""

from repro.asm import assemble
from repro.cells import SG65
from repro.core import analyze
from repro.core.baselines import profile_one
from repro.cpu import build_ulp430
from repro.power import PowerModel

SOURCE = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL    ; stop the watchdog
        mov #samples, r4
        mov #4, r7              ; number of samples
        mov #0, r8              ; accumulator
sum:    add @r4+, r8
        dec r7
        jnz sum
        rra r8                  ; average = sum / 4
        rra r8
        mov r8, &0x0300
end:    jmp end
        .org 0x0240
samples: .input 4               ; unknown sensor readings
"""


def main() -> None:
    print("elaborating the gate-level processor ...")
    cpu = build_ulp430()
    stats = cpu.netlist.stats()
    print(f"  {stats['cells']} cells, {stats['DFF']} flip-flops")

    program = assemble(SOURCE, "average4")
    model = PowerModel(cpu.netlist, SG65, clock_ns=10.0)

    print("running input-independent analysis (Algorithm 1 + 2) ...")
    report = analyze(cpu, program, model)
    print(f"  {report.summary()}")

    print("\nguaranteed requirements (valid for ALL inputs):")
    print(f"  peak power : {report.peak_power_mw:.3f} mW")
    print(f"  peak energy: {report.peak_energy_pj:.1f} pJ "
          f"({report.npe_pj_per_cycle:.2f} pJ/cycle)")

    print("\nfor comparison, two concrete input sets:")
    for inputs in ([0, 0, 0, 0], [0x3FF, 0x3FF, 0x3FF, 0x3FF]):
        run = profile_one(cpu, program, inputs, model)
        print(f"  inputs={inputs}: peak {run.peak_power_mw:.3f} mW, "
              f"energy {run.energy_pj:.1f} pJ over {run.cycles} cycles")
        assert run.peak_power_mw <= report.peak_power_mw, "bound violated!"
    print("\nevery concrete run stays under the bound, as guaranteed.")


if __name__ == "__main__":
    main()
