"""Find and flatten power peaks with the COI-guided optimizations.

Reproduces the §3.5/§5.1 workflow on the `mult` benchmark: locate the
cycles of interest, see which instructions and modules cause the peaks,
apply the suggested OPT transforms, and re-analyze to confirm the peak
dropped (and by how much performance/energy paid for it).

Run:  python examples/peak_power_optimization.py
"""

from repro.asm import assemble
from repro.bench.suite import get_benchmark
from repro.cells import SG65
from repro.core import analyze
from repro.core.coi import cycles_of_interest, dominant_modules
from repro.core.optimize import apply, suggest
from repro.cpu import build_ulp430
from repro.power import PowerModel


def main() -> None:
    cpu = build_ulp430()
    model = PowerModel(cpu.netlist, SG65, clock_ns=10.0)
    benchmark = get_benchmark("mult")
    program = benchmark.program()

    print("analyzing mult ...")
    before = analyze(cpu, program, model)
    print(f"  peak power {before.peak_power_mw:.3f} mW, "
          f"worst path {before.peak_energy.path_cycles} cycles")

    print("\ncycles of interest (the power peaks):")
    reports = cycles_of_interest(
        before.tree, before.peak_power, program, count=5
    )
    for coi in reports:
        print(f"  {coi.describe()}")
    print(f"  dominant modules: {dominant_modules(reports)[:3]}")

    opts = suggest(reports)
    print(f"\nsuggested optimizations: {opts}")
    rewritten = apply(benchmark.source, opts)
    print(f"  {rewritten.n_applied} sites rewritten")

    after = analyze(cpu, assemble(rewritten.source, "mult_opt"), model)
    reduction = 100 * (1 - after.peak_power_mw / before.peak_power_mw)
    slowdown = 100 * (
        after.peak_energy.path_cycles / before.peak_energy.path_cycles - 1
    )
    energy_cost = 100 * (after.peak_energy_pj / before.peak_energy_pj - 1)
    print("\nafter optimization:")
    print(f"  peak power {after.peak_power_mw:.3f} mW "
          f"({reduction:+.1f}% peak, paper reports up to -10%)")
    print(f"  performance {slowdown:+.1f}%, energy {energy_cost:+.1f}%")


if __name__ == "__main__":
    main()
