"""Validate the X-based analysis against concrete executions (§3.4).

For a branchy benchmark (binSearch), runs the symbolic analysis once and
then sweeps concrete input sets, checking the paper's two validation
properties: the toggle-set superset and the cycle-by-cycle power bound.

Run:  python examples/validate_bounds.py
"""

from repro.bench.suite import get_benchmark
from repro.cells import SG65
from repro.core import analyze
from repro.core.validation import (
    run_concrete,
    validate_power_bound,
    validate_toggles,
)
from repro.cpu import build_ulp430
from repro.power import PowerModel


def main() -> None:
    cpu = build_ulp430()
    model = PowerModel(cpu.netlist, SG65, clock_ns=10.0)
    benchmark = get_benchmark("binSearch")
    program = benchmark.program()

    print("symbolic analysis of binSearch ...")
    report = analyze(cpu, program, model)
    print(f"  {len(report.tree.segments)} path segments, "
          f"{report.tree.n_memo_hits} memoization hits")
    print(f"  input-independent peak power: {report.peak_power_mw:.3f} mW")

    print("\nsweeping concrete keys through the bound checks:")
    worst_margin = float("inf")
    for key in (0, 3, 26, 40, 90, 91, 0xFFFF):
        concrete = run_concrete(cpu, program, [key])
        toggles = validate_toggles(report.tree, concrete)
        bound = validate_power_bound(
            cpu, report.tree, report.peak_power, model, concrete
        )
        worst_margin = min(worst_margin, bound.mean_margin_mw)
        status = "OK " if toggles.is_superset and bound.is_bound else "FAIL"
        print(f"  key={key:>6}: {status} {len(concrete):>4} cycles, "
              f"concrete peak {bound.concrete_mw.max():.3f} mW, "
              f"mean margin {bound.mean_margin_mw:.3f} mW, "
              f"toggle sets {toggles.n_common} common / "
              f"{toggles.n_only_symbolic} only-X / "
              f"{toggles.n_only_concrete} only-concrete")
        assert toggles.is_superset and bound.is_bound

    print(f"\nall runs bounded; tightest mean margin {worst_margin:.3f} mW.")


if __name__ == "__main__":
    main()
