"""Size a solar-harvesting sensor node from analysis results.

The motivating use case of the paper (Figures 1.2/1.3): the energy
harvester and battery dominate a wireless sensor node's size, and both are
sized from the processor's peak power and energy requirements.  This
example sizes a Type 1 (harvester-only) and a Type 3 (battery-only) node
for the `tHold` threshold-detection firmware using three techniques, and
shows how much smaller the node gets with the X-based bounds.

Run:  python examples/sensor_node_sizing.py
"""

from repro.bench.suite import get_benchmark
from repro.cells import SG65
from repro.core import analyze
from repro.core.baselines import GUARDBAND, input_profiling
from repro.cpu import build_ulp430
from repro.power import PowerModel, design_tool_rating
from repro.sizing import harvester_area_cm2, size_system


def main() -> None:
    cpu = build_ulp430()
    model = PowerModel(cpu.netlist, SG65, clock_ns=10.0)
    benchmark = get_benchmark("tHold")
    program = benchmark.program()

    print("technique 1: design-tool rating (application-oblivious)")
    design_power, _ = design_tool_rating(model)

    print("technique 2: guardbanded input profiling (8 input sets)")
    profile = input_profiling(
        cpu, program, benchmark.input_sets(8), model
    )

    print("technique 3: X-based analysis (this paper)")
    report = analyze(cpu, program, model)

    techniques = {
        "design tool": design_power,
        f"profiling x {GUARDBAND:.2f} GB": profile.guardbanded_peak_power_mw,
        "X-based (ours)": report.peak_power_mw,
    }

    print("\nType 1 node (indoor photovoltaic, sized by peak power):")
    for name, peak_mw in techniques.items():
        area = harvester_area_cm2(peak_mw, "photovoltaic-indoor")
        print(f"  {name:>22}: peak {peak_mw:.3f} mW -> {area:7.1f} cm^2 panel")

    baseline_area = harvester_area_cm2(
        techniques["design tool"], "photovoltaic-indoor"
    )
    ours_area = harvester_area_cm2(
        techniques["X-based (ours)"], "photovoltaic-indoor"
    )
    print(f"  panel shrinks by {100 * (1 - ours_area / baseline_area):.1f}% "
          f"vs the design-tool rating")

    print("\nType 3 node (Li-ion, 30-day lifetime, duty-cycled):")
    avg_active_mw = report.peak_energy_pj / (
        report.peak_energy.path_cycles * model.clock_ns
    )
    duty = 0.01  # 1% compute, 99% sleep
    avg_mw = avg_active_mw * duty + 0.002  # plus sleep current
    for name, peak_mw in techniques.items():
        sizing = size_system(
            3, peak_power_mw=peak_mw, avg_power_mw=avg_mw,
            lifetime_hours=30 * 24,
        )
        print(f"  {name:>22}: battery {sizing.battery_volume_mm3:8.1f} mm^3")


if __name__ == "__main__":
    main()
