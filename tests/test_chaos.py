"""Chaos tests: the robustness machinery under injected faults.

Three layers, increasingly end-to-end:

* unit — :func:`describe_exit` decodes worker exit codes to signal
  names, and the extended ``/healthz`` / client-retry surfaces;
* scheduler — ``REPRO_FAULTS`` crashes and hangs the worker process on
  its first attempt, and the retry loop + heartbeat watchdog must
  recover it (with the attempt trail in the job's events) without
  leaking a scheduler slot; wall-clock deadlines must fail jobs
  *permanently* on both backends;
* subprocess — ``repro serve`` is SIGKILLed mid-job and restarted on
  the same store: the journal requeues the job under its original id
  and the recomputed result is bit-identical to a direct engine run.
  SIGTERM takes the graceful path and exits 0.

Executors are **module-level** so the spawn-start worker can re-import
them; this module deliberately avoids heavyweight imports (numpy, the
engine) at module scope to keep worker spawn fast — the heartbeat
watchdog tests depend on spawn finishing well inside the timeout.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service.client import (
    ServiceClient,
    ServiceUnavailableError,
)
from repro.service.faults import FAULTS_ENV
from repro.service.scheduler import DONE, FAILED, RUNNING, JobScheduler
from repro.service.server import AnalysisService, make_server
from repro.service.workers import describe_exit

# ----------------------------------------------------------------------
# Picklable executors
# ----------------------------------------------------------------------


def _echo_executor(params, ctx):
    ctx.emit("working", "echo")
    return {"echo": dict(params)}


def _stubborn_executor(params, ctx):
    # never reaches a checkpoint: only deadlines/watchdogs can stop it
    time.sleep(30)
    return {"stubborn": True}


def _cooperative_executor(params, ctx):
    for _ in range(600):
        ctx.check_cancelled()
        time.sleep(0.02)
    return {"cooperative": True}


def _chaos_executors():
    return {
        "echo": _echo_executor,
        "stubborn": _stubborn_executor,
        "cooperative": _cooperative_executor,
    }


def _wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)


# ----------------------------------------------------------------------
# Unit: exit-code decoding
# ----------------------------------------------------------------------


class TestDescribeExit:
    def test_signal_exits_name_the_signal(self):
        assert "killed by SIGKILL" in describe_exit(-signal.SIGKILL)
        assert "possible OOM" in describe_exit(-signal.SIGKILL)
        assert "killed by SIGSEGV" in describe_exit(-signal.SIGSEGV)
        assert "OOM" not in describe_exit(-signal.SIGSEGV)

    def test_plain_exit_codes(self):
        assert describe_exit(1) == "exit code 1"
        assert describe_exit(None) == "no exit code"

    def test_unknown_signal_number_does_not_crash(self):
        assert describe_exit(-250)  # no such signal; still a string


# ----------------------------------------------------------------------
# Scheduler: crash -> retry -> done
# ----------------------------------------------------------------------


class TestCrashRetry:
    def _scheduler(self, **kwargs):
        kwargs.setdefault("max_concurrent", 1)
        kwargs.setdefault("backend", "process")
        kwargs.setdefault("executor_factory", _chaos_executors)
        kwargs.setdefault("kill_grace", 1.0)
        kwargs.setdefault("retry_backoff_s", 0.05)
        return JobScheduler(**kwargs)

    def test_injected_crash_is_retried_to_done(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker.start=crash:on_attempt=1")
        scheduler = self._scheduler(max_retries=2)
        try:
            job, _ = scheduler.submit("echo", {"x": 1})
            assert scheduler.wait(job.id, 60)
            assert job.state == DONE
            assert job.result == {"echo": {"x": 1}}
            assert job.attempt == 2
            stages = [e["stage"] for e in job.events]
            assert "retrying" in stages
            [retry] = [e for e in job.events if e["stage"] == "retrying"]
            assert "attempt 2/3" in retry["detail"]
            assert "SIGKILL" in retry["detail"]
            assert job.payload()["attempt"] == 2
        finally:
            scheduler.shutdown()

    def test_retry_exhaustion_fails_with_attempt_count(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker.start=crash")  # every attempt
        scheduler = self._scheduler(max_retries=1)
        try:
            job, _ = scheduler.submit("echo", {"x": 1})
            assert scheduler.wait(job.id, 60)
            assert job.state == FAILED
            assert "killed by SIGKILL" in job.error
            assert "(after 2 attempts)" in job.error
            # the slot is free again at max_concurrent=1
            monkeypatch.delenv(FAULTS_ENV)
            good, _ = scheduler.submit("echo", {"x": 2})
            assert scheduler.wait(good.id, 60)
            assert good.state == DONE
        finally:
            scheduler.shutdown()

    def test_executor_exception_is_never_retried(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker.start=raise")
        scheduler = self._scheduler(max_retries=2)
        try:
            job, _ = scheduler.submit("echo", {"x": 1})
            assert scheduler.wait(job.id, 60)
            assert job.state == FAILED
            assert "FaultInjected" in job.error
            assert job.attempt == 1  # permanent: no attempts were burned
            assert "retrying" not in [e["stage"] for e in job.events]
        finally:
            scheduler.shutdown()

    def test_backoff_is_deterministic_and_capped(self):
        scheduler = self._scheduler(
            backend="thread",
            executor_factory=None,
            executors=_chaos_executors(),
            kill_grace=None,
            retry_backoff_s=0.5,
            retry_backoff_cap_s=4.0,
        )
        try:
            first = scheduler.retry_delay("job-00001", 1)
            assert first == scheduler.retry_delay("job-00001", 1)
            assert first != scheduler.retry_delay("job-00002", 1)
            assert 0.5 <= first <= 0.5 * 1.25
            # exponential growth, then the cap (plus <=25% jitter)
            assert scheduler.retry_delay("job-00001", 10) <= 4.0 * 1.25
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# Scheduler: hang -> watchdog kill -> retry
# ----------------------------------------------------------------------


class TestWatchdog:
    def test_hung_worker_is_killed_and_retried(self, monkeypatch):
        # attempt 1 hangs forever before the executor (after the worker's
        # "booted" ping, so the watchdog clock is running); attempt 2 is
        # clean.  The worker never reaches a checkpoint while hung, so
        # only the heartbeat watchdog can end it.
        monkeypatch.setenv(FAULTS_ENV, "worker.start=hang:on_attempt=1")
        scheduler = JobScheduler(
            max_concurrent=1,
            backend="process",
            executor_factory=_chaos_executors,
            kill_grace=1.0,
            heartbeat_timeout=2.5,
            max_retries=2,
            retry_backoff_s=0.05,
        )
        try:
            job, _ = scheduler.submit("echo", {"x": 1})
            assert scheduler.wait(job.id, 90)
            assert job.state == DONE
            assert job.attempt == 2
            stages = [e["stage"] for e in job.events]
            assert "hung" in stages
            assert "retrying" in stages
            [retry] = [e for e in job.events if e["stage"] == "retrying"]
            assert "presumed hung" in retry["detail"]
            # no slot leaked: an immediate follow-up runs at slot 1/1
            good, _ = scheduler.submit("echo", {"x": 2})
            assert scheduler.wait(good.id, 60)
            assert good.state == DONE
        finally:
            scheduler.shutdown()

    def test_heartbeating_worker_survives_a_tight_watchdog(self):
        # cooperative executor checkpoints every 20ms; each checkpoint
        # heartbeats, so even a 2.5s watchdog never fires over a ~3s job
        scheduler = JobScheduler(
            max_concurrent=1,
            backend="process",
            executor_factory=_chaos_executors,
            kill_grace=1.0,
            heartbeat_timeout=2.5,
            retry_backoff_s=0.05,
        )
        try:
            job, _ = scheduler.submit("cooperative", {})
            assert _wait_for(lambda: job.state == RUNNING, 60)
            assert _wait_for(
                lambda: any(e["stage"] == "booted" for e in job.events), 60
            )
            time.sleep(3.0)  # longer than the watchdog timeout
            assert job.state == RUNNING
            assert "hung" not in [e["stage"] for e in job.events]
            scheduler.cancel(job.id)
            scheduler.wait(job.id, 60)
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# Scheduler: wall-clock deadlines (both backends)
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_process_backend_deadline_is_permanent(self):
        scheduler = JobScheduler(
            max_concurrent=1,
            backend="process",
            executor_factory=_chaos_executors,
            kill_grace=1.0,
            max_retries=2,
        )
        try:
            job, _ = scheduler.submit("stubborn", {}, deadline_s=1.5)
            assert scheduler.wait(job.id, 60)
            assert job.state == FAILED
            assert "deadline exceeded" in job.error
            assert job.attempt == 1  # deadline kills are never retried
            assert "deadline" in [e["stage"] for e in job.events]
            good, _ = scheduler.submit("echo", {"x": 1})
            assert scheduler.wait(good.id, 60)
            assert good.state == DONE
        finally:
            scheduler.shutdown()

    def test_thread_backend_deadline(self):
        scheduler = JobScheduler(
            max_concurrent=1, executors=_chaos_executors()
        )
        try:
            job, _ = scheduler.submit("cooperative", {}, deadline_s=0.5)
            assert scheduler.wait(job.id, 30)
            assert job.state == FAILED
            assert "deadline exceeded" in job.error
        finally:
            scheduler.shutdown()

    def test_server_default_applies_when_request_has_none(self):
        scheduler = JobScheduler(
            max_concurrent=1,
            executors=_chaos_executors(),
            max_job_seconds=0.5,
        )
        try:
            job, _ = scheduler.submit("cooperative", {})
            assert scheduler.wait(job.id, 30)
            assert job.state == FAILED
            assert "deadline exceeded" in job.error
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# HTTP surfaces: /healthz and client retries
# ----------------------------------------------------------------------


class TestHealthz:
    def test_reports_backend_queue_uptime_and_config(self):
        service = AnalysisService(
            scheduler=JobScheduler(
                max_concurrent=2, executors=_chaos_executors()
            )
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            health = ServiceClient(f"http://{host}:{port}").health()
            assert health["ok"] is True
            assert health["backend"] == "thread"
            assert health["queue_depth"] == 0
            assert health["uptime_s"] >= 0
            assert health["recovered"]["requeued"] == 0
            config = health["config"]
            assert config["max_retries"] == 2
            assert config["heartbeat_timeout_s"] is None
            assert config["max_job_seconds"] is None
            assert config["journal"] is None
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestClientRetries:
    class _Response:
        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def read(self):
            return b'{"ok": true}'

    def test_connection_failures_are_retried(self, monkeypatch):
        attempts = []

        def flaky_urlopen(request, timeout=None):
            attempts.append(request.full_url)
            if len(attempts) < 3:
                raise urllib.error.URLError(ConnectionRefusedError("refused"))
            return self._Response()

        monkeypatch.setattr(urllib.request, "urlopen", flaky_urlopen)
        monkeypatch.setattr(time, "sleep", lambda seconds: None)
        client = ServiceClient("http://127.0.0.1:1", connect_retries=2)
        assert client.health() == {"ok": True}
        assert len(attempts) == 3

    def test_exhausted_retries_raise_typed_error(self, monkeypatch):
        def dead_urlopen(request, timeout=None):
            raise urllib.error.URLError(ConnectionRefusedError("refused"))

        monkeypatch.setattr(urllib.request, "urlopen", dead_urlopen)
        monkeypatch.setattr(time, "sleep", lambda seconds: None)
        client = ServiceClient("http://127.0.0.1:1", connect_retries=1)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert "after 2 attempts" in str(excinfo.value)

    def test_http_errors_are_not_retried(self):
        service = AnalysisService(
            scheduler=JobScheduler(
                max_concurrent=1, executors=_chaos_executors()
            )
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            with pytest.raises(Exception) as excinfo:
                client.submit("transmogrify")
            assert not isinstance(excinfo.value, ServiceUnavailableError)
        finally:
            server.shutdown()
            server.server_close()
            service.close()


# ----------------------------------------------------------------------
# End to end: SIGKILL the server mid-job, restart, bit-identical result
# ----------------------------------------------------------------------

_BANNER = re.compile(r"repro service on http://127\.0\.0\.1:(\d+)")


def _serve_env(extra=None):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(FAULTS_ENV, None)
    if extra:
        env.update(extra)
    return env


def _start_serve(store: Path, env=None, extra_args=()):
    """Launch ``repro serve --port 0`` in its own session; return
    (process, port) once the startup banner names the bound port."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--store", str(store),
            "--max-jobs", "1", "--workers", "1", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=True,
        env=env or _serve_env(),
        cwd=str(store.parent),
    )
    deadline = time.monotonic() + 90
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _BANNER.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        _stop_serve(proc)
        raise RuntimeError("repro serve never printed its banner")
    return proc, port


def _stop_serve(proc, sig=signal.SIGKILL):
    if proc.poll() is None:
        try:
            os.killpg(proc.pid, sig)
        except ProcessLookupError:
            pass
    try:
        proc.wait(30)
    except subprocess.TimeoutExpired:  # pragma: no cover - last resort
        proc.kill()
        proc.wait(10)
    if proc.stdout:
        proc.stdout.close()


@pytest.mark.slow
class TestServeRecovery:
    def test_sigkill_mid_job_then_restart_is_bit_identical(
        self, tmp_path, monkeypatch
    ):
        store = tmp_path / "store"
        # a 30s stall before the executor guarantees the kill lands
        # mid-job; the restarted server runs fault-free
        slow_env = _serve_env({FAULTS_ENV: "worker.start=delay:ms=30000"})
        proc, port = _start_serve(store, env=slow_env)
        job_id = None
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            job_id = client.submit("analyze", benchmark="mult")["job_id"]
            assert _wait_for(
                lambda: client.status(job_id)["state"] == RUNNING, 60
            )
        finally:
            _stop_serve(proc, signal.SIGKILL)

        proc2, port2 = _start_serve(store)
        try:
            client = ServiceClient(f"http://127.0.0.1:{port2}")
            # same id, recovered, and it runs to completion
            payload = client.result(job_id, timeout=120)
            assert payload["state"] == DONE
            assert payload["recovered"] is True
            stages = [
                e["stage"] for e in client.events(job_id)["events"]
            ]
            assert "recovered" in stages
            served = payload["result"]
        finally:
            _stop_serve(proc2, signal.SIGKILL)

        # bit-identical to a direct engine run in a fresh store
        from repro.bench import runner

        monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "ref_store")
        monkeypatch.setattr(runner, "_store", None, raising=False)
        direct = runner.x_based("mult", workers=1)
        assert served["peak_power_mw"] == direct.peak_power_mw
        assert served["peak_energy_pj"] == direct.peak_energy_pj
        assert served["npe_pj_per_cycle"] == direct.npe_pj_per_cycle
        assert served["path_cycles"] == direct.path_cycles
        assert served["n_segments"] == direct.n_segments

    def test_sigterm_takes_the_graceful_path(self, tmp_path):
        proc, port = _start_serve(tmp_path / "store")
        try:
            assert ServiceClient(f"http://127.0.0.1:{port}").health()["ok"]
            os.killpg(proc.pid, signal.SIGTERM)
            assert proc.wait(30) == 0
        finally:
            _stop_serve(proc)
