"""Differential tests: gate-level CPU vs the behavioral ISS.

Every test assembles a small program, runs it on both models, and compares
the full architectural state (registers, flags, RAM).  The ISS is simple
enough to trust by inspection; agreement means the 6k-gate netlist
implements the ISA.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.isa import InstructionSetSimulator
from repro.isa.memmap import RAM_START
from repro.isa.spec import SR_C, SR_N, SR_V, SR_Z

HEADER = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
"""

FOOTER = """
end:    jmp end
"""


def run_both(cpu, body: str, max_cycles: int = 20_000, port_in: int = 0):
    program = assemble(HEADER + body + FOOTER, "difftest")
    iss = InstructionSetSimulator(program, port_in=port_in)
    iss.run()
    machine = cpu.make_machine(program, symbolic_inputs=False, port_in=port_in)
    cpu.run_to_halt(machine, max_cycles=max_cycles)
    return iss, machine


def assert_state_matches(cpu, iss, machine, check_flags: bool = True):
    registers = cpu.read_registers(machine)
    for index in range(4, 16):
        value, xmask = registers[index]
        assert xmask == 0, f"r{index} has unknown bits {xmask:#06x}"
        assert value == iss.state.regs[index], (
            f"r{index}: gate={value:#06x} iss={iss.state.regs[index]:#06x}"
        )
    sp_value, sp_xmask = registers[1]
    assert sp_xmask == 0
    assert sp_value == iss.state.regs[1]
    if check_flags:
        sr_value, sr_xmask = registers[2]
        for bit, name in ((SR_C, "C"), (SR_Z, "Z"), (SR_N, "N"), (SR_V, "V")):
            if not (sr_xmask >> bit) & 1:
                assert ((sr_value >> bit) & 1) == iss.state.flag(bit), name
    for address, expected in sorted(iss.state.memory.items()):
        if not RAM_START <= address < 0xF000:
            continue
        got_value, got_xmask = machine.memory.read_byte_addr(address)
        assert got_xmask == 0, f"mem[{address:#06x}] unknown"
        assert got_value == expected, (
            f"mem[{address:#06x}]: gate={got_value:#06x} iss={expected:#06x}"
        )


class TestArithmetic:
    def test_add_sub_chain(self, cpu):
        iss, m = run_both(cpu, """
        mov #100, r4
        mov #17, r5
        add r5, r4
        sub #8, r4
        mov r4, &0x0300
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 109

    def test_addc_subc_use_carry(self, cpu):
        iss, m = run_both(cpu, """
        mov #0xFFFF, r4
        add #1, r4          ; sets carry, r4=0
        mov #5, r5
        addc #0, r5         ; r5 = 6
        mov #3, r6
        sub #5, r6          ; borrow -> C=0
        mov #10, r7
        subc #0, r7         ; r7 = 10 - 0 - 1 = 9
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 6
        assert iss.state.regs[7] == 9

    def test_cmp_sets_flags_only(self, cpu):
        iss, m = run_both(cpu, """
        mov #7, r4
        cmp #7, r4
        jz taken
        mov #1, r5
taken:  mov #2, r6
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 0
        assert iss.state.regs[6] == 2

    def test_logic_ops(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x0F0F, r4
        mov #0x00FF, r5
        and r4, r5          ; 0x000F
        mov #0x0F0F, r6
        bis #0x1000, r6
        bic #0x000F, r6
        mov #0xAAAA, r7
        xor #0xFFFF, r7
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 0x000F
        assert iss.state.regs[6] == 0x1F00
        assert iss.state.regs[7] == 0x5555

    def test_overflow_flag(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x7FFF, r4
        add #1, r4          ; N=1, V=1 -> N^V=0, so JGE is taken
        jge no_ovf
        mov #1, r5          ; skipped
no_ovf: mov #2, r6
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 0
        assert iss.state.regs[6] == 2


class TestAddressingModes:
    def test_indexed_load_store(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x0300, r4
        mov #11, 0(r4)
        mov #22, 2(r4)
        mov 0(r4), r5
        add 2(r4), r5
        mov r5, 4(r4)
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.read_word(0x0304) == 33

    def test_absolute(self, cpu):
        iss, m = run_both(cpu, """
        mov #77, &0x0320
        mov &0x0320, r9
        add #1, &0x0320
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.read_word(0x0320) == 78

    def test_indirect_and_autoincrement(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x0340, r4
        mov #5, 0(r4)
        mov #6, 2(r4)
        mov @r4, r5
        mov @r4+, r6
        mov @r4+, r7
        """)
        assert_state_matches(cpu, iss, m)
        assert (iss.state.regs[5], iss.state.regs[6], iss.state.regs[7]) == (5, 5, 6)
        assert iss.state.regs[4] == 0x0344

    def test_constant_generators(self, cpu):
        iss, m = run_both(cpu, """
        mov #0, r4
        mov #1, r5
        mov #2, r6
        mov #4, r7
        mov #8, r8
        mov #0xFFFF, r9
        """)
        assert_state_matches(cpu, iss, m)
        values = [iss.state.regs[i] for i in range(4, 10)]
        assert values == [0, 1, 2, 4, 8, 0xFFFF]

    def test_rw_modify_memory(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x0400, r10
        mov #3, 0(r10)
        add #4, 0(r10)
        xor #0xFF, 0(r10)
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.read_word(0x0400) == 0xF8


class TestShifts:
    def test_rra_rrc(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x8005, r4
        rra r4              ; 0xC002, C=1
        mov #0, r5
        rrc r5              ; C(1) -> msb
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 0xC002
        assert iss.state.regs[5] == 0x8000

    def test_swpb_sxt(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x1234, r4
        swpb r4
        mov #0x0080, r5
        sxt r5
        mov #0x007F, r6
        sxt r6
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 0x3412
        assert iss.state.regs[5] == 0xFF80
        assert iss.state.regs[6] == 0x007F

    def test_shift_memory_operand(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x0500, r4
        mov #0x00F0, 0(r4)
        rra 0(r4)
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.read_word(0x0500) == 0x0078


class TestStackAndControl:
    def test_push_pop(self, cpu):
        iss, m = run_both(cpu, """
        mov #111, r4
        mov #222, r5
        push r4
        push r5
        pop r6
        pop r7
        """)
        assert_state_matches(cpu, iss, m)
        assert (iss.state.regs[6], iss.state.regs[7]) == (222, 111)

    def test_push_immediate_and_memory(self, cpu):
        iss, m = run_both(cpu, """
        push #0x1234
        mov #0x0360, r4
        mov #55, 0(r4)
        push 0(r4)
        pop r5
        pop r6
        """)
        assert_state_matches(cpu, iss, m)
        assert (iss.state.regs[5], iss.state.regs[6]) == (55, 0x1234)

    def test_call_ret(self, cpu):
        iss, m = run_both(cpu, """
        mov #3, r4
        call #triple
        mov r4, r10
        jmp done
triple: add r4, r4
        add r4, r4          ; r4 *= 4 (well, x4 not x3)
        ret
done:   nop
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[10] == 12

    def test_nested_calls(self, cpu):
        iss, m = run_both(cpu, """
        mov #1, r4
        call #outer
        jmp fin
outer:  add #10, r4
        call #inner
        add #100, r4
        ret
inner:  add #1000, r4
        ret
fin:    nop
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 1111

    def test_br_register(self, cpu):
        iss, m = run_both(cpu, """
        mov #target, r4
        br r4
        mov #99, r5         ; skipped
target: mov #7, r6
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 0
        assert iss.state.regs[6] == 7

    @pytest.mark.parametrize(
        "jump,first,second,expect_taken",
        [
            ("jz", 5, 5, True),
            ("jz", 5, 6, False),
            ("jnz", 5, 6, True),
            ("jc", 6, 5, True),   # cmp #5, r4(=6): 6-5 no borrow -> C=1
            ("jnc", 5, 6, True),  # 5-6 borrows -> C=0
            ("jn", 5, 6, True),   # 5-6 negative
            ("jge", 6, 5, True),
            ("jl", 5, 6, True),
        ],
    )
    def test_conditional_jumps(self, cpu, jump, first, second, expect_taken):
        iss, m = run_both(cpu, f"""
        mov #{first}, r4
        cmp #{second}, r4
        {jump} taken
        mov #1, r5
        jmp out
taken:  mov #2, r5
out:    nop
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == (2 if expect_taken else 1)


class TestPeripherals:
    def test_multiplier(self, cpu):
        iss, m = run_both(cpu, """
        mov #123, &0x0130   ; MPY
        mov #456, &0x0138   ; OP2 triggers
        nop
        mov &0x013A, r4     ; RESLO
        mov &0x013C, r5     ; RESHI
        """)
        assert_state_matches(cpu, iss, m)
        product = 123 * 456
        assert iss.state.regs[4] == product & 0xFFFF
        assert iss.state.regs[5] == product >> 16

    def test_multiplier_large_operands(self, cpu):
        iss, m = run_both(cpu, """
        mov #0xFFFF, &0x0130
        mov #0xFFFF, &0x0138
        nop
        mov &0x013A, r4
        mov &0x013C, r5
        """)
        assert_state_matches(cpu, iss, m)
        product = 0xFFFF * 0xFFFF
        assert iss.state.regs[4] == product & 0xFFFF
        assert iss.state.regs[5] == product >> 16

    def test_multiplier_without_nop(self, cpu):
        """Back-to-back OP2 write then RESLO read still sees the result
        (the 2-cycle multiplier finishes during the next fetch)."""
        iss, m = run_both(cpu, """
        mov #10, &0x0130
        mov #20, &0x0138
        mov &0x013A, r4
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 200

    def test_p1out(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x00A5, &0x0022
        mov &0x0022, r4
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 0x00A5

    def test_p1in_concrete(self, cpu):
        iss, m = run_both(cpu, """
        mov &0x0020, r4
        """, port_in=0x1234)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 0x1234


_REG_OPS = ["add", "sub", "xor", "and", "bis", "bic", "addc", "subc", "cmp", "bit", "mov"]


class TestRandomPrograms:
    @settings(max_examples=12, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=0xFFFF), min_size=2, max_size=2
        ),
        ops=st.lists(st.sampled_from(_REG_OPS), min_size=3, max_size=8),
        data=st.data(),
    )
    def test_random_reg_sequences(self, cpu, seeds, ops, data):
        """Random straight-line programs agree between ISS and gates."""
        lines = [f"        mov #{seeds[0]}, r4", f"        mov #{seeds[1]}, r5"]
        for op in ops:
            src = data.draw(st.sampled_from(["r4", "r5", "#1", "#2", "#0x1F"]))
            dst = data.draw(st.sampled_from(["r4", "r5", "r6", "r7"]))
            lines.append(f"        {op} {src}, {dst}")
        iss, m = run_both(cpu, "\n".join(lines) + "\n")
        assert_state_matches(cpu, iss, m)
