"""Bit-plane engine unit layer.

Three tiers, mirroring the engine's soundness argument:

1. **Gate kernels, exhaustively**: every gate kind over every 3-valued
   input combination must match the scalar truth functions in
   :mod:`repro.logic.ternary` — the dual-rail formulas (and the rail-fold
   compilation of the inverting kinds) are proven by enumeration.
2. **Representation round-trips**: pack/unpack over random trit states is
   the identity, for scalar and batched shapes, values and activity.
3. **Randomized netlist equivalence**: on random DAGs the fused
   settle+mark sweep must reproduce ``LevelizedEvaluator.eval_comb`` +
   ``compute_activity`` bit for bit, including the input/DFF activity
   rules and batched evaluation.

The benchmark-scale identity (whole execution trees on the real CPU) and
the golden pins live in ``test_differential.py``.
"""

import itertools

import numpy as np
import pytest

from repro.logic import X, ternary
from repro.netlist import NetlistBuilder
from repro.netlist.core import Netlist
from repro.sim.bitplane import (
    BitplaneEvaluator,
    default_engine,
    make_evaluator,
    popcount,
)
from repro.sim.evaluator import LevelizedEvaluator
from repro.sim.machine import Machine, MemoryPorts
from repro.sim.trace import CycleRecord, Trace

TWO_INPUT_FUNCS = {
    "AND": ternary.t_and,
    "OR": ternary.t_or,
    "NAND": ternary.t_nand,
    "NOR": ternary.t_nor,
    "XOR": ternary.t_xor,
    "XNOR": ternary.t_xnor,
}


def random_netlist(n_gates: int, seed: int) -> Netlist:
    """A random layered DAG exercising every gate kind."""
    rng = np.random.default_rng(seed)
    netlist = Netlist()
    for _ in range(8):
        netlist.add_gate("INPUT")
    netlist.add_gate("CONST0")
    netlist.add_gate("CONST1")
    for _ in range(6):
        netlist.add_gate("DFF", (int(rng.integers(0, 10)),))
    kinds = list(TWO_INPUT_FUNCS)
    while len(netlist.gates) < n_gates:
        n = len(netlist.gates)
        choice = rng.integers(0, 10)
        if choice < 6:
            netlist.add_gate(
                kinds[int(rng.integers(0, len(kinds)))],
                (int(rng.integers(0, n)), int(rng.integers(0, n))),
            )
        elif choice < 8:
            netlist.add_gate(
                "MUX", tuple(int(rng.integers(0, n)) for _ in range(3))
            )
        elif choice == 8:
            netlist.add_gate("NOT", (int(rng.integers(0, n)),))
        else:
            netlist.add_gate("BUF", (int(rng.integers(0, n)),))
    for gate in netlist.gates:  # DFFs may sample any net, later ones too
        if gate.kind == "DFF":
            gate.inputs = (int(rng.integers(0, len(netlist.gates))),)
    return netlist


def settle_sources(
    evaluator: BitplaneEvaluator,
    reference: LevelizedEvaluator,
    source_values: dict[int, int],
):
    """Settle both engines from fresh state with *source_values* forced."""
    expected = reference.fresh_values()
    for net, value in source_values.items():
        expected[net] = value
    reference.eval_comb(expected)

    planes = evaluator.fresh_planes()
    evaluator.stash_prev(planes)
    for net, value in source_values.items():
        evaluator.write_trit(planes, net, value)
    evaluator.settle_and_mark(planes)
    return expected, evaluator.unpack_values(planes)


class TestGateKernelsExhaustive:
    """3^arity enumeration of every kind against logic.ternary."""

    def test_two_input_kinds(self):
        netlist = Netlist()
        a = netlist.add_gate("INPUT")
        b = netlist.add_gate("INPUT")
        outs = {
            kind: netlist.add_gate(kind, (a, b)) for kind in TWO_INPUT_FUNCS
        }
        reference = LevelizedEvaluator(netlist)
        evaluator = BitplaneEvaluator(netlist)
        for va, vb in itertools.product((0, 1, X), repeat=2):
            expected, got = settle_sources(
                evaluator, reference, {a: va, b: vb}
            )
            assert np.array_equal(got, expected)
            for kind, func in TWO_INPUT_FUNCS.items():
                assert got[outs[kind]] == func(va, vb), (kind, va, vb)

    def test_not_and_buf(self):
        netlist = Netlist()
        a = netlist.add_gate("INPUT")
        y_not = netlist.add_gate("NOT", (a,))
        y_buf = netlist.add_gate("BUF", (a,))
        reference = LevelizedEvaluator(netlist)
        evaluator = BitplaneEvaluator(netlist)
        for va in (0, 1, X):
            _expected, got = settle_sources(evaluator, reference, {a: va})
            assert got[y_not] == ternary.t_not(va)
            assert got[y_buf] == ternary.t_buf(va)

    def test_mux_all_27(self):
        netlist = Netlist()
        s = netlist.add_gate("INPUT")
        a = netlist.add_gate("INPUT")
        b = netlist.add_gate("INPUT")
        y = netlist.add_gate("MUX", (s, a, b))
        reference = LevelizedEvaluator(netlist)
        evaluator = BitplaneEvaluator(netlist)
        for vs, va, vb in itertools.product((0, 1, X), repeat=3):
            _expected, got = settle_sources(
                evaluator, reference, {s: vs, a: va, b: vb}
            )
            assert got[y] == ternary.t_mux(vs, va, vb), (vs, va, vb)


class TestPackUnpackRoundTrip:
    @pytest.mark.parametrize("lead", [(), (1,), (7,)])
    def test_values_round_trip(self, lead):
        rng = np.random.default_rng(3)
        netlist = random_netlist(220, seed=5)
        evaluator = BitplaneEvaluator(netlist)
        values = rng.integers(0, 3, size=lead + (netlist.n_nets,), dtype=np.uint8)
        planes = evaluator.pack_state(values)
        assert planes.shape == lead + (3, evaluator.n_words)
        assert np.array_equal(evaluator.unpack_values(planes), values)

    @pytest.mark.parametrize("lead", [(), (5,)])
    def test_activity_round_trip(self, lead):
        rng = np.random.default_rng(4)
        netlist = random_netlist(180, seed=6)
        evaluator = BitplaneEvaluator(netlist)
        values = rng.integers(0, 3, size=lead + (netlist.n_nets,), dtype=np.uint8)
        active = rng.integers(0, 2, size=lead + (netlist.n_nets,)).astype(bool)
        planes = evaluator.pack_state(values, active)
        assert np.array_equal(evaluator.unpack_active(planes), active)
        counts = popcount(evaluator.active_words(planes))
        assert np.array_equal(counts, active.sum(axis=-1))

    def test_fresh_matches_reference(self):
        netlist = random_netlist(150, seed=7)
        reference = LevelizedEvaluator(netlist)
        evaluator = BitplaneEvaluator(netlist)
        assert np.array_equal(
            evaluator.fresh_values(), reference.fresh_values()
        )
        assert np.array_equal(
            evaluator.fresh_values(batch=4), reference.fresh_values(batch=4)
        )


class TestRandomizedNetlistEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_settle_and_activity_match_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        netlist = random_netlist(200 + 41 * seed, seed)
        reference = LevelizedEvaluator(netlist)
        evaluator = BitplaneEvaluator(netlist)
        sources = [
            g.index for g in netlist.gates if g.kind in ("INPUT", "DFF")
        ]
        for _trial in range(6):
            prev = rng.integers(0, 3, size=netlist.n_nets, dtype=np.uint8)
            prev[reference.const0_nets] = 0
            prev[reference.const1_nets] = 1
            reference.eval_comb(prev)
            prev_active = rng.integers(0, 2, size=netlist.n_nets).astype(bool)

            cur = prev.copy()
            new_sources = rng.integers(0, 3, size=len(sources), dtype=np.uint8)
            cur[sources] = new_sources
            reference.eval_comb(cur)
            expected_active = reference.compute_activity(
                prev, cur, prev_active
            )

            planes = evaluator.pack_state(prev, prev_active)
            evaluator.stash_prev(planes)
            for net, value in zip(sources, new_sources):
                evaluator.write_trit(planes, net, int(value))
            evaluator.settle_and_mark(planes)
            assert np.array_equal(evaluator.unpack_values(planes), cur)
            assert np.array_equal(
                evaluator.unpack_active(planes), expected_active
            )

    def test_batched_settle_matches_rowwise(self):
        rng = np.random.default_rng(55)
        netlist = random_netlist(400, seed=9)
        reference = LevelizedEvaluator(netlist)
        evaluator = BitplaneEvaluator(netlist)
        sources = [
            g.index for g in netlist.gates if g.kind in ("INPUT", "DFF")
        ]
        B = 5
        prev = rng.integers(0, 3, size=(B, netlist.n_nets), dtype=np.uint8)
        prev[:, reference.const0_nets] = 0
        prev[:, reference.const1_nets] = 1
        reference.eval_comb(prev)
        prev_active = rng.integers(0, 2, size=(B, netlist.n_nets)).astype(bool)
        cur = prev.copy()
        new_sources = rng.integers(0, 3, size=(B, len(sources)), dtype=np.uint8)
        cur[:, sources] = new_sources
        reference.eval_comb(cur)
        expected_active = reference.compute_activity(prev, cur, prev_active)

        planes = evaluator.pack_state(prev, prev_active)
        evaluator.stash_prev(planes)
        for row in range(B):
            for net, value in zip(sources, new_sources[row]):
                evaluator.write_trit(planes[row], net, int(value))
        evaluator.settle_and_mark(planes)
        assert np.array_equal(evaluator.unpack_values(planes), cur)
        assert np.array_equal(evaluator.unpack_active(planes), expected_active)

    def test_dff_gather_and_reset(self):
        rng = np.random.default_rng(77)
        netlist = random_netlist(260, seed=11)
        reference = LevelizedEvaluator(netlist)
        evaluator = BitplaneEvaluator(netlist)
        values = rng.integers(0, 3, size=netlist.n_nets, dtype=np.uint8)
        planes = evaluator.pack_state(values)
        loaded = evaluator.next_dff_planes(planes, reset=False)
        evaluator.set_dff_planes(planes, loaded)
        expected = reference.next_dff_values(values, reset=False)
        assert np.array_equal(
            evaluator.unpack_values(planes)[reference.dff_out], expected
        )
        reset = evaluator.next_dff_planes(planes, reset=True)
        evaluator.set_dff_planes(planes, reset)
        assert np.array_equal(
            evaluator.unpack_values(planes)[reference.dff_out],
            reference.dff_reset,
        )


def counter_machine(engine: str):
    """The minimal clocked target from test_sim_machine, engine-selected."""
    nb = NetlistBuilder("counter")
    with nb.module("core"):
        count = nb.register(4, "count")
        nb.connect_register(count, nb.increment(count))
        dout = nb.bus_input("mem_dout", 16)
        addr = count + [nb.const0()] * 11
        we = nb.const0()
        en = nb.const1()
    netlist = nb.finish()
    ports = MemoryPorts(addr=addr, din=addr[:16], dout=dout, we=we, en=en)
    return Machine(netlist, ports, make_evaluator(netlist, engine)), count


class TestMachineEngineEquivalence:
    def test_counter_records_identical(self):
        ref_machine, _ = counter_machine("reference")
        bp_machine, _ = counter_machine("bitplane")
        assert not ref_machine.packed
        assert bp_machine.packed
        for _ in range(2):
            ref_machine.step(reset=True)
            bp_machine.step(reset=True)
        for _ in range(24):
            ref_record = ref_machine.step()
            bp_record = bp_machine.step()
            assert np.array_equal(ref_record.values, bp_record.values)
            assert np.array_equal(ref_record.active, bp_record.active)
            assert ref_record.cycle == bp_record.cycle

    def test_snapshot_restore_and_forces(self):
        machine, count = counter_machine("bitplane")
        machine.reset_sequence(2)
        machine.step()
        snap = machine.snapshot()
        key = machine.state_key()
        machine.step()
        assert machine.state_key() != key
        machine.restore(snap)
        assert machine.state_key() == key
        machine.next_dff_forces = {count[3]: 1}
        machine.step()
        assert machine.peek_bus(count)[0] & 0b1000
        assert machine.next_dff_forces == {}

    def test_values_setter_guarded(self):
        machine, _count = counter_machine("bitplane")
        with pytest.raises(AttributeError):
            machine.values = np.zeros(machine.netlist.n_nets, dtype=np.uint8)


class TestPackedTraceReductions:
    def test_toggled_any_and_counts_match_bool_path(self):
        """The packed fast path must equal the record-by-record fallback."""
        machine, _count = counter_machine("bitplane")
        trace = Trace(machine.netlist.n_nets)
        machine.reset_sequence(2, trace=trace)
        for _ in range(12):
            machine.step(trace=trace)
        assert trace.packing is not None
        packed_toggled = trace.toggled_any()
        packed_counts = trace.activity_counts()
        # strip the packed words: forces the bool fallback
        plain = Trace(machine.netlist.n_nets)
        plain.records = [
            CycleRecord(
                r.cycle, r.values, r.active, r.mem_reads, r.mem_writes,
                r.annotations,
            )
            for r in trace.records
        ]
        assert np.array_equal(packed_toggled, plain.toggled_any())
        assert np.array_equal(packed_counts, plain.activity_counts())


class TestEngineSelection:
    def test_default_engine_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine() == "bitplane"
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert default_engine() == "reference"
        monkeypatch.setenv("REPRO_ENGINE", "tables")
        with pytest.raises(ValueError):
            default_engine()

    def test_make_evaluator_types(self):
        netlist = random_netlist(120, seed=13)
        assert isinstance(
            make_evaluator(netlist, "reference"), LevelizedEvaluator
        )
        assert isinstance(
            make_evaluator(netlist, "bitplane"), BitplaneEvaluator
        )
