"""Power model, cell library, and design-tool baseline tests."""

import numpy as np
import pytest

from repro.cells import SG65, SG130
from repro.netlist import NetlistBuilder
from repro.power import PowerModel, design_tool_rating
from repro.power.model import _scale_for


def tiny_netlist():
    nb = NetlistBuilder("tiny")
    with nb.module("alpha"):
        a = nb.input("a")
        b = nb.input("b")
        y = nb.and_(a, b)
    with nb.module("beta"):
        q = nb.register(1, "q")
        nb.connect_register(q, [y])
    return nb.finish(), a, b, y, q[0]


class TestCellLibrary:
    def test_all_gate_kinds_characterized(self):
        for kind in ("NOT", "BUF", "AND", "OR", "NAND", "NOR", "XOR", "XNOR",
                     "MUX", "DFF"):
            assert kind in SG65
            assert SG65[kind].max_transition_energy_fj() > 0

    def test_max_power_transition_prefers_expensive_edge(self):
        for kind in SG65.kinds():
            cell = SG65[kind]
            prev, cur = cell.max_power_transition()
            assert cell.transition_energy_fj(cur == 1) == (
                cell.max_transition_energy_fj()
            )

    def test_sources_have_no_energy(self):
        assert SG65.cell_for_gate("INPUT").e_rise_fj == 0
        assert SG65.cell_for_gate("CONST0").leakage_nw == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            SG65.cell_for_gate("LATCH")

    def test_sg130_scales_up_energy(self):
        assert SG130["AND"].e_rise_fj > SG65["AND"].e_rise_fj
        assert SG130["AND"].leakage_nw < SG65["AND"].leakage_nw


class TestScaleLookup:
    def test_prefix_matching(self):
        scale_map = {"exec_unit/alu": 0.5, "exec_unit": 0.9}
        assert _scale_for("exec_unit/alu", scale_map) == 0.5
        assert _scale_for("exec_unit/alu/adder", scale_map) == 0.5
        assert _scale_for("exec_unit/regfile", scale_map) == 0.9
        assert _scale_for("frontend", scale_map) == 1.0

    def test_no_partial_name_match(self):
        assert _scale_for("execute", {"exec": 0.5}) == 1.0


class TestTracePower:
    def test_no_transitions_means_floor_power(self):
        netlist, a, b, y, q = tiny_netlist()
        model = PowerModel(netlist, SG65, clock_ns=10.0)
        values = np.zeros((3, netlist.n_nets), dtype=np.uint8)
        trace = model.trace_power(values)
        floor = (
            model.clock_pin_fj + SG65.mem_idle_fj
        ) / 10.0 * 1e-3 + model.leakage_mw
        assert np.allclose(trace.total_mw, floor)

    def test_single_toggle_energy(self):
        netlist, a, b, y, q = tiny_netlist()
        model = PowerModel(netlist, SG65, clock_ns=10.0)
        values = np.zeros((2, netlist.n_nets), dtype=np.uint8)
        values[1, y] = 1  # one AND rising edge
        trace = model.trace_power(values)
        delta = trace.total_mw[1] - trace.total_mw[0]
        assert delta == pytest.approx(SG65["AND"].e_rise_fj / 10.0 * 1e-3)

    def test_fall_cheaper_than_rise(self):
        netlist, a, b, y, q = tiny_netlist()
        model = PowerModel(netlist, SG65, clock_ns=10.0)
        rise = np.zeros((2, netlist.n_nets), dtype=np.uint8)
        rise[1, y] = 1
        fall = np.ones((2, netlist.n_nets), dtype=np.uint8)
        fall[1, y] = 0
        assert (
            model.trace_power(rise).total_mw[1]
            > model.trace_power(fall).total_mw[1]
        )

    def test_mem_accesses_priced_by_library(self):
        netlist, *_ = tiny_netlist()
        model = PowerModel(netlist, SG65, clock_ns=10.0)
        values = np.zeros((2, netlist.n_nets), dtype=np.uint8)
        accesses = np.array([[0.0, 0.0], [1.0, 1.0]])
        trace = model.trace_power(values, accesses)
        delta = trace.total_mw[1] - trace.total_mw[0]
        expected = (SG65.mem_read_energy_fj + SG65.mem_write_energy_fj) / 10e3
        assert delta == pytest.approx(expected)

    def test_module_breakdown_sums_to_total(self):
        netlist, a, b, y, q = tiny_netlist()
        model = PowerModel(netlist, SG65, clock_ns=10.0)
        rng = np.random.default_rng(3)
        values = rng.integers(0, 2, size=(6, netlist.n_nets)).astype(np.uint8)
        accesses = np.ones((6, 2))
        trace = model.trace_power(values, accesses, per_module=True)
        recombined = sum(trace.module_mw.values()) + model.leakage_mw
        assert np.allclose(recombined, trace.total_mw, atol=1e-9)

    def test_power_trace_statistics(self):
        netlist, *_ = tiny_netlist()
        model = PowerModel(netlist, SG65)
        values = np.zeros((4, netlist.n_nets), dtype=np.uint8)
        trace = model.trace_power(values)
        assert trace.peak() == pytest.approx(trace.average())
        assert trace.energy_pj() == pytest.approx(
            trace.total_mw.sum() * trace.clock_ns
        )


class TestDesignTool:
    def test_rating_scales_with_toggle_rate(self):
        netlist, *_ = tiny_netlist()
        model = PowerModel(netlist, SG65)
        low, _ = design_tool_rating(model, toggle_rate=0.1)
        high, _ = design_tool_rating(model, toggle_rate=0.4)
        assert high > low

    def test_rating_uses_library_default(self):
        netlist, *_ = tiny_netlist()
        model = PowerModel(netlist, SG65)
        explicit, _ = design_tool_rating(
            model, toggle_rate=SG65.default_toggle_rate
        )
        implicit, _ = design_tool_rating(model)
        assert explicit == pytest.approx(implicit)
