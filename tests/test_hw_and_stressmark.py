"""Measurement rig (Chapter 2 substitute) and GA stressmark tests."""

import pytest

from repro.asm import assemble
from repro.bench.suite import get_benchmark
from repro.cells import SG65
from repro.core.stressmark import (
    Stressmark,
    _genome_source,
    _random_gene,
    generate_stressmark,
)
from repro.hw import MeasurementRig
from repro.isa import InstructionSetSimulator
from repro.power import PowerModel

import numpy as np


class TestMeasurementRig:
    @pytest.fixture(scope="class")
    def rig(self, cpu):
        return MeasurementRig(cpu, noise_fraction=0.01, seed=3)

    @pytest.fixture(scope="class")
    def capture(self, rig):
        benchmark = get_benchmark("intAVG")
        inputs = benchmark.input_sets(1, seed=1)[0]
        return rig.measure(benchmark.program().with_inputs(inputs))

    def test_at_least_one_sample_per_cycle(self, capture):
        assert len(capture.power_mw) >= capture.cycles

    def test_peak_above_average(self, capture):
        assert capture.peak_mw > capture.avg_mw

    def test_run_to_run_variation_under_two_percent(self, cpu):
        rig = MeasurementRig(cpu, noise_fraction=0.005, seed=9)
        benchmark = get_benchmark("intAVG")
        inputs = benchmark.input_sets(1, seed=1)[0]
        program = benchmark.program().with_inputs(inputs)
        peaks = [rig.measure(program).peak_mw for _ in range(3)]
        spread = (max(peaks) - min(peaks)) / min(peaks)
        assert spread < 0.02  # the paper reports <2%

    def test_rated_peak_dominates_measurement(self, rig, capture):
        assert rig.rated_peak_mw() > capture.peak_mw

    def test_symbolic_program_rejected(self, rig):
        program = get_benchmark("intAVG").program()
        with pytest.raises(ValueError, match="concrete"):
            rig.measure(program)

    def test_input_dependence_visible(self, rig):
        benchmark = get_benchmark("mult")
        program = benchmark.program()
        low = rig.measure(program.with_inputs([0] * 8))
        high = rig.measure(program.with_inputs([0xFFFF] * 8))
        assert high.peak_mw > low.peak_mw


class TestStressmark:
    def test_genome_assembles_and_halts(self):
        rng = np.random.default_rng(1)
        genome = [_random_gene(rng) for _ in range(10)]
        program = assemble(_genome_source(genome), "sm")
        iss = InstructionSetSimulator(program)
        iss.run(max_instructions=5_000)
        assert iss.halted

    def test_stack_stays_balanced(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            genome = [_random_gene(rng) for _ in range(12)]
            program = assemble(_genome_source(genome), "sm")
            iss = InstructionSetSimulator(program)
            iss.run(max_instructions=5_000)
            assert iss.state.regs[1] == 0x0A00  # SP back at reset value

    def test_tiny_ga_improves_or_matches_random(self, cpu):
        model = PowerModel(cpu.netlist, SG65, clock_ns=10.0)
        result = generate_stressmark(
            cpu, model, population=4, generations=2, genome_length=6, seed=5
        )
        assert isinstance(result, Stressmark)
        assert result.peak_power_mw > 1.0  # meaningfully above the floor
        assert result.guardbanded_peak_power_mw == pytest.approx(
            result.peak_power_mw * 4 / 3
        )

    def test_objective_validation(self, cpu):
        model = PowerModel(cpu.netlist, SG65)
        with pytest.raises(ValueError):
            generate_stressmark(cpu, model, objective="both")
