"""The lock-step co-execution oracle, end to end.

Pins (a) all 14 registry benchmarks lock-step clean under all three
engines, (b) a seeded fuzz campaign clean across engines, (c) that an
intentionally-broken engine (a test-injected gate mutation forcing the V
flag DFF) is caught with a shrunk reproducer naming the first diverging
instruction, and (d) the CLI / service-job plumbing and exit codes.
"""

import pytest

from repro.bench.suite import ALL_BENCHMARKS
from repro.isa.spec import SR_V
from repro.sim.bitplane import ENGINES
from repro.verify import (
    DivergenceReport,
    coexecute,
    fuzz_campaign,
    generate_program,
    run_conformance,
)
from repro.verify.conformance import ConformanceReport


# ----------------------------------------------------------------------
# Tentpole acceptance: 14 benchmarks x 3 engines, lock-step clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
def test_benchmark_lockstep_clean(cpu, engine, name):
    benchmark = ALL_BENCHMARKS[name]
    concrete = benchmark.program().with_inputs(benchmark.input_sets(1)[0])
    result = coexecute(cpu, concrete, engine=engine)
    assert result.ok, result.divergence.describe()
    assert result.instructions > 0
    assert result.cycles > result.instructions  # multicycle FSM


# ----------------------------------------------------------------------
# Fuzzing: seeded campaigns are deterministic and clean on all engines
# ----------------------------------------------------------------------
def test_fuzz_campaign_clean_all_engines(cpu):
    report = fuzz_campaign(cpu, 120, seed=2017, engines=ENGINES)
    assert report.ok, report.divergences[0].describe()
    assert report.units >= 120
    assert report.programs >= 1


def test_fuzz_generation_is_deterministic():
    one = generate_program(42, size=30).render()
    two = generate_program(42, size=30).render()
    assert one == two


def test_fuzz_programs_assemble_and_halt(cpu):
    from repro.isa.iss import InstructionSetSimulator

    for seed in (1, 7, 1234):
        fuzz_program = generate_program(seed, size=40)
        program = fuzz_program.assemble()
        iss = InstructionSetSimulator(
            program, port_in=fuzz_program.port_in
        )
        iss.run(max_instructions=5000)  # raises if it never halts
        assert iss.halted


# ----------------------------------------------------------------------
# The broken-engine drill: a gate mutation must be caught and shrunk
# ----------------------------------------------------------------------
class _StuckVFlagMachine:
    """Proxy forcing the V-flag DFF to 1 before every clock edge —
    a stand-in for a miscompiled engine or a netlist regression."""

    def __init__(self, cpu, machine):
        object.__setattr__(self, "_cpu", cpu)
        object.__setattr__(self, "_machine", machine)

    def step(self, *args, **kwargs):
        self._machine.next_dff_forces[
            self._cpu.flag_dff_for(SR_V)
        ] = 1
        return self._machine.step(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._machine, name)

    def __setattr__(self, name, value):
        setattr(self._machine, name, value)


def test_broken_engine_caught_with_shrunk_reproducer(cpu):
    def factory(program):
        return _StuckVFlagMachine(
            cpu,
            cpu.make_machine(
                program, symbolic_inputs=False, port_in=0,
                engine="bitplane",
            ),
        )

    report = fuzz_campaign(
        cpu, 200, seed=99, engines=("bitplane",),
        machine_factory=factory,
    )
    assert not report.ok
    divergence = report.divergences[0]
    assert isinstance(divergence, DivergenceReport)
    # the report names the first diverging instruction...
    assert divergence.divergence.kind == "flag"
    assert "SR.V" in divergence.divergence.detail
    assert divergence.divergence.source  # the culprit's assembly text
    assert divergence.divergence.pc >= 0xF000
    # ...dumps both architectural states...
    assert divergence.divergence.iss_state["flags"].endswith("V=0")
    assert divergence.divergence.gate_state["flags"].endswith("V=1")
    # ...and carries a shrunk reproducer that still reproduces
    assert divergence.shrunk_units is not None
    assert divergence.shrunk_units < divergence.original_units
    assert divergence.reproducer_asm is not None
    from repro.asm import assemble

    reproducer = assemble(divergence.reproducer_asm, "reproducer")
    replay = coexecute(
        cpu, reproducer, engine="bitplane",
        machine=factory(reproducer),
    )
    assert not replay.ok
    assert replay.divergence.kind == "flag"


def test_healthy_engine_passes_the_same_campaign(cpu):
    # the sabotage test is only meaningful if the identical campaign is
    # clean without the mutation
    report = fuzz_campaign(cpu, 200, seed=99, engines=("bitplane",))
    assert report.ok


# ----------------------------------------------------------------------
# Driver: run_conformance aggregation and validation
# ----------------------------------------------------------------------
def test_run_conformance_benchmark_leg(cpu):
    report = run_conformance(
        cpu=cpu, benchmarks=["mult"], engines=("bitplane",)
    )
    assert report.ok
    assert len(report.benchmarks) == 1
    payload = report.payload()
    assert payload["kind"] == "conformance"
    assert payload["ok"] is True
    assert payload["benchmarks"][0]["benchmark"] == "mult"


def test_run_conformance_fuzz_only_default_skips_benchmarks(cpu):
    report = run_conformance(
        cpu=cpu, fuzz_instructions=40, seed=3, engines=("bitplane",)
    )
    assert report.benchmarks == []
    assert report.fuzz_units >= 40


def test_run_conformance_rejects_unknown_names(cpu):
    with pytest.raises(KeyError, match="valid names"):
        run_conformance(cpu=cpu, benchmarks=["nosuch"])
    with pytest.raises(ValueError, match="unknown engine"):
        run_conformance(
            cpu=cpu, benchmarks=["mult"], engines=("warp",)
        )


def test_conformance_cancellation(cpu):
    from repro.parallel.cancel import CancelToken, JobCancelled

    token = CancelToken()
    token.set()
    with pytest.raises(JobCancelled):
        run_conformance(
            cpu=cpu, benchmarks=["mult"], engines=("bitplane",),
            cancel=token,
        )


# ----------------------------------------------------------------------
# CLI: exit codes and reproducer files
# ----------------------------------------------------------------------
def test_cli_conformance_clean_exits_zero(capsys):
    from repro import cli

    rc = cli.main([
        "conformance", "--benchmarks", "mult", "--engine", "bitplane",
        "--quiet",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "conformance OK" in out


def test_cli_conformance_unknown_benchmark_exits_two(capsys):
    from repro import cli

    rc = cli.main(["conformance", "--benchmarks", "nosuch"])
    assert rc == 2
    assert "valid names" in capsys.readouterr().err


def test_cli_conformance_negative_fuzz_exits_two(capsys):
    from repro import cli

    rc = cli.main(["conformance", "--fuzz", "-5"])
    assert rc == 2


def test_cli_conformance_divergence_exits_one(
    capsys, tmp_path, monkeypatch
):
    import repro.verify
    from repro import cli
    from repro.verify.coexec import Divergence

    fake = ConformanceReport(engines=("bitplane",))
    fake.divergences.append(DivergenceReport(
        divergence=Divergence(
            kind="flag", index=3, pc=0xF010, source="add r4, r5",
            detail="SR.V: iss=0 gate=1",
        ),
        engine="bitplane",
        program_name="fuzz_77",
        seed=77,
        reproducer_asm="    .org 0xf000\nend:\n    jmp end\n",
        original_units=40,
        shrunk_units=2,
    ))
    monkeypatch.setattr(
        repro.verify, "run_conformance", lambda **kwargs: fake
    )
    rc = cli.main([
        "conformance", "--fuzz", "100", "--engine", "bitplane",
        "--output", str(tmp_path), "--quiet",
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "first divergence at instruction #3" in out
    reproducer = tmp_path / "divergence_fuzz_77_bitplane.asm"
    assert reproducer.exists()
    assert "jmp end" in reproducer.read_text()
    assert str(reproducer) in out


# ----------------------------------------------------------------------
# Service layer: the conformance job kind
# ----------------------------------------------------------------------
def test_conformance_job_thread_backend():
    from repro.service.scheduler import JobScheduler

    scheduler = JobScheduler(max_concurrent=1, backend="thread")
    try:
        job, deduped = scheduler.submit(
            "conformance",
            {
                "benchmarks": ["mult"],
                "fuzz": 40,
                "seed": 3,
                "engine": "bitplane",
            },
        )
        assert not deduped
        assert scheduler.wait(job.id, timeout=300)
        assert job.state == "done", job.error
        assert job.result["ok"] is True
        assert job.result["fuzz_units"] >= 40
        # identical resubmission dedupes onto the finished signature
        again, deduped2 = scheduler.submit(
            "conformance",
            {
                "benchmarks": ["mult"],
                "fuzz": 40,
                "seed": 3,
                "engine": "bitplane",
            },
        )
        assert scheduler.wait(again.id, timeout=300)
    finally:
        scheduler.shutdown()


def test_conformance_normalize_params_validation():
    from repro.service.scheduler import normalize_params

    params = normalize_params(
        "conformance", {"benchmarks": "mult,FFT"}
    )
    assert params["benchmarks"] == ["mult", "FFT"]
    assert params["fuzz"] == 0
    assert params["seed"] == 2017
    assert params["engine"] is None
    with pytest.raises(ValueError, match="unknown engine"):
        normalize_params("conformance", {"engine": "warp"})
    with pytest.raises(KeyError, match="valid names"):
        normalize_params("conformance", {"benchmarks": ["nosuch"]})
    with pytest.raises(ValueError, match="fuzz"):
        normalize_params("conformance", {"fuzz": -1})


def test_conformance_job_stores_divergence_artifacts(
    tmp_path, monkeypatch
):
    import repro.verify
    from repro.bench import runner
    from repro.service.scheduler import run_conformance_job
    from repro.verify.coexec import Divergence

    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "store")

    fake = ConformanceReport(engines=("bitplane",))
    fake.divergences.append(DivergenceReport(
        divergence=Divergence(
            kind="register", index=1, pc=0xF004, source="mov r4, r5",
            detail="r5: iss=0x0001 gate=0x0002",
        ),
        engine="bitplane",
        program_name="fuzz_5",
        seed=5,
        reproducer_asm="    .org 0xf000\nend:\n    jmp end\n",
        original_units=40,
        shrunk_units=1,
    ))
    monkeypatch.setattr(
        repro.verify, "run_conformance", lambda **kwargs: fake
    )

    class _Ctx:
        cancel = None

        def emit(self, stage, detail=""):
            pass

    payload = run_conformance_job({"fuzz": 100, "seed": 5}, _Ctx())
    assert payload["ok"] is False
    keys = payload["divergence_artifacts"]
    assert keys == ["divergence_fuzz_5_bitplane_seed5"]
    stored = runner.artifact_store().get(keys[0])
    assert stored["seed"] == 5
    assert "jmp end" in stored["reproducer_asm"]
