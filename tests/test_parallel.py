"""Worker-count invariance: N cores must never change a bit.

Pins the multi-core execution layer to the serial engines:

* sharded exploration (``workers>1``) produces the identical
  :class:`ExecutionTree` — and identical golden analysis numbers — as
  the in-process engine on several multi-segment benchmarks,
* the canonical replay merge is order-independent (the work-stealing
  property: whatever order segments complete in, the assembled tree is
  the same),
* the island-model GA is deterministic across worker counts,
* the threaded Algorithm 2 kernel is bit-stable at any thread count,
* concrete packed batches (``run_batch_to_halt``) skip per-cycle
  unpacking yet stay record-for-record identical.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.suite import get_benchmark
from repro.cells import SG65
from repro.core.activity import _ROOT_KEY, _assemble_tree, _Node, explore
from repro.core.peakenergy import compute_peak_energy
from repro.core.peakpower import compute_peak_power
from repro.core.stressmark import generate_stressmark
from repro.parallel.pool import (
    fork_available,
    inner_workers,
    resolve_workers,
)
from repro.power.model import PowerModel

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_suite.json").read_text()
)

REL = 1e-9

#: multi-segment kernels small enough to explore twice per test run
INVARIANCE_BENCHMARKS = ("mult", "binSearch", "div", "rle", "PI")

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def assert_trees_identical(reference, other):
    assert len(other.segments) == len(reference.segments)
    assert other.n_memo_hits == reference.n_memo_hits
    for ours, ref in zip(other.segments, reference.segments):
        assert ours.index == ref.index
        assert ours.parent == ref.parent
        assert ours.flat_start == ref.flat_start
        assert ours.n_cycles == ref.n_cycles
        assert ours.end == ref.end
        assert [(f.assignment, f.target) for f in ours.forks] == [
            (f.assignment, f.target) for f in ref.forks
        ]
    assert len(other.flat_trace) == len(reference.flat_trace)
    assert np.array_equal(
        other.flat_trace.values_matrix(),
        reference.flat_trace.values_matrix(),
    )
    assert np.array_equal(
        other.flat_trace.active_matrix(),
        reference.flat_trace.active_matrix(),
    )
    assert np.array_equal(
        other.flat_trace.mem_accesses(),
        reference.flat_trace.mem_accesses(),
    )
    for ours, ref in zip(
        other.flat_trace.records, reference.flat_trace.records
    ):
        assert ours.cycle == ref.cycle
        assert ours.annotations == ref.annotations


@pytest.fixture(scope="module")
def model(cpu):
    return PowerModel(cpu.netlist, SG65, clock_ns=10.0)


def _explore(cpu, name, **kwargs):
    benchmark = get_benchmark(name)
    return explore(
        cpu,
        benchmark.program(),
        max_cycles=benchmark.max_cycles,
        max_segments=benchmark.max_segments,
        **kwargs,
    )


@needs_fork
class TestShardedExploreInvariance:
    @pytest.fixture(scope="class", params=INVARIANCE_BENCHMARKS)
    def trees(self, request, cpu):
        name = request.param
        serial = _explore(cpu, name, workers=1)
        sharded = _explore(cpu, name, workers=4)
        return name, serial, sharded

    def test_tree_bit_identical(self, trees):
        _name, serial, sharded = trees
        assert_trees_identical(serial, sharded)

    def test_golden_numbers(self, trees, model):
        """Sharded-tree analysis reproduces the pinned seed numbers."""
        name, _serial, sharded = trees
        benchmark = get_benchmark(name)
        peak_power = compute_peak_power(sharded, model, workers=4)
        peak_energy = compute_peak_energy(
            sharded, peak_power, loop_bound=benchmark.loop_bound
        )
        golden = GOLDEN[name]
        assert peak_power.peak_power_mw == pytest.approx(
            golden["peak_power_mw"], rel=REL
        )
        assert peak_energy.peak_energy_pj == pytest.approx(
            golden["peak_energy_pj"], rel=REL
        )

    def test_worker_two_matches_worker_four(self, cpu, trees):
        """Any worker count, same tree (spot-probe a second count)."""
        name, serial, _sharded = trees
        if name != "binSearch":
            pytest.skip("second worker count probed on binSearch only")
        assert_trees_identical(serial, _explore(cpu, name, workers=2))

    def test_reference_engine_sharded(self, cpu):
        serial = _explore(
            cpu, "div", engine="reference", batch_size=1, workers=1
        )
        sharded = _explore(cpu, "div", engine="reference", workers=3)
        assert_trees_identical(serial, sharded)


class TestMergeOrderProperty:
    """The canonical replay is independent of segment completion order."""

    def _nodes_from_tree(self, tree):
        """Reconstruct the {key: node} graph the sharded master merges."""
        keys = {
            segment.index: segment.index.to_bytes(4, "little")
            for segment in tree.segments
        }
        keys[0] = _ROOT_KEY
        nodes = {}
        for segment in tree.segments:
            sl = tree.segment_slice(segment)
            nodes[keys[segment.index]] = _Node(
                key=keys[segment.index],
                records=tree.flat_trace.records[sl],
                end=segment.end,
                forks=[
                    (fork.assignment, keys[fork.target])
                    for fork in segment.forks
                ],
            )
        return nodes

    @pytest.mark.parametrize("seed", range(5))
    def test_shuffled_merge_is_identical(self, cpu, seed):
        tree = _explore(cpu, "binSearch")
        nodes = self._nodes_from_tree(tree)
        rng = np.random.default_rng(seed)
        items = list(nodes.items())
        rng.shuffle(items)
        reassembled = _assemble_tree(
            dict(items),
            tree.flat_trace.n_nets,
            packing=tree.flat_trace.packing,
        )
        assert_trees_identical(tree, reassembled)


@needs_fork
class TestIslandGADeterminism:
    GA_KWARGS = dict(
        population=6,
        generations=4,
        genome_length=6,
        islands=3,
        migration_interval=2,
    )

    def test_identical_across_worker_counts(self, cpu, model):
        one = generate_stressmark(cpu, model, workers=1, **self.GA_KWARGS)
        many = generate_stressmark(cpu, model, workers=3, **self.GA_KWARGS)
        assert one.source == many.source
        assert one.peak_power_mw == many.peak_power_mw
        assert one.avg_power_mw == many.avg_power_mw

    def test_single_island_is_classic_ga(self, cpu, model):
        classic = generate_stressmark(
            cpu, model, population=6, generations=2, genome_length=6
        )
        single = generate_stressmark(
            cpu, model, population=6, generations=2, genome_length=6,
            islands=1, workers=2,
        )
        assert classic.source == single.source
        assert classic.peak_power_mw == single.peak_power_mw


class TestThreadedKernel:
    def test_trace_power_thread_invariant(self, cpu, model):
        rng = np.random.default_rng(11)
        values = rng.integers(
            0, 2, size=(900, cpu.netlist.n_nets)
        ).astype(np.uint8)
        mem = rng.random((900, 2))
        serial = model.trace_power(values, mem, per_module=True, workers=1)
        threaded = model.trace_power(values, mem, per_module=True, workers=4)
        assert np.array_equal(serial.total_mw, threaded.total_mw)
        for name in serial.module_mw:
            assert np.array_equal(
                serial.module_mw[name], threaded.module_mw[name]
            )

    def test_transition_power_thread_invariant(self, cpu, model):
        rng = np.random.default_rng(12)
        values = rng.integers(
            0, 2, size=(700, cpu.netlist.n_nets)
        ).astype(np.uint8)
        serial = model.transition_power(values[:-1], values[1:], workers=1)
        threaded = model.transition_power(values[:-1], values[1:], workers=3)
        assert np.array_equal(serial.total_mw, threaded.total_mw)

    def test_peak_power_workers_invariant(self, cpu, model):
        tree = _explore(cpu, "mult")
        serial = compute_peak_power(tree, model, workers=1)
        threaded = compute_peak_power(tree, model, workers=4)
        assert serial.peak_power_mw == threaded.peak_power_mw
        assert np.array_equal(serial.trace_mw, threaded.trace_mw)
        for name in serial.module_mw:
            assert np.array_equal(
                serial.module_mw[name], threaded.module_mw[name]
            )


class TestPackedConcreteRecords:
    """run_batch_to_halt emits packed records and stays bit-identical."""

    def test_records_are_packed_and_lazy(self, cpu):
        from repro.sim.batch import run_batch_to_halt

        benchmark = get_benchmark("mult")
        program = benchmark.program().with_inputs(benchmark.input_sets(1)[0])
        machine = cpu.make_machine(program, symbolic_inputs=False, port_in=0)
        [(trace, cycles)] = run_batch_to_halt(cpu, [machine], 4)
        assert cycles > 0
        assert trace.packing is not None
        record = trace.records[0]
        assert record.value_words is not None
        assert record._values is None, "values must unpack lazily"
        # per-record lazy unpack agrees with the bulk matrix unpack
        matrix = trace.values_matrix()
        assert np.array_equal(record.values, matrix[0])
        assert np.array_equal(
            trace.records[-1].values, matrix[-1]
        )

    def test_packed_matches_scalar_run(self, cpu):
        from repro.sim.batch import run_batch_to_halt
        from repro.sim.trace import Trace

        benchmark = get_benchmark("tea8")
        program = benchmark.program().with_inputs(benchmark.input_sets(1)[0])
        scalar_machine = cpu.make_machine(
            program, symbolic_inputs=False, port_in=0
        )
        scalar_trace = Trace(scalar_machine.netlist.n_nets)
        cpu.run_to_halt(scalar_machine, trace=scalar_trace)
        machine = cpu.make_machine(program, symbolic_inputs=False, port_in=0)
        [(trace, _cycles)] = run_batch_to_halt(cpu, [machine], 4)
        assert np.array_equal(
            trace.values_matrix(), scalar_trace.values_matrix()
        )
        assert np.array_equal(
            trace.active_matrix(), scalar_trace.active_matrix()
        )
        assert np.array_equal(
            trace.mem_accesses(), scalar_trace.mem_accesses()
        )
        assert trace.annotation("pc") == scalar_trace.annotation("pc")


class TestKnobResolution:
    def test_resolve_workers_explicit(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert resolve_workers(None) == 1
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) == 1

    def test_resolve_workers_auto(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers(None) == (os.cpu_count() or 1)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_resolve_workers_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError):
            resolve_workers(None)
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_inner_workers_never_oversubscribes(self, monkeypatch):
        import os

        cores = os.cpu_count() or 1
        for jobs in (1, 2, 8, 64):
            inner = inner_workers(jobs, workers=16)
            assert inner >= 1
            assert jobs * inner <= max(jobs, cores)

    def test_inner_workers_serial_under_wide_fanout(self):
        import os

        cores = os.cpu_count() or 1
        assert inner_workers(cores * 2, workers=8) == 1


class TestIslandKnobResolution:
    """`--islands`/`--migration-interval` resolve like every other knob:
    explicit arg > env var > classic defaults — and the env path evolves
    the exact same stressmark as the explicit path."""

    def test_defaults(self, monkeypatch):
        from repro.core.stressmark import resolve_island_knobs

        monkeypatch.delenv("REPRO_ISLANDS", raising=False)
        monkeypatch.delenv("REPRO_MIGRATION_INTERVAL", raising=False)
        assert resolve_island_knobs() == (1, 2)
        assert resolve_island_knobs(4, 3) == (4, 3)

    def test_env_resolution_and_validation(self, monkeypatch):
        from repro.core.stressmark import resolve_island_knobs

        monkeypatch.setenv("REPRO_ISLANDS", "5")
        monkeypatch.setenv("REPRO_MIGRATION_INTERVAL", "7")
        assert resolve_island_knobs() == (5, 7)
        assert resolve_island_knobs(2) == (2, 7)  # explicit wins
        monkeypatch.setenv("REPRO_ISLANDS", "many")
        with pytest.raises(ValueError, match="REPRO_ISLANDS"):
            resolve_island_knobs()
        monkeypatch.setenv("REPRO_ISLANDS", "0")
        with pytest.raises(ValueError, match="islands"):
            resolve_island_knobs()
        with pytest.raises(ValueError, match="migration_interval"):
            resolve_island_knobs(1, 0)

    def test_env_matches_explicit_evolution(self, cpu, model, monkeypatch):
        kwargs = dict(population=4, generations=2, genome_length=6)
        explicit = generate_stressmark(
            cpu, model, islands=2, migration_interval=1, **kwargs
        )
        monkeypatch.setenv("REPRO_ISLANDS", "2")
        monkeypatch.setenv("REPRO_MIGRATION_INTERVAL", "1")
        via_env = generate_stressmark(cpu, model, **kwargs)
        assert via_env.source == explicit.source
        assert via_env.peak_power_mw == explicit.peak_power_mw

    def test_runner_stressmark_keys_island_schedules(self, tmp_path,
                                                     monkeypatch):
        """Different island schedules cache under different keys (they
        evolve different winners); workers stay out of the key."""
        from repro.bench import runner

        monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
        monkeypatch.setattr(runner, "_store", None)
        seen = []

        def fake_cached(key, compute):
            seen.append(key)
            return "marker"

        monkeypatch.setattr(runner, "_cached", fake_cached)
        runner.stressmark("peak")
        runner.stressmark("peak", islands=3, migration_interval=2)
        runner.stressmark("peak", islands=3, migration_interval=2, workers=4)
        # one island never migrates: any interval is the classic artifact
        runner.stressmark("peak", islands=1, migration_interval=4)
        assert seen[0] == "stressmark_peak"
        assert seen[1] == "stressmark_peak_i3m2"
        assert seen[2] == seen[1]
        assert seen[3] == seen[0]
        runner._store = None
