"""The stale-cache fix: versioned keys, fingerprint misses, escape hatch.

The seed's disk cache keyed entries by bare names (``xbased_FFT``), so
edits to the power model or the netlist silently reused stale pickles.
Keys now embed a fingerprint of the cache schema, the netlist, and the
power-model characterization; these tests pin that behaviour.
"""

import pickle

import pytest

from repro.bench import runner


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    """Point the runner at an empty cache dir; restore globals after."""
    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
    yield tmp_path / "cache"
    for key in list(runner._memory_cache):
        if key.startswith("unit_"):
            runner._memory_cache.pop(key)


class TestVersionedKeys:
    def test_disk_names_carry_fingerprint(self, isolated_cache):
        runner._cached("unit_fp_key", lambda: 1)
        runner._memory_cache.pop("unit_fp_key")
        files = list(isolated_cache.glob("*.pkl"))
        assert files == [
            isolated_cache / f"unit_fp_key-{runner.cache_fingerprint()}.pkl"
        ]

    def test_fingerprint_change_misses_cache(self, isolated_cache, monkeypatch):
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return calls["n"]

        assert runner._cached("unit_stale_key", compute) == 1
        # Simulate an edit to the PowerModel / netlist: the fingerprint
        # changes, so the stale pickle must NOT be reused.
        runner._memory_cache.pop("unit_stale_key")
        monkeypatch.setattr(runner, "_fingerprint", "deadbeefdeadbeef")
        assert runner._cached("unit_stale_key", compute) == 2
        assert calls["n"] == 2
        # ... and the stale file is still there, untouched, under its key.
        assert len(list(isolated_cache.glob("unit_stale_key-*.pkl"))) == 2
        runner._memory_cache.pop("unit_stale_key")

    def test_model_parameters_feed_fingerprint(self, monkeypatch):
        baseline = runner.cache_fingerprint()
        model = runner.shared_model()
        original_clock = model.clock_ns
        monkeypatch.setattr(model, "clock_ns", original_clock * 2)
        monkeypatch.setattr(runner, "_fingerprint", None)
        changed = runner.cache_fingerprint()
        assert changed != baseline
        monkeypatch.setattr(model, "clock_ns", original_clock)
        monkeypatch.setattr(runner, "_fingerprint", None)
        assert runner.cache_fingerprint() == baseline  # restored => stable

    def test_benchmark_token_tracks_source_and_budgets(self):
        benchmark = runner.get_benchmark("FFT")
        token = runner._bench_token(benchmark)
        from dataclasses import replace

        edited = replace(benchmark, source=benchmark.source + "\n; tweak")
        assert runner._bench_token(edited) != token
        rebudgeted = replace(benchmark, max_segments=benchmark.max_segments * 2)
        assert runner._bench_token(rebudgeted) != token


class TestNoCacheEscapeHatch:
    def test_env_var_bypasses_disk(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not runner.cache_enabled()
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return calls["n"]

        assert runner._cached("unit_nocache_key", compute) == 1
        runner._memory_cache.pop("unit_nocache_key")
        assert runner._cached("unit_nocache_key", compute) == 2
        assert not isolated_cache.exists()
        runner._memory_cache.pop("unit_nocache_key")

    def test_cache_enabled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert runner.cache_enabled()
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert runner.cache_enabled()

    def test_stale_unversioned_pickles_are_ignored(self, isolated_cache):
        """A seed-style bare-key pickle must never be loaded again."""
        isolated_cache.mkdir(parents=True)
        with (isolated_cache / "unit_legacy_key.pkl").open("wb") as handle:
            pickle.dump("stale-value", handle)
        value = runner._cached("unit_legacy_key", lambda: "fresh-value")
        assert value == "fresh-value"
        runner._memory_cache.pop("unit_legacy_key")


class TestParallelRunner:
    def test_run_suite_sequential_and_order(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        results = runner.run_suite(["div", "mult"], jobs=1)
        assert [r.name for r in results] == ["div", "mult"]
        assert all(r.peak_power_mw > 0 for r in results)

    def test_run_suite_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError, match="available"):
            runner.run_suite(["nosuchbench"], jobs=2)

    def test_sequential_run_does_not_leak_knobs(self, isolated_cache,
                                                monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
        runner.run_suite(["mult"], jobs=1, batch_size=4, no_cache=True)
        import os

        assert "REPRO_NO_CACHE" not in os.environ
        assert "REPRO_BATCH_SIZE" not in os.environ
        assert runner.cache_enabled()

    def test_duplicate_names_computed_once(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        results = runner.run_suite(["mult", "mult"], jobs=1)
        assert [r.name for r in results] == ["mult", "mult"]
        assert results[0] is results[1]


class TestKnobParsing:
    def test_malformed_batch_size_env_raises(self, monkeypatch):
        from repro.core.activity import default_batch_size

        monkeypatch.setenv("REPRO_BATCH_SIZE", "1x")
        with pytest.raises(ValueError, match="REPRO_BATCH_SIZE"):
            default_batch_size()
        monkeypatch.setenv("REPRO_BATCH_SIZE", "16")
        assert default_batch_size() == 16
        monkeypatch.delenv("REPRO_BATCH_SIZE")
        assert default_batch_size() == 8

    def test_atomic_cache_write_leaves_no_scratch(self, isolated_cache):
        runner._cached("unit_atomic_key", lambda: [1, 2, 3])
        runner._memory_cache.pop("unit_atomic_key")
        assert not list(isolated_cache.glob("*.tmp*"))
        assert runner._cached("unit_atomic_key", lambda: "recomputed") == [1, 2, 3]
        runner._memory_cache.pop("unit_atomic_key")
