"""API pipeline, cyclic peak energy, CPU Verilog round-trip, and runner
cache integration tests."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.cells import SG65
from repro.core import analyze, explore
from repro.core.peakenergy import (
    UnboundedEnergyError,
    compute_peak_energy,
    worst_case_average_power_mw,
)
from repro.core.peakpower import compute_peak_power
from repro.netlist import parse_verilog, write_verilog
from repro.power import PowerModel
from repro.sim import LevelizedEvaluator


@pytest.fixture(scope="module")
def model(cpu):
    return PowerModel(cpu.netlist, SG65, clock_ns=10.0)


WAIT_LOOP = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
        mov #inp, r4
again:  mov @r4, r5
        tst r5
        jnz again
        mov #1, r6
end:    jmp end
        .org 0x0240
inp:    .input 1
"""


class TestCyclicPeakEnergy:
    @pytest.fixture(scope="class")
    def cyclic(self, cpu, model):
        tree = explore(cpu, assemble(WAIT_LOOP, "wait"))
        peak = compute_peak_power(tree, model)
        return tree, peak

    def test_cycle_detected(self, cyclic):
        tree, _peak = cyclic
        assert tree.is_cyclic()

    def test_unbounded_without_loop_bound(self, cyclic):
        tree, peak = cyclic
        with pytest.raises(UnboundedEnergyError, match="loop_bound"):
            compute_peak_energy(tree, peak)

    def test_energy_grows_with_loop_bound(self, cyclic):
        tree, peak = cyclic
        small = compute_peak_energy(tree, peak, loop_bound=2)
        large = compute_peak_energy(tree, peak, loop_bound=6)
        assert large.peak_energy_pj > small.peak_energy_pj
        assert large.path_cycles > small.path_cycles

    def test_worst_case_average_power(self, cyclic):
        tree, peak = cyclic
        result = compute_peak_energy(tree, peak, loop_bound=3)
        average = worst_case_average_power_mw(result)
        assert 0 < average <= peak.peak_power_mw + 1e-9


class TestAnalyzeApi:
    def test_report_fields_consistent(self, cpu, model):
        program = assemble(WAIT_LOOP.replace("jnz again", "jz  done\ndone:"), "api")
        report = analyze(cpu, program, model)
        assert report.program_name == "api"
        assert report.peak_power_mw == report.peak_power.peak_power_mw
        assert report.peak_energy_pj == report.peak_energy.peak_energy_pj
        assert "peak power" in report.summary()

    def test_loop_bound_forwarded(self, cpu, model):
        report = analyze(cpu, assemble(WAIT_LOOP, "apiloop"), model, loop_bound=2)
        assert report.peak_energy.path_cycles > 0


class TestCpuVerilogRoundTrip:
    def test_full_core_survives_export(self, cpu, tmp_path):
        path = tmp_path / "ulp430.v"
        write_verilog(cpu.netlist, path)
        parsed = parse_verilog(path)
        assert len(parsed.gates) == len(cpu.netlist.gates)
        assert parsed.stats() == cpu.netlist.stats()
        assert parsed.gates_by_top_module().keys() == (
            cpu.netlist.gates_by_top_module().keys()
        )

    def test_parsed_core_evaluates_identically(self, cpu, tmp_path):
        path = tmp_path / "ulp430.v"
        write_verilog(cpu.netlist, path)
        parsed = parse_verilog(path)
        original = LevelizedEvaluator(cpu.netlist)
        loaded = LevelizedEvaluator(parsed)
        v1 = original.fresh_values()
        v2 = loaded.fresh_values()
        rng = np.random.default_rng(17)
        for name, net in cpu.netlist.inputs.items():
            v1[net] = v2[net] = rng.integers(0, 3)
        original.eval_comb(v1)
        loaded.eval_comb(v2)
        assert np.array_equal(v1, v2)


class TestRunnerCache:
    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return {"value": 42}

        first = runner._cached("unit_test_key", compute)
        runner._memory_cache.pop("unit_test_key")
        second = runner._cached("unit_test_key", compute)  # from disk
        third = runner._cached("unit_test_key", compute)  # from memory
        assert first == second == third
        assert calls["n"] == 1
        runner._memory_cache.pop("unit_test_key", None)
