"""Machine, evaluator activity rule, trace, and VCD unit tests."""

import numpy as np

from repro.logic import ONE, X, ZERO
from repro.netlist import NetlistBuilder
from repro.sim import (
    LevelizedEvaluator,
    Machine,
    MemoryPorts,
    TernaryMemory,
    Trace,
    read_vcd,
    write_vcd,
)


def counter_machine():
    """A 4-bit counter reading/writing nothing: minimal Machine target."""
    nb = NetlistBuilder("counter")
    with nb.module("core"):
        count = nb.register(4, "count")
        nb.connect_register(count, nb.increment(count))
        dout = nb.bus_input("mem_dout", 16)
        addr = count + [nb.const0()] * 11
        we = nb.const0()
        en = nb.const1()
    netlist = nb.finish()
    ports = MemoryPorts(addr=addr, din=addr[:16], dout=dout, we=we, en=en)
    return Machine(netlist, ports), count


class TestMachine:
    def test_reset_then_count(self):
        machine, count = counter_machine()
        machine.reset_sequence(2)
        values = [machine.peek_bus(count)[0] for _ in range(3) if machine.step() or True]
        assert values == [1, 2, 3]

    def test_snapshot_restore_roundtrip(self):
        machine, count = counter_machine()
        machine.reset_sequence(2)
        machine.step()
        snap = machine.snapshot()
        machine.step()
        machine.step()
        after = machine.peek_bus(count)[0]
        machine.restore(snap)
        assert machine.peek_bus(count)[0] != after
        machine.step()
        machine.step()
        assert machine.peek_bus(count)[0] == after

    def test_state_key_distinguishes_states(self):
        machine, _count = counter_machine()
        machine.reset_sequence(2)
        first = machine.state_key()
        machine.step()
        assert machine.state_key() != first

    def test_next_dff_forces_consumed_once(self):
        machine, count = counter_machine()
        machine.reset_sequence(2)
        dff_net = count[3]
        machine.next_dff_forces = {dff_net: 1}
        machine.step()
        assert machine.peek_bus(count)[0] & 0b1000
        assert machine.next_dff_forces == {}

    def test_trace_records_cycles(self):
        machine, _count = counter_machine()
        trace = Trace(machine.netlist.n_nets)
        machine.reset_sequence(2, trace=trace)
        machine.step(trace=trace)
        assert len(trace) == 3
        assert trace.values_matrix().shape == (3, machine.netlist.n_nets)


class TestActivityRule:
    def build(self):
        nb = NetlistBuilder()
        a = nb.input("a")
        b = nb.input("b")
        y = nb.and_(a, b)
        netlist = nb.finish()
        return netlist, LevelizedEvaluator(netlist), a, b, y

    def test_changed_gate_is_active(self):
        netlist, ev, a, b, y = self.build()
        prev = ev.fresh_values()
        prev[[a, b]] = [1, 0]
        ev.eval_comb(prev)
        cur = prev.copy()
        cur[b] = 1
        ev.eval_comb(cur)
        active = ev.compute_activity(prev, cur)
        assert active[y]

    def test_stable_known_gate_is_idle(self):
        netlist, ev, a, b, y = self.build()
        prev = ev.fresh_values()
        prev[[a, b]] = [1, 1]
        ev.eval_comb(prev)
        active = ev.compute_activity(prev.copy(), prev.copy())
        assert not active[y]

    def test_x_gate_with_active_driver_is_active(self):
        netlist, ev, a, b, y = self.build()
        prev = ev.fresh_values()
        prev[[a, b]] = [X, 0]
        ev.eval_comb(prev)
        cur = prev.copy()
        cur[b] = 1  # b toggles; y goes 0 -> X and is driven by active b
        ev.eval_comb(cur)
        active = ev.compute_activity(prev, cur)
        assert cur[y] == X
        assert active[y]

    def test_x_input_always_counts_active(self):
        netlist, ev, a, b, y = self.build()
        prev = ev.fresh_values()
        prev[[a, b]] = [X, 1]
        ev.eval_comb(prev)
        cur = prev.copy()
        ev.eval_comb(cur)
        active = ev.compute_activity(prev, cur)
        # a is an unconstrained external input: it may toggle any cycle,
        # so the X it feeds through the AND stays potentially-toggling.
        assert active[a]
        assert active[y]


class TestVcd:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(11)
        matrix = rng.integers(0, 3, size=(7, 5)).astype(np.uint8)
        path = tmp_path / "trace.vcd"
        write_vcd(matrix, path, net_names=[f"sig{i}" for i in range(5)])
        loaded, names = read_vcd(path)
        assert names == [f"sig{i}" for i in range(5)]
        assert np.array_equal(loaded, matrix)

    def test_x_encoding(self, tmp_path):
        matrix = np.array([[ZERO, ONE, X]], dtype=np.uint8)
        path = tmp_path / "x.vcd"
        write_vcd(matrix, path)
        text = path.read_text()
        assert "x" in text

    def test_compact_identifiers_unique(self, tmp_path):
        matrix = np.zeros((1, 200), dtype=np.uint8)
        path = tmp_path / "wide.vcd"
        write_vcd(matrix, path)
        loaded, names = read_vcd(path)
        assert loaded.shape == (1, 200)


class TestTrace:
    def test_toggled_any_unions_activity(self):
        trace = Trace(3)
        from repro.sim.trace import CycleRecord

        trace.append(CycleRecord(0, np.zeros(3, np.uint8),
                                 np.array([True, False, False]), 0, 0))
        trace.append(CycleRecord(1, np.zeros(3, np.uint8),
                                 np.array([False, True, False]), 1, 0))
        flags = trace.toggled_any()
        assert flags.tolist() == [True, True, False]
        assert trace.mem_accesses().tolist() == [[0, 0], [1, 0]]

    def test_annotation_access(self):
        trace = Trace(1)
        from repro.sim.trace import CycleRecord

        trace.append(CycleRecord(0, np.zeros(1, np.uint8),
                                 np.zeros(1, bool), 0, 0, {"pc": 7}))
        assert trace.annotation("pc") == [7]
        assert trace.annotation("missing", -1) == [-1]
