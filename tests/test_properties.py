"""Property-based tests of the soundness lemmas the paper relies on.

The X-based analysis is sound because of a refinement chain:

1. gate-level 3-valued evaluation is *monotone*: concretizing inputs can
   only concretize outputs consistently (tested here on random circuits);
2. therefore a symbolic simulation covers every concrete simulation;
3. Algorithm 2's X-assignment only concretizes Xs (never edits known
   values), so the maximized profile is a legal concretization too.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.peakpower import maximize_parity
from repro.logic import ONE, X, ZERO, refines
from repro.netlist import NetlistBuilder
from repro.sim import LevelizedEvaluator


def random_circuit(rng: np.random.Generator, n_inputs: int, n_gates: int):
    """A random combinational DAG over the 2-input gate kinds."""
    nb = NetlistBuilder("random")
    nets = [nb.input(f"i{k}") for k in range(n_inputs)]
    ops = [nb.and_, nb.or_, nb.xor, nb.nand, nb.nor, nb.xnor]
    for _ in range(n_gates):
        op = ops[rng.integers(0, len(ops))]
        a = nets[rng.integers(0, len(nets))]
        b = nets[rng.integers(0, len(nets))]
        nets.append(op(a, b))
    netlist = nb.finish()
    inputs = nets[:n_inputs]
    return netlist, inputs


class TestEvaluationMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_inputs=st.integers(min_value=2, max_value=6),
        n_gates=st.integers(min_value=1, max_value=40),
        data=st.data(),
    )
    def test_concrete_runs_refine_symbolic_runs(
        self, seed, n_inputs, n_gates, data
    ):
        rng = np.random.default_rng(seed)
        netlist, inputs = random_circuit(rng, n_inputs, n_gates)
        evaluator = LevelizedEvaluator(netlist)

        symbolic_in = [
            data.draw(st.sampled_from([ZERO, ONE, X]), label=f"sym{i}")
            for i in range(n_inputs)
        ]
        concrete_in = [
            bit if bit != X else data.draw(st.sampled_from([ZERO, ONE]))
            for bit in symbolic_in
        ]

        symbolic = evaluator.fresh_values()
        concrete = evaluator.fresh_values()
        for net, s_bit, c_bit in zip(inputs, symbolic_in, concrete_in):
            symbolic[net] = s_bit
            concrete[net] = c_bit
        evaluator.eval_comb(symbolic)
        evaluator.eval_comb(concrete)
        for net in range(netlist.n_nets):
            assert refines(int(concrete[net]), int(symbolic[net])), (
                f"net {net}: concrete {concrete[net]} does not refine "
                f"symbolic {symbolic[net]}"
            )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_gates=st.integers(min_value=1, max_value=30),
    )
    def test_all_x_inputs_cover_all_concrete_runs(self, seed, n_gates):
        """The extreme case Algorithm 1 uses: inputs all X cover any run."""
        rng = np.random.default_rng(seed)
        netlist, inputs = random_circuit(rng, 3, n_gates)
        evaluator = LevelizedEvaluator(netlist)
        symbolic = evaluator.fresh_values()
        evaluator.eval_comb(symbolic)
        for pattern in range(8):
            concrete = evaluator.fresh_values()
            for position, net in enumerate(inputs):
                concrete[net] = (pattern >> position) & 1
            evaluator.eval_comb(concrete)
            for net in range(netlist.n_nets):
                assert refines(int(concrete[net]), int(symbolic[net]))


class TestXAssignmentProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_cycles=st.integers(min_value=2, max_value=12),
        n_nets=st.integers(min_value=1, max_value=8),
        parity=st.integers(min_value=0, max_value=1),
    )
    def test_assignment_is_a_concretization(self, seed, n_cycles, n_nets, parity):
        """maximize_parity may only resolve Xs, never edit known values."""
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 3, size=(n_cycles, n_nets)).astype(np.uint8)
        active = rng.integers(0, 2, size=(n_cycles, n_nets)).astype(bool)
        max_prev = rng.integers(0, 2, size=n_nets).astype(np.uint8)
        max_cur = (1 - max_prev).astype(np.uint8)
        assigned = maximize_parity(values, active, parity, max_prev, max_cur)
        known = values != X
        assert (assigned[known] == values[known]).all()

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_cycles=st.integers(min_value=3, max_value=12),
        n_nets=st.integers(min_value=1, max_value=8),
        parity=st.integers(min_value=0, max_value=1),
    )
    def test_active_xs_toggle_in_target_cycles(
        self, seed, n_cycles, n_nets, parity
    ):
        """In every target-parity cycle, an active gate whose value was X
        ends up making a transition — that is what maximizes power."""
        rng = np.random.default_rng(seed)
        values = np.full((n_cycles, n_nets), X, dtype=np.uint8)
        active = rng.integers(0, 2, size=(n_cycles, n_nets)).astype(bool)
        max_prev = np.zeros(n_nets, dtype=np.uint8)
        max_cur = np.ones(n_nets, dtype=np.uint8)
        assigned = maximize_parity(values, active, parity, max_prev, max_cur)
        start = parity if parity >= 1 else 2
        for cycle in range(start, n_cycles, 2):
            toggled = assigned[cycle] != assigned[cycle - 1]
            both_known = (assigned[cycle] != X) & (assigned[cycle - 1] != X)
            assert (toggled & both_known)[active[cycle]].all()
