"""Sizing-model tests (Figure 1.3, Tables 1.1/1.2/5.1/5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sizing import (
    BATTERY_TYPES,
    HARVESTER_TYPES,
    battery_volume_mm3,
    effective_capacity_fraction,
    harvester_area_cm2,
    reduction_table,
    size_system,
)


class TestDensityTables:
    def test_table_1_1_values(self):
        assert BATTERY_TYPES["li-ion"].specific_energy_j_per_g == 460
        assert BATTERY_TYPES["li-ion"].energy_density_mj_per_l == 1.152
        assert BATTERY_TYPES["alkaline"].energy_density_mj_per_l == 0.331
        assert len(BATTERY_TYPES) == 6

    def test_table_1_2_values(self):
        assert HARVESTER_TYPES["photovoltaic-sun"].power_density_mw_per_cm2 == 100.0
        assert HARVESTER_TYPES["photovoltaic-indoor"].power_density_mw_per_cm2 == 0.1
        assert len(HARVESTER_TYPES) == 4


class TestHarvesterSizing:
    def test_indoor_pv_for_2mw(self):
        # 2 mW at 100 uW/cm^2 -> 20 cm^2
        assert harvester_area_cm2(2.0, "photovoltaic-indoor") == pytest.approx(20.0)

    @given(st.floats(min_value=0.1, max_value=100.0))
    def test_area_proportional_to_power(self, power):
        one = harvester_area_cm2(power, "thermoelectric")
        two = harvester_area_cm2(2 * power, "thermoelectric")
        assert two == pytest.approx(2 * one)


class TestBatterySizing:
    def test_volume_from_energy_density(self):
        # 1.152 J fits in 1 mm^3 of Li-ion
        assert battery_volume_mm3(1.152, "li-ion") == pytest.approx(1.0)

    def test_effective_capacity_shrinks_with_peaks(self):
        assert effective_capacity_fraction(1.0, 2.0) == 1.0
        derated = effective_capacity_fraction(8.0, 2.0)
        assert 0 < derated < 1.0

    def test_peak_aware_volume_is_larger(self):
        plain = battery_volume_mm3(100.0, "li-ion")
        pulsed = battery_volume_mm3(
            100.0, "li-ion", peak_power_mw=10.0, rated_power_mw=1.0
        )
        assert pulsed > plain

    @given(st.floats(min_value=1.0, max_value=1000.0))
    def test_monotone_in_energy(self, energy):
        assert battery_volume_mm3(energy + 1) > battery_volume_mm3(energy)


class TestSystemSizing:
    def test_type1_has_no_battery(self):
        sizing = size_system(1, peak_power_mw=2.0, avg_power_mw=0.5)
        assert sizing.battery_volume_mm3 is None
        assert sizing.harvester_area_cm2 == pytest.approx(20.0)

    def test_type2_has_both(self):
        sizing = size_system(2, peak_power_mw=2.0, avg_power_mw=0.5)
        assert sizing.harvester_area_cm2 is not None
        assert sizing.battery_volume_mm3 is not None

    def test_type3_has_no_harvester(self):
        sizing = size_system(3, peak_power_mw=2.0, avg_power_mw=0.5)
        assert sizing.harvester_area_cm2 is None

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            size_system(4, 1.0, 1.0)

    def test_lower_peak_means_smaller_type1_system(self):
        large = size_system(1, peak_power_mw=2.0, avg_power_mw=0.5)
        small = size_system(1, peak_power_mw=1.7, avg_power_mw=0.5)
        assert small.harvester_area_cm2 < large.harvester_area_cm2


class TestReductionTables:
    def test_linear_in_contribution(self):
        baseline = {"a": 2.0, "b": 2.0}
        ours = {"a": 1.7, "b": 1.7}  # 15% lower
        table = reduction_table(baseline, ours)
        assert table[100] == pytest.approx(15.0, abs=0.01)
        assert table[10] == pytest.approx(1.5, abs=0.01)
        assert table[50] == pytest.approx(7.5, abs=0.01)

    def test_averages_over_benchmarks(self):
        baseline = {"a": 2.0, "b": 4.0}
        ours = {"a": 1.0, "b": 4.0}  # 50% and 0%
        table = reduction_table(baseline, ours)
        assert table[100] == pytest.approx(25.0)

    def test_mismatched_sets_rejected(self):
        with pytest.raises(ValueError):
            reduction_table({"a": 1.0}, {"b": 1.0})
