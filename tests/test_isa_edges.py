"""ISS edge cases pinned against hand-computed values.

These are the corners a random instruction fuzzer trips over first:
byte-mode words (outside the subset — must be rejected, not silently
executed as word ops), ``@Rn+`` autoincrement when Rn is the PC
(immediate fetch) or the SP (pop), overflow (V) on SUB/CMP, writes to
the storage-less constant generator r3, and ALU results targeting SR
(where the register write must win over the flag update, matching the
gate-level write port).
"""

import pytest

from repro.asm import assemble
from repro.asm.assembler import AssemblyError
from repro.asm.program import Program
from repro.isa.iss import InstructionSetSimulator, IssError
from repro.isa.memmap import RESET_SP
from repro.isa.spec import (
    PC,
    SP,
    SR,
    SR_C,
    SR_N,
    SR_V,
    SR_Z,
    encode_format_i,
    encode_format_ii,
)

ORG = 0xF000


def run_iss(body: str) -> InstructionSetSimulator:
    source = f"    .org 0xf000\nstart:\n{body}\nend:\n    jmp end\n"
    program = assemble(source, "edge")
    iss = InstructionSetSimulator(program)
    iss.run(max_instructions=1000)
    return iss


def flags(iss) -> tuple[int, int, int, int]:
    state = iss.state
    return (
        state.flag(SR_C), state.flag(SR_Z),
        state.flag(SR_N), state.flag(SR_V),
    )


# ----------------------------------------------------------------------
# Byte-mode words: explicitly outside the subset
# ----------------------------------------------------------------------
class TestByteModeRejection:
    def test_assembler_rejects_dot_b(self):
        with pytest.raises(AssemblyError, match=r"byte-mode"):
            assemble(
                "    .org 0xf000\n    mov.b r4, r5\nend:\n    jmp end\n",
                "byte",
            )

    def test_iss_rejects_bw_format_i(self):
        # mov r4, r5 with the B/W bit set (no assembler can emit this)
        word = encode_format_i(0x4, 4, 5, 0, 0, byte=True)
        program = Program(words={ORG: word}, entry=ORG, name="bw1")
        iss = InstructionSetSimulator(program)
        with pytest.raises(IssError, match=r"byte-mode"):
            iss.step()

    def test_iss_rejects_bw_format_ii(self):
        # rra.b r4 equivalent encoding
        word = encode_format_ii(0b010, 4, 0, byte=True)
        program = Program(words={ORG: word}, entry=ORG, name="bw2")
        iss = InstructionSetSimulator(program)
        with pytest.raises(IssError, match=r"byte-mode"):
            iss.step()


# ----------------------------------------------------------------------
# @Rn+ autoincrement on the PC (immediates) and the SP (pop)
# ----------------------------------------------------------------------
class TestAutoincrement:
    def test_immediate_is_pc_autoincrement(self):
        # `mov #imm, rN` is @pc+: one extension word, PC advances by 4
        program = assemble(
            "    .org 0xf000\nstart:\n    mov #0x1234, r4\n"
            "end:\n    jmp end\n",
            "imm",
        )
        iss = InstructionSetSimulator(program)
        iss.step()
        assert iss.state.regs[4] == 0x1234
        assert iss.state.regs[PC] == ORG + 4  # opcode + extension word

    def test_indirect_autoincrement_steps_pointer_by_two(self):
        program = assemble(
            "    .org 0xf000\n"
            "start:\n"
            "    mov #buf, r10\n"
            "    add @r10+, r4\n"
            "    add @r10+, r4\n"
            "end:\n"
            "    jmp end\n"
            "\n"
            "    .org 0x0300\n"
            "buf:\n"
            "    .word 0x0005, 0x0007\n",
            "autoinc",
        )
        iss = InstructionSetSimulator(program)
        iss.run(max_instructions=100)
        assert iss.state.regs[10] == 0x0300 + 4
        assert iss.state.regs[4] == 12

    def test_pop_is_sp_autoincrement(self):
        iss = run_iss(
            "    mov #0xbeef, r4\n"
            "    push r4\n"
            "    mov #0x0000, r4\n"
            "    pop r5\n"
        )
        assert iss.state.regs[5] == 0xBEEF
        assert iss.state.regs[SP] == RESET_SP  # push -2, pop +2


# ----------------------------------------------------------------------
# Overflow (V) on SUB/CMP, hand-computed
# ----------------------------------------------------------------------
class TestSubCmpOverflow:
    def test_sub_one_from_int_min_overflows(self):
        # 0x8000 - 1 = 0x7FFF: negative minus positive gives positive
        iss = run_iss("    mov #0x8000, r4\n    sub #1, r4\n")
        assert iss.state.regs[4] == 0x7FFF
        assert flags(iss) == (1, 0, 0, 1)  # C=1 (no borrow), V=1

    def test_cmp_int_max_against_int_min_overflows(self):
        # cmp #0x8000, r5 with r5=0x7FFF: 0x7FFF - (-0x8000) wraps
        iss = run_iss("    mov #0x7fff, r5\n    cmp #0x8000, r5\n")
        assert iss.state.regs[5] == 0x7FFF  # cmp never writes back
        assert flags(iss) == (0, 0, 1, 1)  # borrow, negative, overflow

    def test_sub_without_overflow(self):
        # 5 - 3 = 2: plain positive arithmetic, no V, no borrow
        iss = run_iss("    mov #5, r4\n    sub #3, r4\n")
        assert iss.state.regs[4] == 2
        assert flags(iss) == (1, 0, 0, 0)

    def test_cmp_equal_sets_zero_and_carry(self):
        iss = run_iss("    mov #0x0042, r4\n    cmp #0x0042, r4\n")
        assert flags(iss) == (1, 1, 0, 0)


# ----------------------------------------------------------------------
# r3: the storage-less constant generator
# ----------------------------------------------------------------------
class TestConstantGeneratorWrites:
    def test_alu_write_to_r3_is_dropped(self):
        # the gate register file has no bank for r3 (reads hit the zero
        # bus); the ISS must drop the write but still set the flags
        iss = run_iss("    mov #5, r3\n    mov r3, r4\n")
        assert iss.state.regs[3] == 0
        assert iss.state.regs[4] == 0

    def test_add_to_r3_still_sets_flags(self):
        iss = run_iss("    add #0x8000, r3\n")
        assert iss.state.regs[3] == 0
        # 0 + 0x8000 = 0x8000: negative, no carry, no overflow
        assert flags(iss) == (0, 0, 1, 0)

    def test_format_ii_write_to_r3_is_dropped(self):
        # rra r3 shifts the generated constant 0; result discarded
        iss = run_iss("    rra r3\n")
        assert iss.state.regs[3] == 0
        assert flags(iss) == (0, 1, 0, 0)  # result 0: Z=1


# ----------------------------------------------------------------------
# SR as destination: the register write wins over the flag update
# ----------------------------------------------------------------------
class TestStatusRegisterDestination:
    def test_add_to_sr_stores_raw_sum(self):
        # add #6, sr with SR=1 (carry set): SR becomes 7, NOT the ALU
        # flags of the addition — the gate's SR write port wins
        iss = run_iss("    setc\n    add #6, sr\n")
        assert iss.state.regs[SR] == 7

    def test_cmp_against_sr_sets_flags(self):
        # cmp does not write back, so the flag update goes through
        iss = run_iss("    mov #3, sr\n    cmp #3, sr\n")
        assert iss.state.flag(SR_Z) == 1
        assert iss.state.flag(SR_C) == 1

    def test_rra_sr_stores_shift_result_verbatim(self):
        # SR=4 (Z set); rra sr halves it to 2 — the shift flags
        # (which would clear Z and set nothing) must NOT apply
        iss = run_iss("    mov #4, sr\n    rra sr\n")
        assert iss.state.regs[SR] == 2

    def test_mov_to_sr_steers_conditional_jump(self):
        # mov #1, sr sets C; jc must take
        iss = run_iss(
            "    mov #1, sr\n"
            "    jc taken\n"
            "    mov #0xdead, r4\n"
            "taken:\n"
            "    mov #0x0001, r5\n"
        )
        assert iss.state.regs[4] == 0
        assert iss.state.regs[5] == 1
