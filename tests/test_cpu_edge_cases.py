"""Edge-case differential tests: unusual but legal instruction forms."""


from tests.test_cpu import assert_state_matches, run_both


class TestFormatIIMemoryForms:
    def test_rra_indirect_autoincrement_writeback(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x0340, r4
        mov #0x0040, 0(r4)
        mov #0x0080, 2(r4)
        rra @r4+
        rra @r4+
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.read_word(0x0340) == 0x0020
        assert iss.read_word(0x0342) == 0x0040
        assert iss.state.regs[4] == 0x0344

    def test_swpb_absolute(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x1234, &0x0360
        swpb &0x0360
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.read_word(0x0360) == 0x3412

    def test_push_indexed_operand(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x0380, r4
        mov #777, 4(r4)
        push 4(r4)
        pop r5
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 777

    def test_call_through_register(self, cpu):
        iss, m = run_both(cpu, """
        mov #fn, r4
        call r4
        jmp over
fn:     mov #9, r5
        ret
over:   mov #1, r6
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 9
        assert iss.state.regs[6] == 1


class TestStatusRegisterAsDestination:
    def test_bis_to_sr_sets_carry_for_jump(self, cpu):
        iss, m = run_both(cpu, """
        bis #1, sr          ; set carry directly
        jc  carried
        mov #1, r5
carried: mov #2, r6
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 0
        assert iss.state.regs[6] == 2

    def test_clrc_setc_emulations(self, cpu):
        iss, m = run_both(cpu, """
        setc
        mov #0, r4
        rrc r4              ; carry -> msb
        clrc
        mov #0, r5
        rrc r5
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 0x8000
        assert iss.state.regs[5] == 0


class TestConstantRegisterSinks:
    def test_write_to_r3_is_dropped(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x1234, r3     ; r3 is the constant generator: no storage
        mov r3, r5          ; reads back as 0
        nop                 ; emulated as mov r3, r3
        mov #7, r6
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[5] == 0
        assert iss.state.regs[6] == 7


class TestPeripheralCorners:
    def test_wdt_frozen_once_held(self, cpu):
        """The gate-level watchdog counts cycles until the hold key lands,
        then freezes.  (The ISS models the watchdog at instruction
        granularity, so this is checked on the netlist alone.)"""
        from repro.asm import assemble

        program = assemble("""
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
        mov &0x0122, r5     ; WDTCNT snapshot right after the hold
        mov #5, r4
wloop:  dec r4
        jnz wloop
        mov &0x0122, r6     ; and again after a while
end:    jmp end
""", "wdt")
        machine = cpu.make_machine(program, symbolic_inputs=False, port_in=0)
        cpu.run_to_halt(machine)
        first, first_x = machine.peek_bus(cpu.nets.regfile[1])   # r5
        second, second_x = machine.peek_bus(cpu.nets.regfile[2])  # r6
        assert first_x == 0 and second_x == 0
        assert 0 < first < 16  # it ticked during the first instruction
        assert second == first  # and froze once held

    def test_back_to_back_multiplies(self, cpu):
        iss, m = run_both(cpu, """
        mov #100, &0x0130
        mov #200, &0x0138
        mov &0x013A, r4     ; 20000
        mov #300, &0x0130
        mov #400, &0x0138
        mov &0x013A, r5     ; 120000 & 0xFFFF
        mov &0x013C, r6     ; 120000 >> 16
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 20000
        assert iss.state.regs[5] == 120000 & 0xFFFF
        assert iss.state.regs[6] == 120000 >> 16

    def test_multiplier_operands_readable(self, cpu):
        iss, m = run_both(cpu, """
        mov #0x1111, &0x0130
        mov #0x2222, &0x0138
        mov &0x0130, r4
        mov &0x0138, r5
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 0x1111
        assert iss.state.regs[5] == 0x2222


class TestStackDiscipline:
    def test_deep_push_pop_reverses(self, cpu):
        body = "\n".join(f"        push #{k}" for k in (11, 22, 33, 44))
        body += "\n" + "\n".join(
            f"        pop r{r}" for r in (4, 5, 6, 7)
        )
        iss, m = run_both(cpu, body)
        assert_state_matches(cpu, iss, m)
        assert [iss.state.regs[r] for r in (4, 5, 6, 7)] == [44, 33, 22, 11]

    def test_sp_arithmetic_directly(self, cpu):
        iss, m = run_both(cpu, """
        push #5
        mov @sp, r4         ; peek without popping
        add #2, sp          ; manual pop (the OPT2 idiom)
        """)
        assert_state_matches(cpu, iss, m)
        assert iss.state.regs[4] == 5
        assert iss.state.regs[1] == 0x0A00
