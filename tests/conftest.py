"""Shared fixtures: the elaborated CPU is expensive, build it once."""

import pytest

from repro.cpu import build_ulp430


@pytest.fixture(scope="session")
def cpu():
    return build_ulp430()
