"""COI analysis (§3.5) and validation-plumbing (§3.4) unit tests."""

import pytest

from repro.asm import assemble
from repro.cells import SG65
from repro.core import analyze
from repro.core.coi import cycles_of_interest, dominant_modules
from repro.core.validation import (
    PathMismatchError,
    follow_path,
    run_concrete,
    validate_power_bound,
    validate_toggles,
)
from repro.power import PowerModel


@pytest.fixture(scope="module")
def model(cpu):
    return PowerModel(cpu.netlist, SG65, clock_ns=10.0)


SOURCE = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
        mov #inp, r4
        mov @r4+, r5
        mov @r4, r6
        cmp r6, r5
        jz  same
        mov r5, &0x0130     ; MPY
        mov r6, &0x0138     ; OP2
        nop
        mov &0x013A, r7
same:   mov r7, &0x0300
end:    jmp end
        .org 0x0240
inp:    .input 2
"""


@pytest.fixture(scope="module")
def report(cpu, model):
    return analyze(cpu, assemble(SOURCE, "coit"), model)


@pytest.fixture(scope="module")
def program():
    return assemble(SOURCE, "coit")


class TestCoi:
    def test_reports_sorted_by_cycle_and_separated(self, report, program):
        reports = cycles_of_interest(
            report.tree, report.peak_power, program, count=4, min_separation=3
        )
        cycles = [r.flat_cycle for r in reports]
        assert cycles == sorted(cycles)
        assert all(b - a >= 3 for a, b in zip(cycles, cycles[1:]))

    def test_top_report_is_the_peak(self, report, program):
        reports = cycles_of_interest(
            report.tree, report.peak_power, program, count=3
        )
        best = max(reports, key=lambda r: r.power_mw)
        assert best.power_mw == pytest.approx(report.peak_power_mw)

    def test_instructions_resolved(self, report, program):
        reports = cycles_of_interest(
            report.tree, report.peak_power, program, count=3
        )
        for coi in reports:
            address, text = coi.executing
            assert address is None or address in range(0xF000, 0xF100)
            assert text

    def test_dominant_modules_ranking(self, report, program):
        reports = cycles_of_interest(
            report.tree, report.peak_power, program, count=5
        )
        ranked = dominant_modules(reports)
        assert ranked[0] in {"exec_unit", "mem_backbone", "multiplier", "frontend"}

    def test_describe_is_readable(self, report, program):
        coi = cycles_of_interest(
            report.tree, report.peak_power, program, count=1
        )[0]
        text = coi.describe()
        assert "mW" in text and "executing" in text


class TestFollowPath:
    def test_concrete_runs_map_onto_tree(self, cpu, report, program):
        for inputs in ([1, 1], [1, 2], [9, 4]):
            concrete = run_concrete(cpu, program, inputs)
            path = follow_path(cpu, report.tree, concrete)
            assert len(path) == len(concrete)
            # indices must be valid and strictly within the flat trace
            assert min(path) >= 0 and max(path) < report.tree.n_cycles

    def test_equal_inputs_take_the_short_path(self, cpu, report, program):
        same = run_concrete(cpu, program, [5, 5])
        differ = run_concrete(cpu, program, [5, 6])
        assert len(same) < len(differ)

    def test_power_bound_alignment(self, cpu, report, model, program):
        concrete = run_concrete(cpu, program, [3, 8])
        result = validate_power_bound(
            cpu, report.tree, report.peak_power, model, concrete
        )
        assert result.n_cycles == len(concrete)
        assert result.is_bound

    def test_toggle_sets(self, cpu, report, program):
        concrete = run_concrete(cpu, program, [7, 7])
        toggles = validate_toggles(report.tree, concrete)
        assert toggles.is_superset
        assert toggles.n_common > 500  # the core genuinely ran
