"""Fault isolation, real cancellation, and the service-layer bug sweep.

The process backend runs each job in a spawn-start worker process, so
these tests exercise the failure modes the in-thread backend could not
survive: a worker calling ``os._exit`` mid-job, a worker that ignores
its cancel token (killed by the backstop), and a ``BaseException``
escaping an executor (must not strand a scheduler slot).  The client
tests pin the typed errors ``result()`` now raises for failed and
cancelled jobs, and the checkpoint tests pin that cancel tokens thread
through the engine's inner loops without perturbing results.

The executors below are **module-level** so the spawn-start worker can
re-import them by reference (``tests/`` is on ``sys.path`` under
pytest, and spawn forwards ``sys.path`` to the child).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.asm import assemble
from repro.cells import SG65
from repro.core import analyze, explore
from repro.core.baselines import input_profiling
from repro.core.peakpower import compute_peak_power
from repro.core.stressmark import generate_stressmark
from repro.parallel.cancel import CancelToken, JobCancelled
from repro.power import PowerModel
from repro.service.client import (
    JobCancelledError,
    JobFailedError,
    ServiceClient,
    ServiceError,
)
from repro.service.scheduler import (
    CANCELLED,
    DONE,
    FAILED,
    RUNNING,
    JobScheduler,
)
from repro.service.server import AnalysisService, make_server

# ----------------------------------------------------------------------
# Picklable executors for the process backend
# ----------------------------------------------------------------------


def _echo_executor(params, ctx):
    ctx.emit("working", "echo")
    return {"echo": dict(params)}


def _exit_executor(params, ctx):
    os._exit(1)  # simulates a hard engine crash / OOM kill


def _stubborn_executor(params, ctx):
    # never looks at the cancel token: only the kill backstop stops it
    time.sleep(30)
    return {"stubborn": True}


def _cooperative_executor(params, ctx):
    for _ in range(600):
        ctx.check_cancelled()
        time.sleep(0.05)
    return {"cooperative": True}


def _test_executors():
    return {
        "echo": _echo_executor,
        "die": _exit_executor,
        "stubborn": _stubborn_executor,
        "cooperative": _cooperative_executor,
    }


def _wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Satellite: BaseException must not strand a scheduler slot
# ----------------------------------------------------------------------


class TestSlotLeak:
    def _scheduler(self, executors):
        return JobScheduler(max_concurrent=1, executors=executors)

    def test_base_exception_releases_slot(self):
        def boom(params, ctx):
            raise SystemExit("engine bailed")

        scheduler = self._scheduler({"boom": boom, "ok": _echo_executor})
        try:
            bad, _ = scheduler.submit("boom", {})
            assert scheduler.wait(bad.id, 10)
            assert bad.state == FAILED
            assert "SystemExit" in bad.error
            # the slot must be free again at max_concurrent=1
            good, _ = scheduler.submit("ok", {"x": 1})
            assert scheduler.wait(good.id, 10)
            assert good.state == DONE
        finally:
            scheduler.shutdown()

    def test_keyboard_interrupt_releases_slot(self):
        def boom(params, ctx):
            raise KeyboardInterrupt

        scheduler = self._scheduler({"boom": boom, "ok": _echo_executor})
        try:
            bad, _ = scheduler.submit("boom", {})
            assert scheduler.wait(bad.id, 10)
            assert bad.state == FAILED
            good, _ = scheduler.submit("ok", {})
            assert scheduler.wait(good.id, 10)
            assert good.state == DONE
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# Tentpole: the process execution backend
# ----------------------------------------------------------------------


class TestProcessBackend:
    @pytest.fixture
    def scheduler(self):
        scheduler = JobScheduler(
            max_concurrent=1,
            backend="process",
            executor_factory=_test_executors,
            kill_grace=1.0,
        )
        yield scheduler
        scheduler.shutdown()

    def test_rejects_executors_dict(self):
        with pytest.raises(ValueError, match="executor_factory"):
            JobScheduler(backend="process", executors={"x": _echo_executor})

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            JobScheduler(backend="carrier-pigeon")

    def test_result_and_events_round_trip(self, scheduler):
        job, _ = scheduler.submit("echo", {"x": 1})
        assert scheduler.wait(job.id, 60)
        assert job.state == DONE
        assert job.result == {"echo": {"x": 1}}
        stages = [event["stage"] for event in job.events]
        # worker-side ctx.emit events cross the pipe into the job log
        assert "working" in stages
        assert stages[-1] == "finished"

    def test_worker_crash_fails_job_and_scheduler_survives(self, scheduler):
        job, _ = scheduler.submit("die", {})
        assert scheduler.wait(job.id, 60)
        assert job.state == FAILED
        assert "died unexpectedly" in job.error
        # fault isolation: the scheduler (and its slot) survive the crash
        after, _ = scheduler.submit("echo", {"x": 2})
        assert scheduler.wait(after.id, 60)
        assert after.state == DONE

    def test_cancel_kills_stubborn_worker(self, scheduler):
        job, _ = scheduler.submit("stubborn", {})
        assert _wait_for(lambda: job.state == RUNNING)
        started = time.monotonic()
        scheduler.cancel(job.id)
        assert scheduler.wait(job.id, 10), "kill backstop did not fire"
        assert job.state == CANCELLED
        assert time.monotonic() - started < 10
        # the freed slot is immediately reusable
        after, _ = scheduler.submit("echo", {"x": 3})
        assert scheduler.wait(after.id, 60)
        assert after.state == DONE

    def test_cancel_cooperative_checkpoint(self, scheduler):
        job, _ = scheduler.submit("cooperative", {})
        assert _wait_for(lambda: job.state == RUNNING)
        time.sleep(0.3)  # let the worker reach its polling loop
        scheduler.cancel(job.id)
        assert scheduler.wait(job.id, 10)
        assert job.state == CANCELLED
        assert job.error == "cancelled while running"

    def test_inflight_dedupe_survives_backend(self, scheduler):
        first, deduped_first = scheduler.submit("stubborn", {"same": 1})
        second, deduped_second = scheduler.submit("stubborn", {"same": 1})
        assert not deduped_first and deduped_second
        assert second is first
        # once RUNNING, cancel stops the shared job (a QUEUED cancel
        # would only have peeled one merged waiter off)
        assert _wait_for(lambda: first.state == RUNNING)
        scheduler.cancel(first.id)
        assert scheduler.wait(first.id, 10)
        assert first.state == CANCELLED


# ----------------------------------------------------------------------
# HTTP layer over the process backend (the acceptance criteria)
# ----------------------------------------------------------------------


@pytest.fixture
def process_service():
    service = AnalysisService(
        scheduler=JobScheduler(
            max_concurrent=1,
            backend="process",
            executor_factory=_test_executors,
            kill_grace=1.0,
        )
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        yield ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0), service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


class TestProcessBackendOverHTTP:
    def test_crash_fails_one_job_server_keeps_serving(self, process_service):
        client, _ = process_service
        job = client.submit("die")
        with pytest.raises(JobFailedError) as err:
            client.result(job["job_id"], timeout=60)
        assert err.value.status == 500
        assert "died unexpectedly" in err.value.payload["error"]
        assert client.health()["ok"] is True
        after = client.submit("echo", x=1)
        payload = client.result(after["job_id"], timeout=60)
        assert payload["result"] == {"echo": {"x": 1}}

    def test_delete_running_job_terminates_and_frees_slot(
        self, process_service
    ):
        client, _ = process_service
        job = client.submit("stubborn")
        assert _wait_for(
            lambda: client.status(job["job_id"])["state"] == RUNNING
        )
        started = time.monotonic()
        response = client.cancel(job["job_id"])
        assert response["cancel_requested"] is True
        assert _wait_for(
            lambda: client.status(job["job_id"])["state"] == CANCELLED,
            timeout=10,
        ), "DELETE on a RUNNING job did not reach a terminal state"
        assert time.monotonic() - started < 10
        assert client.health()["ok"] is True
        with pytest.raises(JobCancelledError) as err:
            client.result(job["job_id"], timeout=10)
        assert err.value.status == 409
        # the slot is reclaimed: a fresh submit runs to completion
        after = client.submit("echo", x=2)
        assert client.result(after["job_id"], timeout=60)["state"] == "done"


# ----------------------------------------------------------------------
# Satellites: typed client errors, poll formatting, narrowed 404
# ----------------------------------------------------------------------


def _cooperative_thread_executor(params, ctx):
    for _ in range(200):
        ctx.check_cancelled()
        time.sleep(0.05)
    return {"slept": True}


def _boom_executor(params, ctx):
    raise RuntimeError("engine exploded")


@pytest.fixture
def thread_service():
    service = AnalysisService(
        scheduler=JobScheduler(
            max_concurrent=1,
            executors={
                "boom": _boom_executor,
                "sleep": _cooperative_thread_executor,
                "echo": _echo_executor,
            },
        )
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        yield ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0), service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


class TestClientTypedErrors:
    def test_failed_job_raises_job_failed_error(self, thread_service):
        client, _ = thread_service
        job = client.submit("boom")
        with pytest.raises(JobFailedError) as err:
            client.result(job["job_id"], timeout=30)
        assert err.value.status == 500
        assert err.value.payload["job_id"] == job["job_id"]
        assert "engine exploded" in err.value.payload["error"]
        # JobFailedError is still a ServiceError: old handlers keep working
        assert isinstance(err.value, ServiceError)

    def test_cancelled_job_raises_job_cancelled_error(self, thread_service):
        client, _ = thread_service
        running = client.submit("sleep", which="running")
        queued = client.submit("sleep", which="queued")
        response = client.cancel(queued["job_id"])
        assert response["cancelled"] is True  # queued: died immediately
        with pytest.raises(JobCancelledError) as err:
            client.result(queued["job_id"], timeout=30)
        assert err.value.status == 409
        assert err.value.payload["job_id"] == queued["job_id"]
        client.cancel(running["job_id"])  # cooperative: unblocks teardown

    def test_genuine_server_keyerror_is_500_not_404(self, thread_service):
        client, service = thread_service

        def broken_counts():
            raise KeyError("server-side bug")

        service.scheduler.counts = broken_counts
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 500  # not masked as "not found"

    def test_unknown_job_is_still_404(self, thread_service):
        client, _ = thread_service
        with pytest.raises(ServiceError) as err:
            client.status("job-99999")
        assert err.value.status == 404


class TestResultPolling:
    def test_subsecond_budget_does_not_truncate_to_zero(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:1")
        paths = []

        def fake_request(method, path, body=None, timeout=None):
            paths.append(path)
            return {"state": "done"}

        monkeypatch.setattr(client, "_request", fake_request)
        client.result("job-1", timeout=0.4)
        assert len(paths) == 1
        # a 0.4s budget must reach the server as 0.400, not 0 (which the
        # old %.0f formatting produced, busy-looping out the deadline)
        assert "timeout=0.400" in paths[0]

    def test_exhausted_budget_raises_timeout(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:1")

        def never_done(method, path, body=None, timeout=None):
            return {"state": "running"}

        monkeypatch.setattr(client, "_request", never_done)
        with pytest.raises(TimeoutError):
            client.result("job-1", timeout=0.2)


# ----------------------------------------------------------------------
# Cancel checkpoints inside the engine's inner loops
# ----------------------------------------------------------------------


def _program(body: str, inputs: str = ""):
    return assemble(
        f".equ WDTCTL, 0x0120\n.org 0xF000\n"
        f"start: mov #0x5A80, &WDTCTL\n{body}\nend: jmp end\n{inputs}",
        "t",
    )


STRAIGHT = _program("mov #5, r4\n add r4, r4")


@pytest.fixture(scope="module")
def model(cpu):
    return PowerModel(cpu.netlist, SG65, clock_ns=10.0)


def _tripped():
    token = CancelToken()
    token.set()
    return token


class TestEngineCheckpoints:
    def test_explore_checkpoint(self, cpu):
        with pytest.raises(JobCancelled):
            explore(cpu, STRAIGHT, cancel=_tripped())

    def test_peak_power_checkpoint(self, cpu, model):
        tree = explore(cpu, STRAIGHT)
        with pytest.raises(JobCancelled):
            compute_peak_power(tree, model, cancel=_tripped())

    def test_stressmark_checkpoint(self, cpu, model):
        with pytest.raises(JobCancelled):
            generate_stressmark(
                cpu, model, population=4, generations=2,
                genome_length=4, cancel=_tripped(),
            )

    def test_input_profiling_checkpoint(self, cpu, model):
        with pytest.raises(JobCancelled):
            input_profiling(
                cpu, STRAIGHT, [[0], [1]], model, cancel=_tripped()
            )

    def test_job_cancelled_pierces_except_exception(self):
        # JobCancelled is a BaseException on purpose: broad recovery
        # paths (``except Exception``) must not swallow a cancellation
        with pytest.raises(JobCancelled):
            try:
                raise JobCancelled("cancelled")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("JobCancelled was swallowed by except Exception")

    def test_unset_token_does_not_perturb_results(self, cpu, model):
        plain = analyze(cpu, STRAIGHT, model)
        tokened = analyze(cpu, STRAIGHT, model, cancel=CancelToken())
        assert tokened.peak_power_mw == plain.peak_power_mw
        assert tokened.peak_energy_pj == plain.peak_energy_pj
