"""The durable job journal: write-ahead logging and crash recovery.

Covers the log itself (round trip, torn-tail tolerance, atomic
compaction), the scheduler's journaling discipline (submit/start/
terminal records; graceful shutdown deliberately writes *no* terminal
records so interrupted work is requeued), and :func:`recover_jobs`
(ids preserved, unknown kinds skipped, duplicates merged).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.journal import (
    JobJournal,
    PendingJob,
    ReplayReport,
    recover_jobs,
)
from repro.service.scheduler import CANCELLED, DONE, JobScheduler


def _echo(params, ctx):
    ctx.emit("working", "echo")
    return {"echo": dict(params)}


def _blocking(params, ctx):
    # cooperative: winds down promptly when shutdown sets the token
    for _ in range(600):
        ctx.check_cancelled()
        time.sleep(0.02)
    return {"slept": True}


def _wait_for(predicate, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def journal(tmp_path):
    return JobJournal(tmp_path / "jobs.journal.jsonl")


class TestJournalFile:
    def test_round_trip(self, journal):
        journal.record_submit(
            "job-00001", "analyze", {"benchmark": "mult"},
            priority=3, deadline_s=12.5,
        )
        journal.record_start("job-00001", attempt=1)
        journal.record_retry("job-00001", attempt=2)
        report = journal.replay()
        assert report.n_records == 3
        assert report.n_torn == 0
        [pending] = report.pending
        assert pending.job_id == "job-00001"
        assert pending.kind == "analyze"
        assert pending.params == {"benchmark": "mult"}
        assert pending.priority == 3
        assert pending.deadline_s == 12.5
        assert pending.last_state == "running"
        assert pending.attempts == 2

    def test_terminal_retires_a_job(self, journal):
        journal.record_submit("job-00001", "analyze", {"benchmark": "mult"})
        journal.record_submit("job-00002", "analyze", {"benchmark": "fir"})
        journal.record_terminal("job-00001", DONE)
        report = journal.replay()
        assert report.n_terminal == 1
        assert [p.job_id for p in report.pending] == ["job-00002"]

    def test_never_started_job_replays_as_queued(self, journal):
        journal.record_submit("job-00001", "analyze", {"benchmark": "mult"})
        [pending] = journal.replay().pending
        assert pending.last_state == "queued"

    def test_torn_tail_is_skipped_not_fatal(self, journal):
        journal.record_submit("job-00001", "analyze", {"benchmark": "mult"})
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "terminal", "job_id": "job-00')  # crash mid-append
        report = journal.replay()
        assert report.n_torn == 1
        assert [p.job_id for p in report.pending] == ["job-00001"]

    def test_unknown_ops_and_missing_files_are_harmless(self, journal):
        assert journal.replay().pending == []  # no file yet
        journal.append({"op": "vacuum", "job_id": "job-00001"})
        journal.record_submit("job-00001", "analyze", {"benchmark": "mult"})
        assert len(journal.replay().pending) == 1

    def test_compact_truncates_atomically(self, journal):
        journal.record_submit("job-00001", "analyze", {"benchmark": "mult"})
        journal.compact()
        assert journal.path.read_text() == ""
        assert journal.replay().pending == []
        journal.compact()  # idempotent on an empty (or absent) file


class TestSchedulerJournaling:
    def _scheduler(self, journal, executors=None):
        return JobScheduler(
            max_concurrent=1,
            executors=executors or {"echo": _echo},
            journal=journal,
        )

    def test_done_job_leaves_no_pending_entry(self, journal):
        scheduler = self._scheduler(journal)
        try:
            job, _ = scheduler.submit("echo", {"x": 1})
            assert scheduler.wait(job.id, 10)
            assert job.state == DONE
        finally:
            scheduler.shutdown()
        report = journal.replay()
        assert report.pending == []
        assert report.n_terminal == 1

    def test_user_cancel_is_a_real_terminal(self, journal):
        scheduler = self._scheduler(
            journal, {"echo": _echo, "block": _blocking}
        )
        try:
            blocker, _ = scheduler.submit("block", {})
            queued, _ = scheduler.submit("echo", {"x": 1})
            scheduler.cancel(queued.id)
            assert queued.state == CANCELLED
        finally:
            scheduler.shutdown()
        # the user-cancelled job is retired; only the shutdown-interrupted
        # blocker survives to be requeued
        assert [p.job_id for p in journal.replay().pending] == [blocker.id]

    def test_graceful_shutdown_requeues_queued_and_running(self, journal):
        scheduler = self._scheduler(
            journal, {"echo": _echo, "block": _blocking}
        )
        running, _ = scheduler.submit("block", {})
        assert _wait_for(lambda: running.state == "running")
        queued, _ = scheduler.submit("echo", {"x": 1}, priority=5)
        scheduler.shutdown()
        report = journal.replay()
        by_id = {p.job_id: p for p in report.pending}
        assert set(by_id) == {running.id, queued.id}
        assert by_id[running.id].last_state == "running"
        assert by_id[queued.id].last_state == "queued"
        assert by_id[queued.id].priority == 5


class TestRecoverJobs:
    def test_ids_and_knobs_survive_recovery(self, journal):
        report = ReplayReport(
            pending=[
                PendingJob(
                    "job-00007", "echo", {"x": 1},
                    priority=4, deadline_s=9.0, last_state="running",
                ),
            ]
        )
        scheduler = JobScheduler(
            max_concurrent=1, executors={"echo": _echo}, journal=journal
        )
        try:
            summary = recover_jobs(scheduler, report)
            assert summary["requeued"] == 1
            assert summary["merged"] == 0 and summary["skipped"] == 0
            job = scheduler.get("job-00007")
            assert job.deadline_s == 9.0
            assert job.recovered
            stages = [e["stage"] for e in job.events]
            assert "recovered" in stages
            assert scheduler.wait(job.id, 10)
            assert job.state == DONE
            # the id counter seeds past the recovered tail: no collisions
            fresh, _ = scheduler.submit("echo", {"x": 2})
            assert int(fresh.id.split("-")[1]) > 7
            # the requeued job re-journaled itself: a second crash right
            # now would still recover it (nothing terminal yet for fresh)
            assert [p.job_id for p in journal.replay().pending] == [fresh.id]
        finally:
            scheduler.shutdown()

    def test_unknown_kind_is_skipped_not_fatal(self, journal):
        report = ReplayReport(
            pending=[
                PendingJob("job-00001", "transmogrify", {}),
                PendingJob("job-00002", "echo", {"x": 1}),
            ]
        )
        scheduler = JobScheduler(max_concurrent=1, executors={"echo": _echo})
        try:
            summary = recover_jobs(scheduler, report)
            assert summary == {
                "requeued": 1, "merged": 0, "skipped": 1, "torn_lines": 0,
            }
            assert scheduler.get("job-00002") is not None
        finally:
            scheduler.shutdown()

    def test_duplicate_signatures_merge(self, journal):
        report = ReplayReport(
            pending=[
                PendingJob("job-00001", "block", {}),
                PendingJob("job-00002", "block", {}),
            ]
        )
        scheduler = JobScheduler(
            max_concurrent=1, executors={"block": _blocking}
        )
        try:
            summary = recover_jobs(scheduler, report)
            assert summary["requeued"] == 1
            assert summary["merged"] == 1
        finally:
            scheduler.shutdown()

    def test_recover_id_collision_is_rejected(self):
        scheduler = JobScheduler(max_concurrent=1, executors={"echo": _echo})
        try:
            job, _ = scheduler.submit("echo", {"x": 1})
            with pytest.raises(ValueError, match="already exists"):
                scheduler.submit("echo", {"x": 2}, recover_id=job.id)
        finally:
            scheduler.shutdown()


class TestJournalThreadSafety:
    def test_concurrent_appends_stay_line_atomic(self, journal):
        def writer(n):
            for i in range(25):
                journal.record_submit(f"job-{n}-{i}", "echo", {"i": i})

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        report = journal.replay()
        assert report.n_torn == 0
        assert len(report.pending) == 100


class TestTenantPersistence:
    """The owning tenant survives the journal: a crashed tenanted
    server recovers jobs into the right namespace (and quota books)."""

    def test_submit_record_carries_the_tenant(self, journal):
        journal.record_submit("job-00001", "echo", {"x": 1}, tenant="acme")
        journal.record_submit("job-00002", "echo", {"x": 2})
        pending = {p.job_id: p for p in journal.replay().pending}
        assert pending["job-00001"].tenant == "acme"
        assert pending["job-00002"].tenant is None

    def test_pre_tenancy_records_replay_as_tenantless(self, journal):
        # a journal written before tenancy existed has no tenant field
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        with journal.path.open("a") as fh:
            fh.write(
                '{"op": "submit", "job_id": "job-00009", "kind": "echo",'
                ' "params": {}, "priority": 0, "t": 1.0}\n'
            )
        (pending,) = journal.replay().pending
        assert pending.tenant is None

    def test_recovered_job_keeps_its_tenant(self, journal):
        report = ReplayReport(
            pending=[
                PendingJob(
                    "job-00003", "echo", {"x": 1}, tenant="acme",
                ),
            ]
        )
        scheduler = JobScheduler(
            max_concurrent=1, executors={"echo": _echo}, journal=journal
        )
        try:
            recover_jobs(scheduler, report)
            job = scheduler.get("job-00003")
            assert job.tenant == "acme"
            assert scheduler.wait(job.id, 10)
            # the re-journaled submit still names the tenant, so a
            # second crash-recovery round keeps the namespace too
        finally:
            scheduler.shutdown()

    def test_tenant_scopes_the_dedupe_signature(self, journal):
        from repro.service.scheduler import job_signature

        params = {"benchmark": "mult"}
        assert job_signature("analyze", params, tenant="a") != (
            job_signature("analyze", params, tenant="b")
        )
        assert job_signature("analyze", params, tenant=None) != (
            job_signature("analyze", params, tenant="a")
        )
