"""Artifact store: integrity, concurrency, stats, and gc policy.

The store is the service's persistence layer and the runner's cache
backend, so these tests pin the properties everything above relies on:
atomic publishes (two processes racing on one key never produce a torn
read), digest-verified reads (corruption is a miss, not a wrong
answer), and a gc that understands legacy seed-era entries.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import pytest

from repro.service.store import ArtifactStore, content_digest

FP = "0123456789abcdef"  # a syntactically valid 16-hex fingerprint


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store", fingerprint=FP)


class TestRoundTrip:
    def test_put_get_roundtrip(self, store):
        digest = store.put("xbased_demo", {"peak": 2.5, "trace": [1, 2, 3]})
        assert store.get("xbased_demo") == {"peak": 2.5, "trace": [1, 2, 3]}
        path = store.path_for("xbased_demo")
        assert path.name == f"xbased_demo-{FP}.pkl"
        assert content_digest(path.read_bytes()) == digest

    def test_payload_bytes_are_plain_pickle(self, store):
        """The artifact file is byte-identical to ``pickle.dumps`` — the
        pre-store ``bench/runner`` cache format."""
        value = {"name": "mult", "peak_power_mw": 2.42}
        store.put("xbased_mult", value)
        raw = store.path_for("xbased_mult").read_bytes()
        assert raw == pickle.dumps(value)
        assert pickle.loads(raw) == value

    def test_miss_raises_and_counts(self, store):
        with pytest.raises(KeyError):
            store.get("absent")
        assert store.counters.misses == 1
        assert store.counters.hits_disk == 0

    def test_get_or_compute_computes_once(self, store):
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return calls["n"]

        assert store.get_or_compute("unit_key", compute) == 1
        assert store.get_or_compute("unit_key", compute) == 1
        assert calls["n"] == 1
        assert store.counters.writes == 1
        assert store.counters.hits_disk == 1

    def test_fingerprint_versions_keys(self, store, tmp_path):
        store.put("k", "old")
        other = ArtifactStore(store.root, fingerprint="f" * 16)
        with pytest.raises(KeyError):
            other.get("k")
        other.put("k", "new")
        assert store.get("k") == "old"  # both versions coexist
        assert other.get("k") == "new"

    def test_callable_fingerprint_is_late_bound(self, tmp_path):
        current = {"fp": FP}
        store = ArtifactStore(tmp_path, fingerprint=lambda: current["fp"])
        store.put("k", 1)
        current["fp"] = "f" * 16
        with pytest.raises(KeyError):
            store.get("k")  # the bumped fingerprint misses the old entry


class TestIntegrity:
    def test_corrupt_payload_is_a_miss(self, store):
        store.put("unit_key", [1, 2, 3])
        path = store.path_for("unit_key")
        path.write_bytes(b"garbage that is not the published pickle")
        with pytest.raises(KeyError):
            store.get("unit_key")
        assert store.counters.corrupt == 1
        # ... and the caller's recompute heals the entry in place
        assert store.get_or_compute("unit_key", lambda: [4, 5]) == [4, 5]
        assert store.get("unit_key") == [4, 5]

    def test_corrupt_file_is_not_deleted_by_reader(self, store):
        """A digest mismatch must never unlink the file: in a racy
        pairing of new bytes with an old sidecar, deletion would destroy
        a concurrently-published good artifact."""
        store.put("unit_key", "value")
        path = store.path_for("unit_key")
        path.write_bytes(b"torn")
        with pytest.raises(KeyError):
            store.get("unit_key")
        assert path.exists()

    def test_warm_read_survives_unwritable_store(self, store, monkeypatch):
        """A read-only/full store must still serve hits: the hit-path
        sidecar bookkeeping is best-effort, not load-bearing."""
        store.put("unit_key", "warm value")

        def deny_write(path, meta):
            raise PermissionError("read-only store")

        monkeypatch.setattr(store, "_write_meta", deny_write)
        assert store.get("unit_key") == "warm value"
        assert store.counters.hits_disk == 1

    def test_unpicklable_bytes_are_a_miss(self, store):
        path = store.path_for("unit_key")
        store.root.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x80\x05garbage")  # no sidecar: legacy-shaped
        with pytest.raises(KeyError):
            store.get("unit_key")
        assert store.counters.corrupt == 1


def _hammer_writes(root: str, key: str, payload_byte: bytes, n: int) -> None:
    store = ArtifactStore(root, fingerprint=FP)
    value = {"tag": payload_byte.decode(), "blob": payload_byte * 65536}
    for _ in range(n):
        store.put(key, value)


class TestConcurrentWriters:
    def test_racing_processes_never_publish_torn_artifacts(self, store):
        """Two processes rewriting one key while a reader polls: every
        read returns one writer's complete value (digest-verified),
        never an interleaving."""
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_hammer_writes,
                args=(str(store.root), "unit_race", tag, 40),
            )
            for tag in (b"A", b"B")
        ]
        store.put("unit_race", {"tag": "A", "blob": b"A" * 65536})
        for writer in writers:
            writer.start()
        observed = set()
        try:
            while any(w.is_alive() for w in writers):
                try:
                    value = store.get("unit_race")
                except KeyError:
                    continue  # transient sidecar race: retried next poll
                assert value["blob"] == value["tag"].encode() * 65536
                observed.add(value["tag"])
        finally:
            for writer in writers:
                writer.join(timeout=60)
        assert all(w.exitcode == 0 for w in writers)
        final = store.get("unit_race")
        assert final["blob"] == final["tag"].encode() * 65536
        assert observed <= {"A", "B"}

    def test_no_scratch_files_survive(self, store):
        for index in range(5):
            store.put("unit_key", list(range(index)))
        assert not list(store.root.glob("*.tmp*"))


class TestStatsAndGc:
    def test_stats_counts_entries_and_kinds(self, store):
        store.put("xbased_mult", b"x" * 1000)
        store.put("xbased_FFT", b"y" * 2000)
        store.put("stressmark_peak", b"z" * 500)
        stats = store.stats()
        assert stats.n_entries == 3
        assert stats.n_legacy == 0
        assert stats.n_stale == 0
        assert stats.by_kind == {"xbased": 2, "stressmark": 1}
        sizes = sum(e.size for e in store.entries())
        assert stats.total_bytes == sizes

    def test_legacy_entries_are_reported_and_collected(self, store):
        """Seed-era bare pickles (no fingerprint, no sidecar) show up in
        stats and are evicted by gc — they can never be read again."""
        store.root.mkdir(parents=True, exist_ok=True)
        legacy = store.root / "xbased_FFT.pkl"
        legacy.write_bytes(pickle.dumps("stale seed value"))
        store.put("xbased_mult", "fresh")
        stats = store.stats()
        assert stats.n_entries == 2
        assert stats.n_legacy == 1
        assert stats.n_stale == 1  # legacy counts as stale
        report = store.gc()
        assert legacy.name in report.removed
        assert not legacy.exists()
        assert store.get("xbased_mult") == "fresh"  # live entry kept

    def test_stale_fingerprints_are_collected_without_a_cap(self, store):
        old = ArtifactStore(store.root, fingerprint="f" * 16)
        old.put("xbased_mult", "old-version")
        store.put("xbased_mult", "current")
        report = store.gc()
        assert f"xbased_mult-{'f' * 16}.pkl" in report.removed
        assert store.get("xbased_mult") == "current"

    def test_size_cap_evicts_least_recently_used(self, store):
        for name, age in (("a", 30.0), ("b", 20.0), ("c", 10.0)):
            store.put(f"unit_{name}", b"#" * 8192)
            # backdate via the sidecar so LRU order is deterministic
            path = store.path_for(f"unit_{name}")
            meta = store._read_meta(path)
            meta["accessed"] = time.time() - age
            store._write_meta(path, meta)
        report = store.gc(max_mb=18 * 1024 / (1024 * 1024))  # ~2 entries
        assert report.kept_entries == 2
        with pytest.raises(KeyError):
            store.get("unit_a")  # oldest evicted
        assert store.get("unit_b") == b"#" * 8192
        assert store.get("unit_c") == b"#" * 8192

    def test_disk_hits_refresh_recency(self, store):
        store.put("unit_a", b"#" * 8192)
        store.put("unit_b", b"#" * 8192)
        for key in ("unit_a", "unit_b"):
            path = store.path_for(key)
            meta = store._read_meta(path)
            meta["accessed"] = time.time() - 1000.0
            store._write_meta(path, meta)
        store.get("unit_a")  # touch: now newer than unit_b
        report = store.gc(max_mb=9 * 1024 / (1024 * 1024))  # ~1 entry
        assert report.kept_entries == 1
        assert store.get("unit_a") == b"#" * 8192

    def test_gc_reaps_abandoned_scratch_files(self, store):
        store.root.mkdir(parents=True, exist_ok=True)
        stale_tmp = store.root / "unit_x.pkl.tmp999"
        stale_tmp.write_bytes(b"abandoned")
        old = time.time() - 7200
        os.utime(stale_tmp, (old, old))
        fresh_tmp = store.root / "unit_y.pkl.tmp123"
        fresh_tmp.write_bytes(b"in-flight")
        store.gc()
        assert not stale_tmp.exists()
        assert fresh_tmp.exists()  # young scratch may be a live writer

    def test_gc_on_missing_root_is_a_noop(self, store):
        report = store.gc(max_mb=1)
        assert report.removed == []
        assert report.kept_entries == 0

    def test_unversioned_store_gc_keeps_its_own_entries(self, tmp_path):
        """A fingerprint-less store reads its unversioned entries fine,
        so gc must not classify them as stale and wipe them."""
        store = ArtifactStore(tmp_path / "plain")  # fingerprint=None
        store.put("unit_key", "live value")
        report = store.gc()
        assert report.removed == []
        assert store.get("unit_key") == "live value"
        assert store.stats().n_stale == 0


class TestRunnerIntegration:
    """The runner's ``_cached`` is now a store client — same disk
    layout, plus counters the service exposes."""

    @pytest.fixture
    def isolated_runner(self, tmp_path, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
        monkeypatch.setattr(runner, "_store", None)
        yield runner
        for key in list(runner._memory_cache):
            if key.startswith("unit_"):
                runner._memory_cache.pop(key)
        runner._store = None

    def test_cached_writes_through_the_store(self, isolated_runner):
        runner = isolated_runner
        assert runner._cached("unit_store_key", lambda: {"v": 7}) == {"v": 7}
        store = runner.artifact_store()
        assert store.get("unit_store_key") == {"v": 7}
        assert store.counters.writes == 1

    def test_memory_hits_are_counted(self, isolated_runner):
        runner = isolated_runner
        runner._cached("unit_mem_key", lambda: 1)
        runner._cached("unit_mem_key", lambda: 2)
        assert runner.artifact_store().counters.hits_memory == 1

    def test_store_rebinds_when_cache_dir_moves(self, isolated_runner,
                                                tmp_path):
        runner = isolated_runner
        first = runner.artifact_store()
        runner.CACHE_DIR = tmp_path / "elsewhere"
        second = runner.artifact_store()
        assert second is not first
        assert second.root == tmp_path / "elsewhere"


class TestResultTTL:
    """Per-artifact TTLs: expired entries read as misses and gc evicts
    them; TTL-free entries (the registry benchmarks) are immortal."""

    def test_put_with_ttl_stamps_expires_at(self, store):
        store.put("upload_acme_p1", {"v": 1}, ttl_s=3600.0)
        (entry,) = store.entries()
        assert entry.expires_at == pytest.approx(
            time.time() + 3600.0, abs=5.0
        )
        assert not entry.expired()

    def test_expired_entry_reads_as_a_miss(self, store):
        store.put("upload_acme_p1", {"v": 1}, ttl_s=0.05)
        assert store.get("upload_acme_p1") == {"v": 1}  # fresh: a hit
        time.sleep(0.06)
        misses = store.counters.misses
        with pytest.raises(KeyError):
            store.get("upload_acme_p1")
        assert store.counters.misses == misses + 1
        assert store.path_for("upload_acme_p1").exists()  # gc's job

    def test_gc_evicts_expired_entries(self, store):
        store.put("upload_acme_p1", {"v": 1}, ttl_s=0.05)
        store.put("upload_acme_p2", {"v": 2}, ttl_s=3600.0)
        store.put("xbased_mult", {"v": 3})  # no TTL: immortal
        time.sleep(0.06)
        report = store.gc()
        removed = set(report.removed)
        assert store.path_for("upload_acme_p1").name in removed
        assert store.path_for("upload_acme_p2").name not in removed
        assert store.get("upload_acme_p2") == {"v": 2}
        assert store.get("xbased_mult") == {"v": 3}

    def test_ttl_free_entries_never_expire(self, store):
        """Registry-benchmark artifacts carry no expires_at at all."""
        store.put("xbased_mult", {"v": 1})
        meta = store._read_meta(store.path_for("xbased_mult"))
        assert "expires_at" not in meta
        (entry,) = store.entries()
        assert entry.expires_at is None
        assert not entry.expired(now=time.time() + 10**9)

    def test_overwrite_refreshes_the_ttl(self, store):
        store.put("upload_acme_p1", {"v": 1}, ttl_s=0.05)
        time.sleep(0.06)
        store.put("upload_acme_p1", {"v": 2}, ttl_s=3600.0)
        assert store.get("upload_acme_p1") == {"v": 2}
