"""HTTP API + client: the service answers sizing queries over the wire.

Spins a real ``ThreadingHTTPServer`` on an ephemeral port, talks to it
through :class:`repro.service.client.ServiceClient`, and checks the
full loop: submit → dedupe → result (golden numbers) → store hit, plus
the error surface (unknown benchmarks list valid names, missing jobs
404, store endpoints round-trip).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import JobScheduler
from repro.service.server import AnalysisService, make_server

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_suite.json").read_text()
)


@pytest.fixture
def isolated_runner(tmp_path, monkeypatch):
    from repro.bench import runner

    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
    monkeypatch.setattr(runner, "_store", None)
    for key in list(runner._memory_cache):
        runner._memory_cache.pop(key)
    yield runner
    for key in list(runner._memory_cache):
        runner._memory_cache.pop(key)
    runner._store = None


@pytest.fixture
def client(isolated_runner):
    service = AnalysisService(scheduler=JobScheduler(max_concurrent=2))
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    port = server.server_address[1]
    try:
        yield ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0)
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


class TestEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["max_concurrent"] == 2
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }

    def test_benchmark_registry(self, client):
        names = {b["name"] for b in client.benchmarks()}
        assert {"mult", "FFT", "Viterbi"} <= names

    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("job-99999")
        assert err.value.status == 404

    def test_unknown_benchmark_400_lists_names(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("analyze", benchmark="nosuch")
        assert err.value.status == 400
        assert "valid names" in str(err.value)
        assert "mult" in err.value.payload["error"]

    def test_invalid_knob_values_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("stressmark", objective="peak", islands=0)
        assert err.value.status == 400
        assert "islands" in err.value.payload["error"]

    def test_unknown_kind_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("frobnicate")
        assert err.value.status == 400
        assert "valid kinds" in err.value.payload["error"]

    def test_malformed_query_numbers_400(self, client):
        job = client.submit("analyze", benchmark="mult")
        for path in (
            f"/v1/jobs/{job['job_id']}/result?timeout=abc",
            f"/v1/jobs/{job['job_id']}/events?since=xyz",
        ):
            with pytest.raises(ServiceError) as err:
                client._request("GET", path)
            assert err.value.status == 400  # client fault, not a 500
        client.result(job["job_id"], timeout=120)

    def test_bad_json_body_400(self, client):
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/v1/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400


class TestAnalysisQueries:
    def test_submit_wait_result_matches_golden_and_direct(self, client,
                                                          isolated_runner):
        runner = isolated_runner
        job = client.submit("analyze", benchmark="mult")
        assert job["state"] in ("queued", "running")
        payload = client.result(job["job_id"], timeout=120)
        assert payload["state"] == "done"
        result = payload["result"]
        assert result["peak_power_mw"] == pytest.approx(
            GOLDEN["mult"]["peak_power_mw"], rel=1e-9
        )
        assert result["npe_pj_per_cycle"] == pytest.approx(
            GOLDEN["mult"]["npe_pj_per_cycle"], rel=1e-9
        )
        # bit-identical (not approx) to the engine called directly: JSON
        # round-trips IEEE doubles exactly
        direct = runner.x_based("mult")
        assert result["peak_power_mw"] == direct.peak_power_mw
        assert result["peak_energy_pj"] == direct.peak_energy_pj
        assert result["path_cycles"] == direct.path_cycles

    def test_concurrent_duplicate_submits_dedupe(self, client):
        first = client.submit("analyze", benchmark="mult")
        second = client.submit("analyze", benchmark="mult")
        # mult takes long enough that the duplicate lands in flight
        assert second["job_id"] == first["job_id"]
        assert second["deduped"] is True
        a = client.result(first["job_id"], timeout=120)
        assert a["state"] == "done"
        assert a["merged"] == 1

    def test_resubmission_hits_the_store(self, client, isolated_runner):
        runner = isolated_runner
        first = client.result(
            client.submit("analyze", benchmark="mult")["job_id"], timeout=120
        )
        # drop the in-process memory layer so the second job must go to
        # disk — the store hit the acceptance criterion asks for
        runner._memory_cache.clear()
        second_job = client.submit("analyze", benchmark="mult")
        assert second_job["job_id"] != first["job_id"]
        second = client.result(second_job["job_id"], timeout=120)
        assert second["result"] == first["result"]
        stats = client.store_stats()
        assert stats["counters"]["hits_disk"] >= 1
        assert stats["counters"]["writes"] == 1  # one engine run, ever
        assert stats["entries"]["n_entries"] == 1

    def test_events_stream(self, client):
        job = client.submit("analyze", benchmark="mult")
        client.result(job["job_id"], timeout=120)
        stream = client.events(job["job_id"])
        stages = [event["stage"] for event in stream["events"]]
        assert stages[0] == "queued"
        assert "started" in stages and "resolve" in stages
        assert stages[-1] == "finished"
        tail = client.events(job["job_id"], since=stream["next"])
        assert tail["events"] == []

    def test_cancel_endpoint(self, client):
        job = client.submit("analyze", benchmark="mult")
        response = client.cancel(job["job_id"])
        assert response["job_id"] == job["job_id"]
        assert response["state"] in ("queued", "running", "done", "cancelled")
        if response["cancelled"]:
            with pytest.raises(ServiceError) as err:
                client.result(job["job_id"], timeout=30)
            assert err.value.status == 409

    def test_job_listing(self, client):
        job = client.submit("analyze", benchmark="mult")
        client.result(job["job_id"], timeout=120)
        listed = {j["job_id"]: j for j in client.jobs()}
        assert job["job_id"] in listed
        assert "result" not in listed[job["job_id"]]  # results are elided


class TestStoreEndpoints:
    def test_stats_shape(self, client):
        stats = client.store_stats()
        assert set(stats) == {"root", "entries", "counters"}
        assert stats["entries"]["n_entries"] == 0

    def test_gc_roundtrip(self, client, isolated_runner):
        client.result(
            client.submit("analyze", benchmark="mult")["job_id"], timeout=120
        )
        report = client.store_gc(max_mb=0)
        assert report["n_removed"] == 1  # the cap evicted the artifact
        assert client.store_stats()["entries"]["n_entries"] == 0

    def test_gc_rejects_bad_cap(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("POST", "/v1/store/gc", {"max_mb": "huge"})
        assert err.value.status == 400
