"""The fault-injection harness itself: spec parsing and firing rules.

Chaos tests are only as trustworthy as the injector, so the injector
gets its own unit coverage: the ``REPRO_FAULTS`` grammar (malformed
specs must fail loudly), trigger semantics (``nth``, ``on_attempt``,
``p`` with a seeded stream), the cheap no-op path when the variable is
unset, and re-arming when the spec changes mid-process.
"""

from __future__ import annotations

import time

import pytest

from repro.service import faults
from repro.service.faults import (
    FAULTS_ENV,
    FaultInjected,
    FaultSpecError,
    parse_spec,
)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """Every test starts with chaos off and attempt 1."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    faults.set_attempt(1)
    yield
    faults.set_attempt(1)


class TestParseSpec:
    def test_single_clause(self):
        rules = parse_spec("worker.start=crash")
        assert set(rules) == {"worker.start"}
        rule = rules["worker.start"]
        assert rule.action == "crash"
        assert rule.p == 1.0
        assert rule.nth is None and rule.on_attempt is None

    def test_triggers_and_multiple_sites(self):
        rules = parse_spec(
            "store.read=raise:p=0.25,seed=7;"
            "explore.batch=delay:ms=50,nth=3;"
            "worker.start=hang:on_attempt=2"
        )
        assert set(rules) == {"store.read", "explore.batch", "worker.start"}
        assert rules["store.read"].p == 0.25
        assert rules["store.read"].seed == 7
        assert rules["explore.batch"].ms == 50.0
        assert rules["explore.batch"].nth == 3
        assert rules["worker.start"].on_attempt == 2

    def test_blank_clauses_skipped(self):
        assert parse_spec("") == {}
        assert set(parse_spec(" ; worker.start=crash ; ")) == {"worker.start"}

    @pytest.mark.parametrize(
        "spec",
        [
            "worker.start",  # no action
            "=crash",  # no site
            "worker.start=segfault",  # unknown action
            "worker.start=crash:nth",  # trigger without value
            "worker.start=crash:frequency=2",  # unknown trigger
            "worker.start=crash:nth=two",  # non-numeric value
            "worker.start=raise:p=1.5",  # probability out of range
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec):
        with pytest.raises(FaultSpecError):
            parse_spec(spec)

    def test_hit_raises_on_malformed_spec(self, monkeypatch):
        # a chaos run with a typo'd spec must not silently inject nothing
        monkeypatch.setenv(FAULTS_ENV, "worker.start=segfault")
        with pytest.raises(FaultSpecError):
            faults.hit("worker.start")


class TestHit:
    def test_noop_when_env_unset(self):
        for _ in range(10):
            faults.hit("worker.start")  # must not raise, must be free

    def test_unarmed_site_is_untouched(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "store.read=raise")
        faults.hit("worker.start")  # different site: no fire
        with pytest.raises(FaultInjected):
            faults.hit("store.read")

    def test_raise_action(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "x=raise")
        with pytest.raises(FaultInjected, match="site 'x'"):
            faults.hit("x")

    def test_nth_trigger(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "x=raise:nth=2")
        faults.hit("x")  # 1st hit: armed but not the nth
        with pytest.raises(FaultInjected):
            faults.hit("x")  # 2nd hit fires
        faults.hit("x")  # 3rd hit: past the nth, quiet again

    def test_on_attempt_trigger(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "x=raise:on_attempt=1")
        faults.set_attempt(2)
        faults.hit("x")  # retry attempt: the first-attempt fault is gone
        faults.set_attempt(1)
        with pytest.raises(FaultInjected):
            faults.hit("x")

    def test_probability_zero_never_fires(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "x=raise:p=0.0")
        for _ in range(50):
            faults.hit("x")

    def test_probability_stream_is_seed_deterministic(self, monkeypatch):
        def firing_pattern(spec):
            monkeypatch.setenv(FAULTS_ENV, spec)
            pattern = []
            for _ in range(40):
                try:
                    faults.hit("x")
                    pattern.append(False)
                except FaultInjected:
                    pattern.append(True)
            return pattern

        first = firing_pattern("x=raise:p=0.5,seed=7")
        # rotate through a different spec so the cached plan (and its
        # advanced RNG stream) is dropped before the replay
        monkeypatch.setenv(FAULTS_ENV, "y=delay:ms=0")
        faults.hit("y")
        second = firing_pattern("x=raise:p=0.5,seed=7")
        assert first == second
        assert any(first) and not all(first)

    def test_delay_action_sleeps_then_continues(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "x=delay:ms=30")
        start = time.monotonic()
        faults.hit("x")
        assert time.monotonic() - start >= 0.02

    def test_hang_action_honors_ms_cap(self, monkeypatch):
        # an uncapped hang is watchdog prey; the ms cap keeps unit tests
        # out of the watchdog's jurisdiction
        monkeypatch.setenv(FAULTS_ENV, "x=hang:ms=300")
        start = time.monotonic()
        faults.hit("x")
        assert time.monotonic() - start >= 0.2

    def test_spec_change_rearms(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "x=raise:nth=1")
        with pytest.raises(FaultInjected):
            faults.hit("x")
        monkeypatch.setenv(FAULTS_ENV, "y=raise:nth=1")
        faults.hit("x")  # no longer armed
        with pytest.raises(FaultInjected):
            faults.hit("y")  # fresh plan, fresh counters

    def test_active_spec_reports_env(self, monkeypatch):
        assert faults.active_spec() == ""
        monkeypatch.setenv(FAULTS_ENV, "x=crash")
        assert faults.active_spec() == "x=crash"
