"""Benchmark-suite sanity: every Table 4.1 kernel assembles, halts, and
computes what it claims to compute (checked against Python reference
implementations through the ISS)."""

import pytest

from repro.bench import ALL_BENCHMARKS, get_benchmark
from repro.isa import InstructionSetSimulator

MASK16 = 0xFFFF


def run_iss(name: str, inputs: list[int]) -> InstructionSetSimulator:
    program = get_benchmark(name).program().with_inputs(inputs)
    iss = InstructionSetSimulator(program)
    iss.run()
    return iss


class TestSuiteShape:
    def test_fourteen_benchmarks(self):
        assert len(ALL_BENCHMARKS) == 14

    def test_paper_names_present(self):
        expected = {
            "mult", "binSearch", "tea8", "intFilt", "tHold", "div",
            "inSort", "rle", "intAVG", "autoCorr", "FFT", "ConvEn",
            "Viterbi", "PI",
        }
        assert set(ALL_BENCHMARKS) == expected

    def test_categories(self):
        sensors = [b for b in ALL_BENCHMARKS.values() if b.category == "sensor"]
        eembc = [b for b in ALL_BENCHMARKS.values() if b.category == "eembc"]
        assert len(sensors) == 9 and len(eembc) == 4

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError, match="available"):
            get_benchmark("dhrystone")

    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_assembles_and_halts(self, name):
        benchmark = get_benchmark(name)
        inputs = benchmark.input_sets(1, seed=1)[0]
        iss = run_iss(name, inputs)
        assert iss.halted

    @pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
    def test_input_sets_are_deterministic(self, name):
        benchmark = get_benchmark(name)
        assert benchmark.input_sets(3, seed=5) == benchmark.input_sets(3, seed=5)
        assert benchmark.input_sets(1, seed=5) != benchmark.input_sets(1, seed=6)


class TestFunctionalCorrectness:
    def test_mult_is_mac(self):
        a = [3, 5, 7, 11]
        b = [2, 4, 6, 8]
        iss = run_iss("mult", a + b)
        acc = sum(x * y for x, y in zip(a, b))
        assert iss.read_word(0x0300) == acc & MASK16
        assert iss.read_word(0x0302) == (acc >> 16) & MASK16

    @pytest.mark.parametrize(
        "key,expected", [(17, 2), (90, 7), (3, 0), (4, 0xFFFF), (100, 0xFFFF)]
    )
    def test_binsearch_finds_index(self, key, expected):
        iss = run_iss("binSearch", [key])
        assert iss.read_word(0x0300) == expected

    def test_intavg_is_mean(self):
        samples = [8, 16, 24, 32, 40, 48, 56, 64]
        iss = run_iss("intAVG", samples)
        assert iss.read_word(0x0300) == sum(samples) // 8

    @pytest.mark.parametrize("dividend", [0, 1, 7, 11, 15])
    def test_div_quotient_remainder(self, dividend):
        iss = run_iss("div", [dividend])
        assert iss.read_word(0x0300) == dividend // 3
        assert iss.read_word(0x0302) == dividend % 3

    def test_insort_sorts(self):
        values = [40, 10, 30, 20]
        iss = run_iss("inSort", values)
        sorted_mem = [iss.read_word(0x0310 + 2 * i) for i in range(4)]
        assert sorted_mem == sorted(values)
        assert iss.read_word(0x0300) == min(values) + max(values)

    def test_thold_sets_bits_above_threshold(self):
        samples = [0x100, 0x300, 0x1FF, 0x200]
        iss = run_iss("tHold", samples)
        expected = 0
        for index, sample in enumerate(samples):
            if sample >= 0x200:
                expected |= 1 << index
        assert iss.read_word(0x0300) == expected

    def test_rle_counts_runs(self):
        iss = run_iss("rle", [2, 2, 2, 5])
        assert iss.read_word(0x0300) == 2  # first run value
        assert iss.read_word(0x0302) == 3  # first run length
        assert iss.read_word(0x0304) == 5  # final run value
        assert iss.read_word(0x0306) == 1

    def test_fft_butterfly_x0_is_sum(self):
        samples = [10, 20, 30, 40]
        iss = run_iss("FFT", samples)
        assert iss.read_word(0x0300) == sum(samples)  # DC bin

    def test_autocorr_lag0_is_energy(self):
        samples = [3, 4, 5, 6, 7]
        iss = run_iss("autoCorr", samples)
        lag0 = sum(x * x for x in samples[:4]) & MASK16
        assert iss.read_word(0x0300) == lag0

    def test_viterbi_metrics_monotone(self):
        iss = run_iss("Viterbi", [0, 0, 0])
        # zero branch metrics: state-0 path stays at its additive floor
        assert iss.read_word(0x0300) <= iss.read_word(0x0302)

    def test_pi_saturates(self):
        # tiny samples -> large error -> controller output clamps at 0x400
        iss = run_iss("PI", [0, 0])
        assert iss.read_word(0x0300) == 0x0400

    def test_tea8_mixes_reversibly_differs_by_input(self):
        first = run_iss("tea8", [1, 2]).read_word(0x0300)
        second = run_iss("tea8", [1, 3]).read_word(0x0300)
        assert first != second

    def test_conven_differs_by_input(self):
        first = run_iss("ConvEn", [0b10110010]).read_word(0x0300)
        second = run_iss("ConvEn", [0b10110011]).read_word(0x0300)
        assert first != second
