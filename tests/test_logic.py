"""Unit and property tests for the three-valued logic kernel."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic import (
    ONE,
    X,
    ZERO,
    all_trits,
    bus_to_int,
    int_to_bus,
    is_known,
    refines,
    t_and,
    t_mux,
    t_nand,
    t_nor,
    t_not,
    t_or,
    t_xnor,
    t_xor,
)
from repro.logic.tables import BINARY_TABLES, MUX_TABLE, NOT_TABLE, table_for

BOOL_OPS = {
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "NAND": lambda a, b: 1 - (a & b),
    "NOR": lambda a, b: 1 - (a | b),
    "XOR": lambda a, b: a ^ b,
    "XNOR": lambda a, b: 1 - (a ^ b),
}

TERNARY_OPS = {
    "AND": t_and,
    "OR": t_or,
    "NAND": t_nand,
    "NOR": t_nor,
    "XOR": t_xor,
    "XNOR": t_xnor,
}

trits = st.sampled_from([ZERO, ONE, X])
bits = st.sampled_from([ZERO, ONE])


class TestScalarSemantics:
    def test_known_values(self):
        assert is_known(ZERO) and is_known(ONE) and not is_known(X)

    @pytest.mark.parametrize("name", sorted(BOOL_OPS))
    def test_boolean_restriction(self, name):
        """On concrete inputs, ternary ops agree with plain boolean logic."""
        for a in (0, 1):
            for b in (0, 1):
                assert TERNARY_OPS[name](a, b) == BOOL_OPS[name](a, b)

    def test_controlling_values(self):
        assert t_and(ZERO, X) == ZERO
        assert t_and(X, ZERO) == ZERO
        assert t_or(ONE, X) == ONE
        assert t_or(X, ONE) == ONE
        assert t_nand(ZERO, X) == ONE
        assert t_nor(ONE, X) == ZERO

    def test_x_propagation(self):
        assert t_and(ONE, X) == X
        assert t_or(ZERO, X) == X
        assert t_xor(ZERO, X) == X
        assert t_xor(X, X) == X
        assert t_not(X) == X

    def test_mux_select(self):
        assert t_mux(ZERO, ONE, ZERO) == ONE
        assert t_mux(ONE, ONE, ZERO) == ZERO

    def test_mux_x_select_agreeing_inputs(self):
        assert t_mux(X, ONE, ONE) == ONE
        assert t_mux(X, ZERO, ZERO) == ZERO
        assert t_mux(X, ONE, ZERO) == X


class TestRefinement:
    @given(trits)
    def test_x_refined_by_all(self, value):
        assert refines(value, X)

    @given(bits)
    def test_known_only_refines_itself(self, value):
        assert refines(value, value)
        assert not refines(1 - value, value)

    @given(bits, trits, bits, trits)
    def test_ops_monotone_under_refinement(self, a, sa, b, sb):
        """Concretizing inputs can only concretize outputs consistently.

        This monotonicity is what makes the X-based analysis sound: the
        symbolic run covers every concrete refinement of its inputs.
        """
        for name, op in TERNARY_OPS.items():
            if refines(a, sa) and refines(b, sb):
                assert refines(op(a, b), op(sa, sb)), name

    @given(bits, trits, bits, trits, bits, trits)
    def test_mux_monotone_under_refinement(self, s, ss, a, sa, b, sb):
        if refines(s, ss) and refines(a, sa) and refines(b, sb):
            assert refines(t_mux(s, a, b), t_mux(ss, sa, sb))


class TestTables:
    @pytest.mark.parametrize("name", sorted(TERNARY_OPS))
    def test_tables_match_scalar(self, name):
        table = BINARY_TABLES[name]
        for a in all_trits():
            for b in all_trits():
                assert table[a, b] == TERNARY_OPS[name](a, b)

    def test_not_table(self):
        for a in all_trits():
            assert NOT_TABLE[a] == t_not(a)

    def test_mux_table(self):
        for s in all_trits():
            for a in all_trits():
                for b in all_trits():
                    assert MUX_TABLE[s, a, b] == t_mux(s, a, b)

    def test_table_for_unknown_kind(self):
        with pytest.raises(KeyError):
            table_for("LATCH")

    def test_tables_are_uint8(self):
        assert BINARY_TABLES["AND"].dtype == np.uint8
        assert MUX_TABLE.shape == (3, 3, 3)


class TestBusCodecs:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_roundtrip(self, value):
        assert bus_to_int(int_to_bus(value, 16)) == value

    def test_x_bus_is_none(self):
        bus = int_to_bus(5, 8)
        bus[3] = X
        assert bus_to_int(bus) is None
