"""Differential regression layer: every engine ≡ the scalar reference.

For every Table 4.1 benchmark the batched **bitplane** engine (packed
dual-rail planes, the default) must produce the *same*
:class:`ExecutionTree` as the scalar uint8 reference — segment for
segment, fork for fork, trace record for trace record — and the analysis
numbers computed from it must match the golden values pinned from the
seed's scalar run (``tests/golden_suite.json``).  This covers both axes
at once: the lock-step batching (PR 1) and the packed representation
(this PR); the batched *reference* engine keeps a spot check.

The heavy multi-path kernels make this the most expensive test module in
the suite; everything per benchmark is computed once in a module-scoped
fixture and shared across the assertions.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.suite import ALL_BENCHMARKS, get_benchmark
from repro.cells import SG65
from repro.core.activity import explore
from repro.core.peakenergy import compute_peak_energy
from repro.core.peakpower import compute_peak_power
from repro.power.model import PowerModel

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_suite.json").read_text()
)

#: comfortably tighter than any real drift, loose enough for libm/numpy
#: version skew in the last couple of ulps
REL = 1e-9


def assert_trees_identical(scalar, batched):
    assert len(batched.segments) == len(scalar.segments)
    assert batched.n_memo_hits == scalar.n_memo_hits
    for ours, ref in zip(batched.segments, scalar.segments):
        assert ours.index == ref.index
        assert ours.parent == ref.parent
        assert ours.flat_start == ref.flat_start
        assert ours.n_cycles == ref.n_cycles
        assert ours.end == ref.end
        assert [(f.assignment, f.target) for f in ours.forks] == [
            (f.assignment, f.target) for f in ref.forks
        ]
    assert len(batched.flat_trace) == len(scalar.flat_trace)
    assert np.array_equal(
        batched.flat_trace.values_matrix(), scalar.flat_trace.values_matrix()
    ), "settled net values differ"
    assert np.array_equal(
        batched.flat_trace.active_matrix(), scalar.flat_trace.active_matrix()
    ), "activity flags differ"
    assert np.array_equal(
        batched.flat_trace.mem_accesses(), scalar.flat_trace.mem_accesses()
    ), "memory access counts differ"
    for ours, ref in zip(batched.flat_trace.records, scalar.flat_trace.records):
        assert ours.cycle == ref.cycle
        assert ours.annotations == ref.annotations


@pytest.fixture(scope="module")
def model(cpu):
    return PowerModel(cpu.netlist, SG65, clock_ns=10.0)


@pytest.fixture(scope="module", params=sorted(ALL_BENCHMARKS))
def engines(request, cpu):
    """(name, reference scalar tree, bitplane batched tree) per benchmark."""
    name = request.param
    benchmark = get_benchmark(name)
    trees = [
        explore(
            cpu,
            benchmark.program(),
            max_cycles=benchmark.max_cycles,
            max_segments=benchmark.max_segments,
            batch_size=batch_size,
            engine=engine,
        )
        for batch_size, engine in ((1, "reference"), (None, "bitplane"))
    ]
    return name, trees[0], trees[1]


class TestBatchedEqualsScalar:
    def test_execution_tree_bit_identical(self, engines):
        _name, scalar, batched = engines
        assert_trees_identical(scalar, batched)

    def test_reference_batched_spot_check(self, engines, cpu):
        """The uint8 reference engine's lock-step mode stays identical too
        (one benchmark-sized probe; the bitplane fixture covers all 14)."""
        name, scalar, _bitplane = engines
        if name != "mult":
            pytest.skip("reference-batched probe runs on mult only")
        benchmark = get_benchmark(name)
        batched = explore(
            cpu,
            benchmark.program(),
            max_cycles=benchmark.max_cycles,
            max_segments=benchmark.max_segments,
            batch_size=8,
            engine="reference",
        )
        assert_trees_identical(scalar, batched)

    def test_analysis_matches_golden(self, engines, model):
        """Batched-engine analysis reproduces the pinned seed numbers."""
        name, _scalar, batched = engines
        benchmark = get_benchmark(name)
        peak_power = compute_peak_power(batched, model)
        peak_energy = compute_peak_energy(
            batched, peak_power, loop_bound=benchmark.loop_bound
        )
        golden = GOLDEN[name]
        assert len(batched.segments) == golden["n_segments"]
        assert batched.n_cycles == golden["n_cycles"]
        assert batched.n_memo_hits == golden["n_memo_hits"]
        assert peak_power.peak_cycle == golden["peak_cycle"]
        assert peak_energy.path_cycles == golden["path_cycles"]
        assert peak_power.peak_power_mw == pytest.approx(
            golden["peak_power_mw"], rel=REL
        )
        assert peak_energy.peak_energy_pj == pytest.approx(
            golden["peak_energy_pj"], rel=REL
        )
        assert peak_energy.normalized_peak_energy_pj_per_cycle == pytest.approx(
            golden["npe_pj_per_cycle"], rel=REL
        )


class TestStackedPeakPowerEqualsScalar:
    """Vectorized Algorithm 2 ≡ the retained per-segment reference.

    Bit-identical means bit-identical: the engines share one einsum-based
    transition kernel whose row results are independent of chunking and
    row subsetting, so even the float outputs must match exactly.
    """

    @pytest.fixture(scope="class")
    def peak_pair(self, engines, model):
        name, _scalar, batched = engines
        scalar_peak = compute_peak_power(batched, model, engine="scalar")
        stacked_peak = compute_peak_power(batched, model, engine="stacked")
        return name, batched, scalar_peak, stacked_peak

    def test_peak_trace_bit_identical(self, peak_pair):
        _name, _tree, scalar_peak, stacked_peak = peak_pair
        assert np.array_equal(scalar_peak.trace_mw, stacked_peak.trace_mw)
        assert scalar_peak.peak_cycle == stacked_peak.peak_cycle
        assert scalar_peak.peak_power_mw == stacked_peak.peak_power_mw

    def test_even_odd_profiles_bit_identical(self, peak_pair):
        _name, _tree, scalar_peak, stacked_peak = peak_pair
        assert np.array_equal(
            scalar_peak.even_values, stacked_peak.even_values
        )
        assert np.array_equal(scalar_peak.odd_values, stacked_peak.odd_values)

    def test_module_breakdown_bit_identical(self, peak_pair):
        _name, _tree, scalar_peak, stacked_peak = peak_pair
        assert set(scalar_peak.module_mw) == set(stacked_peak.module_mw)
        for name, series in scalar_peak.module_mw.items():
            assert np.array_equal(series, stacked_peak.module_mw[name]), name

    def test_segment_energies_bit_identical(self, peak_pair):
        name, tree, scalar_peak, stacked_peak = peak_pair
        assert np.array_equal(
            scalar_peak.segment_energy_pj, stacked_peak.segment_energy_pj
        )
        benchmark = get_benchmark(name)
        energies = [
            compute_peak_energy(tree, peak, loop_bound=benchmark.loop_bound)
            for peak in (scalar_peak, stacked_peak)
        ]
        assert energies[0].peak_energy_pj == energies[1].peak_energy_pj
        assert energies[0].path_segments == energies[1].path_segments


class TestGoldenCoverage:
    def test_all_benchmarks_pinned(self):
        assert set(GOLDEN) == set(ALL_BENCHMARKS)
