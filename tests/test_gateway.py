"""The multi-tenant upload gateway: POST /v1/programs end to end.

Validation rejects bad uploads *before* the scheduler (no journal or
job residue), accepted source reproduces ``repro analyze`` bit for
bit, analysis-time failures surface as structured 422s (never worker
crashes), and the tenancy layer enforces authn, rate limits, job
quotas, namespacing, and result TTLs over a real HTTP server.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import gateway
from repro.service.client import (
    JobFailedError,
    RateLimitedError,
    ServiceClient,
    ServiceError,
)
from repro.service.journal import JobJournal
from repro.service.scheduler import JobScheduler
from repro.service.server import AnalysisService, make_server
from repro.tenancy import Keyring, TenantQuotas

MULT_SOURCE = None  # populated lazily from the registry

#: assembles, then spins forever mutating state — only the analysis
#: cycle budget can stop it
SPIN_SOURCE = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
loop:   inc r4
        jmp loop
"""

BAD_SOURCE = "start: frobnicate r4, r5\n"

BYTE_MODE_SOURCE = """
        .org 0xF000
start:  mov.b r4, r5
end:    jmp end
"""


def _mult_source() -> str:
    global MULT_SOURCE
    if MULT_SOURCE is None:
        from repro.bench import programs

        MULT_SOURCE = programs.MULT
    return MULT_SOURCE


# -- validation unit tests (no server) ---------------------------------


class TestValidateUpload:
    def test_accepts_registry_source(self):
        params = gateway.validate_upload(
            {"source": _mult_source(), "name": "mult"}, 256 * 1024
        )
        assert params["name"] == "mult"
        assert params["program_id"] == gateway.program_id(_mult_source())
        assert params["max_cycles"] == gateway.DEFAULT_MAX_CYCLES
        assert params["max_segments"] == gateway.DEFAULT_MAX_SEGMENTS
        assert params["loop_bound"] is None

    def test_non_dict_body_400(self):
        with pytest.raises(gateway.UploadError) as err:
            gateway.validate_upload(["nope"], 1024)
        assert err.value.status == 400

    def test_unknown_fields_400(self):
        with pytest.raises(gateway.UploadError) as err:
            gateway.validate_upload(
                {"source": "x", "exploit": 1}, 1024
            )
        assert err.value.status == 400
        assert "exploit" in str(err.value)

    def test_missing_or_empty_source_400(self):
        for body in ({}, {"source": ""}, {"source": "   "}, {"source": 3}):
            with pytest.raises(gateway.UploadError) as err:
                gateway.validate_upload(body, 1024)
            assert err.value.status == 400

    def test_oversized_source_413_names_the_limit(self):
        with pytest.raises(gateway.UploadError) as err:
            gateway.validate_upload({"source": "x" * 2048}, 1024)
        assert err.value.status == 413
        assert err.value.code == "source_too_large"
        assert err.value.extra["limit_bytes"] == 1024
        assert err.value.extra["size_bytes"] == 2048

    def test_tenant_limit_never_exceeds_the_server_cap(self):
        huge = "x" * (gateway.MAX_SOURCE_BYTES_CAP + 1)
        with pytest.raises(gateway.UploadError) as err:
            gateway.validate_upload(
                {"source": huge}, 10 * gateway.MAX_SOURCE_BYTES_CAP
            )
        assert err.value.status == 413
        assert (
            err.value.extra["limit_bytes"] == gateway.MAX_SOURCE_BYTES_CAP
        )

    def test_bad_name_400(self):
        with pytest.raises(gateway.UploadError) as err:
            gateway.validate_upload(
                {"source": "x", "name": "../escape"}, 1024
            )
        assert err.value.status == 400
        assert err.value.extra["field"] == "name"

    def test_bad_budget_knobs_400(self):
        for field in ("loop_bound", "max_cycles", "max_segments"):
            for value in (0, -1, "ten", True):
                with pytest.raises(gateway.UploadError) as err:
                    gateway.validate_upload(
                        {"source": "x", field: value}, 1024
                    )
                assert err.value.status == 400

    def test_budgets_cannot_exceed_the_defaults(self):
        with pytest.raises(gateway.UploadError) as err:
            gateway.validate_upload(
                {
                    "source": "x",
                    "max_cycles": gateway.DEFAULT_MAX_CYCLES + 1,
                },
                1024,
            )
        assert err.value.status == 400

    def test_non_assembling_source_422_with_line(self):
        with pytest.raises(gateway.UploadError) as err:
            gateway.validate_upload({"source": BAD_SOURCE}, 1024)
        assert err.value.status == 422
        assert err.value.code == "assembly_error"
        assert err.value.extra["line"] == 1
        assert "frobnicate" in err.value.extra["source_line"]

    def test_byte_mode_source_422(self):
        with pytest.raises(gateway.UploadError) as err:
            gateway.validate_upload({"source": BYTE_MODE_SOURCE}, 1024)
        assert err.value.status == 422
        assert err.value.code == "assembly_error"
        assert "byte-mode" in str(err.value)


class TestNormalizeParams:
    def test_forged_program_id_is_recomputed(self):
        params = gateway.normalize_upload_params(
            {"source": _mult_source(), "program_id": "pdeadbeef"}
        )
        assert params["program_id"] == gateway.program_id(_mult_source())

    def test_oversized_budgets_are_clamped(self):
        params = gateway.normalize_upload_params(
            {"source": "x", "max_cycles": 10**9, "max_segments": 10**9}
        )
        assert params["max_cycles"] == gateway.DEFAULT_MAX_CYCLES
        assert params["max_segments"] == gateway.DEFAULT_MAX_SEGMENTS

    def test_tenant_and_ttl_survive_normalization(self):
        """Only params cross the process boundary to workers, so the
        server-injected namespacing fields must round-trip."""
        params = gateway.normalize_upload_params(
            {"source": "x", "tenant": "acme", "ttl_s": 60}
        )
        assert params["tenant"] == "acme"
        assert params["ttl_s"] == 60.0

    def test_garbage_params_raise_value_error(self):
        with pytest.raises(ValueError):
            gateway.normalize_upload_params({"source": ""})
        with pytest.raises(ValueError):
            gateway.normalize_upload_params(
                {"source": "x", "name": "bad name"}
            )


class TestJobErrorCode:
    def test_prefixed_errors_map_to_codes(self):
        assert (
            gateway.job_error_code(
                "RuntimeError: cycle_budget_exceeded: spin: exceeded"
            )
            == "cycle_budget_exceeded"
        )
        assert (
            gateway.job_error_code("assembly_error: line 3")
            == "assembly_error"
        )

    def test_plain_failures_have_no_code(self):
        assert gateway.job_error_code(None) is None
        assert gateway.job_error_code("worker crashed (signal 9)") is None
        assert gateway.job_error_code("deadline exceeded") is None


# -- HTTP fixtures ------------------------------------------------------


@pytest.fixture
def isolated_runner(tmp_path, monkeypatch):
    from repro.bench import runner

    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
    monkeypatch.setattr(runner, "_store", None)
    for key in list(runner._memory_cache):
        runner._memory_cache.pop(key)
    yield runner
    for key in list(runner._memory_cache):
        runner._memory_cache.pop(key)
    runner._store = None


def _serve(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


@pytest.fixture
def open_client(isolated_runner):
    """An un-tenanted server: the gateway works without a keyring."""
    service = AnalysisService(scheduler=JobScheduler(max_concurrent=2))
    server, thread = _serve(service)
    try:
        yield ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}", timeout=30.0
        ), service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


@pytest.fixture
def tenanted(isolated_runner, tmp_path):
    """A 2-tenant server (alice + an admin) plus their keys."""
    keyring = Keyring(tmp_path / "keyring.json")
    _, alice_key = keyring.add(
        "alice",
        quotas=TenantQuotas(
            requests_per_min=6000.0, burst=100, max_concurrent_jobs=2,
            max_source_bytes=64 * 1024, result_ttl_s=3600.0,
        ),
    )
    _, admin_key = keyring.add("root", admin=True)
    service = AnalysisService(
        scheduler=JobScheduler(max_concurrent=2), keyring=keyring
    )
    server, thread = _serve(service)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield {
            "service": service,
            "keyring": keyring,
            "base": base,
            "alice": ServiceClient(base, timeout=30.0, api_key=alice_key),
            "admin": ServiceClient(base, timeout=30.0, api_key=admin_key),
            "anon": ServiceClient(base, timeout=30.0),
        }
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=10)


# -- open-server gateway behavior --------------------------------------


class TestUploadPipeline:
    def test_upload_matches_local_analyze_bit_for_bit(self, open_client):
        from repro.asm import assemble
        from repro.bench import runner
        from repro.core import analyze

        client, service = open_client
        job = client.upload(_mult_source(), name="mult")
        assert job["program_id"] == gateway.program_id(_mult_source())
        payload = client.result(job["job_id"], timeout=120)
        result = payload["result"]
        local = analyze(
            runner.shared_cpu(),
            assemble(_mult_source(), "mult"),
            runner.shared_model(),
        ).to_payload()
        for field, expected in local.items():
            assert result[field] == expected  # bit-identical, no tolerance
        assert result["cached"] is False
        # progress events streamed over the existing events API
        events = client.events(job["job_id"])["events"]
        stages = {event["stage"] for event in events}
        assert "resolve" in stages
        assert any(event["seq"] >= 0 for event in events)

        # the bound is addressable by program id afterwards
        stored = client.program(job["program_id"])
        assert stored["peak_power_mw"] == local["peak_power_mw"]

        # re-uploading identical source serves the stored artifact
        again = client.upload(_mult_source(), name="mult")
        payload = client.result(again["job_id"], timeout=120)
        assert payload["result"]["cached"] is True
        assert (
            payload["result"]["peak_power_mw"] == local["peak_power_mw"]
        )

    def test_inflight_duplicate_upload_dedupes(self, open_client):
        client, service = open_client
        first = client.upload(_mult_source(), name="mult")
        second = client.upload(_mult_source(), name="mult")
        if second["job_id"] == first["job_id"]:
            assert second["deduped"] is True
        client.result(first["job_id"], timeout=120)

    def test_non_halting_program_trips_the_cycle_budget(self, open_client):
        client, service = open_client
        job = client.upload(SPIN_SOURCE, name="spin", max_cycles=500)
        with pytest.raises(JobFailedError) as err:
            client.result(job["job_id"], timeout=120)
        assert err.value.status == 422
        assert err.value.payload["code"] == "cycle_budget_exceeded"
        assert "500" in err.value.payload["error"]

    def test_upload_kind_is_rejected_on_the_jobs_endpoint(
        self, open_client
    ):
        client, service = open_client
        with pytest.raises(ServiceError) as err:
            client.submit("upload", source=SPIN_SOURCE)
        assert err.value.status == 400
        assert "/v1/programs" in err.value.payload["error"]

    def test_unknown_program_404(self, open_client):
        client, service = open_client
        with pytest.raises(ServiceError) as err:
            client.program("p0123456789abcdef")
        assert err.value.status == 404
        assert err.value.payload["code"] == "not_found"

    def test_rejected_uploads_leave_no_residue(
        self, isolated_runner, tmp_path
    ):
        """Bad uploads must not touch the scheduler or the journal."""
        journal = JobJournal(tmp_path / "journal.jsonl")
        service = AnalysisService(
            scheduler=JobScheduler(max_concurrent=1, journal=journal)
        )
        server, thread = _serve(service)
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}", timeout=30.0
        )
        try:
            for source, status in (
                (BAD_SOURCE, 422),
                (BYTE_MODE_SOURCE, 422),
                ("", 400),
            ):
                with pytest.raises(ServiceError) as err:
                    client.upload(source)
                assert err.value.status == status
            assert service.scheduler.jobs() == []
            assert not journal.path.exists()  # not even an empty file
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)

    def test_oversized_source_413_over_http(self, open_client):
        """A source over the server cap (but under the transport body
        cap) gets the structured 413 and leaves no job behind."""
        client, service = open_client
        big = "; filler\n" * (gateway.MAX_SOURCE_BYTES_CAP // 8)
        with pytest.raises(ServiceError) as err:
            client.upload(big)
        assert err.value.status == 413
        assert err.value.payload["code"] == "source_too_large"
        assert service.scheduler.jobs() == []

    def test_giant_body_is_rejected_before_reading(self, open_client):
        import urllib.error
        import urllib.request

        client, service = open_client
        big = b'{"source": "' + b"x" * (2 * 1024 * 1024) + b'"}'
        request = urllib.request.Request(
            client.base_url + "/v1/programs",
            data=big,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=10)
            raise AssertionError("a 2 MB body must not be accepted")
        except urllib.error.HTTPError as err:
            # the server answered before draining the body
            assert err.code == 413
        except OSError:
            # or it hung up mid-upload — either way, nothing got in
            pass
        assert service.scheduler.jobs() == []


# -- tenancy over HTTP --------------------------------------------------


class TestTenantedGateway:
    def test_anonymous_requests_401(self, tenanted):
        with pytest.raises(ServiceError) as err:
            tenanted["anon"].jobs()
        assert err.value.status == 401
        assert err.value.payload["code"] == "unauthorized"
        with pytest.raises(ServiceError) as err:
            tenanted["anon"].upload(_mult_source())
        assert err.value.status == 401

    def test_healthz_stays_open_and_reports_tenancy(self, tenanted):
        health = tenanted["anon"].health()
        assert health["ok"] is True
        assert health["tenancy"] is True

    def test_revoked_key_401(self, tenanted):
        _, key = tenanted["keyring"].add("mallory")
        tenanted["keyring"].revoke("mallory")
        client = ServiceClient(tenanted["base"], api_key=key)
        with pytest.raises(ServiceError) as err:
            client.jobs()
        assert err.value.status == 401

    def test_tenant_isolation_and_admin_visibility(self, tenanted):
        _, bob_key = tenanted["keyring"].add("bob")
        bob = ServiceClient(tenanted["base"], timeout=30.0, api_key=bob_key)
        alice = tenanted["alice"]

        job = alice.upload(_mult_source(), name="mult")
        alice.result(job["job_id"], timeout=120)

        # a foreign job id answers 404, exactly like a nonexistent one
        with pytest.raises(ServiceError) as err:
            bob.status(job["job_id"])
        assert err.value.status == 404
        assert all(j["job_id"] != job["job_id"] for j in bob.jobs())

        # results are namespaced per tenant: bob never sees alice's
        with pytest.raises(ServiceError) as err:
            bob.program(job["program_id"])
        assert err.value.status == 404

        # the admin sees every tenant's jobs
        assert any(
            j["job_id"] == job["job_id"] for j in tenanted["admin"].jobs()
        )
        assert tenanted["admin"].status(job["job_id"])["state"] == "done"

    def test_store_maintenance_is_admin_only(self, tenanted):
        with pytest.raises(ServiceError) as err:
            tenanted["alice"].store_stats()
        assert err.value.status == 403
        assert err.value.payload["code"] == "forbidden"
        assert "entries" in tenanted["admin"].store_stats()

    def test_rate_limit_429_with_retry_after(self, tenanted):
        service = tenanted["service"]
        alice = tenanted["keyring"].get("alice")
        # drain the bucket white-box, then observe the HTTP refusal
        while service.rate_limiter.check("alice", alice.quotas).allowed:
            pass
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            tenanted["base"] + "/v1/programs",
            data=b'{"source": "x"}',
            method="POST",
            headers={
                "Content-Type": "application/json",
                "X-API-Key": tenanted["alice"].api_key,
            },
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 429
        assert int(err.value.headers["Retry-After"]) >= 1
        body = err.value.read()
        import json as _json

        payload = _json.loads(body)
        assert payload["code"] == "rate_limited"
        assert payload["retry_after_s"] >= 1

    def test_client_sleeps_out_429_and_succeeds(self, tenanted):
        """Satellite: the client honors Retry-After with bounded
        backoff instead of surfacing the 429."""
        service = tenanted["service"]
        alice = tenanted["keyring"].get("alice")
        while service.rate_limiter.check("alice", alice.quotas).allowed:
            pass
        t0 = time.monotonic()
        job = tenanted["alice"].upload(_mult_source(), name="mult")
        assert time.monotonic() - t0 >= 0.5  # it actually waited
        tenanted["alice"].result(job["job_id"], timeout=120)

    def test_client_raises_rate_limited_past_budget(self, tenanted):
        service = tenanted["service"]
        alice = tenanted["keyring"].get("alice")
        while service.rate_limiter.check("alice", alice.quotas).allowed:
            pass
        impatient = ServiceClient(
            tenanted["base"],
            api_key=tenanted["alice"].api_key,
            retry_429_budget_s=0.0,
        )
        with pytest.raises(RateLimitedError) as err:
            impatient.upload(_mult_source())
        assert err.value.status == 429
        assert err.value.retry_after_s >= 1

    def test_job_quota_429(self, tenanted):
        service = tenanted["service"]
        # fill alice's 2 slots white-box; the next submit must 429
        service.job_quota.note("alice")
        service.job_quota.note("alice")
        with pytest.raises(RateLimitedError) as err:
            ServiceClient(
                tenanted["base"],
                api_key=tenanted["alice"].api_key,
                retry_429_budget_s=0.0,
            ).upload(_mult_source())
        assert err.value.payload["code"] == "quota_exceeded"
        service.job_quota.release("alice")
        service.job_quota.release("alice")

    def test_quota_slot_released_when_job_finishes(self, tenanted):
        service = tenanted["service"]
        job = tenanted["alice"].upload(_mult_source(), name="mult")
        tenanted["alice"].result(job["job_id"], timeout=120)
        deadline = time.monotonic() + 5
        while (
            service.job_quota.active("alice")
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert service.job_quota.active("alice") == 0

    def test_dedupe_does_not_leak_quota(self, tenanted):
        service = tenanted["service"]
        first = tenanted["alice"].upload(_mult_source(), name="mult")
        second = tenanted["alice"].upload(_mult_source(), name="mult")
        tenanted["alice"].result(first["job_id"], timeout=120)
        tenanted["alice"].result(second["job_id"], timeout=120)
        deadline = time.monotonic() + 5
        while (
            service.job_quota.active("alice")
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert service.job_quota.active("alice") == 0


class TestResultTTL:
    def test_expired_result_404s_and_reupload_recomputes(
        self, isolated_runner, tmp_path
    ):
        keyring = Keyring(tmp_path / "keyring.json")
        _, key = keyring.add(
            "brief",
            quotas=TenantQuotas(
                requests_per_min=6000.0, burst=100, result_ttl_s=0.4
            ),
        )
        service = AnalysisService(
            scheduler=JobScheduler(max_concurrent=2), keyring=keyring
        )
        server, thread = _serve(service)
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            timeout=30.0,
            api_key=key,
        )
        try:
            job = client.upload(_mult_source(), name="mult")
            result = client.result(job["job_id"], timeout=120)["result"]
            assert client.program(job["program_id"])  # fresh: readable
            time.sleep(0.5)
            # past the TTL the stored result is gone (a read is a miss
            # even before gc physically evicts the bytes)
            with pytest.raises(ServiceError) as err:
                client.program(job["program_id"])
            assert err.value.status == 404
            assert "expired" in err.value.payload["error"]

            # gc (admin path exercised elsewhere) evicts the artifact
            store = service.store
            key_name = gateway.store_key("brief", job["program_id"])
            report = store.gc()
            assert any(key_name in name for name in report.removed)

            # a re-upload recomputes rather than serving the corpse
            again = client.upload(_mult_source(), name="mult")
            fresh = client.result(again["job_id"], timeout=120)["result"]
            assert fresh["cached"] is False
            assert fresh["peak_power_mw"] == result["peak_power_mw"]
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=10)


class TestErrorEnvelope:
    def test_every_error_carries_a_machine_code(self, open_client):
        client, service = open_client
        import urllib.error
        import urllib.request

        for method, path, data, expected in (
            ("GET", "/v1/nope", None, "not_found"),
            ("GET", "/v1/jobs/job-999", None, "not_found"),
            ("POST", "/v1/jobs", b"not json", "invalid_request"),
            ("POST", "/v1/programs", b'{"source": 5}', "invalid_request"),
        ):
            request = urllib.request.Request(
                client.base_url + path, data=data, method=method
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            import json as _json

            payload = _json.loads(err.value.read())
            assert payload["code"] == expected, path
            assert "error" in payload

    def test_internal_errors_are_opaque(self, open_client, monkeypatch):
        """A handler bug must never leak tracebacks or store paths."""
        client, service = open_client

        root = service.store.root

        def boom(self):
            raise RuntimeError(f"secret path {root}")

        monkeypatch.setattr(AnalysisService, "store", property(boom))
        with pytest.raises(ServiceError) as err:
            client.store_stats()
        assert err.value.status == 500
        assert err.value.payload == {
            "error": "internal server error",
            "code": "internal",
        }
