"""Property-based tests for the batched 3-valued logic core.

Randomized (seeded) netlists and value matrices check the two invariants
the batched engine rests on:

* **batch ≡ scalar**: evaluating a ``(B, n_nets)`` matrix settles every
  row exactly as evaluating each row alone — for ``eval_comb``,
  ``compute_activity``, and ``next_dff_values``;
* **semantics**: the vectorized lookup tables agree gate-by-gate with the
  scalar Kleene operators of :mod:`repro.logic.ternary`, and the paper's
  X-propagation/activity marking rule holds row-wise (a gate is active iff
  it changed, or it is X and driven by an active gate).
"""

import numpy as np
import pytest

from repro.logic import X, ternary
from repro.netlist.builder import NetlistBuilder
from repro.sim.evaluator import LevelizedEvaluator

SCALAR_OPS = {
    "AND": ternary.t_and,
    "OR": ternary.t_or,
    "NAND": ternary.t_nand,
    "NOR": ternary.t_nor,
    "XOR": ternary.t_xor,
    "XNOR": ternary.t_xnor,
}
UNARY_OPS = {"NOT": ternary.t_not, "BUF": ternary.t_buf}


def random_netlist(rng: np.random.Generator, n_inputs: int, n_gates: int):
    """A random combinational netlist over every gate kind and arity."""
    nb = NetlistBuilder("prop")
    nets = list(nb.bus_input("in", n_inputs))
    nets.append(nb.const0())
    nets.append(nb.const1())
    kinds = list(SCALAR_OPS) + list(UNARY_OPS) + ["MUX"]
    for _ in range(n_gates):
        kind = kinds[rng.integers(0, len(kinds))]
        def pick():
            return nets[rng.integers(0, len(nets))]
        if kind in UNARY_OPS:
            net = nb.not_(pick()) if kind == "NOT" else nb.buf(pick())
        elif kind == "MUX":
            net = nb.mux(pick(), pick(), pick())
        else:
            build = {
                "AND": nb.and_, "OR": nb.or_, "NAND": nb.nand,
                "NOR": nb.nor, "XOR": nb.xor, "XNOR": nb.xnor,
            }[kind]
            net = build(pick(), pick())
        nets.append(net)
    nb.output("out", nets[-1])
    return nb.finish()


def random_batch(
    rng: np.random.Generator, evaluator: LevelizedEvaluator, batch: int
) -> np.ndarray:
    """A settled random batch: random {0,1,X} inputs, comb evaluated."""
    values = evaluator.fresh_values(batch=batch)
    values[:, evaluator.input_nets] = rng.integers(
        0, 3, size=(batch, evaluator.input_nets.size), dtype=np.uint8
    )
    evaluator.eval_comb(values)
    return values


@pytest.fixture(params=range(8))
def rng(request):
    return np.random.default_rng(1000 + request.param)


class TestBatchedEvalEqualsScalar:
    def test_eval_comb_rowwise(self, rng):
        netlist = random_netlist(rng, n_inputs=int(rng.integers(2, 9)),
                                 n_gates=int(rng.integers(20, 120)))
        evaluator = LevelizedEvaluator(netlist)
        batch = int(rng.integers(1, 12))
        values = evaluator.fresh_values(batch=batch)
        values[:, evaluator.input_nets] = rng.integers(
            0, 3, size=(batch, evaluator.input_nets.size), dtype=np.uint8
        )
        expected = values.copy()
        for row in expected:  # the scalar reference, one vector at a time
            evaluator.eval_comb(row)
        evaluator.eval_comb(values)
        assert np.array_equal(values, expected)

    def test_eval_comb_matches_ternary_semantics(self, rng):
        netlist = random_netlist(rng, n_inputs=4, n_gates=60)
        evaluator = LevelizedEvaluator(netlist)
        values = random_batch(rng, evaluator, batch=5)
        for row in values:
            for gate in netlist.gates:
                if gate.kind in SCALAR_OPS:
                    a, b = (int(row[i]) for i in gate.inputs)
                    assert row[gate.index] == SCALAR_OPS[gate.kind](a, b)
                elif gate.kind in UNARY_OPS:
                    assert row[gate.index] == UNARY_OPS[gate.kind](
                        int(row[gate.inputs[0]])
                    )
                elif gate.kind == "MUX":
                    sel, a, b = (int(row[i]) for i in gate.inputs)
                    assert row[gate.index] == ternary.t_mux(sel, a, b)

    def test_compute_activity_rowwise(self, rng):
        netlist = random_netlist(rng, n_inputs=6, n_gates=80)
        evaluator = LevelizedEvaluator(netlist)
        batch = int(rng.integers(2, 10))
        prev = random_batch(rng, evaluator, batch)
        cur = random_batch(rng, evaluator, batch)
        batched = evaluator.compute_activity(prev, cur)
        for row in range(batch):
            scalar = evaluator.compute_activity(prev[row], cur[row])
            assert np.array_equal(batched[row], scalar), f"row {row}"

    def test_next_dff_values_rowwise(self, rng):
        nb = NetlistBuilder("dffs")
        ins = nb.bus_input("in", 4)
        for position, net in enumerate(ins):
            nb.dff(net, reset_value=position % 2)
        netlist = nb.finish()
        evaluator = LevelizedEvaluator(netlist)
        values = evaluator.fresh_values(batch=6)
        values[:, evaluator.input_nets] = rng.integers(
            0, 3, size=(6, 4), dtype=np.uint8
        )
        batched = evaluator.next_dff_values(values, reset=False)
        for row in range(6):
            assert np.array_equal(
                batched[row], evaluator.next_dff_values(values[row], reset=False)
            )
        reset = evaluator.next_dff_values(values, reset=True)
        assert reset.shape == (6, evaluator.dff_out.size)
        assert np.array_equal(
            reset[0], evaluator.next_dff_values(values[0], reset=True)
        )
        reset[0, 0] ^= 1  # broadcast result must be writable per-row
        assert not np.array_equal(reset[0], reset[1])


class TestActivityRule:
    """The paper's marking rule, checked literally and row-wise."""

    def test_changed_gates_are_active(self, rng):
        netlist = random_netlist(rng, n_inputs=5, n_gates=50)
        evaluator = LevelizedEvaluator(netlist)
        prev = random_batch(rng, evaluator, 4)
        cur = random_batch(rng, evaluator, 4)
        active = evaluator.compute_activity(prev, cur)
        assert np.all(active[prev != cur]), "every changed net must be active"

    def test_known_unchanged_gates_are_idle(self, rng):
        netlist = random_netlist(rng, n_inputs=5, n_gates=50)
        evaluator = LevelizedEvaluator(netlist)
        prev = random_batch(rng, evaluator, 4)
        cur = random_batch(rng, evaluator, 4)
        active = evaluator.compute_activity(prev, cur)
        idle = (prev == cur) & (cur != X)
        assert not np.any(active[idle]), "known unchanged nets must be idle"

    def test_x_propagation_from_driving_gates(self, rng):
        netlist = random_netlist(rng, n_inputs=5, n_gates=70)
        evaluator = LevelizedEvaluator(netlist)
        prev = random_batch(rng, evaluator, 3)
        cur = random_batch(rng, evaluator, 3)
        active = evaluator.compute_activity(prev, cur)
        input_set = set(int(net) for net in evaluator.input_nets)
        for row in range(3):
            for gate in netlist.gates:
                if gate.index in input_set:
                    expected = (
                        prev[row, gate.index] != cur[row, gate.index]
                        or cur[row, gate.index] == X
                    )
                elif gate.kind in ("CONST0", "CONST1"):
                    expected = prev[row, gate.index] != cur[row, gate.index]
                else:
                    driven = any(active[row, i] for i in gate.inputs)
                    expected = prev[row, gate.index] != cur[row, gate.index] or (
                        cur[row, gate.index] == X and driven
                    )
                assert bool(active[row, gate.index]) == expected, (
                    f"row {row}, gate {gate.index} ({gate.kind})"
                )
