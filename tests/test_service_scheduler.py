"""Scheduler: in-flight dedupe, priorities, cancellation, core budget.

The fast tests drive the scheduler with gated fake executors so
ordering is deterministic; the integration class runs the real
store-backed analyze pipeline and pins the PR's acceptance criterion —
two concurrent submissions of one benchmark produce exactly one engine
run, bit-identical to ``analyze()`` called directly, and a store hit on
resubmission.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.scheduler import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    JobScheduler,
    job_signature,
)


class GatedExecutor:
    """Counts calls; optionally blocks until released."""

    def __init__(self, gated: bool = False):
        self.calls = []
        self.lock = threading.Lock()
        self.release = threading.Event()
        self.entered = threading.Event()
        if not gated:
            self.release.set()

    def __call__(self, params, ctx):
        with self.lock:
            self.calls.append(dict(params))
        self.entered.set()
        ctx.emit("working", str(params))
        assert self.release.wait(30), "executor never released"
        return {"echo": dict(params)}


@pytest.fixture
def gated():
    return GatedExecutor(gated=True)


def make_scheduler(executor, **kwargs):
    kwargs.setdefault("max_concurrent", 1)
    return JobScheduler(executors={"fake": executor}, **kwargs)


class TestDedupe:
    def test_identical_inflight_requests_share_one_job(self, gated):
        scheduler = make_scheduler(gated)
        try:
            first, deduped_first = scheduler.submit("fake", {"x": 1})
            assert not deduped_first
            assert gated.entered.wait(10)  # first job is now running
            second, deduped_second = scheduler.submit("fake", {"x": 1})
            assert deduped_second
            assert second is first
            assert first.merged == 1
            gated.release.set()
            assert scheduler.wait(first.id, timeout=30)
            assert first.state == DONE
            assert first.result == {"echo": {"x": 1}}
            assert len(gated.calls) == 1  # ONE engine run for two clients
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_signature_ignores_priority_and_key_order(self):
        assert job_signature("analyze", {"a": 1, "b": 2}) == job_signature(
            "analyze", {"b": 2, "a": 1}
        )
        assert job_signature("analyze", {"a": 1}) != job_signature(
            "profile", {"a": 1}
        )

    def test_different_params_do_not_dedupe(self, gated):
        scheduler = make_scheduler(gated)
        try:
            first, _ = scheduler.submit("fake", {"x": 1})
            second, deduped = scheduler.submit("fake", {"x": 2})
            assert not deduped
            assert second is not first
            gated.release.set()
            assert scheduler.wait(first.id, timeout=30)
            assert scheduler.wait(second.id, timeout=30)
            assert len(gated.calls) == 2
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_completed_jobs_do_not_dedupe(self):
        executor = GatedExecutor()
        scheduler = make_scheduler(executor)
        try:
            first, _ = scheduler.submit("fake", {"x": 1})
            assert scheduler.wait(first.id, timeout=30)
            second, deduped = scheduler.submit("fake", {"x": 1})
            assert not deduped
            assert second.id != first.id
            assert scheduler.wait(second.id, timeout=30)
            # a resubmission recomputes (or, in the real executors, hits
            # the artifact store) instead of reusing the dead job object
            assert len(executor.calls) == 2
        finally:
            scheduler.shutdown()

    def test_unknown_kind_is_rejected(self):
        scheduler = make_scheduler(GatedExecutor())
        try:
            with pytest.raises(KeyError, match="valid kinds"):
                scheduler.submit("nope", {})
        finally:
            scheduler.shutdown()


class TestPriorityAndEvents:
    def test_higher_priority_runs_first(self, gated):
        scheduler = make_scheduler(gated, max_concurrent=1)
        try:
            blocker, _ = scheduler.submit("fake", {"job": "blocker"})
            assert gated.entered.wait(10)
            low, _ = scheduler.submit("fake", {"job": "low"}, priority=0)
            high, _ = scheduler.submit("fake", {"job": "high"}, priority=5)
            gated.release.set()
            for job in (blocker, low, high):
                assert scheduler.wait(job.id, timeout=30)
            order = [call["job"] for call in gated.calls]
            assert order == ["blocker", "high", "low"]
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_deduped_submission_raises_shared_job_priority(self, gated):
        """A high-priority duplicate transfers its urgency to the shared
        queued job instead of silently losing it."""
        scheduler = make_scheduler(gated, max_concurrent=1)
        try:
            blocker, _ = scheduler.submit("fake", {"job": "blocker"})
            assert gated.entered.wait(10)
            low, _ = scheduler.submit("fake", {"job": "low"}, priority=0)
            rival, _ = scheduler.submit("fake", {"job": "rival"}, priority=5)
            joined, deduped = scheduler.submit(
                "fake", {"job": "low"}, priority=10
            )
            assert deduped and joined is low
            assert low.priority == 10
            gated.release.set()
            for job in (blocker, low, rival):
                assert scheduler.wait(job.id, timeout=30)
            order = [call["job"] for call in gated.calls]
            assert order == ["blocker", "low", "rival"]
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_stressmark_defaults_normalize_into_one_signature(self):
        """Omitted vs explicitly-defaulted GA knobs describe the same
        engine run and must dedupe onto one job."""
        from repro.service.scheduler import normalize_params

        assert normalize_params("stressmark", {"objective": "peak"}) == (
            normalize_params(
                "stressmark",
                {"objective": "peak", "islands": 1, "migration_interval": 2},
            )
        )
        gated = GatedExecutor(gated=True)
        scheduler = JobScheduler(
            max_concurrent=1, executors={"stressmark": gated}
        )
        try:
            first, _ = scheduler.submit("stressmark", {"objective": "peak"})
            assert gated.entered.wait(10)
            second, deduped = scheduler.submit(
                "stressmark",
                {"objective": "peak", "islands": 1, "migration_interval": 2},
            )
            assert deduped and second is first
            gated.release.set()
            assert scheduler.wait(first.id, timeout=30)
            assert len(gated.calls) == 1
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_fifo_within_equal_priority(self, gated):
        scheduler = make_scheduler(gated, max_concurrent=1)
        try:
            blocker, _ = scheduler.submit("fake", {"job": "blocker"})
            assert gated.entered.wait(10)
            for index in range(3):
                scheduler.submit("fake", {"job": index}, priority=1)
            gated.release.set()
            deadline = time.monotonic() + 30
            while len(gated.calls) < 4 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert [c["job"] for c in gated.calls[1:]] == [0, 1, 2]
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_event_stream_is_incremental(self):
        scheduler = make_scheduler(GatedExecutor())
        try:
            job, _ = scheduler.submit("fake", {"x": 1})
            assert scheduler.wait(job.id, timeout=30)
            events = scheduler.events_since(job.id)
            stages = [event["stage"] for event in events]
            assert stages[0] == "queued"
            assert "started" in stages and "working" in stages
            assert stages[-1] == "finished"
            cursor = events[2]["seq"]
            tail = scheduler.events_since(job.id, since=cursor)
            assert [event["seq"] for event in tail] == [
                event["seq"] for event in events[2:]
            ]
        finally:
            scheduler.shutdown()

    def test_failed_job_reports_error(self):
        def boom(params, ctx):
            raise ValueError("engine exploded")

        scheduler = JobScheduler(max_concurrent=1, executors={"fake": boom})
        try:
            job, _ = scheduler.submit("fake", {})
            assert scheduler.wait(job.id, timeout=30)
            assert job.state == FAILED
            assert "engine exploded" in job.error
            # the failure released the slot: the scheduler still works
            job2, _ = scheduler.submit("fake", {"retry": 1})
            assert scheduler.wait(job2.id, timeout=30)
        finally:
            scheduler.shutdown()


class TestCancellation:
    def test_cancel_queued_job(self, gated):
        scheduler = make_scheduler(gated, max_concurrent=1)
        try:
            blocker, _ = scheduler.submit("fake", {"job": "blocker"})
            assert gated.entered.wait(10)
            queued, _ = scheduler.submit("fake", {"job": "victim"})
            assert queued.state == QUEUED
            assert scheduler.cancel(queued.id) is True
            assert queued.state == CANCELLED
            gated.release.set()
            assert scheduler.wait(blocker.id, timeout=30)
            assert all(c["job"] != "victim" for c in gated.calls)
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_cancel_running_is_best_effort(self, gated):
        scheduler = make_scheduler(gated)
        try:
            job, _ = scheduler.submit("fake", {})
            assert gated.entered.wait(10)
            assert scheduler.cancel(job.id) is False
            assert job.cancel_requested
            gated.release.set()
            assert scheduler.wait(job.id, timeout=30)
            assert job.state == DONE  # the run itself completed
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_cancelled_job_frees_the_dedupe_slot(self, gated):
        scheduler = make_scheduler(gated, max_concurrent=1)
        try:
            blocker, _ = scheduler.submit("fake", {"job": "blocker"})
            assert gated.entered.wait(10)
            queued, _ = scheduler.submit("fake", {"job": "victim"})
            scheduler.cancel(queued.id)
            again, deduped = scheduler.submit("fake", {"job": "victim"})
            assert not deduped and again is not queued
            gated.release.set()
            assert scheduler.wait(again.id, timeout=30)
            assert again.state == DONE
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_cancel_spares_deduped_waiters(self, gated):
        """One waiter's cancel must not kill another client's identical
        deduped request — it only peels that waiter off."""
        scheduler = make_scheduler(gated, max_concurrent=1)
        try:
            blocker, _ = scheduler.submit("fake", {"job": "blocker"})
            assert gated.entered.wait(10)
            shared, _ = scheduler.submit("fake", {"job": "shared"})
            joined, deduped = scheduler.submit("fake", {"job": "shared"})
            assert deduped and joined is shared
            assert scheduler.cancel(shared.id) is False  # peel one waiter
            assert shared.state == QUEUED  # the other client's job lives
            assert scheduler.cancel(shared.id) is True  # last one cancels
            assert shared.state == CANCELLED
            gated.release.set()
            assert scheduler.wait(blocker.id, timeout=30)
        finally:
            gated.release.set()
            scheduler.shutdown()

    def test_cancel_unknown_job_raises(self):
        scheduler = make_scheduler(GatedExecutor())
        try:
            with pytest.raises(KeyError):
                scheduler.cancel("job-99999")
        finally:
            scheduler.shutdown()

    def test_finished_jobs_are_evicted_beyond_the_cap(self):
        scheduler = JobScheduler(
            max_concurrent=1, executors={"fake": GatedExecutor()},
            max_finished_jobs=3,
        )
        try:
            jobs = []
            for index in range(6):
                job, _ = scheduler.submit("fake", {"n": index})
                assert scheduler.wait(job.id, timeout=30)
                jobs.append(job)
            retained = {j.id for j in scheduler.jobs()}
            assert {j.id for j in jobs[-3:]} <= retained
            assert len(retained) == 3  # the long-lived server stays bounded
            with pytest.raises(KeyError):
                scheduler.get(jobs[0].id)
        finally:
            scheduler.shutdown()

    def test_shutdown_cancels_queue_and_rejects_submits(self, gated):
        scheduler = make_scheduler(gated, max_concurrent=1)
        running, _ = scheduler.submit("fake", {"job": "blocker"})
        assert gated.entered.wait(10)
        queued, _ = scheduler.submit("fake", {"job": "stranded"})
        gated.release.set()
        scheduler.shutdown()
        assert queued.state == CANCELLED
        with pytest.raises(RuntimeError):
            scheduler.submit("fake", {})


class TestCoreBudget:
    def test_service_slots_split_the_host(self, monkeypatch):
        from repro.parallel import pool

        monkeypatch.setattr(pool.os, "cpu_count", lambda: 8)
        assert pool.service_slots(workers_per_job=2) == (4, 2)
        assert pool.service_slots(workers_per_job=3) == (2, 3)
        # workers=0 ("one per core") -> a single whole-host job slot
        assert pool.service_slots(workers_per_job=0) == (1, 8)
        # an explicit cap lowers, never raises
        assert pool.service_slots(max_jobs=2, workers_per_job=2) == (2, 2)
        assert pool.service_slots(max_jobs=99, workers_per_job=2) == (4, 2)
        with pytest.raises(ValueError):
            pool.service_slots(max_jobs=0)

    def test_derived_scheduler_budget_never_oversubscribes(self):
        import os

        scheduler = JobScheduler(
            workers_per_job=1, executors={"fake": GatedExecutor()}
        )
        try:
            cores = os.cpu_count() or 1
            product = scheduler.max_concurrent * scheduler.workers_per_job
            assert product <= cores
        finally:
            scheduler.shutdown()

    def test_explicit_slots_clamp_inner_workers(self, monkeypatch):
        from repro.parallel import pool

        monkeypatch.setattr(pool.os, "cpu_count", lambda: 4)
        scheduler = JobScheduler(
            max_concurrent=4, workers_per_job=4,
            executors={"fake": GatedExecutor()},
        )
        try:
            # jobs x inner <= cores: the explicit fan-out wins, inner
            # collapses (exactly run_suite's jobs/workers composition)
            assert scheduler.max_concurrent == 4
            assert scheduler.workers_per_job == 1
        finally:
            scheduler.shutdown()

    def test_invalid_max_concurrent_rejected(self):
        with pytest.raises(ValueError):
            JobScheduler(max_concurrent=0, executors={})


class TestRealPipelineIntegration:
    """Acceptance pin: dedupe + bit-identity + store hit on the real
    store-backed analyze executors."""

    @pytest.fixture
    def isolated_runner(self, tmp_path, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
        monkeypatch.setattr(runner, "_store", None)
        for key in list(runner._memory_cache):
            runner._memory_cache.pop(key)
        yield runner
        for key in list(runner._memory_cache):
            runner._memory_cache.pop(key)
        runner._store = None

    def test_concurrent_submits_one_engine_run_bit_identical(
        self, isolated_runner, monkeypatch
    ):
        runner = isolated_runner
        engine_runs = []
        real_analyze = runner.analyze

        def counting_analyze(*args, **kwargs):
            engine_runs.append(kwargs)
            return real_analyze(*args, **kwargs)

        monkeypatch.setattr(runner, "analyze", counting_analyze)
        scheduler = JobScheduler(max_concurrent=2)
        try:
            first, _ = scheduler.submit("analyze", {"benchmark": "mult"})
            second, deduped = scheduler.submit(
                "analyze", {"benchmark": "mult"}
            )
            assert deduped and second is first
            assert scheduler.wait(first.id, timeout=120)
            assert first.state == DONE, first.error
            assert len(engine_runs) == 1  # one run served both clients
        finally:
            scheduler.shutdown()

        # bit-identical to analyze() called directly (same floats)
        direct = real_analyze(
            runner.shared_cpu(),
            runner.get_benchmark("mult").program(),
            runner.shared_model(),
            **runner.get_benchmark("mult").analysis_kwargs(),
        )
        result = first.result
        assert result["peak_power_mw"] == direct.peak_power_mw
        assert result["peak_energy_pj"] == direct.peak_energy_pj
        assert result["npe_pj_per_cycle"] == direct.npe_pj_per_cycle
        assert result["path_cycles"] == direct.peak_energy.path_cycles
        assert result["n_segments"] == len(direct.tree.segments)
        # ... and to the service's JSON summary of that direct report
        payload = direct.to_payload()
        assert payload["peak_power_mw"] == result["peak_power_mw"]

        # resubmission resolves through the store, not the engine
        runner._memory_cache.clear()
        scheduler2 = JobScheduler(max_concurrent=1)
        try:
            third, deduped = scheduler2.submit(
                "analyze", {"benchmark": "mult"}
            )
            assert not deduped
            assert scheduler2.wait(third.id, timeout=120)
            assert third.state == DONE, third.error
            assert third.result == result
        finally:
            scheduler2.shutdown()
        assert len(engine_runs) == 1  # still one engine run, ever
        assert runner.artifact_store().counters.hits_disk >= 1

    def test_unknown_benchmark_fails_with_valid_names(self, isolated_runner):
        scheduler = JobScheduler(max_concurrent=1)
        try:
            job, _ = scheduler.submit("analyze", {"benchmark": "nope"})
            assert scheduler.wait(job.id, timeout=30)
            assert job.state == FAILED
            assert "valid names" in job.error and "mult" in job.error
        finally:
            scheduler.shutdown()
