"""Copy-on-write snapshot layer: observationally identical to eager copies.

Randomized (seeded) interleavings of forks and writes over a whole family
tree of memories, mirrored against a plain eager-copy reference — the CoW
sharing, materialization, and digest caching must never change what any
member observes.  Plus the machine-level contract: a snapshot taken
before stepping is immutable, however the machine is driven afterwards.
"""

import numpy as np
import pytest

from repro.asm import assemble
from repro.sim.memory import MASK16, MemoryXAddressError, TernaryMemory


def eager_state(memory: TernaryMemory) -> tuple[np.ndarray, np.ndarray]:
    return memory.words.copy(), memory.xmask.copy()


def fresh_digest(memory: TernaryMemory) -> bytes:
    import hashlib

    h = hashlib.blake2b(digest_size=16)
    h.update(memory.words.tobytes())
    h.update(memory.xmask.tobytes())
    return h.digest()


class TestCoWProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_fork_then_mutate_isolation(self, seed):
        """Any interleaving of forks and writes keeps every family member
        equal to its eagerly-copied mirror."""
        rng = np.random.default_rng(900 + seed)
        n_words = 32
        root = TernaryMemory(n_words=n_words)
        family = [root]
        mirrors = [eager_state(root)]
        for _step in range(120):
            victim = int(rng.integers(0, len(family)))
            memory = family[victim]
            op = rng.integers(0, 4)
            if op == 0 and len(family) < 12:
                family.append(memory.fork())
                mirrors.append(
                    (mirrors[victim][0].copy(), mirrors[victim][1].copy())
                )
                continue
            addr = int(rng.integers(0, n_words))
            value = int(rng.integers(0, 1 << 16))
            xmask = int(rng.integers(0, 1 << 16))
            words, xmasks = mirrors[victim]
            if op == 1:
                memory.write(addr, value, xmask)
                words[addr] = value & MASK16 & ~xmask
                xmasks[addr] = xmask & MASK16
            elif op == 2:
                memory.write_uncertain(addr, value, xmask)
                differs = (
                    (int(words[addr]) ^ (value & MASK16))
                    | int(xmasks[addr])
                    | (xmask & MASK16)
                )
                words[addr] = int(words[addr]) & ~differs & MASK16
                xmasks[addr] = differs & MASK16
            else:
                memory.load_word(addr, value, xmask)
                words[addr] = value & MASK16
                xmasks[addr] = xmask & MASK16
        for memory, (words, xmasks) in zip(family, mirrors):
            assert np.array_equal(memory.words, words)
            assert np.array_equal(memory.xmask, xmasks)

    @pytest.mark.parametrize("seed", range(3))
    def test_digest_cache_tracks_contents(self, seed):
        """The memoized digest always equals a fresh hash of the arrays."""
        rng = np.random.default_rng(50 + seed)
        memory = TernaryMemory(n_words=16)
        family = [memory]
        for _step in range(60):
            victim = family[int(rng.integers(0, len(family)))]
            op = rng.integers(0, 3)
            if op == 0 and len(family) < 6:
                family.append(victim.fork())
            elif op == 1:
                victim.write(
                    int(rng.integers(0, 16)), int(rng.integers(0, 1 << 16))
                )
            for member in family:
                assert member.digest() == fresh_digest(member)

    def test_copy_is_observational_deep_copy(self):
        memory = TernaryMemory(n_words=8)
        memory.write(3, 0x1234)
        clone = memory.copy()
        memory.write(3, 0x9999)
        clone.write(4, 0x4444)
        assert memory.read(3) == (0x9999, 0)
        assert clone.read(3) == (0x1234, 0)
        assert memory.read(4)[1] == MASK16  # still unknown in the parent
        assert clone.read(4) == (0x4444, 0)

    def test_x_address_store_still_rejected(self):
        memory = TernaryMemory(n_words=8).fork()
        with pytest.raises(MemoryXAddressError):
            memory.write(None, 1)


PROGRAM = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
        mov #5, r4
        mov r4, &0x0300
        add r4, r4
        mov r4, &0x0302
end:    jmp end
"""


class TestMachineSnapshotImmutability:
    """Machine snapshots share state copy-on-write but must stay frozen."""

    def test_snapshot_survives_stepping(self, cpu):
        program = assemble(PROGRAM, "cow")
        machine = cpu.make_machine(program, symbolic_inputs=True)
        snap = machine.snapshot()
        frozen_values = snap["values"].copy()
        # The bitplane engine carries activity inside the packed planes
        # (snap["values"]); the reference engine snapshots it separately.
        frozen_active = (
            None if snap["prev_active"] is None else snap["prev_active"].copy()
        )
        frozen_digest = snap["memory"].digest()
        for _ in range(20):
            machine.step()
        assert np.array_equal(snap["values"], frozen_values)
        if frozen_active is not None:
            assert np.array_equal(snap["prev_active"], frozen_active)
        assert snap["memory"].digest() == frozen_digest

    def test_restore_round_trip_is_exact(self, cpu):
        program = assemble(PROGRAM, "cow")
        machine = cpu.make_machine(program, symbolic_inputs=True)
        for _ in range(3):
            machine.step()
        snap = machine.snapshot()
        records_a = [machine.step() for _ in range(15)]
        machine.restore(snap)
        records_b = [machine.step() for _ in range(15)]
        for a, b in zip(records_a, records_b):
            assert a.cycle == b.cycle
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.active, b.active)
            assert (a.mem_reads, a.mem_writes) == (b.mem_reads, b.mem_writes)

    def test_trace_records_do_not_alias_future_cycles(self, cpu):
        """A record's values must stay the cycle's settled values even
        though the machine hands the same array onward copy-on-write."""
        from repro.sim.trace import Trace

        program = assemble(PROGRAM, "cow")
        machine = cpu.make_machine(program, symbolic_inputs=True)
        trace = Trace(machine.netlist.n_nets)
        frozen = []
        for _ in range(10):
            record = machine.step(trace=trace)
            frozen.append(record.values.copy())
        for record, values in zip(trace.records, frozen):
            assert np.array_equal(record.values, values)
