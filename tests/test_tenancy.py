"""Tenancy primitives: the keyring and the admission-control budgets.

The gateway's security story rests on these pieces, so they are pinned
directly: plaintext keys are never persisted (only SHA-256 hashes),
revocation and live-file rotation work against a running keyring, and
the rate/quota limiters answer with honest ``Retry-After`` hints.
"""

from __future__ import annotations

import json
import os
import stat

import pytest

from repro.tenancy import (
    KEY_PREFIX,
    Decision,
    JobQuota,
    Keyring,
    KeyringError,
    RateLimiter,
    TenantQuotas,
    generate_key,
    hash_key,
)


@pytest.fixture
def keyring(tmp_path):
    return Keyring(tmp_path / "keyring.json")


class TestKeys:
    def test_generated_keys_are_prefixed_and_unique(self):
        keys = {generate_key() for _ in range(32)}
        assert len(keys) == 32
        assert all(k.startswith(KEY_PREFIX) for k in keys)

    def test_hash_is_sha256_hex(self):
        assert len(hash_key("rk_x")) == 64
        assert hash_key("rk_x") == hash_key("rk_x")
        assert hash_key("rk_x") != hash_key("rk_y")


class TestKeyring:
    def test_add_returns_plaintext_but_stores_only_the_hash(self, keyring):
        tenant, key = keyring.add("acme")
        assert key.startswith(KEY_PREFIX)
        assert tenant.key_sha256 == hash_key(key)
        raw = keyring.path.read_text()
        assert key not in raw  # the plaintext never touches disk
        assert tenant.key_sha256 in raw

    def test_keyring_file_is_owner_only(self, keyring):
        keyring.add("acme")
        mode = stat.S_IMODE(os.stat(keyring.path).st_mode)
        assert mode == 0o600

    def test_authenticate_round_trip(self, keyring):
        tenant, key = keyring.add("acme")
        assert keyring.authenticate(key).id == "acme"
        assert keyring.authenticate("rk_wrong") is None
        assert keyring.authenticate(None) is None
        assert keyring.authenticate("") is None
        # a key without the prefix is rejected before any hashing
        assert keyring.authenticate("garbage") is None

    def test_revoked_key_stops_authenticating_but_stays_on_file(
        self, keyring
    ):
        tenant, key = keyring.add("acme")
        keyring.revoke("acme")
        assert keyring.authenticate(key) is None
        reloaded = Keyring(keyring.path)
        assert reloaded.get("acme").revoked is True  # kept for audit

    def test_reload_picks_up_external_rotation(self, keyring, tmp_path):
        """`repro keys add` against a live server's keyring file takes
        effect without a restart (mtime-triggered reload)."""
        keyring.add("acme")
        other = Keyring(keyring.path)
        _, key = other.add("beta")
        # force an mtime difference even on coarse filesystems
        os.utime(keyring.path, (0, 0))
        assert keyring.authenticate(key).id == "beta"

    def test_half_written_file_keeps_last_good_snapshot(self, keyring):
        tenant, key = keyring.add("acme")
        keyring.path.write_text('{"version": 1, "tenants": [')  # torn
        os.utime(keyring.path, (0, 0))
        assert keyring.authenticate(key).id == "acme"

    def test_duplicate_and_invalid_ids_rejected(self, keyring):
        keyring.add("acme")
        with pytest.raises(KeyringError):
            keyring.add("acme")
        with pytest.raises(KeyringError):
            keyring.add("no spaces")
        with pytest.raises(KeyringError):
            keyring.add("")

    def test_revoke_unknown_tenant_raises(self, keyring):
        with pytest.raises(KeyringError):
            keyring.revoke("ghost")

    def test_malformed_file_raises_keyring_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(KeyringError):
            Keyring(path)
        path.write_text(json.dumps({"tenants": "nope"}))
        with pytest.raises(KeyringError):
            Keyring(path)
        path.write_text(json.dumps({"tenants": [{"id": "x"}]}))
        with pytest.raises(KeyringError):
            Keyring(path)

    def test_quota_overrides_survive_the_file(self, keyring):
        quotas = TenantQuotas.from_dict(
            {"max_concurrent_jobs": 1, "result_ttl_s": 60}
        )
        keyring.add("acme", quotas=quotas)
        loaded = Keyring(keyring.path).get("acme").quotas
        assert loaded.max_concurrent_jobs == 1
        assert loaded.result_ttl_s == 60.0
        # unspecified knobs take the defaults
        assert loaded.burst == TenantQuotas().burst

    def test_quotas_tolerant_parse(self):
        quotas = TenantQuotas.from_dict(
            {"burst": 5, "future_knob": "ignored"}
        )
        assert quotas.burst == 5
        with pytest.raises(KeyringError):
            TenantQuotas.from_dict({"burst": "many"})


class TestRateLimiter:
    def test_burst_then_throttle_then_refill(self):
        clock = [0.0]
        limiter = RateLimiter(clock=lambda: clock[0])
        quotas = TenantQuotas(requests_per_min=60.0, burst=2)  # 1 tok/s
        assert limiter.check("t", quotas).allowed
        assert limiter.check("t", quotas).allowed
        refusal = limiter.check("t", quotas)
        assert not refusal.allowed
        assert refusal.reason == "rate"
        assert refusal.retry_after_s >= 1
        clock[0] += refusal.retry_after_s
        assert limiter.check("t", quotas).allowed

    def test_tenants_have_independent_buckets(self):
        clock = [0.0]
        limiter = RateLimiter(clock=lambda: clock[0])
        quotas = TenantQuotas(requests_per_min=60.0, burst=1)
        assert limiter.check("a", quotas).allowed
        assert not limiter.check("a", quotas).allowed
        assert limiter.check("b", quotas).allowed

    def test_zero_rate_always_refuses(self):
        limiter = RateLimiter(clock=lambda: 0.0)
        refusal = limiter.check("t", TenantQuotas(requests_per_min=0.0))
        assert not refusal.allowed
        assert refusal.retry_after_s > 0


class TestJobQuota:
    def test_acquire_release_cycle(self):
        quota = JobQuota()
        quotas = TenantQuotas(max_concurrent_jobs=2)
        assert quota.try_acquire("t", quotas).allowed
        assert quota.try_acquire("t", quotas).allowed
        refusal = quota.try_acquire("t", quotas)
        assert not refusal.allowed
        assert refusal.reason == "jobs"
        assert refusal.retry_after_s > 0
        quota.release("t")
        assert quota.try_acquire("t", quotas).allowed
        assert quota.active("t") == 2

    def test_note_counts_unconditionally(self):
        """Journal-recovered jobs hold slots but must never be refused."""
        quota = JobQuota()
        quotas = TenantQuotas(max_concurrent_jobs=1)
        quota.note("t")
        quota.note("t")  # over the limit, still counted
        assert quota.active("t") == 2
        assert not quota.try_acquire("t", quotas).allowed
        quota.release("t")
        quota.release("t")
        assert quota.active("t") == 0

    def test_release_never_goes_negative(self):
        quota = JobQuota()
        quota.release("t")
        assert quota.active("t") == 0

    def test_decision_is_frozen(self):
        with pytest.raises(Exception):
            Decision(True).allowed = False
