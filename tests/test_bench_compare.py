"""The perf-regression gate: thresholds, noise floors, schema drift."""

import json

import pytest

from repro.bench.compare import compare_reports, main


def _report(bitplane_s, stacked_s=0.5, stress_s=1.0, name="mult"):
    return {
        "schema": 2,
        "benchmarks": [
            {
                "name": name,
                "explore": {"bitplane_s": bitplane_s, "batched_s": 2.0},
                "peakpower": {"stacked_s": stacked_s},
                "peakenergy": {"s": 0.001},
                "baselines": {"batched_s": 1.0},
            }
        ],
        "stressmark": {"batched_s": stress_s},
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        failures, n_compared = compare_reports(_report(1.0), _report(1.0))
        assert failures == []
        assert n_compared > 0

    def test_slowdown_over_threshold_fails(self):
        failures, _n = compare_reports(_report(3.0), _report(1.0), threshold=2.5)
        assert len(failures) == 1
        assert "mult.explore.bitplane_s" in failures[0]

    def test_slowdown_under_threshold_passes(self):
        failures, _n = compare_reports(_report(2.4), _report(1.0), threshold=2.5)
        assert failures == []

    def test_stressmark_gated(self):
        failures, _n = compare_reports(
            _report(1.0, stress_s=9.0), _report(1.0, stress_s=1.0)
        )
        assert any("stressmark" in failure for failure in failures)

    def test_noise_floor_ignored(self):
        """peakenergy ~1ms entries never trip the gate."""
        current = _report(1.0)
        current["benchmarks"][0]["peakenergy"]["s"] = 0.04
        assert compare_reports(current, _report(1.0))[0] == []

    def test_missing_benchmark_skipped(self):
        current = _report(5.0, name="onlyInCurrent")
        failures, n_compared = compare_reports(
            current, _report(1.0, name="mult")
        )
        assert failures == []
        assert n_compared == 1  # only the stressmark entry overlaps

    def test_missing_phase_skipped(self):
        current = _report(1.0)
        baseline = _report(1.0)
        del baseline["benchmarks"][0]["peakpower"]
        current["benchmarks"][0]["peakpower"]["stacked_s"] = 99.0
        assert compare_reports(current, baseline)[0] == []


class TestCli:
    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", _report(1.0))
        baseline = self._write(tmp_path, "baseline.json", _report(1.0))
        assert main([current, baseline]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        current = self._write(tmp_path, "current.json", _report(9.0))
        baseline = self._write(tmp_path, "baseline.json", _report(1.0))
        assert main([current, baseline]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        current = self._write(tmp_path, "current.json", _report(3.0))
        baseline = self._write(tmp_path, "baseline.json", _report(1.0))
        assert main([current, baseline, "--threshold", "3.5"]) == 0
        assert main([current, baseline, "--threshold", "2.0"]) == 1

    def test_zero_overlap_fails_cli(self, tmp_path, capsys):
        """Schema drift (no comparable phases) must fail, not no-op."""
        current = self._write(tmp_path, "current.json", _report(1.0, name="a"))
        baseline = self._write(
            tmp_path, "baseline.json", {"benchmarks": []}
        )
        assert main([current, baseline]) == 1
        assert "no comparable" in capsys.readouterr().out

    def test_real_baseline_compares_to_itself(self):
        """The committed BENCH_suite.json passes against itself."""
        from pathlib import Path

        baseline = json.loads(
            (Path(__file__).parent.parent / "BENCH_suite.json").read_text()
        )
        failures, n_compared = compare_reports(baseline, baseline)
        assert failures == []
        assert n_compared > 0


@pytest.mark.parametrize("bad", [{}, {"benchmarks": []}])
def test_empty_reports_compare_empty(bad):
    assert compare_reports(bad, bad) == ([], 0)
