"""Tests for the OPT1/OPT2/OPT3 source transforms (§5.1)."""

import pytest

from repro.asm import assemble
from repro.core.optimize import apply, apply_opt1, apply_opt2, apply_opt3
from repro.isa import InstructionSetSimulator


def run_iss(source: str) -> InstructionSetSimulator:
    iss = InstructionSetSimulator(assemble(source, "opt"))
    iss.run()
    return iss


BASE = """
        .org 0xF000
start:  mov #0x0300, r4
        mov #55, 0(r4)
        mov #66, 2(r4)
        mov 0(r4), r5
        mov 2(r4), r6
        push r5
        push r6
        pop r7
        pop r8
        mov r5, &0x0130
        mov r6, &0x0138
        mov &0x013A, r9
        mov r9, &0x0310
end:    jmp end
"""


class TestOpt1:
    def test_rewrites_indexed_loads_only(self):
        result = apply_opt1(BASE)
        names = [name for name, _line in result.applied]
        assert names == ["OPT1", "OPT1"]
        assert "mov #0, r15" in result.source
        assert "mov @r15, r5" in result.source
        # stores through x(rN) must be left alone
        assert "mov #55, 0(r4)" in result.source

    def test_preserves_semantics(self):
        before = run_iss(BASE)
        after = run_iss(apply_opt1(BASE).source)
        assert before.read_word(0x0310) == after.read_word(0x0310)
        assert before.state.regs[5:10] == after.state.regs[5:10]

    def test_adds_instructions(self):
        before = run_iss(BASE)
        after = run_iss(apply_opt1(BASE).source)
        assert after.instructions > before.instructions

    def test_skips_load_into_base_register(self):
        source = ".org 0xF000\n mov 2(r4), r4\nend: jmp end\n"
        result = apply_opt1(source)
        assert result.applied == []


class TestOpt2:
    def test_splits_pop(self):
        result = apply_opt2(BASE)
        assert len(result.applied) == 2
        assert "mov @sp, r7" in result.source
        assert "add #2, sp" in result.source
        assert "pop" not in result.source

    def test_preserves_semantics(self):
        before = run_iss(BASE)
        after = run_iss(apply_opt2(BASE).source)
        assert before.state.regs[7] == after.state.regs[7]
        assert before.state.regs[8] == after.state.regs[8]
        assert before.state.regs[1] == after.state.regs[1]  # SP rebalanced


class TestOpt3:
    def test_inserts_nop_after_op2_write(self):
        result = apply_opt3(BASE)
        assert len(result.applied) == 1
        lines = result.source.splitlines()
        trigger = next(
            i for i, line in enumerate(lines) if "&0x0138" in line
        )
        assert lines[trigger + 1].strip().startswith("nop")

    def test_idempotent(self):
        once = apply_opt3(BASE).source
        twice = apply_opt3(once)
        assert twice.applied == []

    def test_preserves_semantics(self):
        before = run_iss(BASE)
        after = run_iss(apply_opt3(BASE).source)
        assert before.read_word(0x0310) == after.read_word(0x0310)


class TestCombined:
    def test_apply_all(self):
        result = apply(BASE, ["OPT1", "OPT2", "OPT3"])
        names = {name for name, _line in result.applied}
        assert names == {"OPT1", "OPT2", "OPT3"}
        before = run_iss(BASE)
        after = run_iss(result.source)
        assert before.read_word(0x0310) == after.read_word(0x0310)

    def test_unknown_opt_rejected(self):
        with pytest.raises(ValueError, match="unknown optimization"):
            apply(BASE, ["OPT9"])
