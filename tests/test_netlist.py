"""Tests for netlist construction, levelization, and Verilog round-trip."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic import ONE
from repro.netlist import NetlistBuilder, NetlistError, parse_verilog, write_verilog
from repro.sim import LevelizedEvaluator


def settle(builder, forces=None):
    netlist = builder.finish()
    evaluator = LevelizedEvaluator(netlist)
    values = evaluator.fresh_values()
    for net, value in (forces or {}).items():
        values[net] = value
    evaluator.eval_comb(values)
    return netlist, values


class TestBuilderPrimitives:
    def test_simple_and(self):
        nb = NetlistBuilder()
        a = nb.input("a")
        b = nb.input("b")
        y = nb.and_(a, b)
        _netlist, values = settle(nb, {a: 1, b: 1})
        assert values[y] == ONE

    def test_const_sharing(self):
        nb = NetlistBuilder()
        assert nb.const0() == nb.const0()
        assert nb.const1() == nb.const1()

    def test_module_paths_nest(self):
        nb = NetlistBuilder()
        with nb.module("cpu"):
            with nb.module("alu"):
                a = nb.input("a")
                nb.not_(a)
        assert nb.netlist.gates[-1].module == "cpu/alu"

    def test_arity_validation(self):
        nb = NetlistBuilder()
        a = nb.input("a")
        with pytest.raises(NetlistError):
            nb.netlist.add_gate("AND", (a,))

    def test_mux_semantics(self):
        nb = NetlistBuilder()
        s = nb.input("s")
        a = nb.input("a")
        b = nb.input("b")
        y = nb.mux(s, a, b)
        _netlist, values = settle(nb, {s: 0, a: 1, b: 0})
        assert values[y] == ONE


class TestArithmetic:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_ripple_add_matches_python(self, x, y):
        nb = NetlistBuilder()
        a = nb.bus_input("a", 8)
        b = nb.bus_input("b", 8)
        total, carry = nb.ripple_add(a, b)
        forces = {net: (x >> i) & 1 for i, net in enumerate(a)}
        forces.update({net: (y >> i) & 1 for i, net in enumerate(b)})
        _netlist, values = settle(nb, forces)
        got = sum(int(values[net]) << i for i, net in enumerate(total))
        assert got == (x + y) & 0xFF
        assert values[carry] == ((x + y) >> 8) & 1

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_ripple_sub_matches_python(self, x, y):
        nb = NetlistBuilder()
        a = nb.bus_input("a", 8)
        b = nb.bus_input("b", 8)
        diff, carry = nb.ripple_sub(a, b)
        forces = {net: (x >> i) & 1 for i, net in enumerate(a)}
        forces.update({net: (y >> i) & 1 for i, net in enumerate(b)})
        _netlist, values = settle(nb, forces)
        got = sum(int(values[net]) << i for i, net in enumerate(diff))
        assert got == (x - y) & 0xFF
        assert values[carry] == (1 if x >= y else 0)  # MSP430 ~borrow

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7))
    def test_eq_const(self, value, probe):
        nb = NetlistBuilder()
        a = nb.bus_input("a", 3)
        flag = nb.eq_const(a, probe)
        forces = {net: (value >> i) & 1 for i, net in enumerate(a)}
        _netlist, values = settle(nb, forces)
        assert values[flag] == (1 if value == probe else 0)

    @given(st.integers(min_value=0, max_value=15))
    def test_decoder_one_hot(self, sel):
        nb = NetlistBuilder()
        bus = nb.bus_input("s", 4)
        lines = nb.decoder(bus)
        forces = {net: (sel >> i) & 1 for i, net in enumerate(bus)}
        _netlist, values = settle(nb, forces)
        hot = [i for i, line in enumerate(lines) if values[line] == ONE]
        assert hot == [sel]

    def test_mux_tree_selects(self):
        nb = NetlistBuilder()
        sel = nb.bus_input("sel", 2)
        options = [nb.bus_const(v, 4) for v in (3, 5, 9, 12)]
        out = nb.bus_mux_tree(sel, options)
        for choice, expected in enumerate((3, 5, 9, 12)):
            forces = {net: (choice >> i) & 1 for i, net in enumerate(sel)}
            nb2 = nb  # same netlist; re-evaluate with new forces
            _netlist, values = settle(nb2, forces)
            got = sum(int(values[n]) << i for i, n in enumerate(out))
            assert got == expected


class TestRegisters:
    def test_forward_dff_must_be_connected(self):
        nb = NetlistBuilder()
        nb.dff_forward("pc")
        with pytest.raises(NetlistError, match="never connected"):
            nb.finish()

    def test_register_with_enable_shape(self):
        nb = NetlistBuilder()
        en = nb.input("en")
        d = nb.bus_input("d", 4)
        q = nb.register(4, "r")
        nb.register_with_enable(q, d, en)
        netlist = nb.finish()
        assert len([g for g in netlist.gates if g.kind == "DFF"]) == 4

    def test_reset_values(self):
        nb = NetlistBuilder()
        q = nb.register(4, "r", reset_value=0b1010)
        nb.connect_register(q, q)  # hold forever
        netlist = nb.finish()
        evaluator = LevelizedEvaluator(netlist)
        values = evaluator.fresh_values()
        values[evaluator.dff_out] = evaluator.next_dff_values(values, reset=True)
        got = sum(int(values[net]) << i for i, net in enumerate(q))
        assert got == 0b1010


class TestLevelization:
    def test_combinational_cycle_detected(self):
        nb = NetlistBuilder()
        a = nb.input("a")
        first = nb.and_(a, a)
        second = nb.or_(first, a)
        nb.netlist.gates[first].inputs = (second, a)  # create a loop
        with pytest.raises(NetlistError, match="cycle"):
            nb.netlist.levelize()

    def test_levels_respect_dependencies(self):
        nb = NetlistBuilder()
        a = nb.input("a")
        b = nb.not_(a)
        c = nb.not_(b)
        netlist = nb.finish()
        levels = netlist.levelize()
        level_of = {}
        for level, gates in enumerate(levels):
            for g in gates:
                level_of[g] = level
        assert level_of[b] < level_of[c]

    def test_stats(self):
        nb = NetlistBuilder()
        a = nb.input("a")
        nb.not_(a)
        stats = nb.finish().stats()
        assert stats["NOT"] == 1
        assert stats["total"] == 2


class TestVerilogRoundTrip:
    def test_roundtrip_preserves_structure(self, tmp_path):
        nb = NetlistBuilder("toy")
        with nb.module("alu"):
            a = nb.bus_input("a", 4)
            b = nb.bus_input("b", 4)
            total, carry = nb.ripple_add(a, b)
            q = nb.register(4, "acc", reset_value=5)
            nb.connect_register(q, total)
        nb.bus_output("sum", total)
        nb.output("carry", carry)
        netlist = nb.finish()
        path = tmp_path / "toy.v"
        write_verilog(netlist, path)
        parsed = parse_verilog(path)
        assert len(parsed.gates) == len(netlist.gates)
        assert parsed.name == "toy"
        assert parsed.inputs == netlist.inputs
        assert parsed.outputs == netlist.outputs
        for original, loaded in zip(netlist.gates, parsed.gates):
            assert original.kind == loaded.kind
            assert original.inputs == loaded.inputs
            assert original.module == loaded.module
            assert original.reset_value == loaded.reset_value

    def test_roundtrip_simulates_identically(self, tmp_path):
        nb = NetlistBuilder("toy2")
        a = nb.bus_input("a", 8)
        b = nb.bus_input("b", 8)
        total, _ = nb.ripple_add(a, b)
        netlist = nb.finish()
        path = tmp_path / "toy2.v"
        write_verilog(netlist, path)
        parsed = parse_verilog(path)
        ev1, ev2 = LevelizedEvaluator(netlist), LevelizedEvaluator(parsed)
        v1, v2 = ev1.fresh_values(), ev2.fresh_values()
        rng = np.random.default_rng(7)
        for net in list(netlist.inputs.values()):
            v1[net] = v2[net] = rng.integers(0, 3)
        ev1.eval_comb(v1)
        ev2.eval_comb(v2)
        assert np.array_equal(v1, v2)
