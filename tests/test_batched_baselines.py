"""Batched baselines ≡ scalar baselines.

The input-profiling and GA-stressmark baselines now run their concrete
simulations in lock-step on a :class:`~repro.sim.batch.BatchMachine`;
because the batched engine is record-for-record identical to the scalar
:class:`~repro.sim.machine.Machine`, every measurement — and hence the GA
evolution — must be exactly the same under any batch size.
"""

import pytest

from repro.bench.suite import get_benchmark
from repro.cells import SG65
from repro.core.baselines import input_profiling
from repro.core.stressmark import generate_stressmark
from repro.power.model import PowerModel
from repro.sim.batch import run_batch_to_halt
from repro.sim.trace import Trace


@pytest.fixture(scope="module")
def model(cpu):
    return PowerModel(cpu.netlist, SG65, clock_ns=10.0)


class TestRunBatchToHalt:
    def test_matches_scalar_run_to_halt(self, cpu):
        benchmark = get_benchmark("FFT")
        program = benchmark.program()
        input_sets = benchmark.input_sets(3)
        scalar = []
        for inputs in input_sets:
            machine = cpu.make_machine(
                program.with_inputs(inputs), symbolic_inputs=False, port_in=0
            )
            trace = Trace(machine.netlist.n_nets)
            cycles = cpu.run_to_halt(machine, max_cycles=50_000, trace=trace)
            scalar.append((trace, cycles))
        machines = [
            cpu.make_machine(
                program.with_inputs(inputs), symbolic_inputs=False, port_in=0
            )
            for inputs in input_sets
        ]
        batched = run_batch_to_halt(cpu, machines, batch_size=2)
        for (s_trace, s_cycles), (b_trace, b_cycles) in zip(scalar, batched):
            assert s_cycles == b_cycles
            assert len(s_trace) == len(b_trace)
            import numpy as np

            assert np.array_equal(
                s_trace.values_matrix(), b_trace.values_matrix()
            )
            assert np.array_equal(
                s_trace.mem_accesses(), b_trace.mem_accesses()
            )

    def test_empty_input(self, cpu):
        assert run_batch_to_halt(cpu, [], batch_size=4) == []


class TestBatchedProfiling:
    def test_identical_measurements(self, cpu, model):
        benchmark = get_benchmark("FFT")
        sets = benchmark.input_sets(4)
        scalar = input_profiling(
            cpu, benchmark.program(), sets, model, batch_size=1
        )
        batched = input_profiling(
            cpu, benchmark.program(), sets, model, batch_size=4
        )
        for a, b in zip(scalar.runs, batched.runs):
            assert a.inputs == b.inputs
            assert a.peak_power_mw == b.peak_power_mw
            assert a.avg_power_mw == b.avg_power_mw
            assert a.energy_pj == b.energy_pj
            assert a.cycles == b.cycles
        assert (
            scalar.guardbanded_peak_power_mw == batched.guardbanded_peak_power_mw
        )


class TestBatchedStressmark:
    def test_identical_evolution(self, cpu, model):
        kwargs = dict(population=4, generations=1, genome_length=5, seed=7)
        scalar = generate_stressmark(cpu, model, batch_size=1, **kwargs)
        batched = generate_stressmark(cpu, model, batch_size=4, **kwargs)
        assert scalar.source == batched.source
        assert scalar.peak_power_mw == batched.peak_power_mw
        assert scalar.avg_power_mw == batched.avg_power_mw
