"""The paper's central guarantee, tested end-to-end on real benchmarks:

for every concrete input set, (1) the gates it toggles are a subset of the
X-based potentially-toggled set, and (2) its power trace sits below the
X-based peak power trace in every cycle.
"""

import pytest

from repro.bench import runner
from repro.bench.suite import get_benchmark
from repro.core.validation import (
    run_concrete,
    validate_power_bound,
    validate_toggles,
)
from repro.isa import InstructionSetSimulator

#: branchy + dataflow + multiplier coverage without blowing up CI time
SUITE = ["mult", "binSearch", "tHold", "tea8", "div"]


@pytest.fixture(scope="module", params=SUITE)
def analyzed(request):
    name = request.param
    return name, runner.full_report(name)


class TestSuiteSoundness:
    def test_bounds_hold_for_sampled_inputs(self, analyzed):
        name, report = analyzed
        benchmark = get_benchmark(name)
        cpu = runner.shared_cpu()
        model = runner.shared_model()
        for inputs in benchmark.input_sets(2, seed=91):
            concrete = run_concrete(cpu, benchmark.program(), inputs)
            toggles = validate_toggles(report.tree, concrete)
            assert toggles.is_superset, (
                f"{name}{inputs}: {toggles.n_only_concrete} gates toggled "
                f"only in the concrete run"
            )
            bound = validate_power_bound(
                cpu, report.tree, report.peak_power, model, concrete
            )
            assert bound.is_bound, (
                f"{name}{inputs}: bound violated by "
                f"{bound.max_violation_mw:.6f} mW"
            )

    def test_peak_power_at_least_observed(self, analyzed):
        name, report = analyzed
        profile = runner.profiling(name)
        assert report.peak_power_mw >= profile.observed_peak_power_mw - 1e-9

    def test_npe_at_least_observed(self, analyzed):
        name, report = analyzed
        profile = runner.profiling(name)
        assert (
            report.npe_pj_per_cycle
            >= profile.observed_npe_pj_per_cycle - 1e-9
        )

    def test_gate_level_matches_iss_functionally(self, analyzed):
        name, _report = analyzed
        benchmark = get_benchmark(name)
        inputs = benchmark.input_sets(1, seed=7)[0]
        program = benchmark.program().with_inputs(inputs)
        iss = InstructionSetSimulator(program)
        iss.run()
        cpu = runner.shared_cpu()
        machine = cpu.make_machine(program, symbolic_inputs=False, port_in=0)
        cpu.run_to_halt(machine)
        value, xmask = machine.memory.read_byte_addr(0x0300)
        assert xmask == 0
        assert value == iss.read_word(0x0300)
