"""Native C kernel engine: codegen identity, surgery pins, fallback.

Four tiers, mirroring the engine's soundness argument:

1. **Gate kernels, exhaustively**: every kind over every 3-valued input
   combination through the *generated C* must match the scalar truth
   functions — the emitted formulas (and the copy-class rail folding of
   BUF/NOT) are proven by enumeration, independent of the numpy tape.
2. **Schedule-surgery pins**: BUF/NOT chains collapse to a rail
   permutation of their root; the collapsed schedule must still produce
   reference values/activity for every input, on both packed engines.
3. **Randomized + whole-tree equivalence**: random DAGs settle
   bit-identically to the bitplane tape (scalar and batched shapes), and
   on all 14 benchmarks the native engine reproduces the bitplane
   execution tree — values, A plane, memo ``state_bytes`` (fork targets
   *are* the memo keys) — plus the golden analysis floats.  Together
   with ``test_differential``'s bitplane ≡ reference pins this closes
   native ≡ bitplane ≡ reference; one direct native ≡ reference probe
   guards the transitivity argument itself.
4. **Degradation**: a monkeypatched compiler-less host falls back to the
   bitplane engine with exactly one warning and identical results.

Toy-netlist kernels build into a per-test temp cache; the real CPU
kernel builds once into the shared store (`.repro_cache/native`) and is
reused by every later session.
"""

import itertools
import warnings

import numpy as np
import pytest

from repro.bench.suite import ALL_BENCHMARKS, get_benchmark
from repro.cells import SG65
from repro.core.activity import explore
from repro.core.peakenergy import compute_peak_energy
from repro.core.peakpower import compute_peak_power
from repro.logic import X, ternary
from repro.netlist import NetlistBuilder
from repro.netlist.core import Netlist
from repro.power.model import PowerModel
from repro.sim import native
from repro.sim.bitplane import ENGINES, BitplaneEvaluator, make_evaluator
from repro.sim.evaluator import LevelizedEvaluator
from repro.sim.native import (
    NativeEvaluator,
    NativeKernelError,
    program_fingerprint,
)
from test_bitplane import TWO_INPUT_FUNCS, random_netlist, settle_sources
from test_differential import GOLDEN, REL, assert_trees_identical


@pytest.fixture()
def toy_cache(tmp_path, monkeypatch):
    """Route toy-netlist kernels to a throwaway store (the in-process
    kernel registry still dedupes fingerprints across tests)."""
    from repro.bench import runner

    monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")


# ----------------------------------------------------------------------
# Tier 1: generated C per gate kind, exhaustively
# ----------------------------------------------------------------------
class TestGeneratedGateKernelsExhaustive:
    def test_two_input_kinds(self, toy_cache):
        netlist = Netlist()
        a = netlist.add_gate("INPUT")
        b = netlist.add_gate("INPUT")
        outs = {
            kind: netlist.add_gate(kind, (a, b)) for kind in TWO_INPUT_FUNCS
        }
        reference = LevelizedEvaluator(netlist)
        evaluator = NativeEvaluator(netlist)
        for va, vb in itertools.product((0, 1, X), repeat=2):
            expected, got = settle_sources(
                evaluator, reference, {a: va, b: vb}
            )
            assert np.array_equal(got, expected)
            for kind, func in TWO_INPUT_FUNCS.items():
                assert got[outs[kind]] == func(va, vb), (kind, va, vb)

    def test_mux_all_27(self, toy_cache):
        netlist = Netlist()
        s = netlist.add_gate("INPUT")
        a = netlist.add_gate("INPUT")
        b = netlist.add_gate("INPUT")
        y = netlist.add_gate("MUX", (s, a, b))
        reference = LevelizedEvaluator(netlist)
        evaluator = NativeEvaluator(netlist)
        for vs, va, vb in itertools.product((0, 1, X), repeat=3):
            _expected, got = settle_sources(
                evaluator, reference, {s: vs, a: va, b: vb}
            )
            assert got[y] == ternary.t_mux(vs, va, vb), (vs, va, vb)


# ----------------------------------------------------------------------
# Tier 2: BUF/NOT chain surgery
# ----------------------------------------------------------------------
def chain_netlist():
    """INPUT feeding a BUF/NOT ladder plus consumers at every depth."""
    netlist = Netlist()
    a = netlist.add_gate("INPUT")
    b = netlist.add_gate("INPUT")
    chain = [a]
    for kind in ("NOT", "BUF", "NOT", "NOT", "BUF"):
        chain.append(netlist.add_gate(kind, (chain[-1],)))
    # consumers of mid-chain taps keep every element live
    taps = [netlist.add_gate("AND", (net, b)) for net in chain[1:]]
    dff = netlist.add_gate("DFF", (chain[-1],))
    return netlist, a, b, chain, taps, dff


class TestScheduleSurgery:
    def test_chain_resolution(self):
        netlist, a, _b, chain, _taps, _dff = chain_netlist()
        program = BitplaneEvaluator(netlist).program
        # every ladder element resolves to the input with the parity of
        # the NOTs between them (1, 1, 0, 1, 1 along this ladder)
        parities = [1, 1, 0, 1, 1]
        for net, parity in zip(chain[1:], parities):
            assert program.chain_of[net] == (a, parity), net
        # the root memoizes as its own fixed point
        assert program.chain_of.get(a, (a, 0)) == (a, 0)

    @pytest.mark.parametrize("engine_cls", [BitplaneEvaluator])
    def test_chain_values_exhaustive(self, engine_cls):
        netlist, a, b, chain, taps, _dff = chain_netlist()
        reference = LevelizedEvaluator(netlist)
        evaluator = engine_cls(netlist)
        funcs = (
            ternary.t_not, ternary.t_buf, ternary.t_not,
            ternary.t_not, ternary.t_buf,
        )
        for va, vb in itertools.product((0, 1, X), repeat=2):
            expected, got = settle_sources(
                evaluator, reference, {a: va, b: vb}
            )
            assert np.array_equal(got, expected)
            value = va
            for func, net in zip(funcs, chain[1:]):
                value = func(value)
                assert got[net] == value
        assert all(got[t] in (0, 1, X) for t in taps)

    def test_chain_values_native(self, toy_cache):
        netlist, a, b, _chain, _taps, _dff = chain_netlist()
        reference = LevelizedEvaluator(netlist)
        evaluator = NativeEvaluator(netlist)
        for va, vb in itertools.product((0, 1, X), repeat=2):
            expected, got = settle_sources(
                evaluator, reference, {a: va, b: vb}
            )
            assert np.array_equal(got, expected)

    def test_chain_activity_matches_reference(self):
        netlist, _a, _b, _chain, _taps, _dff = chain_netlist()
        reference = LevelizedEvaluator(netlist)
        evaluator = BitplaneEvaluator(netlist)
        rng = np.random.default_rng(17)
        sources = [
            g.index for g in netlist.gates if g.kind in ("INPUT", "DFF")
        ]
        for _ in range(12):
            prev = rng.integers(0, 3, size=netlist.n_nets, dtype=np.uint8)
            reference.eval_comb(prev)
            prev_active = rng.integers(0, 2, size=netlist.n_nets).astype(bool)
            cur = prev.copy()
            cur[sources] = rng.integers(0, 3, size=len(sources), dtype=np.uint8)
            reference.eval_comb(cur)
            expected_active = reference.compute_activity(
                prev, cur, prev_active
            )
            planes = evaluator.pack_state(prev, prev_active)
            evaluator.stash_prev(planes)
            for net in sources:
                evaluator.write_trit(planes, net, int(cur[net]))
            evaluator.settle_and_mark(planes)
            assert np.array_equal(evaluator.unpack_values(planes), cur)
            assert np.array_equal(
                evaluator.unpack_active(planes), expected_active
            )


# ----------------------------------------------------------------------
# Tier 3: randomized netlists and whole benchmark trees
# ----------------------------------------------------------------------
class TestRandomizedNativeEquivalence:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_settles_match_bitplane(self, seed, toy_cache):
        rng = np.random.default_rng(500 + seed)
        netlist = random_netlist(230 + 17 * seed, seed=40 + seed)
        bitplane = BitplaneEvaluator(netlist)
        evaluator = NativeEvaluator(netlist, bitplane.program)
        sources = [
            g.index for g in netlist.gates if g.kind in ("INPUT", "DFF")
        ]
        for lead in ((), (3,), (8,)):
            prev = rng.integers(
                0, 3, size=lead + (netlist.n_nets,), dtype=np.uint8
            )
            prev_active = rng.integers(
                0, 2, size=lead + (netlist.n_nets,)
            ).astype(bool)
            new_sources = rng.integers(
                0, 3, size=lead + (len(sources),), dtype=np.uint8
            )

            results = []
            for engine in (bitplane, evaluator):
                planes = engine.pack_state(prev, prev_active)
                engine.stash_prev(planes)
                flat = planes.reshape((-1,) + planes.shape[-2:])
                flat_sources = new_sources.reshape(-1, len(sources))
                for row in range(flat.shape[0]):
                    for net, value in zip(sources, flat_sources[row]):
                        engine.write_trit(flat[row], net, int(value))
                engine.settle_and_mark(planes)
                results.append(planes)
            assert np.array_equal(results[0], results[1]), lead
            # memo fingerprints agree because the raw planes do
            if not lead:
                assert bitplane.state_bytes(
                    results[0]
                ) == evaluator.state_bytes(results[1])


@pytest.fixture(scope="module", params=sorted(ALL_BENCHMARKS))
def native_trees(request, cpu):
    """(name, bitplane tree, native tree) per benchmark, real kernel."""
    name = request.param
    benchmark = get_benchmark(name)
    trees = [
        explore(
            cpu,
            benchmark.program(),
            max_cycles=benchmark.max_cycles,
            max_segments=benchmark.max_segments,
            engine=engine,
        )
        for engine in ("bitplane", "native")
    ]
    return name, trees[0], trees[1]


@pytest.fixture(scope="module")
def model(cpu):
    return PowerModel(cpu.netlist, SG65, clock_ns=10.0)


class TestBenchmarkTreesIdentical:
    def test_native_runs_native(self, cpu):
        """The environment has a compiler: the suite must not silently
        pin a fallen-back bitplane evaluator as "native"."""
        evaluator = cpu.evaluator_for("native")
        assert getattr(evaluator, "engine_name", None) == "native"

    def test_execution_tree_bit_identical(self, native_trees):
        _name, bitplane_tree, native_tree = native_trees
        assert_trees_identical(bitplane_tree, native_tree)

    def test_analysis_matches_golden(self, native_trees, model):
        """Native-engine analysis reproduces the pinned seed numbers."""
        name, _bitplane_tree, tree = native_trees
        benchmark = get_benchmark(name)
        peak_power = compute_peak_power(tree, model)
        peak_energy = compute_peak_energy(
            tree, peak_power, loop_bound=benchmark.loop_bound
        )
        golden = GOLDEN[name]
        assert len(tree.segments) == golden["n_segments"]
        assert tree.n_cycles == golden["n_cycles"]
        assert tree.n_memo_hits == golden["n_memo_hits"]
        assert peak_power.peak_cycle == golden["peak_cycle"]
        assert peak_power.peak_power_mw == pytest.approx(
            golden["peak_power_mw"], rel=REL
        )
        assert peak_energy.peak_energy_pj == pytest.approx(
            golden["peak_energy_pj"], rel=REL
        )

    def test_native_equals_reference_directly(self, native_trees, cpu):
        """One scalar-reference probe pins the transitivity argument."""
        name, _bitplane_tree, native_tree = native_trees
        if name != "mult":
            pytest.skip("direct reference probe runs on mult only")
        benchmark = get_benchmark(name)
        scalar = explore(
            cpu,
            benchmark.program(),
            max_cycles=benchmark.max_cycles,
            max_segments=benchmark.max_segments,
            batch_size=1,
            engine="reference",
        )
        assert_trees_identical(scalar, native_tree)


# ----------------------------------------------------------------------
# Tier 4: compiler-less degradation
# ----------------------------------------------------------------------
class TestFallback:
    def test_no_compiler_falls_back_with_one_warning(
        self, toy_cache, monkeypatch
    ):
        monkeypatch.setattr(native, "find_compiler", lambda: None)
        native._reset_fallback_warning()
        netlist = random_netlist(180, seed=61)
        with pytest.warns(RuntimeWarning, match="native engine unavailable"):
            evaluator = native.evaluator_or_fallback(netlist)
        assert type(evaluator) is BitplaneEvaluator
        # the second degradation in the same process stays silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = native.evaluator_or_fallback(netlist)
        assert type(again) is BitplaneEvaluator
        native._reset_fallback_warning()

        # the fallback produces the reference results, not just no error
        reference = LevelizedEvaluator(netlist)
        sources = [
            g.index for g in netlist.gates if g.kind in ("INPUT", "DFF")
        ]
        rng = np.random.default_rng(9)
        values = {
            net: int(v)
            for net, v in zip(
                sources, rng.integers(0, 3, size=len(sources))
            )
        }
        expected, got = settle_sources(evaluator, reference, values)
        assert np.array_equal(got, expected)

    def test_build_failure_raises_kernel_error(self, toy_cache, monkeypatch):
        def broken(_source):
            raise NativeKernelError("simulated compile explosion")

        monkeypatch.setattr(native, "compile_so", broken)
        netlist = random_netlist(160, seed=62)
        with pytest.raises(NativeKernelError):
            NativeEvaluator(netlist)
        native._reset_fallback_warning()
        with pytest.warns(RuntimeWarning, match="falling back"):
            evaluator = native.evaluator_or_fallback(netlist)
        assert type(evaluator) is BitplaneEvaluator
        native._reset_fallback_warning()


# ----------------------------------------------------------------------
# Plumbing: every engine-name surface knows "native"
# ----------------------------------------------------------------------
class TestEnginePlumbing:
    def test_engines_tuple(self):
        assert ENGINES == ("bitplane", "native", "reference")

    def test_make_evaluator_native(self, toy_cache):
        netlist = random_netlist(140, seed=63)
        evaluator = make_evaluator(netlist, engine="native")
        assert isinstance(evaluator, (NativeEvaluator, BitplaneEvaluator))

    def test_unknown_engine_lists_all_names(self, cpu):
        with pytest.raises(ValueError) as err:
            cpu.evaluator_for("verilator")
        for name in ENGINES:
            assert name in str(err.value)

    def test_repro_engine_env(self, monkeypatch):
        from repro.sim.bitplane import default_engine

        monkeypatch.setenv("REPRO_ENGINE", "native")
        assert default_engine() == "native"
        monkeypatch.setenv("REPRO_ENGINE", "simulink")
        with pytest.raises(ValueError, match="native"):
            default_engine()

    def test_native_batches_like_bitplane(self, monkeypatch):
        from repro.core.activity import (
            BITPLANE_DEFAULT_BATCH_SIZE,
            default_batch_size,
        )

        monkeypatch.delenv("REPRO_BATCH_SIZE", raising=False)
        assert default_batch_size("native") == BITPLANE_DEFAULT_BATCH_SIZE

    def test_cli_accepts_native(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["analyze", "prog.asm", "--engine", "native"]
        )
        assert args.engine == "native"
        args = build_parser().parse_args(
            ["submit", "mult", "--engine", "native"]
        )
        assert args.engine == "native"

    def test_service_normalize_params(self):
        from repro.service.scheduler import normalize_params

        params = normalize_params("analyze", {"benchmark": "mult"})
        assert params["engine"] in ENGINES  # resolved server-side default
        params = normalize_params(
            "profile", {"benchmark": "mult", "engine": "native"}
        )
        assert params["engine"] == "native"
        with pytest.raises(ValueError) as err:
            normalize_params("analyze", {"benchmark": "mult", "engine": "hdl"})
        for name in ENGINES:
            assert name in str(err.value)


# ----------------------------------------------------------------------
# Kernel cache behavior
# ----------------------------------------------------------------------
class TestKernelCache:
    def test_fingerprint_tracks_schedule(self):
        n1 = random_netlist(150, seed=64)
        n2 = random_netlist(150, seed=65)
        p1 = BitplaneEvaluator(n1).program
        p2 = BitplaneEvaluator(n2).program
        assert program_fingerprint(p1) == program_fingerprint(p1)
        assert program_fingerprint(p1) != program_fingerprint(p2)

    def test_kernel_reloaded_from_store_bytes(self, toy_cache):
        """Second build of the same program pays no compile: the bytes
        come back from the artifact store and load to a working kernel."""
        netlist = random_netlist(130, seed=66)
        program = BitplaneEvaluator(netlist).program
        path1, build1, fp = native.build_kernel(program)
        assert path1.is_file()
        # drop the materialized .so but keep the store blob
        path1.unlink()
        path2, build2, fp2 = native.build_kernel(program)
        assert fp2 == fp and path2.is_file()
        assert build2 == 0.0  # store hit, no recompile
        assert native._load_so(path2) is not None
