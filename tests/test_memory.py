"""Tests for the X-aware behavioral memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.memory import MASK16, MemoryXAddressError, TernaryMemory

words = st.integers(min_value=0, max_value=0xFFFF)


class TestBasicAccess:
    def test_starts_unknown(self):
        memory = TernaryMemory(64)
        value, xmask = memory.read(5)
        assert xmask == MASK16

    def test_load_and_read(self):
        memory = TernaryMemory(64)
        memory.load_word(3, 0xBEEF)
        assert memory.read(3) == (0xBEEF, 0)

    def test_write_clears_xmask(self):
        memory = TernaryMemory(64)
        memory.write(7, 0x1234)
        assert memory.read(7) == (0x1234, 0)

    def test_partial_x_write(self):
        memory = TernaryMemory(64)
        memory.write(2, 0xFF00, xmask=0x00FF)
        value, xmask = memory.read(2)
        assert xmask == 0x00FF
        assert value == 0xFF00

    def test_x_address_read_is_all_x(self):
        memory = TernaryMemory(64)
        assert memory.read(None) == (0, MASK16)

    def test_x_address_write_raises(self):
        memory = TernaryMemory(64)
        with pytest.raises(MemoryXAddressError):
            memory.write(None, 5)

    def test_misaligned_program_load(self):
        memory = TernaryMemory(64)
        with pytest.raises(ValueError):
            memory.load_program({3: 7})


class TestUncertainWrites:
    def test_same_value_stays_known(self):
        memory = TernaryMemory(64)
        memory.write(4, 0xAAAA)
        memory.write_uncertain(4, 0xAAAA)
        assert memory.read(4) == (0xAAAA, 0)

    def test_differing_bits_become_x(self):
        memory = TernaryMemory(64)
        memory.write(4, 0xFF00)
        memory.write_uncertain(4, 0xF000)
        value, xmask = memory.read(4)
        assert xmask == 0x0F00
        assert value & ~xmask == 0xF000

    @given(words, words)
    def test_uncertain_write_covers_both_outcomes(self, old, new):
        """Both "store happened" and "store skipped" refine the result."""
        memory = TernaryMemory(8)
        memory.write(1, old)
        memory.write_uncertain(1, new)
        value, xmask = memory.read(1)
        for outcome in (old, new):
            assert outcome & ~xmask == value, (
                "known bits must agree with every possible outcome"
            )


class TestSnapshotting:
    def test_copy_is_independent(self):
        memory = TernaryMemory(16)
        memory.write(0, 1)
        clone = memory.copy()
        clone.write(0, 2)
        assert memory.read(0) == (1, 0)
        assert clone.read(0) == (2, 0)

    def test_digest_changes_with_content(self):
        memory = TernaryMemory(16)
        before = memory.digest()
        memory.write(3, 0x1111)
        assert memory.digest() != before

    def test_digest_stable(self):
        memory = TernaryMemory(16)
        memory.write(3, 0x1111)
        assert memory.digest() == memory.copy().digest()

    def test_known_word_helper(self):
        memory = TernaryMemory(16)
        memory.write(1, 42)
        assert memory.known_word(2) == 42
        with pytest.raises(ValueError):
            memory.known_word(4)
