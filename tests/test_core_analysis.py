"""Unit tests for the analysis core: Algorithm 1, Algorithm 2, §3.3."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.cells import SG65
from repro.core import analyze, explore
from repro.core.activity import PathExplosionError
from repro.core.peakenergy import compute_peak_energy
from repro.core.peakpower import compute_peak_power, maximize_parity
from repro.cpu import UnresolvedPCError
from repro.logic import X
from repro.power import PowerModel


@pytest.fixture(scope="module")
def model(cpu):
    return PowerModel(cpu.netlist, SG65, clock_ns=10.0)


def program(body: str, inputs: str = ""):
    return assemble(
        f".equ WDTCTL, 0x0120\n.org 0xF000\n"
        f"start: mov #0x5A80, &WDTCTL\n{body}\nend: jmp end\n{inputs}",
        "t",
    )


STRAIGHT = program("mov #5, r4\n add r4, r4")

ONE_BRANCH = program(
    """
        mov #inp, r4
        mov @r4, r5
        tst r5
        jz  iszero
        mov #1, r6
iszero: mov r6, &0x0300
""",
    ".org 0x0240\ninp: .input 1\n",
)

WAIT_LOOP = program(
    """
        mov #inp, r4
again:  mov @r4, r5
        tst r5
        jnz again
        mov #1, r6
""",
    ".org 0x0240\ninp: .input 1\n",
)


class TestExplorer:
    def test_straight_line_single_segment(self, cpu):
        tree = explore(cpu, STRAIGHT)
        assert len(tree.segments) == 1
        assert tree.segments[0].end == "halt"
        assert not tree.is_cyclic()

    def test_input_branch_forks(self, cpu):
        tree = explore(cpu, ONE_BRANCH)
        assert len(tree.segments) == 3  # root + two arms
        assert tree.segments[0].end == "fork"
        assert len(tree.segments[0].forks) == 2

    def test_fork_assignments_are_flag_concretizations(self, cpu):
        tree = explore(cpu, ONE_BRANCH)
        assignments = [f.assignment for f in tree.segments[0].forks]
        values = sorted(tuple(a.values()) for a in assignments)
        assert values == [(0,), (1,)]

    def test_segment_slices_tile_flat_trace(self, cpu):
        tree = explore(cpu, ONE_BRANCH)
        covered = sorted(
            index
            for segment in tree.segments
            for index in range(*tree.segment_slice(segment).indices(tree.n_cycles))
        )
        assert covered == list(range(tree.n_cycles))

    def test_budget_enforced(self, cpu):
        with pytest.raises(PathExplosionError):
            explore(cpu, ONE_BRANCH, max_cycles=5)

    def test_computed_jump_rejected(self, cpu):
        bad = program(
            "mov #inp, r4\n mov @r4, r5\n br r5",
            ".org 0x0240\ninp: .input 1\n",
        )
        with pytest.raises(UnresolvedPCError):
            explore(cpu, bad)

    def test_memoization_merges_input_dependent_loops(self, cpu):
        """A wait-on-input loop repeats its state exactly: Algorithm 1's
        memoization must terminate it rather than unroll forever."""
        tree = explore(cpu, WAIT_LOOP)
        assert tree.n_memo_hits >= 1
        assert tree.is_cyclic()


class TestMaximizeParity:
    def test_double_x_gets_max_transition(self):
        values = np.full((3, 2), X, dtype=np.uint8)
        active = np.ones((3, 2), dtype=bool)
        max_prev = np.array([0, 1], dtype=np.uint8)
        max_cur = np.array([1, 0], dtype=np.uint8)
        out = maximize_parity(values, active, 0, max_prev, max_cur)
        assert out[1, 0] == 0 and out[2, 0] == 1
        assert out[1, 1] == 1 and out[2, 1] == 0

    def test_single_x_toggles(self):
        values = np.array([[0], [X], [0]], dtype=np.uint8)
        active = np.ones((3, 1), dtype=bool)
        zeros = np.zeros(1, dtype=np.uint8)
        ones = np.ones(1, dtype=np.uint8)
        out = maximize_parity(values, active, 0, zeros, ones)
        # cycle 2 is even: X at cycle 1 becomes the opposite of cycle 2
        assert out[1, 0] == 1

    def test_inactive_gates_untouched(self):
        values = np.full((3, 1), X, dtype=np.uint8)
        active = np.zeros((3, 1), dtype=bool)
        out = maximize_parity(
            values, active, 0,
            np.zeros(1, dtype=np.uint8), np.ones(1, dtype=np.uint8),
        )
        assert (out == X).all()

    def test_known_values_never_modified(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 3, size=(8, 4)).astype(np.uint8)
        active = rng.integers(0, 2, size=(8, 4)).astype(bool)
        known_mask = values != X
        out = maximize_parity(
            values, active, 1,
            np.zeros(4, dtype=np.uint8), np.ones(4, dtype=np.uint8),
        )
        assert (out[known_mask] == values[known_mask]).all()
        assert not (out == X)[~known_mask].any() or True  # Xs may remain


class TestPeakPower:
    def test_peak_positive_and_located(self, cpu, model):
        tree = explore(cpu, STRAIGHT)
        peak = compute_peak_power(tree, model)
        assert peak.peak_power_mw > 0
        assert 0 <= peak.peak_cycle < tree.n_cycles
        assert peak.trace_mw[peak.peak_cycle] == pytest.approx(
            peak.peak_power_mw
        )

    def test_even_odd_profiles_resolve_active_xs(self, cpu, model):
        tree = explore(cpu, ONE_BRANCH)
        peak = compute_peak_power(tree, model)
        active = tree.flat_trace.active_matrix()
        still_x_even = (peak.even_values == X) & active
        # active Xs in even target cycles must be resolved
        assert not still_x_even[2::2].any()

    def test_module_breakdown_present(self, cpu, model):
        tree = explore(cpu, STRAIGHT)
        peak = compute_peak_power(tree, model)
        assert "exec_unit" in peak.module_mw
        assert len(peak.module_mw["exec_unit"]) == tree.n_cycles

    def test_vcd_artifacts(self, cpu, model, tmp_path):
        tree = explore(cpu, STRAIGHT)
        compute_peak_power(tree, model, vcd_dir=tmp_path)
        assert (tmp_path / "even.vcd").exists()
        assert (tmp_path / "odd.vcd").exists()


class TestPeakEnergy:
    def test_straight_line_energy_is_trace_sum(self, cpu, model):
        tree = explore(cpu, STRAIGHT)
        peak = compute_peak_power(tree, model)
        energy = compute_peak_energy(tree, peak)
        assert energy.peak_energy_pj == pytest.approx(
            float(peak.trace_mw.sum() * 10.0)
        )
        assert energy.path_cycles == tree.n_cycles

    def test_branch_takes_worse_arm(self, cpu, model):
        tree = explore(cpu, ONE_BRANCH)
        peak = compute_peak_power(tree, model)
        energy = compute_peak_energy(tree, peak)
        root = tree.segments[0]
        arms = [tree.segments[f.target] for f in root.forks]
        arm_energies = [
            float(peak.trace_mw[tree.segment_slice(arm)].sum() * 10.0)
            for arm in arms
        ]
        root_energy = float(
            peak.trace_mw[tree.segment_slice(root)].sum() * 10.0
        )
        assert energy.peak_energy_pj == pytest.approx(
            root_energy + max(arm_energies)
        )

    def test_npe_definition(self, cpu, model):
        report = analyze(cpu, ONE_BRANCH, model)
        assert report.npe_pj_per_cycle == pytest.approx(
            report.peak_energy_pj / report.peak_energy.path_cycles
        )
