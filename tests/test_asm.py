"""Assembler, disassembler, and ISS unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm import AssemblyError, assemble, disassemble_at
from repro.isa import InstructionSetSimulator, decode
from repro.isa.spec import (
    DecodedInstruction,
    encode_format_i,
    encode_format_ii,
    encode_jump,
)


def one(body: str):
    return assemble(f".org 0xF000\n{body}\nend: jmp end\n", "t")


class TestEncodings:
    def test_mov_reg_reg(self):
        program = one("mov r4, r5")
        assert program.words[0xF000] == 0x4405

    def test_constant_generators_use_no_ext_word(self):
        for imm, expected_len in ((0, 1), (1, 1), (2, 1), (4, 1), (8, 1), (-1, 1), (5, 2)):
            program = one(f"mov #{imm}, r4")
            instr = decode(program.words[0xF000])
            assert instr.n_words == expected_len, imm

    def test_emulated_nop(self):
        program = one("nop")
        assert decode(program.words[0xF000]).mnemonic == "mov"

    def test_emulated_pop_and_ret(self):
        program = one("pop r7")
        instr = decode(program.words[0xF000])
        assert (instr.src, instr.as_mode, instr.dst) == (1, 3, 7)
        program = one("ret")
        instr = decode(program.words[0xF000])
        assert (instr.src, instr.as_mode, instr.dst) == (1, 3, 0)

    def test_jump_offset_encoding(self):
        program = assemble(
            ".org 0xF000\nhere: jmp here\nend: jmp end\n", "t"
        )
        instr = decode(program.words[0xF000])
        assert instr.offset == -1

    def test_byte_mode_rejected(self):
        with pytest.raises(AssemblyError, match="byte-mode"):
            one("mov.b r4, r5")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            one("frobnicate r4")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblyError, match="undefined symbol"):
            one("mov #nowhere, r4")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble(".org 0xF000\na: nop\na: nop\nend: jmp end\n", "t")

    def test_input_regions_recorded(self):
        program = assemble(
            ".org 0xF000\nend: jmp end\n.org 0x0240\nbuf: .input 3\n", "t"
        )
        assert program.input_regions == [(0x0240, 3)]
        assert program.n_input_words == 3

    def test_with_inputs(self):
        program = assemble(
            ".org 0xF000\nend: jmp end\n.org 0x0240\nbuf: .input 2\n", "t"
        )
        concrete = program.with_inputs([7, 9])
        assert concrete.words[0x0240] == 7
        assert concrete.words[0x0242] == 9
        with pytest.raises(ValueError):
            program.with_inputs([1])

    def test_word_directive_with_labels(self):
        program = assemble(
            ".org 0xF000\nend: jmp end\ndata: .word end, 5\n", "t"
        )
        assert program.words[0xF002] == 0xF000


class TestDecodeRoundTrip:
    @given(
        opcode=st.integers(min_value=4, max_value=15),
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
        as_mode=st.integers(min_value=0, max_value=3),
        ad_mode=st.integers(min_value=0, max_value=1),
    )
    def test_format_i(self, opcode, src, dst, as_mode, ad_mode):
        word = encode_format_i(opcode, src, dst, as_mode, ad_mode)
        instr = decode(word)
        assert instr.fmt == "I"
        assert (instr.src, instr.dst) == (src, dst)
        assert (instr.as_mode, instr.ad_mode) == (as_mode, ad_mode)

    @given(
        opcode=st.integers(min_value=0, max_value=6),
        reg=st.integers(min_value=0, max_value=15),
        as_mode=st.integers(min_value=0, max_value=3),
    )
    def test_format_ii(self, opcode, reg, as_mode):
        word = encode_format_ii(opcode, reg, as_mode)
        instr = decode(word)
        assert instr.fmt == "II"
        assert instr.src == reg

    @given(
        cond=st.integers(min_value=0, max_value=7),
        offset=st.integers(min_value=-512, max_value=511),
    )
    def test_jump(self, cond, offset):
        instr = decode(encode_jump(cond, offset))
        assert instr.fmt == "J"
        assert instr.offset == offset

    def test_illegal_word(self):
        with pytest.raises(ValueError):
            decode(0x0000)


class TestDisassembler:
    def test_round_trip_simple(self):
        source = """
        .org 0xF000
        mov #0x1234, r4
        add r4, r5
        push r6
        rra r7
end:    jmp end
"""
        program = assemble(source, "t")
        text, n = disassemble_at(program.words, 0xF000)
        assert text == "mov #4660, r4" and n == 2
        text, _ = disassemble_at(program.words, 0xF004)
        assert text == "add r4, r5"
        text, _ = disassemble_at(program.words, 0xF006)
        assert text == "push r6"
        text, _ = disassemble_at(program.words, 0xF008)
        assert text == "rra r7"

    def test_unknown_address(self):
        assert disassemble_at({}, 0x1000) == ("?", 1)


class TestIssBehaviour:
    def test_halt_detection(self):
        iss = InstructionSetSimulator(one("nop"))
        iss.run()
        assert iss.halted

    def test_runaway_raises(self):
        program = assemble(
            ".org 0xF000\nloop: add #1, r4\n jmp loop\nend: jmp end\n", "t"
        )
        iss = InstructionSetSimulator(program)
        with pytest.raises(Exception, match="did not halt"):
            iss.run(max_instructions=100)

    def test_watchdog_stops_counting_when_held(self):
        program = one("mov #0x5A80, &0x0120\n nop\n nop")
        iss = InstructionSetSimulator(program)
        iss.run()
        counted = iss.wdt_count
        assert counted <= 2  # only instructions before the hold took effect

    def test_multiplier_chain(self):
        program = one(
            "mov #7, &0x0130\n mov #6, &0x0138\n mov &0x013A, r4"
        )
        iss = InstructionSetSimulator(program)
        iss.run()
        assert iss.state.regs[4] == 42
