"""CLI smoke tests (analyze / profile / coi subcommands)."""

import pytest

from repro.cli import build_parser, main

SOURCE = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
        mov #inp, r4
        add @r4+, r5
        add @r4, r5
        mov r5, &0x0300
end:    jmp end
        .org 0x0240
inp:    .input 2
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "demo.asm"
    path.write_text(SOURCE)
    return str(path)


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze(self, program_file, capsys):
        assert main(["analyze", program_file]) == 0
        out = capsys.readouterr().out
        assert "peak power" in out and "mW" in out

    def test_analyze_engines_agree(self, program_file, capsys, monkeypatch):
        """--engine reference and --engine bitplane print the same numbers
        (and the flag exports REPRO_ENGINE for downstream machines)."""
        import os

        # setenv (not delenv) so monkeypatch records the original absence
        # and removes the variable again at teardown even though the CLI
        # handler overwrites it via os.environ directly.
        monkeypatch.setenv("REPRO_ENGINE", "bitplane")
        outputs = []
        for engine in ("bitplane", "reference"):
            assert main(["analyze", program_file, "--engine", engine]) == 0
            outputs.append(capsys.readouterr().out)
            assert os.environ["REPRO_ENGINE"] == engine
        assert outputs[0] == outputs[1]

    def test_analyze_writes_vcds(self, program_file, tmp_path, capsys):
        vcd_dir = tmp_path / "vcds"
        assert main(["analyze", program_file, "--vcd-dir", str(vcd_dir)]) == 0
        assert (vcd_dir / "even.vcd").exists()
        assert (vcd_dir / "odd.vcd").exists()

    def test_profile(self, program_file, capsys):
        assert main(
            ["profile", program_file, "--inputs", "1,2", "--inputs", "0xFFFF,3"]
        ) == 0
        out = capsys.readouterr().out
        assert "guardbanded" in out

    def test_coi(self, program_file, capsys):
        assert main(["coi", program_file, "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "executing" in out


class TestUnknownBenchmarkErrors:
    """`suite`/`bench` typos exit 2 with the valid names, no traceback."""

    def test_suite_unknown_name(self, capsys):
        assert main(["suite", "--benchmarks", "nosuchbench"]) == 2
        err = capsys.readouterr().err
        assert "nosuchbench" in err
        assert "mult" in err and "Viterbi" in err  # lists valid names
        assert "Traceback" not in err

    def test_suite_mixed_known_and_unknown(self, capsys):
        assert main(["suite", "--benchmarks", "mult,typo1,typo2"]) == 2
        err = capsys.readouterr().err
        assert "'typo1'" in err and "'typo2'" in err

    def test_suite_empty_selection(self, capsys):
        assert main(["suite", "--benchmarks", ","]) == 2
        assert "selected nothing" in capsys.readouterr().err

    def test_bench_unknown_name(self, capsys):
        assert main(["bench", "--benchmarks", "nosuchbench"]) == 2
        err = capsys.readouterr().err
        assert "nosuchbench" in err and "mult" in err

    def test_submit_validates_before_the_network(self, capsys):
        # an unknown benchmark never leaves the process (no server here)
        assert main(
            ["submit", "nosuchbench", "--url", "http://127.0.0.1:1"]
        ) == 2
        err = capsys.readouterr().err
        assert "nosuchbench" in err and "mult" in err


class TestServiceCli:
    def test_submit_unreachable_server_fails_cleanly(self, capsys):
        assert main(
            ["submit", "mult", "--url", "http://127.0.0.1:1", "--timeout", "2"]
        ) == 1
        err = capsys.readouterr().err
        assert "repro serve" in err

    def test_submit_slow_job_is_not_reported_as_down(self, capsys,
                                                     monkeypatch):
        """A result-wait timeout must say 'still running', not blame a
        dead server (TimeoutError is an OSError subclass — order
        matters in the handler)."""
        from repro.service import client as client_mod

        def fake_submit(self, kind="analyze", priority=0, **params):
            return {"job_id": "job-00001", "state": "queued"}

        def fake_result(self, job_id, timeout=300.0):
            raise TimeoutError(
                f"job {job_id} did not finish within {timeout:.0f}s"
            )

        monkeypatch.setattr(client_mod.ServiceClient, "submit", fake_submit)
        monkeypatch.setattr(client_mod.ServiceClient, "result", fake_result)
        assert main(["submit", "mult", "--timeout", "1"]) == 1
        err = capsys.readouterr().err
        assert "may still be running" in err
        assert "repro serve" not in err

    def test_islands_flags_exported(self, monkeypatch, capsys):
        import os

        monkeypatch.setenv("REPRO_ISLANDS", "")
        monkeypatch.setenv("REPRO_MIGRATION_INTERVAL", "")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert main(
            ["suite", "--benchmarks", "mult", "--jobs", "1",
             "--islands", "3", "--migration-interval", "4"]
        ) == 0
        assert os.environ["REPRO_ISLANDS"] == "3"
        assert os.environ["REPRO_MIGRATION_INTERVAL"] == "4"


class TestCacheCli:
    @pytest.fixture
    def isolated_store(self, tmp_path, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "cache")
        monkeypatch.setattr(runner, "_store", None)
        yield runner
        for key in list(runner._memory_cache):
            if key.startswith("unit_"):
                runner._memory_cache.pop(key)
        runner._store = None

    def test_cache_stats(self, isolated_store, capsys):
        runner = isolated_store
        runner._cached("unit_cli_key", lambda: {"v": 1})
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries    : 1" in out
        assert str(runner.CACHE_DIR) in out

    def test_cache_gc_with_cap(self, isolated_store, capsys):
        runner = isolated_store
        runner._cached("unit_cli_key", lambda: {"v": 1})
        runner._memory_cache.pop("unit_cli_key")
        assert main(["cache", "gc", "--max-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 artifacts" in out
        assert not list(runner.CACHE_DIR.glob("*.pkl"))

    def test_cache_gc_collects_legacy_entries(self, isolated_store, capsys):
        import pickle

        runner = isolated_store
        runner.CACHE_DIR.mkdir(parents=True)
        (runner.CACHE_DIR / "xbased_FFT.pkl").write_bytes(
            pickle.dumps("seed-era entry")
        )
        assert main(["cache", "stats"]) == 0
        assert "1 legacy" in capsys.readouterr().out
        assert main(["cache", "gc"]) == 0
        assert "removed 1 artifacts" in capsys.readouterr().out
        assert not (runner.CACHE_DIR / "xbased_FFT.pkl").exists()

    def test_cache_explicit_store_dir(self, tmp_path, capsys, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner, "_store", None)
        monkeypatch.setattr(runner, "CACHE_DIR", tmp_path / "unused")
        target = tmp_path / "elsewhere"
        assert main(["cache", "--store", str(target), "stats"]) == 0
        assert str(target) in capsys.readouterr().out
        runner._store = None
