"""CLI smoke tests (analyze / profile / coi subcommands)."""

import pytest

from repro.cli import build_parser, main

SOURCE = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
        mov #inp, r4
        add @r4+, r5
        add @r4, r5
        mov r5, &0x0300
end:    jmp end
        .org 0x0240
inp:    .input 2
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "demo.asm"
    path.write_text(SOURCE)
    return str(path)


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze(self, program_file, capsys):
        assert main(["analyze", program_file]) == 0
        out = capsys.readouterr().out
        assert "peak power" in out and "mW" in out

    def test_analyze_engines_agree(self, program_file, capsys, monkeypatch):
        """--engine reference and --engine bitplane print the same numbers
        (and the flag exports REPRO_ENGINE for downstream machines)."""
        import os

        # setenv (not delenv) so monkeypatch records the original absence
        # and removes the variable again at teardown even though the CLI
        # handler overwrites it via os.environ directly.
        monkeypatch.setenv("REPRO_ENGINE", "bitplane")
        outputs = []
        for engine in ("bitplane", "reference"):
            assert main(["analyze", program_file, "--engine", engine]) == 0
            outputs.append(capsys.readouterr().out)
            assert os.environ["REPRO_ENGINE"] == engine
        assert outputs[0] == outputs[1]

    def test_analyze_writes_vcds(self, program_file, tmp_path, capsys):
        vcd_dir = tmp_path / "vcds"
        assert main(["analyze", program_file, "--vcd-dir", str(vcd_dir)]) == 0
        assert (vcd_dir / "even.vcd").exists()
        assert (vcd_dir / "odd.vcd").exists()

    def test_profile(self, program_file, capsys):
        assert main(
            ["profile", program_file, "--inputs", "1,2", "--inputs", "0xFFFF,3"]
        ) == 0
        out = capsys.readouterr().out
        assert "guardbanded" in out

    def test_coi(self, program_file, capsys):
        assert main(["coi", program_file, "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "executing" in out
