"""Disassembler — used by the COI reports of §3.5 to show which
instructions sit in the pipeline during a peak-power cycle."""

from __future__ import annotations

from repro.isa.spec import (
    MODE_INDEXED,
    MODE_INDIRECT,
    MODE_REGISTER,
    PC,
    REG_NAMES,
    SR,
    DecodedInstruction,
    decode,
)


def _signed(value: int) -> int:
    return value - 0x10000 if value & 0x8000 else value


def _src_text(instr: DecodedInstruction, ext_words: list[int]) -> str:
    if instr.is_constant_gen():
        return f"#{_signed(instr.constant_value())}"
    reg = REG_NAMES[instr.src]
    if instr.as_mode == MODE_REGISTER:
        return reg
    if instr.as_mode == MODE_INDEXED:
        ext = ext_words.pop(0)
        if instr.src == SR:
            return f"&{ext:#06x}"
        return f"{_signed(ext)}({reg})"
    if instr.as_mode == MODE_INDIRECT:
        return f"@{reg}"
    if instr.src == PC:
        return f"#{_signed(ext_words.pop(0))}"
    return f"@{reg}+"


def _dst_text(instr: DecodedInstruction, ext_words: list[int]) -> str:
    reg = REG_NAMES[instr.dst]
    if instr.ad_mode == 0:
        return reg
    ext = ext_words.pop(0)
    if instr.dst == SR:
        return f"&{ext:#06x}"
    return f"{_signed(ext)}({reg})"


def disassemble_at(words: dict[int, int], address: int) -> tuple[str, int]:
    """Disassemble the instruction at byte *address*.

    Returns ``(text, n_words)``; unknown or missing words render as ``?``.
    """
    word = words.get(address)
    if word is None:
        return "?", 1
    try:
        instr = decode(word)
    except ValueError:
        return f".word {word:#06x}", 1
    ext_words = [
        words.get(address + 2 * i, 0) for i in range(1, instr.n_words)
    ]
    if instr.fmt == "J":
        target = (address + 2 + 2 * instr.offset) & 0xFFFF
        return f"{instr.mnemonic} {target:#06x}", 1
    if instr.fmt == "II":
        if instr.mnemonic == "reti":
            return "reti", 1
        text = f"{instr.mnemonic} {_src_text(instr, ext_words)}"
        return text, instr.n_words
    source = _src_text(instr, ext_words)
    dest = _dst_text(instr, ext_words)
    return f"{instr.mnemonic} {source}, {dest}", instr.n_words


def disassemble_program(words: dict[int, int], start: int, end: int) -> list[str]:
    """Linear-sweep disassembly of [start, end) for reports and debugging."""
    lines = []
    address = start
    while address < end:
        text, n_words = disassemble_at(words, address)
        lines.append(f"{address:#06x}: {text}")
        address += 2 * n_words
    return lines
