"""Two-pass assembler, program container, and disassembler."""

from repro.asm.program import Program
from repro.asm.assembler import AssemblyError, assemble
from repro.asm.disasm import disassemble_at, disassemble_program

__all__ = [
    "Program",
    "assemble",
    "AssemblyError",
    "disassemble_at",
    "disassemble_program",
]
