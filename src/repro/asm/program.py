"""The assembled-program container shared by the ISS, the gate-level
machine, and the analysis pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Program:
    """An assembled binary image plus its symbol table and input regions."""

    #: byte address (even) -> 16-bit word
    words: dict[int, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    #: (byte address, n_words) regions declared with ``.input`` — these are
    #: the locations Algorithm 1 leaves as X and profiling randomizes.
    input_regions: list[tuple[int, int]] = field(default_factory=list)
    entry: int = 0xF000
    #: byte address -> source text of the statement assembled there
    source_map: dict[int, str] = field(default_factory=dict)
    name: str = "program"

    def input_word_addresses(self) -> list[int]:
        """Byte addresses of every input word, flattened."""
        addresses = []
        for start, n_words in self.input_regions:
            addresses.extend(start + 2 * i for i in range(n_words))
        return addresses

    def with_inputs(self, values: list[int]) -> "Program":
        """A copy with concrete *values* loaded into the input regions.

        Used by input-based profiling and validation: the returned program
        has no symbolic inputs left.
        """
        addresses = self.input_word_addresses()
        if len(values) != len(addresses):
            raise ValueError(
                f"program {self.name} expects {len(addresses)} input words, "
                f"got {len(values)}"
            )
        clone = Program(
            words=dict(self.words),
            symbols=dict(self.symbols),
            input_regions=[],
            entry=self.entry,
            source_map=dict(self.source_map),
            name=self.name,
        )
        for address, value in zip(addresses, values):
            clone.words[address] = value & 0xFFFF
        return clone

    @property
    def n_input_words(self) -> int:
        return sum(n for _start, n in self.input_regions)

    def end_address(self) -> int | None:
        """Byte address of the ``end`` symbol (the final self-jump), if any."""
        return self.symbols.get("end")
