"""Two-pass assembler for the MSP430-subset ISA.

Supported syntax (one statement per line, ``;`` comments)::

    .org 0xF000
    .equ WDTCTL, 0x0120
    start:  mov #0x5A80, &WDTCTL     ; stop the watchdog
            mov #data, r4
    loop:   add @r4+, r5
            dec r6
            jnz loop
    end:    jmp end
    .org 0x0200
    data:   .word 1, 2, 0x10
    buf:    .space 4                  ; 4 uninitialized (X) words
    in:     .input 8                  ; 8 input words (X for Algorithm 1)

Operand forms: ``rN``/``pc``/``sp``/``sr``, ``#imm``, ``&abs``,
``off(rN)``, ``@rN``, ``@rN+``, and bare labels for jump targets.
Emulated mnemonics (``nop``, ``pop``, ``ret``, ``br``, ``clr``, ``inc``,
``incd``, ``dec``, ``decd``, ``tst``, ``inv``, ``rla``, ``clrc``,
``setc``) expand to their canonical MSP430 encodings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.asm.program import Program
from repro.isa.spec import (
    COND_CODES,
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    MODE_INDEXED,
    MODE_INDIRECT,
    MODE_INDIRECT_INC,
    MODE_REGISTER,
    PC,
    SR,
    CG2,
    encode_format_i,
    encode_format_ii,
    encode_jump,
)

MASK16 = 0xFFFF

#: immediate value -> (register, As mode) for the constant generators
_CG_ENCODINGS = {
    0: (CG2, MODE_REGISTER),
    1: (CG2, MODE_INDEXED),
    2: (CG2, MODE_INDIRECT),
    0xFFFF: (CG2, MODE_INDIRECT_INC),
    4: (SR, MODE_INDIRECT),
    8: (SR, MODE_INDIRECT_INC),
}

_REGISTER_ALIASES = {"pc": 0, "sp": 1, "sr": 2, "cg2": 3}


class AssemblyError(Exception):
    """Source error, reported with the offending line number and text.

    The location is folded into ``str(err)`` for humans, and kept as
    structured attributes (``reason``/``line_no``/``line``) so the
    upload gateway can answer with a machine-readable 422 instead of
    re-parsing its own error message.
    """

    def __init__(self, message: str, line_no: int | None = None, line: str = ""):
        location = f" (line {line_no}: {line.strip()!r})" if line_no else ""
        super().__init__(message + location)
        self.reason = message
        self.line_no = line_no
        self.line = line.strip()


@dataclass
class _Operand:
    kind: str  # "reg" | "imm" | "abs" | "indexed" | "indirect" | "indirect_inc" | "sym"
    reg: int = 0
    expr: str = ""


@dataclass
class _Statement:
    line_no: int
    text: str
    label: str | None
    mnemonic: str | None
    operands: list[_Operand]
    directive: str | None
    args: list[str]


_LABEL_RE = re.compile(r"^\s*([A-Za-z_][\w.$]*)\s*:\s*(.*)$")
_REG_RE = re.compile(r"^(r(\d+)|pc|sp|sr|cg2)$", re.IGNORECASE)
_INDEXED_RE = re.compile(r"^(.+)\((r\d+|pc|sp|sr)\)$", re.IGNORECASE)

_EMULATED_NO_OPERAND = {
    "nop": ("mov", ["r3", "r3"]),
    "ret": ("mov", ["@sp+", "pc"]),
    "clrc": ("bic", ["#1", "sr"]),
    "setc": ("bis", ["#1", "sr"]),
    "clrz": ("bic", ["#2", "sr"]),
    "clrn": ("bic", ["#4", "sr"]),
    "dint": ("bic", ["#8", "sr"]),
    "eint": ("bis", ["#8", "sr"]),
}

_EMULATED_ONE_OPERAND = {
    "pop": ("mov", ["@sp+", "{0}"]),
    "br": ("mov", ["{0}", "pc"]),
    "clr": ("mov", ["#0", "{0}"]),
    "inc": ("add", ["#1", "{0}"]),
    "incd": ("add", ["#2", "{0}"]),
    "dec": ("sub", ["#1", "{0}"]),
    "decd": ("sub", ["#2", "{0}"]),
    "tst": ("cmp", ["#0", "{0}"]),
    "inv": ("xor", ["#0xffff", "{0}"]),
    "rla": ("add", ["{0}", "{0}"]),
    "rlc": ("addc", ["{0}", "{0}"]),
    "adc": ("addc", ["#0", "{0}"]),
    "sbc": ("subc", ["#0", "{0}"]),
}


def _parse_register(token: str) -> int | None:
    token = token.strip().lower()
    if token in _REGISTER_ALIASES:
        return _REGISTER_ALIASES[token]
    match = _REG_RE.match(token)
    if match and match.group(2) is not None:
        number = int(match.group(2))
        if 0 <= number <= 15:
            return number
    return None


def _parse_operand(token: str, line_no: int, line: str) -> _Operand:
    token = token.strip()
    if not token:
        raise AssemblyError("empty operand", line_no, line)
    register = _parse_register(token)
    if register is not None:
        return _Operand("reg", reg=register)
    if token.startswith("#"):
        return _Operand("imm", expr=token[1:].strip())
    if token.startswith("&"):
        return _Operand("abs", expr=token[1:].strip())
    if token.startswith("@"):
        body = token[1:].strip()
        autoinc = body.endswith("+")
        if autoinc:
            body = body[:-1].strip()
        register = _parse_register(body)
        if register is None:
            raise AssemblyError(f"bad indirect register {body!r}", line_no, line)
        return _Operand("indirect_inc" if autoinc else "indirect", reg=register)
    indexed = _INDEXED_RE.match(token)
    if indexed:
        register = _parse_register(indexed.group(2))
        if register is None:
            raise AssemblyError(f"bad index register", line_no, line)
        return _Operand("indexed", reg=register, expr=indexed.group(1).strip())
    return _Operand("sym", expr=token)


def _split_operands(rest: str) -> list[str]:
    """Split on commas that are not inside parentheses."""
    parts, depth, current = [], 0, []
    for char in rest:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


_NUMBER_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|0b[01]+|\d+)$")
_TOKEN_RE = re.compile(r"0x[0-9a-fA-F]+|0b[01]+|\d+|[A-Za-z_][\w.$]*|[+\-*]|\.")


class _ExpressionEvaluator:
    """Evaluates integer expressions with symbols and + - * operators."""

    def __init__(self, symbols: dict[str, int]):
        self.symbols = symbols

    def eval(self, expr: str, line_no: int, line: str, here: int = 0) -> int:
        tokens = _TOKEN_RE.findall(expr.replace(" ", ""))
        if not tokens or "".join(tokens) != expr.replace(" ", ""):
            raise AssemblyError(f"cannot parse expression {expr!r}", line_no, line)
        value, pending_op = 0, "+"
        for token in tokens:
            if token in "+-*":
                pending_op = token
                continue
            if token == ".":
                operand = here
            elif _NUMBER_RE.match(token):
                operand = int(token, 0)
            elif token in self.symbols:
                operand = self.symbols[token]
            else:
                raise AssemblyError(f"undefined symbol {token!r}", line_no, line)
            if pending_op == "+":
                value += operand
            elif pending_op == "-":
                value -= operand
            else:
                value *= operand
        return value & MASK16 if value >= 0 else (value + 0x10000) & MASK16


def _parse_lines(source: str) -> list[_Statement]:
    statements = []
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        label = None
        match = _LABEL_RE.match(line)
        if match:
            label, line = match.group(1), match.group(2)
        body = line.strip()
        if not body:
            statements.append(_Statement(line_no, raw, label, None, [], None, []))
            continue
        if body.startswith("."):
            parts = body.split(None, 1)
            directive = parts[0].lower()
            args = _split_operands(parts[1]) if len(parts) > 1 else []
            statements.append(
                _Statement(line_no, raw, label, None, [], directive, args)
            )
            continue
        parts = body.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic.endswith(".w"):
            mnemonic = mnemonic[:-2]
        if mnemonic.endswith(".b"):
            raise AssemblyError(
                "byte-mode (.b) instructions are not supported in this subset",
                line_no,
                raw,
            )
        operand_tokens = _split_operands(parts[1]) if len(parts) > 1 else []
        if mnemonic in _EMULATED_NO_OPERAND:
            if operand_tokens:
                raise AssemblyError(f"{mnemonic} takes no operands", line_no, raw)
            mnemonic, templates = _EMULATED_NO_OPERAND[mnemonic]
            operand_tokens = list(templates)
        elif mnemonic in _EMULATED_ONE_OPERAND:
            if len(operand_tokens) != 1:
                raise AssemblyError(f"{mnemonic} takes one operand", line_no, raw)
            mnemonic, templates = _EMULATED_ONE_OPERAND[mnemonic]
            operand_tokens = [t.format(operand_tokens[0]) for t in templates]
        operands = [_parse_operand(t, line_no, raw) for t in operand_tokens]
        statements.append(
            _Statement(line_no, raw, label, mnemonic, operands, None, [])
        )
    return statements


class _Encoder:
    """Encodes one statement; shared by the sizing and emission passes."""

    def __init__(self, evaluator: _ExpressionEvaluator):
        self.evaluator = evaluator

    def _src_encoding(
        self, operand: _Operand, stmt: _Statement, resolve: bool
    ) -> tuple[int, int, list[tuple[str, _Operand]]]:
        """Return (reg, as_mode, ext) where ext is a list of pending words."""
        if operand.kind == "reg":
            return operand.reg, MODE_REGISTER, []
        if operand.kind == "imm":
            if _NUMBER_RE.match(operand.expr):
                value = self.evaluator.eval(operand.expr, stmt.line_no, stmt.text)
                if value in _CG_ENCODINGS:
                    reg, mode = _CG_ENCODINGS[value]
                    return reg, mode, []
            return PC, MODE_INDIRECT_INC, [("imm", operand)]
        if operand.kind == "abs":
            return SR, MODE_INDEXED, [("abs", operand)]
        if operand.kind == "indexed":
            return operand.reg, MODE_INDEXED, [("idx", operand)]
        if operand.kind == "indirect":
            return operand.reg, MODE_INDIRECT, []
        if operand.kind == "indirect_inc":
            return operand.reg, MODE_INDIRECT_INC, []
        if operand.kind == "sym":
            # Bare symbols assemble as absolute addressing (see module doc).
            return SR, MODE_INDEXED, [("abs", operand)]
        raise AssemblyError(f"bad source operand", stmt.line_no, stmt.text)

    def _dst_encoding(
        self, operand: _Operand, stmt: _Statement
    ) -> tuple[int, int, list[tuple[str, _Operand]]]:
        if operand.kind == "reg":
            return operand.reg, 0, []
        if operand.kind == "abs" or operand.kind == "sym":
            return SR, 1, [("abs", operand)]
        if operand.kind == "indexed":
            return operand.reg, 1, [("idx", operand)]
        raise AssemblyError(
            f"destination must be a register, &abs, or x(rN)",
            stmt.line_no,
            stmt.text,
        )

    def encode(self, stmt: _Statement, address: int) -> list[int]:
        """Encode to concrete words (pass 2) — symbols must resolve."""
        mnemonic = stmt.mnemonic
        evaluator = self.evaluator
        if mnemonic in COND_CODES:
            if len(stmt.operands) != 1 or stmt.operands[0].kind not in ("sym", "abs"):
                raise AssemblyError("jump needs a label target", stmt.line_no, stmt.text)
            target = evaluator.eval(
                stmt.operands[0].expr, stmt.line_no, stmt.text, here=address
            )
            byte_offset = (target - (address + 2)) & MASK16
            if byte_offset & 1:
                raise AssemblyError("misaligned jump target", stmt.line_no, stmt.text)
            word_offset = byte_offset >> 1
            if word_offset >= 0x4000:
                word_offset -= 0x8000  # sign-extend the 15-bit word offset
            if not -512 <= word_offset <= 511:
                raise AssemblyError(
                    f"jump target out of range ({word_offset} words)",
                    stmt.line_no,
                    stmt.text,
                )
            return [encode_jump(COND_CODES[mnemonic], word_offset)]
        if mnemonic in FORMAT_II_OPCODES:
            if mnemonic == "reti":
                return [encode_format_ii(FORMAT_II_OPCODES["reti"], 0, 0)]
            if len(stmt.operands) != 1:
                raise AssemblyError(f"{mnemonic} takes one operand", stmt.line_no, stmt.text)
            reg, as_mode, ext = self._src_encoding(stmt.operands[0], stmt, True)
            words = [encode_format_ii(FORMAT_II_OPCODES[mnemonic], reg, as_mode)]
            words.extend(self._resolve_ext(ext, stmt, address, words_so_far=1))
            return words
        if mnemonic in FORMAT_I_OPCODES:
            if len(stmt.operands) != 2:
                raise AssemblyError(
                    f"{mnemonic} takes two operands", stmt.line_no, stmt.text
                )
            src_reg, as_mode, src_ext = self._src_encoding(stmt.operands[0], stmt, True)
            dst_reg, ad_mode, dst_ext = self._dst_encoding(stmt.operands[1], stmt)
            words = [
                encode_format_i(
                    FORMAT_I_OPCODES[mnemonic], src_reg, dst_reg, as_mode, ad_mode
                )
            ]
            words.extend(
                self._resolve_ext(src_ext + dst_ext, stmt, address, words_so_far=1)
            )
            return words
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", stmt.line_no, stmt.text)

    def _resolve_ext(
        self,
        ext: list[tuple[str, _Operand]],
        stmt: _Statement,
        address: int,
        words_so_far: int,
    ) -> list[int]:
        resolved = []
        for _kind, operand in ext:
            resolved.append(
                self.evaluator.eval(operand.expr, stmt.line_no, stmt.text, here=address)
            )
        return resolved

    def size_in_words(self, stmt: _Statement) -> int:
        """Pass-1 size: identical decision procedure to :meth:`encode`."""
        mnemonic = stmt.mnemonic
        if mnemonic in COND_CODES:
            return 1
        operands = stmt.operands
        ext_words = 0
        if mnemonic in FORMAT_II_OPCODES:
            if mnemonic != "reti":
                ext_words += self._operand_ext_words(operands[0])
            return 1 + ext_words
        if mnemonic in FORMAT_I_OPCODES:
            ext_words += self._operand_ext_words(operands[0])
            dst = operands[1]
            if dst.kind in ("abs", "sym", "indexed"):
                ext_words += 1
            return 1 + ext_words
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", stmt.line_no, stmt.text)

    def _operand_ext_words(self, operand: _Operand) -> int:
        if operand.kind in ("reg", "indirect", "indirect_inc"):
            return 0
        if operand.kind == "imm":
            if _NUMBER_RE.match(operand.expr):
                value = int(operand.expr, 0) & MASK16
                if value in _CG_ENCODINGS:
                    return 0
            return 1
        return 1  # abs, indexed, sym


def assemble(source: str, name: str = "program") -> Program:
    """Assemble *source* into a :class:`~repro.asm.program.Program`."""
    statements = _parse_lines(source)
    symbols: dict[str, int] = {}
    evaluator = _ExpressionEvaluator(symbols)
    encoder = _Encoder(evaluator)

    # Pass 1: layout — assign addresses to labels.
    location = 0xF000
    entry = None
    regions: list[tuple[int, int]] = []
    for stmt in statements:
        if stmt.label:
            if stmt.label in symbols:
                raise AssemblyError(
                    f"duplicate label {stmt.label!r}", stmt.line_no, stmt.text
                )
            symbols[stmt.label] = location
        if stmt.directive == ".equ":
            if len(stmt.args) != 2:
                raise AssemblyError(".equ NAME, VALUE", stmt.line_no, stmt.text)
            symbols[stmt.args[0]] = evaluator.eval(
                stmt.args[1], stmt.line_no, stmt.text
            )
        elif stmt.directive == ".org":
            location = evaluator.eval(stmt.args[0], stmt.line_no, stmt.text)
            if stmt.label:
                symbols[stmt.label] = location
            if entry is None and location >= 0x1000:
                entry = location
        elif stmt.directive == ".word":
            location += 2 * len(stmt.args)
        elif stmt.directive in (".space", ".input"):
            location += 2 * evaluator.eval(stmt.args[0], stmt.line_no, stmt.text)
        elif stmt.directive == ".entry":
            pass
        elif stmt.directive is not None:
            raise AssemblyError(
                f"unknown directive {stmt.directive}", stmt.line_no, stmt.text
            )
        elif stmt.mnemonic is not None:
            location += 2 * encoder.size_in_words(stmt)

    # Pass 2: emission.
    program = Program(name=name)
    location = 0xF000
    for stmt in statements:
        if stmt.directive == ".org":
            location = evaluator.eval(stmt.args[0], stmt.line_no, stmt.text)
            continue
        if stmt.directive == ".equ" or stmt.directive is None and stmt.mnemonic is None:
            continue
        if stmt.directive == ".entry":
            program.entry = evaluator.eval(stmt.args[0], stmt.line_no, stmt.text)
            continue
        if stmt.directive == ".word":
            for arg in stmt.args:
                value = evaluator.eval(arg, stmt.line_no, stmt.text, here=location)
                program.words[location] = value
                location += 2
            continue
        if stmt.directive == ".space":
            location += 2 * evaluator.eval(stmt.args[0], stmt.line_no, stmt.text)
            continue
        if stmt.directive == ".input":
            n_words = evaluator.eval(stmt.args[0], stmt.line_no, stmt.text)
            program.input_regions.append((location, n_words))
            location += 2 * n_words
            continue
        if stmt.mnemonic is None:
            continue
        words = encoder.encode(stmt, location)
        expected = encoder.size_in_words(stmt)
        if len(words) != expected:
            raise AssemblyError(
                f"size mismatch for {stmt.mnemonic} ({len(words)} vs {expected})",
                stmt.line_no,
                stmt.text,
            )
        program.source_map[location] = stmt.text.strip()
        for word in words:
            if location in program.words:
                raise AssemblyError(
                    f"overlapping code at {location:#06x}", stmt.line_no, stmt.text
                )
            program.words[location] = word & MASK16
            location += 2

    program.symbols = dict(symbols)
    if entry is not None:
        program.entry = entry
    return program
