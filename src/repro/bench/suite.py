"""Benchmark registry: sources, input generators, and reference models.

Each :class:`Benchmark` carries a deterministic input generator (seeded
numpy RNG) used by input-based profiling and validation, plus exploration
budgets tuned to each kernel's branching structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.asm import assemble
from repro.asm.program import Program
from repro.bench import programs as srcs

MASK16 = 0xFFFF


@dataclass
class Benchmark:
    """One entry of Table 4.1."""

    name: str
    source: str
    category: str  # "sensor" | "eembc" | "control"
    description: str
    #: draws one concrete input set: rng -> list of input words
    input_gen: Callable[[np.random.Generator], list[int]]
    #: exploration budget overrides
    max_segments: int = 4_096
    max_cycles: int = 400_000
    #: loop bound for peak-energy on cyclic trees (None: tree is acyclic)
    loop_bound: int | None = None

    def program(self) -> Program:
        return assemble(self.source, self.name)

    def analysis_kwargs(self, batch_size: int | None = None) -> dict:
        """Keyword arguments for :func:`repro.core.api.analyze`.

        Bundles this kernel's exploration budgets (and optionally the
        *batch_size* scheduling knob) so the runner, the CLI, and the
        perf harness all analyze a benchmark identically.  The simulation
        engine is selected by ``REPRO_ENGINE`` (see
        :func:`repro.sim.bitplane.default_engine`), which the CLI and the
        suite runner export.
        """
        kwargs = {
            "loop_bound": self.loop_bound,
            "max_segments": self.max_segments,
            "max_cycles": self.max_cycles,
        }
        if batch_size is not None:
            kwargs["batch_size"] = batch_size
        return kwargs

    def input_sets(self, count: int, seed: int = 2017) -> list[list[int]]:
        """Deterministic profiling input sets (the paper runs "several")."""
        rng = np.random.default_rng(seed)
        return [self.input_gen(rng) for _ in range(count)]


def _uniform(n: int, high: int = 0x10000):
    def gen(rng: np.random.Generator) -> list[int]:
        return [int(v) for v in rng.integers(0, high, size=n)]

    return gen


def _samples(n: int, high: int = 0x400):
    """ADC-like small-magnitude sensor samples."""
    return _uniform(n, high)


ALL_BENCHMARKS: dict[str, Benchmark] = {}


def _register(benchmark: Benchmark) -> None:
    ALL_BENCHMARKS[benchmark.name] = benchmark


_register(Benchmark(
    name="mult",
    source=srcs.MULT,
    category="sensor",
    description="multiply-accumulate over input pairs (hardware multiplier)",
    input_gen=_uniform(8),
))
_register(Benchmark(
    name="binSearch",
    source=srcs.BINSEARCH,
    category="sensor",
    description="binary search for an input key in a constant sorted table",
    input_gen=_uniform(1, 100),
))
_register(Benchmark(
    name="tea8",
    source=srcs.TEA8,
    category="sensor",
    description="TEA-style block mixing: shifts and XORs, no multiplier",
    input_gen=_uniform(2),
))
_register(Benchmark(
    name="intFilt",
    source=srcs.INTFILT,
    category="sensor",
    description="3-tap integer moving-sum filter with indexed loads",
    input_gen=_samples(8),
))
_register(Benchmark(
    name="tHold",
    source=srcs.THOLD,
    category="sensor",
    description="per-sample threshold detector driving the GPIO port",
    input_gen=_samples(4),
))
_register(Benchmark(
    name="div",
    source=srcs.DIV,
    category="sensor",
    description="restoring division of an input dividend",
    input_gen=_uniform(1, 16),
))
_register(Benchmark(
    name="inSort",
    source=srcs.INSORT,
    category="sensor",
    description="insertion sort of input words (data-dependent branching)",
    input_gen=_samples(4),
    max_segments=8_192,
))
_register(Benchmark(
    name="rle",
    source=srcs.RLE,
    category="sensor",
    description="run-length encoding against the previous sample",
    input_gen=_uniform(4, 4),
))
_register(Benchmark(
    name="intAVG",
    source=srcs.INTAVG,
    category="sensor",
    description="running average of input samples",
    input_gen=_samples(8),
))
_register(Benchmark(
    name="autoCorr",
    source=srcs.AUTOCORR,
    category="eembc",
    description="autocorrelation at two lags (multiplier-heavy)",
    input_gen=_samples(5),
))
_register(Benchmark(
    name="FFT",
    source=srcs.FFT,
    category="eembc",
    description="4-point FFT butterfly pass",
    input_gen=_samples(4),
))
_register(Benchmark(
    name="ConvEn",
    source=srcs.CONVEN,
    category="eembc",
    description="rate-1/2 convolutional encoder (branch-free bit loop)",
    input_gen=_uniform(1, 256),
))
_register(Benchmark(
    name="Viterbi",
    source=srcs.VITERBI,
    category="eembc",
    description="2-state add-compare-select trellis",
    input_gen=_samples(3, 0x100),
))
_register(Benchmark(
    name="PI",
    source=srcs.PI,
    category="control",
    description="proportional-integral controller with saturation",
    input_gen=_samples(2),
))

SENSOR_BENCHMARKS = [b for b in ALL_BENCHMARKS.values() if b.category == "sensor"]
EEMBC_BENCHMARKS = [b for b in ALL_BENCHMARKS.values() if b.category == "eembc"]


def get_benchmark(name: str) -> Benchmark:
    try:
        return ALL_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(ALL_BENCHMARKS)}"
        ) from None
