"""Assembly sources for the 14 benchmark kernels of Table 4.1.

Conventions shared by every kernel:

* the first instruction stops the watchdog (the canonical MSP430 idiom);
* ``.input N`` regions are the application inputs — X during symbolic
  analysis, concrete during profiling/validation;
* results land in RAM at 0x0300+ so tests can check functionality;
* execution ends at ``end: jmp end`` (the halt idiom the tools detect);
* r14/r15 are kept free as scratch registers for the OPT transforms.
"""

HEADER = """
        .equ WDTCTL, 0x0120
        .equ P1OUT,  0x0022
        .equ MPY,    0x0130
        .equ OP2,    0x0138
        .equ RESLO,  0x013A
        .equ RESHI,  0x013C
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
"""

# ---------------------------------------------------------------------------
# Embedded sensor benchmarks
# ---------------------------------------------------------------------------

MULT = HEADER + """
; multiply-accumulate over 4 input pairs using the hardware multiplier
        mov #a_in, r4
        mov #b_in, r5
        mov #4, r7          ; element count
        mov #0, r8          ; accumulator lo
        mov #0, r9          ; accumulator hi
mloop:  push r7
        mov @r4+, &MPY
        mov @r5+, &OP2
        mov &RESLO, r10
        mov &RESHI, r11
        add r10, r8
        addc r11, r9
        pop r7
        dec r7
        jnz mloop
        mov r8, &0x0300
        mov r9, &0x0302
end:    jmp end
        .org 0x0240
a_in:   .input 4
b_in:   .input 4
"""

BINSEARCH = HEADER + """
; binary search for an input key in a sorted constant table of 8
        mov #key, r4
        mov @r4, r10        ; key (X)
        mov #0, r5          ; lo index
        mov #7, r6          ; hi index
        mov #0xFFFF, r9     ; result: not found
bloop:  cmp r5, r6
        jl  bdone           ; hi < lo -> done
        mov r6, r7
        add r5, r7
        rra r7              ; mid = (lo + hi) / 2
        bic #0x8000, r7     ; logical shift (indices are small)
        mov r7, r8
        add r7, r8          ; byte offset = 2 * mid
        add #table, r8
        cmp @r8, r10
        jz  bfound
        jl  blower
        mov r7, r5          ; key > mid value: lo = mid + 1
        inc r5
        jmp bloop
blower: mov r7, r6          ; key < mid value: hi = mid - 1
        dec r6
        jmp bloop
bfound: mov r7, r9
bdone:  mov r9, &0x0300
end:    jmp end
table:  .word 3, 9, 17, 25, 40, 53, 77, 90
        .org 0x0240
key:    .input 1
"""

TEA8 = HEADER + """
; TEA-style mixing: 4 rounds of shift/xor/add on a 2-word input block
        mov #block, r4
        mov @r4+, r5        ; v0
        mov @r4, r6         ; v1
        mov #0, r7          ; sum
        mov #4, r8          ; rounds
tloop:  add #0x79B9, r7     ; sum += delta
        mov r6, r9
        rla r9              ; v1 << 1
        rla r9
        mov r6, r10
        rra r10             ; v1 >> 1 (arithmetic)
        xor r9, r10
        add r7, r10
        add r10, r5         ; v0 += ...
        mov r5, r9
        rla r9
        rla r9
        mov r5, r10
        rra r10
        xor r9, r10
        add r7, r10
        add r10, r6         ; v1 += ...
        dec r8
        jnz tloop
        mov r5, &0x0300
        mov r6, &0x0302
end:    jmp end
        .org 0x0240
block:  .input 2
"""

INTFILT = HEADER + """
; 3-tap moving-sum integer filter over 6 input samples (indexed loads)
        mov #0, r5          ; i = 0 (byte offset)
        mov #6, r7          ; remaining outputs
floop:  mov #x_in, r6
        add r5, r6
        mov 0(r6), r8       ; x[i]
        add 2(r6), r8       ; + x[i+1]
        add 4(r6), r8       ; + x[i+2]
        rra r8              ; / 2 to keep it bounded
        mov #0x0300, r9
        add r5, r9
        mov r8, 0(r9)       ; y[i]
        incd r5
        dec r7
        jnz floop
end:    jmp end
        .org 0x0240
x_in:   .input 8            ; 6 samples + 2 taps of warm-up history
"""

THOLD = HEADER + """
; threshold detector: set an output bit per sample above the threshold
        mov #s_in, r4
        mov #4, r7          ; samples
        mov #0, r5          ; output bit mask
        mov #1, r6          ; current bit
hloop:  mov @r4, r8
        cmp #0x0200, r8     ; sample - threshold
        jl  below           ; negative: below threshold
above:  bis r6, r5
below:  incd r4
        rla r6
        dec r7
        jnz hloop
        mov r5, &P1OUT
        mov r5, &0x0300
end:    jmp end
        .org 0x0240
s_in:   .input 4
"""

DIV = HEADER + """
; restoring division: 4-bit input dividend / constant divisor
        mov #d_in, r4
        mov @r4, r5
        and #0x000F, r5     ; dividend (4 bits)
        swpb r5             ; move the nibble to bits 11..8 ...
        rla r5
        rla r5
        rla r5
        rla r5              ; ... then to bits 15..12, msb-first
        mov #3, r6          ; divisor
        mov #0, r7          ; remainder
        mov #0, r8          ; quotient
        mov #4, r9          ; bit count
dloop:  rla r5              ; shift dividend msb out ...
        rlc r7              ; ... into remainder
        rla r8              ; quotient <<= 1
        cmp r6, r7
        jl  dnext           ; remainder < divisor
        sub r6, r7
        bis #1, r8
dnext:  dec r9
        jnz dloop
        mov r8, &0x0300     ; quotient
        mov r7, &0x0302     ; remainder
end:    jmp end
        .org 0x0240
d_in:   .input 1
"""

INSORT = HEADER + """
; insertion sort of 4 input words, in place in a RAM work array
        mov #v_in, r4       ; copy inputs to RAM
        mov #0x0310, r5
        mov #4, r7
cpy:    mov @r4+, r6
        mov r6, 0(r5)
        incd r5
        dec r7
        jnz cpy
        mov #2, r5          ; i (byte offset)
outer:  cmp #8, r5
        jz  sdone
        mov #0x0310, r4
        add r5, r4
        mov @r4, r6         ; key = arr[i]
        mov r5, r7          ; j = i
inner:  tst r7
        jz  place
        mov #0x0310, r8
        add r7, r8
        mov -2(r8), r9      ; arr[j-1]
        cmp r6, r9
        jl  place           ; arr[j-1] < key: key belongs at j
        mov r9, 0(r8)       ; shift arr[j-1] up
        decd r7
        jmp inner
place:  mov #0x0310, r8
        add r7, r8
        mov r6, 0(r8)
        incd r5
        jmp outer
sdone:  mov &0x0310, r9     ; checksum of extremes for the tests
        add &0x0316, r9
        mov r9, &0x0300
end:    jmp end
        .org 0x0240
v_in:   .input 4
"""

RLE = HEADER + """
; run-length encode 4 samples against their predecessor
        mov #r_in, r4
        mov #0x0300, r5     ; output pointer
        mov @r4+, r6        ; current value
        mov #1, r7          ; run length
        mov #3, r8          ; remaining samples
rloop:  cmp @r4, r6
        jnz remit           ; run breaks
        inc r7
        jmp rnext
remit:  mov r6, 0(r5)       ; emit (value, length)
        mov r7, 2(r5)
        add #4, r5
        mov @r4, r6
        mov #1, r7
rnext:  incd r4
        dec r8
        jnz rloop
        mov r6, 0(r5)       ; final run
        mov r7, 2(r5)
end:    jmp end
        .org 0x0240
r_in:   .input 4
"""

INTAVG = HEADER + """
; running average of 8 input samples (add + arithmetic shifts)
        mov #g_in, r4
        mov #8, r7
        mov #0, r8
gloop:  add @r4+, r8
        dec r7
        jnz gloop
        rra r8              ; / 8
        rra r8
        rra r8
        mov r8, &0x0300
end:    jmp end
        .org 0x0240
g_in:   .input 8
"""

# ---------------------------------------------------------------------------
# EEMBC-style benchmarks
# ---------------------------------------------------------------------------

AUTOCORR = HEADER + """
; autocorrelation at lags 0 and 1 over 5 samples (multiplier-heavy)
        mov #0, r9          ; lag (byte offset)
        mov #0x0300, r11    ; output pointer
alag:   mov #c_in, r4
        mov #c_in, r5
        add r9, r5
        mov #4, r7          ; products per lag
        mov #0, r8          ; accumulator
aloop:  mov @r4+, &MPY
        mov @r5+, &OP2
        nop
        add &RESLO, r8
        dec r7
        jnz aloop
        mov r8, 0(r11)
        incd r11
        incd r9
        cmp #4, r9          ; lags 0 and 2 bytes (0 and 1 samples)
        jnz alag
end:    jmp end
        .org 0x0240
c_in:   .input 5
"""

FFT = HEADER + """
; 4-point decimation-in-time FFT butterfly pass on real inputs
        mov #f_in, r4
        mov @r4+, r5        ; x0
        mov @r4+, r6        ; x1
        mov @r4+, r7        ; x2
        mov @r4+, r8        ; x3
        ; stage 1
        mov r5, r9
        add r7, r9          ; a = x0 + x2
        sub r7, r5          ; b = x0 - x2
        mov r6, r10
        add r8, r10         ; c = x1 + x3
        sub r8, r6          ; d = x1 - x3
        ; stage 2 (twiddles are +-1, -j for N=4)
        mov r9, r11
        add r10, r11        ; X0 = a + c
        sub r10, r9         ; X2 = a - c
        mov r11, &0x0300
        mov r9, &0x0302
        mov r5, &0x0304     ; X1 real = b
        mov r6, &0x0306     ; X1 imag = -d (magnitude only here)
        sub r6, r5          ; X3 proxy
        mov r5, &0x0308
end:    jmp end
        .org 0x0240
f_in:   .input 4
"""

CONVEN = HEADER + """
; rate-1/2 K=3 convolutional encoder over one input byte (branch-free)
        mov #e_in, r4
        mov @r4, r5         ; input bits
        mov #0, r6          ; shift register state
        mov #0, r10         ; encoded output
        mov #8, r7          ; bit count
eloop:  rra r5              ; next input bit -> carry
        rlc r6              ; shift into state
        mov r6, r8
        and #0x0005, r8     ; taps g0 = 101
        mov r8, r9
        swpb r9
        xor r9, r8          ; fold parity
        rra r8
        mov r6, r9
        and #0x0007, r9     ; taps g1 = 111
        rla r10
        xor r8, r10         ; append parity bits (compressed)
        xor r9, r10
        dec r7
        jnz eloop
        mov r10, &0x0300
end:    jmp end
        .org 0x0240
e_in:   .input 1
"""

VITERBI = HEADER + """
; add-compare-select for a 2-state trellis over 3 symbol metrics
        mov #m_in, r4
        mov #0, r5          ; path metric state 0
        mov #8, r6          ; path metric state 1
        mov #3, r7          ; steps
vloop:  mov @r4+, r8        ; branch metric (X)
        and #0x00FF, r8     ; keep metrics small and positive
        ; candidate metrics for state 0: m0 + bm vs m1 + 16 - bm
        mov r5, r9
        add r8, r9
        mov r6, r10
        add #16, r10
        sub r8, r10
        cmp r10, r9
        jl  v0done          ; keep r9 (survivor from state 0)
        mov r10, r9
v0done: ; candidate metrics for state 1: m0 + 16 - bm vs m1 + bm
        mov r5, r11
        add #16, r11
        sub r8, r11
        mov r6, r12
        add r8, r12
        cmp r12, r11
        jl  v1done
        mov r12, r11
v1done: mov r9, r5
        mov r11, r6
        dec r7
        jnz vloop
        mov r5, &0x0300
        mov r6, &0x0302
end:    jmp end
        .org 0x0240
m_in:   .input 3
"""

PI = HEADER + """
; proportional-integral controller over 2 input samples, with saturation
        mov #p_in, r4
        mov #0x0100, r10    ; setpoint
        mov #0, r11         ; integral
        mov #2, r7          ; samples
ploop:  mov r10, r5
        sub @r4+, r5        ; error = setpoint - sample
        add r5, r11         ; integral += error
        mov r5, &MPY        ; Kp * error
        mov #3, &OP2
        nop
        mov &RESLO, r8
        mov r11, &MPY       ; Ki * integral
        mov #2, &OP2
        nop
        add &RESLO, r8      ; output = Kp*e + Ki*i
        cmp #0x0400, r8     ; saturate high
        jl  psat
        mov #0x0400, r8
psat:   mov r8, &P1OUT
        dec r7
        jnz ploop
        mov r8, &0x0300
        mov r11, &0x0302
end:    jmp end
        .org 0x0240
p_in:   .input 2
"""
