"""Shared experiment runner: artifact-store client + parallel suite fan-out.

Every figure/table harness needs the same expensive artifacts — the
symbolic analysis of each benchmark, profiling runs, the GA stressmark.
This module computes them once and publishes them through the
content-addressed :class:`repro.service.ArtifactStore` under
``.repro_cache`` in the working directory, so the per-figure benchmarks
stay fast and consistent with each other (and with the analysis
service, which resolves its jobs through the same store).

Cache entries are **versioned**: every on-disk file name carries a
fingerprint of the cache schema version, the elaborated netlist, and the
power model characterization (plus, for per-benchmark entries, the
benchmark source and exploration budgets).  Editing the processor, the
:class:`~repro.power.model.PowerModel`, or a benchmark therefore misses
the cache and recomputes instead of silently reusing stale pickles.
Setting ``REPRO_NO_CACHE=1`` (or passing ``--no-cache`` on the CLI)
bypasses the disk layer entirely.  ``repro cache stats`` / ``repro
cache gc`` inspect and trim the store (including seed-era legacy
entries).

:func:`run_suite` fans the Table 4.1 benchmarks out over a
``ProcessPoolExecutor`` — each worker process elaborates its own CPU and
power model and fills the shared artifact store, so a cold suite run
scales with the core count.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.service.store import ArtifactStore

from repro.bench.suite import ALL_BENCHMARKS, Benchmark, get_benchmark
from repro.cells import SG65
from repro.core.api import AnalysisReport, analyze
from repro.core.baselines import (
    DesignToolBaseline,
    ProfilingBaseline,
    design_tool,
    input_profiling,
)
from repro.core.stressmark import Stressmark, generate_stressmark
from repro.cpu import Ulp430, build_ulp430
from repro.power.model import PowerModel

CACHE_DIR = Path(".repro_cache")

#: Bump when the shape of any cached value changes.
CACHE_SCHEMA_VERSION = 2

_cpu: Ulp430 | None = None
_model: PowerModel | None = None
_memory_cache: dict[str, object] = {}
_fingerprint: str | None = None

#: profiling input sets per benchmark (the paper's "several input sets")
N_PROFILING_INPUTS = 8


def shared_cpu() -> Ulp430:
    global _cpu
    if _cpu is None:
        _cpu = build_ulp430()
    return _cpu


def shared_model() -> PowerModel:
    global _model
    if _model is None:
        _model = PowerModel(shared_cpu().netlist, SG65, clock_ns=10.0)
    return _model


def cache_enabled() -> bool:
    """Disk caching is on unless ``REPRO_NO_CACHE`` is set (to anything
    but ``0``/empty) — the escape hatch behind the CLI's ``--no-cache``."""
    return os.environ.get("REPRO_NO_CACHE", "0") in ("", "0")


def cache_fingerprint() -> str:
    """Version tag baked into every disk-cache key.

    Covers the cache schema version, the elaborated netlist (gate kinds,
    connectivity, reset values, module paths) and the power-model
    characterization (per-net energies, max-power transitions, leakage,
    clock period, memory energies).  Any change to the processor or the
    model changes the fingerprint, so stale pickles are never reused.
    """
    global _fingerprint
    if _fingerprint is None:
        cpu = shared_cpu()
        model = shared_model()
        library = model.library
        h = hashlib.blake2b(digest_size=8)
        h.update(f"schema{CACHE_SCHEMA_VERSION}".encode())
        for gate in cpu.netlist.gates:
            h.update(
                f"{gate.kind}:{gate.inputs}:{gate.reset_value}:{gate.module}"
                .encode()
            )
        for array in (model.e_rise, model.e_fall, model.max_prev, model.max_cur):
            h.update(array.tobytes())
        h.update(
            repr(
                (
                    model.clock_ns,
                    model.leakage_mw,
                    model.clock_pin_fj,
                    library.name,
                    library.mem_read_energy_fj,
                    library.mem_write_energy_fj,
                    library.mem_idle_fj,
                    N_PROFILING_INPUTS,
                )
            ).encode()
        )
        _fingerprint = h.hexdigest()
    return _fingerprint


def _bench_token(benchmark: Benchmark) -> str:
    """Per-benchmark fingerprint component: source + exploration budgets."""
    h = hashlib.blake2b(digest_size=4)
    h.update(benchmark.source.encode())
    h.update(
        repr(
            (benchmark.loop_bound, benchmark.max_segments, benchmark.max_cycles)
        ).encode()
    )
    return h.hexdigest()


_store: ArtifactStore | None = None


def artifact_store() -> ArtifactStore:
    """The runner's artifact store, bound to the active ``CACHE_DIR``.

    Re-binds when ``CACHE_DIR`` is repointed (tests, ``repro serve
    --store``); the fingerprint is late-bound through
    :func:`cache_fingerprint` so model edits version keys as before.
    """
    global _store
    if _store is None or _store.root != Path(CACHE_DIR):
        _store = ArtifactStore(CACHE_DIR, fingerprint=cache_fingerprint)
    return _store


def _cached(key: str, compute):
    """Two-level cache: per-process dict, then the versioned artifact
    store on disk (atomic publish, integrity-checked reads — parallel
    workers may race on the same key and torn artifacts must never
    become visible)."""
    if key in _memory_cache:
        artifact_store().note_memory_hit()
        return _memory_cache[key]
    if not cache_enabled():
        value = compute()
        _memory_cache[key] = value
        return value
    value = artifact_store().get_or_compute(key, compute)
    _memory_cache[key] = value
    return value


@dataclass
class BenchmarkResults:
    """X-based analysis results without the bulky execution tree."""

    name: str
    peak_power_mw: float
    npe_pj_per_cycle: float
    peak_energy_pj: float
    path_cycles: int
    n_segments: int
    trace_mw: object  # numpy array
    avg_peak_trace_mw: float


def x_based(
    name: str, workers: int | None = None, cancel=None,
    engine: str | None = None,
) -> BenchmarkResults:
    """Cached X-based (our-technique) results for one benchmark.

    *workers* only parallelizes a cold compute (the service's per-job
    budget); results — and hence the cache key — are identical at any
    worker count, so it never fragments the store.  The same holds for
    *engine* (all engines are bit-identical), so neither knob is part of
    the cache key.  *cancel* aborts a cold compute at the next engine
    checkpoint (cache hits return immediately either way); cancellation
    never publishes an artifact.
    """

    def compute() -> BenchmarkResults:
        report = full_report(name, workers=workers, cancel=cancel,
                             engine=engine)
        return BenchmarkResults(
            name=name,
            peak_power_mw=report.peak_power_mw,
            npe_pj_per_cycle=report.npe_pj_per_cycle,
            peak_energy_pj=report.peak_energy_pj,
            path_cycles=report.peak_energy.path_cycles,
            n_segments=len(report.tree.segments),
            trace_mw=report.peak_power.trace_mw,
            avg_peak_trace_mw=float(report.peak_power.trace_mw.mean()),
        )

    benchmark = get_benchmark(name)
    return _cached(f"xbased_{name}_{_bench_token(benchmark)}", compute)


def full_report(
    name: str, workers: int | None = None, cancel=None,
    engine: str | None = None,
) -> AnalysisReport:
    """Uncached full analysis (tree included) — for COI/validation flows.

    *workers* spreads a cold analysis over that many cores and *engine*
    picks the simulation representation (bit-identical either way, see
    :func:`repro.core.api.analyze`); *cancel* threads into the analysis
    checkpoints.
    """
    key = f"report_{name}"
    if key in _memory_cache:
        return _memory_cache[key]
    benchmark = get_benchmark(name)
    report = analyze(
        shared_cpu(),
        benchmark.program(),
        shared_model(),
        workers=workers,
        cancel=cancel,
        engine=engine,
        **benchmark.analysis_kwargs(),
    )
    _memory_cache[key] = report
    return report


def profiling(
    name: str, cancel=None, engine: str | None = None
) -> ProfilingBaseline:
    """Cached guardbanded input-profiling baseline for one benchmark."""

    def compute() -> ProfilingBaseline:
        benchmark = get_benchmark(name)
        return input_profiling(
            shared_cpu(),
            benchmark.program(),
            benchmark.input_sets(N_PROFILING_INPUTS),
            shared_model(),
            cancel=cancel,
            engine=engine,
        )

    benchmark = get_benchmark(name)
    return _cached(f"profiling_{name}_{_bench_token(benchmark)}", compute)


def design_baseline() -> DesignToolBaseline:
    return design_tool(shared_model())


def stressmark(
    objective: str = "peak",
    islands: int | None = None,
    migration_interval: int | None = None,
    workers: int | None = None,
    cancel=None,
) -> Stressmark:
    """Cached GA stressmark (shared by Figs 5.1/5.2).

    The island knobs resolve like the GA itself (explicit argument,
    then ``REPRO_ISLANDS``/``REPRO_MIGRATION_INTERVAL``, then the
    classic single-population defaults) and feed the cache key, since
    different island schedules evolve different winners.  *workers*
    only changes wall-clock (the evolution is worker-count
    deterministic) and stays out of the key.
    """
    from repro.core.stressmark import resolve_island_knobs

    islands, migration_interval = resolve_island_knobs(
        islands, migration_interval
    )

    def compute() -> Stressmark:
        return generate_stressmark(
            shared_cpu(),
            shared_model(),
            objective,
            islands=islands,
            migration_interval=migration_interval,
            workers=workers,
            cancel=cancel,
        )

    key = f"stressmark_{objective}"
    # with one island no migration ever happens, so any interval breeds
    # the classic-GA artifact — don't fragment the store over it
    if islands != 1:
        key = f"{key}_i{islands}m{migration_interval}"
    return _cached(key, compute)


def all_names() -> list[str]:
    return list(ALL_BENCHMARKS)


# ----------------------------------------------------------------------
# Process-parallel suite runner
# ----------------------------------------------------------------------
_KNOB_VARS = (
    "REPRO_NO_CACHE", "REPRO_BATCH_SIZE", "REPRO_ENGINE", "REPRO_WORKERS",
    "REPRO_ISLANDS", "REPRO_MIGRATION_INTERVAL",
)


def _apply_knobs(
    batch_size: int | None,
    no_cache: bool,
    engine: str | None = None,
    workers: int | None = None,
    islands: int | None = None,
    migration_interval: int | None = None,
) -> None:
    """Export explicitly requested knobs; leave inherited ones alone."""
    if no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    if batch_size is not None:
        os.environ["REPRO_BATCH_SIZE"] = str(batch_size)
    if engine is not None:
        os.environ["REPRO_ENGINE"] = engine
    if workers is not None:
        os.environ["REPRO_WORKERS"] = str(workers)
    if islands is not None:
        os.environ["REPRO_ISLANDS"] = str(islands)
    if migration_interval is not None:
        os.environ["REPRO_MIGRATION_INTERVAL"] = str(migration_interval)


def _suite_worker(
    name: str, batch_size: int | None, no_cache: bool,
    engine: str | None = None, workers: int | None = None,
    islands: int | None = None, migration_interval: int | None = None,
) -> BenchmarkResults:
    """Compute one benchmark's X-based results in a worker process.

    Explicit knobs override the (fork- or spawn-) inherited environment;
    unset knobs fall through to whatever the caller exported.
    """
    _apply_knobs(batch_size, no_cache, engine, workers,
                 islands, migration_interval)
    return x_based(name)


def run_suite(
    names: list[str] | None = None,
    jobs: int | None = None,
    batch_size: int | None = None,
    no_cache: bool = False,
    engine: str | None = None,
    workers: int | None = None,
    islands: int | None = None,
    migration_interval: int | None = None,
) -> list[BenchmarkResults]:
    """X-based analysis of *names* (default: all 14), fanned out over
    ``jobs`` worker processes.

    ``jobs=None`` picks ``min(len(names), cpu_count)``; ``jobs=1`` runs
    sequentially in-process (the caller's environment is restored after).
    Each worker fills the shared disk cache, so repeated runs are warm
    regardless of the original fan-out.  Results come back in input
    order; duplicate names are computed once.

    *workers* turns on intra-benchmark parallelism (sharded exploration,
    threaded Algorithm 2 kernel) **inside** each suite worker.  The two
    levels compose without oversubscription: the per-benchmark worker
    count is clamped so ``jobs * workers`` never exceeds the core count
    (see :func:`repro.parallel.pool.inner_workers`) — with a benchmark-
    wide fan-out the inner level collapses to serial, and with few jobs
    on a big host the spare cores go to path-level sharding.

    *islands*/*migration_interval* export the GA island knobs
    (``REPRO_ISLANDS``/``REPRO_MIGRATION_INTERVAL``) to the suite's
    environment, so stressmark artifacts computed downstream of a suite
    run — figure harnesses, service jobs — inherit the requested island
    schedule (see :func:`stressmark`).
    """
    from repro.parallel.pool import inner_workers

    names = list(names) if names is not None else all_names()
    for name in names:
        get_benchmark(name)  # fail fast on typos before forking workers
    unique = list(dict.fromkeys(names))
    if jobs is None:
        jobs = max(1, min(len(unique), os.cpu_count() or 1))
    if jobs <= 1 or len(unique) <= 1:
        # same core-budget clamp as the fan-out branch: jobs * inner
        # never exceeds the host (explicit --workers on a small host
        # degrades to serial rather than oversubscribing)
        inner = inner_workers(1, workers) if workers is not None else None
        saved = {var: os.environ.get(var) for var in _KNOB_VARS}
        try:
            _apply_knobs(batch_size, no_cache, engine, inner,
                         islands, migration_interval)
            by_name = {
                name: x_based(name) for name in unique
            }
        finally:
            for var, value in saved.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value
    else:
        inner = inner_workers(jobs, workers) if workers is not None else None
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                name: pool.submit(
                    _suite_worker, name, batch_size, no_cache, engine, inner,
                    islands, migration_interval,
                )
                for name in unique
            }
            by_name = {name: future.result() for name, future in futures.items()}
    return [by_name[name] for name in names]


@dataclass
class OptimizedResults:
    """Before/after data for the §5.1 optimization experiments."""

    name: str
    opts: list[str]
    base_peak_mw: float
    opt_peak_mw: float
    base_avg_trace_mw: float
    opt_avg_trace_mw: float
    base_cycles: int
    opt_cycles: int
    base_energy_pj: float
    opt_energy_pj: float
    opt_trace_mw: object  # numpy array

    @property
    def peak_reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.opt_peak_mw / self.base_peak_mw)

    @property
    def dynamic_range_reduction_pct(self) -> float:
        base_dr = self.base_peak_mw - self.base_avg_trace_mw
        opt_dr = self.opt_peak_mw - self.opt_avg_trace_mw
        if base_dr <= 0:
            return 0.0
        return 100.0 * (1.0 - opt_dr / base_dr)

    @property
    def perf_degradation_pct(self) -> float:
        return 100.0 * (self.opt_cycles / self.base_cycles - 1.0)

    @property
    def energy_overhead_pct(self) -> float:
        return 100.0 * (self.opt_energy_pj / self.base_energy_pj - 1.0)


def optimized(name: str) -> OptimizedResults:
    """Cached §5.1 flow: COI analysis -> suggested OPTs -> re-analysis."""

    def compute() -> OptimizedResults:
        from repro.asm import assemble
        from repro.core import optimize as opt
        from repro.core.coi import cycles_of_interest

        benchmark = get_benchmark(name)
        base = full_report(name)
        base_result = x_based(name)
        program = benchmark.program()
        reports = cycles_of_interest(base.tree, base.peak_power, program, count=5)
        suggestions = opt.suggest(reports)
        applied: list[str] = []
        opt_report = base
        if suggestions:
            rewritten = opt.apply(benchmark.source, suggestions)
            if rewritten.applied:
                new_program = assemble(rewritten.source, f"{name}_opt")
                opt_report = analyze(
                    shared_cpu(),
                    new_program,
                    shared_model(),
                    loop_bound=benchmark.loop_bound,
                    max_segments=benchmark.max_segments * 2,
                    max_cycles=benchmark.max_cycles * 2,
                )
                applied = suggestions
        return OptimizedResults(
            name=name,
            opts=applied,
            base_peak_mw=base_result.peak_power_mw,
            opt_peak_mw=opt_report.peak_power_mw,
            base_avg_trace_mw=base_result.avg_peak_trace_mw,
            opt_avg_trace_mw=float(opt_report.peak_power.trace_mw.mean()),
            base_cycles=base_result.path_cycles,
            opt_cycles=opt_report.peak_energy.path_cycles,
            base_energy_pj=base_result.peak_energy_pj,
            opt_energy_pj=opt_report.peak_energy_pj,
            opt_trace_mw=opt_report.peak_power.trace_mw,
        )

    benchmark = get_benchmark(name)
    return _cached(f"optimized_{name}_{_bench_token(benchmark)}", compute)
