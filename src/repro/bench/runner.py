"""Shared experiment runner with a disk cache.

Every figure/table harness needs the same expensive artifacts — the
symbolic analysis of each benchmark, profiling runs, the GA stressmark.
This module computes them once and pickles them under ``.repro_cache`` in
the working directory, so the per-figure benchmarks stay fast and
consistent with each other.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.bench.suite import ALL_BENCHMARKS, Benchmark, get_benchmark
from repro.cells import SG65
from repro.core.api import AnalysisReport, analyze
from repro.core.baselines import (
    DesignToolBaseline,
    ProfilingBaseline,
    design_tool,
    input_profiling,
)
from repro.core.stressmark import Stressmark, generate_stressmark
from repro.cpu import Ulp430, build_ulp430
from repro.power.model import PowerModel

CACHE_DIR = Path(".repro_cache")

_cpu: Ulp430 | None = None
_model: PowerModel | None = None
_memory_cache: dict[str, object] = {}

#: profiling input sets per benchmark (the paper's "several input sets")
N_PROFILING_INPUTS = 8


def shared_cpu() -> Ulp430:
    global _cpu
    if _cpu is None:
        _cpu = build_ulp430()
    return _cpu


def shared_model() -> PowerModel:
    global _model
    if _model is None:
        _model = PowerModel(shared_cpu().netlist, SG65, clock_ns=10.0)
    return _model


def _cached(key: str, compute):
    """Two-level cache: per-process dict, then pickle on disk."""
    if key in _memory_cache:
        return _memory_cache[key]
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{key}.pkl"
    if path.exists():
        with path.open("rb") as handle:
            value = pickle.load(handle)
        _memory_cache[key] = value
        return value
    value = compute()
    with path.open("wb") as handle:
        pickle.dump(value, handle)
    _memory_cache[key] = value
    return value


@dataclass
class BenchmarkResults:
    """X-based analysis results without the bulky execution tree."""

    name: str
    peak_power_mw: float
    npe_pj_per_cycle: float
    peak_energy_pj: float
    path_cycles: int
    n_segments: int
    trace_mw: object  # numpy array
    avg_peak_trace_mw: float


def x_based(name: str) -> BenchmarkResults:
    """Cached X-based (our-technique) results for one benchmark."""

    def compute() -> BenchmarkResults:
        benchmark = get_benchmark(name)
        report = full_report(name)
        return BenchmarkResults(
            name=name,
            peak_power_mw=report.peak_power_mw,
            npe_pj_per_cycle=report.npe_pj_per_cycle,
            peak_energy_pj=report.peak_energy_pj,
            path_cycles=report.peak_energy.path_cycles,
            n_segments=len(report.tree.segments),
            trace_mw=report.peak_power.trace_mw,
            avg_peak_trace_mw=float(report.peak_power.trace_mw.mean()),
        )

    return _cached(f"xbased_{name}", compute)


def full_report(name: str) -> AnalysisReport:
    """Uncached full analysis (tree included) — for COI/validation flows."""
    key = f"report_{name}"
    if key in _memory_cache:
        return _memory_cache[key]
    benchmark = get_benchmark(name)
    report = analyze(
        shared_cpu(),
        benchmark.program(),
        shared_model(),
        loop_bound=benchmark.loop_bound,
        max_segments=benchmark.max_segments,
        max_cycles=benchmark.max_cycles,
    )
    _memory_cache[key] = report
    return report


def profiling(name: str) -> ProfilingBaseline:
    """Cached guardbanded input-profiling baseline for one benchmark."""

    def compute() -> ProfilingBaseline:
        benchmark = get_benchmark(name)
        return input_profiling(
            shared_cpu(),
            benchmark.program(),
            benchmark.input_sets(N_PROFILING_INPUTS),
            shared_model(),
        )

    return _cached(f"profiling_{name}", compute)


def design_baseline() -> DesignToolBaseline:
    return design_tool(shared_model())


def stressmark(objective: str = "peak") -> Stressmark:
    """Cached GA stressmark (shared by Figs 5.1/5.2)."""

    def compute() -> Stressmark:
        return generate_stressmark(shared_cpu(), shared_model(), objective)

    return _cached(f"stressmark_{objective}", compute)


def all_names() -> list[str]:
    return list(ALL_BENCHMARKS)


@dataclass
class OptimizedResults:
    """Before/after data for the §5.1 optimization experiments."""

    name: str
    opts: list[str]
    base_peak_mw: float
    opt_peak_mw: float
    base_avg_trace_mw: float
    opt_avg_trace_mw: float
    base_cycles: int
    opt_cycles: int
    base_energy_pj: float
    opt_energy_pj: float
    opt_trace_mw: object  # numpy array

    @property
    def peak_reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.opt_peak_mw / self.base_peak_mw)

    @property
    def dynamic_range_reduction_pct(self) -> float:
        base_dr = self.base_peak_mw - self.base_avg_trace_mw
        opt_dr = self.opt_peak_mw - self.opt_avg_trace_mw
        if base_dr <= 0:
            return 0.0
        return 100.0 * (1.0 - opt_dr / base_dr)

    @property
    def perf_degradation_pct(self) -> float:
        return 100.0 * (self.opt_cycles / self.base_cycles - 1.0)

    @property
    def energy_overhead_pct(self) -> float:
        return 100.0 * (self.opt_energy_pj / self.base_energy_pj - 1.0)


def optimized(name: str) -> OptimizedResults:
    """Cached §5.1 flow: COI analysis -> suggested OPTs -> re-analysis."""

    def compute() -> OptimizedResults:
        from repro.asm import assemble
        from repro.core import optimize as opt
        from repro.core.coi import cycles_of_interest

        benchmark = get_benchmark(name)
        base = full_report(name)
        base_result = x_based(name)
        program = benchmark.program()
        reports = cycles_of_interest(base.tree, base.peak_power, program, count=5)
        suggestions = opt.suggest(reports)
        applied: list[str] = []
        opt_report = base
        opt_stats = base_result
        if suggestions:
            rewritten = opt.apply(benchmark.source, suggestions)
            if rewritten.applied:
                new_program = assemble(rewritten.source, f"{name}_opt")
                opt_report = analyze(
                    shared_cpu(),
                    new_program,
                    shared_model(),
                    loop_bound=benchmark.loop_bound,
                    max_segments=benchmark.max_segments * 2,
                    max_cycles=benchmark.max_cycles * 2,
                )
                applied = suggestions
        return OptimizedResults(
            name=name,
            opts=applied,
            base_peak_mw=base_result.peak_power_mw,
            opt_peak_mw=opt_report.peak_power_mw,
            base_avg_trace_mw=base_result.avg_peak_trace_mw,
            opt_avg_trace_mw=float(opt_report.peak_power.trace_mw.mean()),
            base_cycles=base_result.path_cycles,
            opt_cycles=opt_report.peak_energy.path_cycles,
            base_energy_pj=base_result.peak_energy_pj,
            opt_energy_pj=opt_report.peak_energy_pj,
            opt_trace_mw=opt_report.peak_power.trace_mw,
        )

    return _cached(f"optimized_{name}", compute)
