"""Perf-regression gate: diff a fresh bench artifact against a baseline.

``python -m repro.bench.compare bench-smoke.json BENCH_suite.json`` walks
every benchmark both reports share and fails (exit 1) when any timed
phase slowed down by more than the threshold factor.  Tiny absolute
timings are ignored — a 0.004 s phase tripling is scheduler noise, not a
regression — and benchmarks or phases missing from either side are
skipped, so a baseline regenerated with more (or fewer) kernels never
breaks the gate.

CI runs this after the perf-smoke bench so a hot-path regression fails
the PR with a per-phase attribution instead of a mute wall-clock
timeout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: fail when current > baseline * threshold (and the delta is real)
DEFAULT_THRESHOLD = 2.5

#: phases below this many seconds in the baseline are never gated —
#: their variance on shared CI runners exceeds any signal
MIN_BASELINE_S = 0.05

#: (row key, seconds key) per gated phase of a benchmark row; keys a
#: report lacks (e.g. native_s in a pre-schema-3 baseline or on a
#: compiler-less host) are skipped, not failed
PHASES = (
    ("explore", "native_s"),
    ("explore", "bitplane_s"),
    ("explore", "batched_s"),
    ("peakpower", "stacked_s"),
    ("peakenergy", "s"),
    ("baselines", "batched_s"),
)


def compare_reports(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_baseline_s: float = MIN_BASELINE_S,
) -> tuple[list[str], int]:
    """Diff *current* against *baseline* phase by phase.

    Returns ``(failures, n_compared)``: one human-readable failure per
    gated slowdown, plus the number of phase timings both reports
    actually shared.  A zero count means the reports have no comparable
    surface (renamed keys, disjoint benchmarks) — the CLI treats that as
    a failure so schema drift can never turn the gate into a no-op.
    """
    failures: list[str] = []
    n_compared = 0
    baseline_rows = {row["name"]: row for row in baseline.get("benchmarks", [])}
    numeric = (int, float)

    def gate(label: str, cur_s, ref_s) -> None:
        nonlocal n_compared
        if not isinstance(cur_s, numeric) or not isinstance(ref_s, numeric):
            return
        n_compared += 1
        if ref_s < min_baseline_s:
            return
        if cur_s > ref_s * threshold:
            failures.append(
                f"{label}: {cur_s:.3f}s vs baseline {ref_s:.3f}s "
                f"({cur_s / ref_s:.2f}x > {threshold:.2f}x)"
            )

    for row in current.get("benchmarks", []):
        base_row = baseline_rows.get(row["name"])
        if base_row is None:
            continue
        for phase, key in PHASES:
            cur_phase = row.get(phase) or {}
            ref_phase = base_row.get(phase) or {}
            gate(
                f"{row['name']}.{phase}.{key}",
                cur_phase.get(key),
                ref_phase.get(key),
            )
    cur_stress = current.get("stressmark") or {}
    ref_stress = baseline.get("stressmark") or {}
    gate(
        "stressmark.batched_s",
        cur_stress.get("batched_s"),
        ref_stress.get("batched_s"),
    )
    return failures, n_compared


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="fail when a bench artifact regresses vs a baseline",
    )
    parser.add_argument("current", help="fresh bench JSON (e.g. bench-smoke.json)")
    parser.add_argument("baseline", help="committed baseline (BENCH_suite.json)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="X",
        help=f"allowed per-phase slowdown factor (default {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)
    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    failures, n_compared = compare_reports(
        current, baseline, threshold=args.threshold
    )
    if failures:
        print(
            "perf-regression gate FAILED "
            f"({len(failures)} phase(s) over {args.threshold}x):"
        )
        for failure in failures:
            print(f"  {failure}")
        return 1
    if n_compared == 0:
        print(
            "perf-regression gate FAILED: no comparable phase timings "
            "between the artifact and the baseline (schema drift?)"
        )
        return 1
    print(
        f"perf-regression gate OK: {n_compared} phase timing(s) within "
        f"{args.threshold}x of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
