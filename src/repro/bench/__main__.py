"""``python -m repro.bench`` — scalar vs batched perf trajectory."""

import sys

from repro.cli import cmd_bench, build_parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    args = build_parser().parse_args(["bench"] + argv)
    return cmd_bench(args)


if __name__ == "__main__":
    sys.exit(main())
