"""The benchmark suite of Table 4.1.

Embedded sensor kernels (mult, binSearch, tea8, intFilt, tHold, div,
inSort, rle, intAVG), EEMBC-style kernels (autoCorr, FFT, ConvEn,
Viterbi), and the PI control benchmark — written in MSP430-subset
assembly with their input regions marked symbolic.  Input sizes are
scaled down (4-8 elements) so pure-Python symbolic exploration finishes
in CI time; see DESIGN.md, Known deviations.
"""

from repro.bench.suite import (
    ALL_BENCHMARKS,
    Benchmark,
    EEMBC_BENCHMARKS,
    SENSOR_BENCHMARKS,
    get_benchmark,
)

__all__ = [
    "Benchmark",
    "ALL_BENCHMARKS",
    "SENSOR_BENCHMARKS",
    "EEMBC_BENCHMARKS",
    "get_benchmark",
]
