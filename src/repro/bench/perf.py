"""Perf-trajectory harness: per-phase, per-engine wall-clock.

``python -m repro.bench`` (or ``python -m repro bench``) times every phase
of the analyze pipeline — Algorithm 1 exploration, Algorithm 2 peak power,
§3.3 peak energy, and the input-profiling baseline — on the same
benchmarks, always cold (no disk cache involved), and writes a
``BENCH_suite.json`` artifact (schema 3) with per-phase wall-clock so
future PRs can attribute speedups and catch regressions of each hot path
separately.  The GA stressmark baseline is program-independent and timed
once per report.

The explore phase is timed under **four** engines: the scalar uint8
reference (one path at a time), the batched uint8 reference (the PR 2
baseline engine), the batched bit-plane engine, and the compiled native
kernel (the one-foreign-call-per-settle C engine, skipped with its keys
absent when no C compiler is available) — ``bitplane_speedup`` is the
bit-plane gain over the PR 2 baseline and ``native_speedup`` the native
gain over bit-plane, all at equal results.  The kernel's one-time
compile cost is reported as ``engine.native_build_s`` (0.0 when it came
from the artifact-store cache).  Every comparison also cross-checks the
engines against each other (tree shape, bit-identical value/activity
matrices, bit-identical peak traces, identical profiling measurements),
so a bench run doubles as a coarse differential test.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.bench.suite import ALL_BENCHMARKS, get_benchmark
from repro.cells import SG65
from repro.core.activity import default_batch_size, explore
from repro.core.baselines import input_profiling
from repro.core.peakenergy import compute_peak_energy
from repro.core.peakpower import compute_peak_power
from repro.core.stressmark import generate_stressmark
from repro.cpu import build_ulp430
from repro.power.model import PowerModel

#: ``None`` benchmark selection = the whole Table 4.1 suite.
DEFAULT_PERF_BENCHMARKS = sorted(ALL_BENCHMARKS)

#: input sets timed per benchmark in the baselines phase (the suite's
#: profiling default).
N_PROFILING_INPUTS = 8

#: reduced GA configuration for the stressmark timing entry — large
#: enough to exercise the batched population evaluation, small enough to
#: keep the bench run bounded.
STRESSMARK_KWARGS = dict(population=6, generations=2, genome_length=8)


def _best(fn, repeats: int):
    """(best wall-clock, last result) of *repeats* calls."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _phase(scalar_s: float, fast_s: float, fast_key: str) -> dict:
    return {
        "scalar_s": round(scalar_s, 3),
        fast_key: round(fast_s, 3),
        "speedup": round(scalar_s / fast_s, 2) if fast_s else 0.0,
    }


def run_perf_suite(
    names: list[str] | None = None,
    batch_size: int | None = None,
    repeats: int = 1,
    cpu=None,
    workers: int | None = None,
    islands: int | None = None,
    migration_interval: int | None = None,
) -> dict:
    """Time every pipeline phase, scalar vs batched; return the report.

    With *workers* > 1 (or ``REPRO_WORKERS``) the explore phase is also
    timed under the sharded multi-process engine and cross-checked bit
    for bit against the single-process trace; ``explore.sharded_s`` /
    ``sharded_speedup`` (vs the single-process bitplane run) land in the
    artifact so worker-count scaling is tracked per benchmark.

    *islands*/*migration_interval* select the GA island schedule for the
    stressmark phase (``None`` honors ``REPRO_ISLANDS``/
    ``REPRO_MIGRATION_INTERVAL``); both timed GA runs use the same
    schedule, so the scalar-vs-batched comparison stays apples to
    apples, and the resolved knobs land in the artifact's engine block.
    """
    from repro.core.stressmark import resolve_island_knobs
    from repro.parallel.pool import fork_available, resolve_workers

    names = names if names is not None else list(DEFAULT_PERF_BENCHMARKS)
    if batch_size is None:
        batch_size = default_batch_size()
    workers = resolve_workers(workers)
    islands, migration_interval = resolve_island_knobs(
        islands, migration_interval
    )
    ga_kwargs = dict(
        STRESSMARK_KWARGS, islands=islands,
        migration_interval=migration_interval,
    )
    time_sharded = workers > 1 and fork_available()
    cpu = cpu or build_ulp430()
    model = PowerModel(cpu.netlist, SG65, clock_ns=10.0)
    # Build (or cache-load) the native kernel once up front so the timed
    # explore runs measure settles, not the C compile.  A compiler-less
    # host falls back to the bitplane evaluator (with the one-time
    # warning) — detected here so the artifact omits the native keys
    # instead of re-labeling bitplane timings.
    native_evaluator = cpu.evaluator_for("native")
    native_available = (
        getattr(native_evaluator, "engine_name", None) == "native"
    )
    native_build_s = (
        round(native_evaluator.kernel.build_s, 3) if native_available
        else None
    )
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        program = benchmark.program()

        def run_explore(
            engine_batch: int | None, engine: str, n_workers: int = 1
        ):
            return explore(
                cpu,
                program,
                max_cycles=benchmark.max_cycles,
                max_segments=benchmark.max_segments,
                batch_size=engine_batch,
                engine=engine,
                workers=n_workers,
            )

        def trace_digest(some_tree) -> bytes:
            """Bit-exact fingerprint of a tree's value/activity matrices —
            lets the ~40 MB reference tree be freed before the next timed
            run while keeping the cross-check exact."""
            import hashlib

            h = hashlib.blake2b(digest_size=16)
            h.update(some_tree.flat_trace.values_matrix().tobytes())
            h.update(some_tree.flat_trace.active_matrix().tobytes())
            return h.digest()

        explore_scalar_s, scalar_tree = _best(
            lambda: run_explore(1, "reference"), repeats
        )
        scalar_shape = (scalar_tree.n_cycles, len(scalar_tree.segments))
        reference_digest = trace_digest(scalar_tree)
        # Drop each reference tree before the next timed run: the real
        # pipeline has one tree alive, and ~40 MB of stale record arrays
        # measurably slows the streaming phases on small-cache hosts.
        del scalar_tree
        explore_batched_s, reference_tree = _best(
            lambda: run_explore(batch_size, "reference"), repeats
        )
        if trace_digest(reference_tree) != reference_digest:
            raise AssertionError(f"{name}: batched reference trace drifted")
        del reference_tree
        explore_bitplane_s, tree = _best(
            lambda: run_explore(None, "bitplane"), repeats
        )
        if (tree.n_cycles, len(tree.segments)) != scalar_shape:
            raise AssertionError(
                f"{name}: explore engines disagree "
                f"({scalar_shape} vs {(tree.n_cycles, len(tree.segments))})"
            )
        if trace_digest(tree) != reference_digest:
            raise AssertionError(
                f"{name}: bitplane and reference traces disagree"
            )
        explore_native_s = None
        if native_available:
            explore_native_s, native_tree = _best(
                lambda: run_explore(None, "native"), repeats
            )
            if (
                native_tree.n_cycles, len(native_tree.segments)
            ) != scalar_shape:
                raise AssertionError(
                    f"{name}: native explore changed the tree shape"
                )
            if trace_digest(native_tree) != reference_digest:
                raise AssertionError(
                    f"{name}: native and reference traces disagree"
                )
            del native_tree
        explore_sharded_s = None
        if time_sharded:
            explore_sharded_s, sharded_tree = _best(
                lambda: run_explore(None, "bitplane", workers), repeats
            )
            if trace_digest(sharded_tree) != reference_digest:
                raise AssertionError(
                    f"{name}: sharded explore trace drifted"
                )
            del sharded_tree
        activity_stats = model.activity_profile(tree.flat_trace)

        # workers=1 pins the timed engines single-threaded regardless of
        # REPRO_WORKERS (exported by `bench --workers`), so stacked_s
        # measures the stacked layout, not kernel threading, and stays
        # comparable across artifacts (the regression gate diffs it).
        power_scalar_s, power_scalar = _best(
            lambda: compute_peak_power(tree, model, engine="scalar"), repeats
        )
        scalar_trace = power_scalar.trace_mw
        del power_scalar  # keep only the trace for the cross-check
        power_stacked_s, power = _best(
            lambda: compute_peak_power(
                tree, model, engine="stacked", workers=1
            ),
            repeats,
        )
        if not np.array_equal(scalar_trace, power.trace_mw):
            raise AssertionError(f"{name}: peak-power engines disagree")

        energy_s, _energy = _best(
            lambda: compute_peak_energy(
                tree, power, loop_bound=benchmark.loop_bound
            ),
            repeats,
        )

        input_sets = benchmark.input_sets(N_PROFILING_INPUTS)
        profiling_scalar_s, profile_scalar = _best(
            lambda: input_profiling(
                cpu, program, input_sets, model, batch_size=1
            ),
            repeats,
        )
        profiling_batched_s, profile = _best(
            lambda: input_profiling(
                cpu, program, input_sets, model, batch_size=batch_size
            ),
            repeats,
        )
        if [run.peak_power_mw for run in profile.runs] != [
            run.peak_power_mw for run in profile_scalar.runs
        ]:
            raise AssertionError(f"{name}: profiling engines disagree")

        total_s = (
            explore_bitplane_s + power_stacked_s + energy_s
            + profiling_batched_s
        )
        explore_row = {
            # schema-2 fields keep their PR 2 semantics (speedup =
            # scalar/batched reference); bitplane_* are additive
            **_phase(explore_scalar_s, explore_batched_s, "batched_s"),
            "bitplane_s": round(explore_bitplane_s, 3),
            "bitplane_speedup": round(
                explore_batched_s / explore_bitplane_s, 2
            ) if explore_bitplane_s else 0.0,  # vs the PR 2 baseline
            "scalar_cycles_per_s": round(
                tree.n_cycles / explore_scalar_s, 1
            ),
            "batched_cycles_per_s": round(
                tree.n_cycles / explore_batched_s, 1
            ),
            "bitplane_cycles_per_s": round(
                tree.n_cycles / explore_bitplane_s, 1
            ),
        }
        if explore_native_s is not None:
            explore_row["native_s"] = round(explore_native_s, 3)
            # gain of the compiled kernel over the numpy bitplane tape
            # at identical results
            explore_row["native_speedup"] = round(
                explore_bitplane_s / explore_native_s, 2
            ) if explore_native_s else 0.0
            explore_row["native_cycles_per_s"] = round(
                tree.n_cycles / explore_native_s, 1
            )
        if explore_sharded_s is not None:
            explore_row["sharded_s"] = round(explore_sharded_s, 3)
            explore_row["sharded_workers"] = workers
            # gain of the multi-process shard over the single-process
            # bitplane run at identical results
            explore_row["sharded_speedup"] = round(
                explore_bitplane_s / explore_sharded_s, 2
            ) if explore_sharded_s else 0.0
        rows.append(
            {
                "name": name,
                "n_segments": len(tree.segments),
                "n_cycles": tree.n_cycles,
                "explore": explore_row,
                "activity": activity_stats,
                "peakpower": _phase(
                    power_scalar_s, power_stacked_s, "stacked_s"
                ),
                "peakenergy": {"s": round(energy_s, 3)},
                "baselines": _phase(
                    profiling_scalar_s, profiling_batched_s, "batched_s"
                ),
                "total_s": round(total_s, 3),
            }
        )

    stressmark_scalar_s, stressmark_scalar = _best(
        lambda: generate_stressmark(
            cpu, model, batch_size=1, **ga_kwargs
        ),
        repeats,
    )
    stressmark_batched_s, stressmark_batched = _best(
        lambda: generate_stressmark(
            cpu, model, batch_size=batch_size, **ga_kwargs
        ),
        repeats,
    )
    if (
        stressmark_scalar.source != stressmark_batched.source
        or stressmark_scalar.peak_power_mw != stressmark_batched.peak_power_mw
        or stressmark_scalar.avg_power_mw != stressmark_batched.avg_power_mw
    ):
        raise AssertionError("stressmark: GA engines disagree")
    from repro.sim.bitplane import default_engine

    engine_block = {
        "batch_size": batch_size,
        # the engine the non-explore phases actually ran under (the
        # explore phase always times every engine configuration)
        "sim_engine": default_engine(),
        "bitplane_batch_size": default_batch_size("bitplane"),
        "repeats": repeats,
        "workers": workers,
        "islands": islands,
        "migration_interval": migration_interval,
    }
    if native_build_s is not None:
        # one-time C compile of the per-netlist kernel (0.0 = loaded
        # from the artifact-store cache); absent = no C compiler
        engine_block["native_build_s"] = native_build_s
    return {
        "schema": 3,
        "engine": engine_block,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "generated": time.strftime("%Y-%m-%d"),
        "benchmarks": rows,
        "stressmark": _phase(
            stressmark_scalar_s, stressmark_batched_s, "batched_s"
        ),
    }


def write_report(report: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
