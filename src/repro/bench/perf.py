"""Perf-trajectory harness: scalar vs batched engine wall-clock.

``python -m repro.bench`` (or ``python -m repro bench``) times Algorithm
1's symbolic exploration with the scalar reference engine and the batched
engine on the same benchmarks — always cold (no disk cache involved) — and
writes a ``BENCH_suite.json`` artifact with per-benchmark wall-clock and
cycles/second.  Future PRs regenerate the file to track speedups and catch
regressions of the hot path.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.bench.suite import get_benchmark
from repro.core.activity import default_batch_size, explore
from repro.cpu import build_ulp430

#: The acceptance trio of multi-path kernels, plus the single-path mult
#: kernel as a batching-overhead canary.
DEFAULT_PERF_BENCHMARKS = ["Viterbi", "inSort", "binSearch", "mult"]


def _time_explore(cpu, benchmark, batch_size: int, repeats: int):
    best = None
    tree = None
    for _ in range(repeats):
        start = time.perf_counter()
        tree = explore(
            cpu,
            benchmark.program(),
            max_cycles=benchmark.max_cycles,
            max_segments=benchmark.max_segments,
            batch_size=batch_size,
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, tree


def run_perf_suite(
    names: list[str] | None = None,
    batch_size: int | None = None,
    repeats: int = 1,
    cpu=None,
) -> dict:
    """Time scalar vs batched exploration; return the report dict."""
    names = names if names is not None else list(DEFAULT_PERF_BENCHMARKS)
    if batch_size is None:
        batch_size = default_batch_size()
    cpu = cpu or build_ulp430()
    rows = []
    for name in names:
        benchmark = get_benchmark(name)
        scalar_s, scalar_tree = _time_explore(cpu, benchmark, 1, repeats)
        batched_s, batched_tree = _time_explore(
            cpu, benchmark, batch_size, repeats
        )
        if batched_tree.n_cycles != scalar_tree.n_cycles or len(
            batched_tree.segments
        ) != len(scalar_tree.segments):
            raise AssertionError(
                f"{name}: engines disagree "
                f"({len(scalar_tree.segments)} vs "
                f"{len(batched_tree.segments)} segments)"
            )
        rows.append(
            {
                "name": name,
                "n_segments": len(scalar_tree.segments),
                "n_cycles": scalar_tree.n_cycles,
                "scalar_s": round(scalar_s, 3),
                "batched_s": round(batched_s, 3),
                "scalar_cycles_per_s": round(scalar_tree.n_cycles / scalar_s, 1),
                "batched_cycles_per_s": round(
                    batched_tree.n_cycles / batched_s, 1
                ),
                "speedup": round(scalar_s / batched_s, 2),
            }
        )
    return {
        "schema": 1,
        "engine": {"batch_size": batch_size, "repeats": repeats},
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "generated": time.strftime("%Y-%m-%d"),
        "benchmarks": rows,
    }


def write_report(report: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
