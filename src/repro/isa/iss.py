"""Behavioral instruction-set simulator (ISS).

The ISS is the architectural golden model: the gate-level CPU of
:mod:`repro.cpu` is cross-validated against it instruction by instruction
(same ISA, same memory map, same peripherals).  It executes concrete values
only — symbolic execution lives in :mod:`repro.core.activity`, on the
netlist, where the paper's analysis needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.program import Program
from repro.isa.spec import (
    CG2,
    MODE_INDEXED,
    MODE_INDIRECT,
    MODE_REGISTER,
    PC,
    SP,
    SR,
    SR_C,
    SR_N,
    SR_V,
    SR_Z,
    DecodedInstruction,
    decode,
)

from repro.isa.memmap import (
    MPY,
    OP2,
    P1IN,
    P1OUT,
    PERIPHERAL_END,
    RESET_SP,
    RESHI,
    RESLO,
    WDT_HOLD_KEY,
    WDTCNT,
    WDTCTL,
)

MASK16 = 0xFFFF


class IssError(Exception):
    """Illegal instruction, misaligned access, or runaway execution."""


@dataclass
class IssState:
    """Architectural state snapshot (registers + flags come from regs[SR])."""

    regs: list[int] = field(default_factory=lambda: [0] * 16)
    memory: dict[int, int] = field(default_factory=dict)

    def flag(self, bit: int) -> int:
        return (self.regs[SR] >> bit) & 1

    def set_flags(self, c=None, z=None, n=None, v=None) -> None:
        sr = self.regs[SR]
        for bit, value in ((SR_C, c), (SR_Z, z), (SR_N, n), (SR_V, v)):
            if value is not None:
                sr = (sr | (1 << bit)) if value else (sr & ~(1 << bit))
        self.regs[SR] = sr & MASK16


class InstructionSetSimulator:
    """Executes a :class:`Program` and records per-instruction info."""

    def __init__(self, program: Program, port_in: int = 0):
        self.program = program
        self.state = IssState()
        self.state.regs[PC] = program.entry
        self.state.regs[SP] = RESET_SP  # top of RAM
        self.state.memory = dict(program.words)
        self.port_in = port_in
        self.wdt_hold = False
        self.wdt_count = 0
        self.mpy_op1 = 0
        self.mpy_op2 = 0
        self.res = 0
        self.instructions = 0
        self.cycles = 0
        self.halted = False
        #: (pc, disassembly-relevant word) executed, for traceability
        self.executed_pcs: list[int] = []
        #: when set to a list, every data-memory write (address >=
        #: PERIPHERAL_END) is appended as ``(byte_address, value)`` — the
        #: co-execution harness diffs this against the gate-level write
        #: stream per retired instruction
        self.write_log: list[tuple[int, int]] | None = None

    # ------------------------------------------------------------------
    # Memory and peripherals
    # ------------------------------------------------------------------
    def read_word(self, address: int) -> int:
        address &= MASK16
        if address & 1:
            raise IssError(f"misaligned word read at {address:#06x}")
        if address < PERIPHERAL_END:
            return self._peripheral_read(address)
        return self.state.memory.get(address, 0)

    def write_word(self, address: int, value: int) -> None:
        address &= MASK16
        if address & 1:
            raise IssError(f"misaligned word write at {address:#06x}")
        value &= MASK16
        if address < PERIPHERAL_END:
            self._peripheral_write(address, value)
            return
        if self.write_log is not None:
            self.write_log.append((address, value))
        self.state.memory[address] = value

    def _peripheral_read(self, address: int) -> int:
        if address == P1IN:
            return self.port_in & MASK16
        if address == P1OUT:
            return self.state.memory.get(P1OUT, 0)
        if address == WDTCTL:
            return self.state.memory.get(WDTCTL, 0)
        if address == WDTCNT:
            return self.wdt_count & 0xFF
        if address == MPY:
            return self.mpy_op1
        if address == OP2:
            return self.mpy_op2
        if address == RESLO:
            return self.res & MASK16
        if address == RESHI:
            return (self.res >> 16) & MASK16
        return self.state.memory.get(address, 0)

    def _peripheral_write(self, address: int, value: int) -> None:
        if address == WDTCTL:
            self.wdt_hold = value == WDT_HOLD_KEY
            self.state.memory[WDTCTL] = value
        elif address == MPY:
            self.mpy_op1 = value
        elif address == OP2:
            self.mpy_op2 = value
            self.res = (self.mpy_op1 * self.mpy_op2) & 0xFFFFFFFF
        else:
            self.state.memory[address] = value

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _fetch(self) -> int:
        word = self.read_word(self.state.regs[PC])
        self.state.regs[PC] = (self.state.regs[PC] + 2) & MASK16
        return word

    def _src_operand(self, instr: DecodedInstruction) -> tuple[int, int | None, int]:
        """Return (value, address-or-None, extra_cycles) for the source."""
        regs = self.state.regs
        if instr.is_constant_gen():
            return instr.constant_value(), None, 0
        if instr.as_mode == MODE_REGISTER:
            return regs[instr.src], None, 0
        if instr.as_mode == MODE_INDEXED:
            ext = self._fetch()
            base = 0 if instr.src == SR else regs[instr.src]
            address = (base + ext) & MASK16
            return self.read_word(address), address, 2
        if instr.as_mode == MODE_INDIRECT:
            address = regs[instr.src]
            return self.read_word(address), address, 1
        # MODE_INDIRECT_INC: @Rn+ (or #imm when Rn is the PC)
        address = regs[instr.src]
        value = self.read_word(address)
        regs[instr.src] = (regs[instr.src] + 2) & MASK16
        return value, address, 1

    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            return
        state = self.state
        fetch_pc = state.regs[PC]
        self.executed_pcs.append(fetch_pc)
        word = self._fetch()
        try:
            instr = decode(word)
        except ValueError as exc:
            raise IssError(f"at {fetch_pc:#06x}: {exc}") from None
        if instr.byte:
            # Byte-mode (.b) is outside this subset: the assembler rejects
            # it and the gate-level datapath ignores the B/W bit entirely,
            # so silently executing bw=1 words as word ops would diverge
            # from real MSP430 semantics.  Make the boundary explicit.
            raise IssError(
                f"at {fetch_pc:#06x}: byte-mode (.b) instructions are not "
                f"supported in this subset (word {word:#06x})"
            )
        self.instructions += 1
        self.cycles += 2  # fetch + dispatch

        if instr.fmt == "J":
            taken = self._jump_taken(instr.cond)
            if instr.offset == -1 and instr.cond == 0b111:
                self.halted = True  # `jmp $` — the end-of-app convention
                return
            if taken:
                state.regs[PC] = (state.regs[PC] + 2 * instr.offset) & MASK16
            self._tick_watchdog()
            return

        if instr.fmt == "II":
            self._exec_format_ii(instr)
            self._tick_watchdog()
            return

        self._exec_format_i(instr)
        self._tick_watchdog()

    def _tick_watchdog(self) -> None:
        if not self.wdt_hold:
            self.wdt_count = (self.wdt_count + 1) & 0xFF

    def _jump_taken(self, cond: int) -> bool:
        state = self.state
        c, z = state.flag(SR_C), state.flag(SR_Z)
        n, v = state.flag(SR_N), state.flag(SR_V)
        return {
            0b000: not z,
            0b001: bool(z),
            0b010: not c,
            0b011: bool(c),
            0b100: bool(n),
            0b101: not (n ^ v),
            0b110: bool(n ^ v),
            0b111: True,
        }[cond]

    def _exec_format_ii(self, instr: DecodedInstruction) -> None:
        state = self.state
        if instr.mnemonic == "reti":
            raise IssError("reti is not supported (no interrupt model)")
        value, address, extra = self._src_operand(instr)
        self.cycles += extra
        mnemonic = instr.mnemonic
        if mnemonic == "push":
            state.regs[SP] = (state.regs[SP] - 2) & MASK16
            self.write_word(state.regs[SP], value)
            self.cycles += 1 if instr.as_mode == MODE_REGISTER else 1
            return
        if mnemonic == "call":
            state.regs[SP] = (state.regs[SP] - 2) & MASK16
            self.write_word(state.regs[SP], state.regs[PC])
            state.regs[PC] = value & MASK16
            self.cycles += 2
            return
        result, flags = self._shift_result(mnemonic, value)
        self._writeback_format_ii(instr, address, result)
        if instr.as_mode == MODE_REGISTER and instr.src == SR:
            # dst = SR in register mode: the register write wins over the
            # flag update (the gate muxes reg_write_data past the flagged
            # bits), so the shifted value lands in SR verbatim
            return
        state.set_flags(**flags)

    def _shift_result(self, mnemonic: str, value: int) -> tuple[int, dict]:
        state = self.state
        if mnemonic == "rra":
            result = ((value >> 1) | (value & 0x8000)) & MASK16
            return result, dict(
                c=value & 1, z=result == 0, n=result >> 15, v=0
            )
        if mnemonic == "rrc":
            result = ((value >> 1) | (state.flag(SR_C) << 15)) & MASK16
            return result, dict(
                c=value & 1, z=result == 0, n=result >> 15, v=0
            )
        if mnemonic == "swpb":
            result = ((value << 8) | (value >> 8)) & MASK16
            return result, {}
        if mnemonic == "sxt":
            result = (value & 0xFF) | (0xFF00 if value & 0x80 else 0)
            return result, dict(
                c=result != 0, z=result == 0, n=result >> 15, v=0
            )
        raise IssError(f"unhandled Format II mnemonic {mnemonic}")

    def _writeback_format_ii(
        self, instr: DecodedInstruction, address: int | None, result: int
    ) -> None:
        if instr.as_mode == MODE_REGISTER:
            if instr.src != CG2:  # r3 has no storage; writes are dropped
                self.state.regs[instr.src] = result & MASK16
        elif address is not None:
            self.write_word(address, result)
            self.cycles += 1
        else:
            raise IssError(f"{instr.mnemonic} cannot target a constant")

    def _exec_format_i(self, instr: DecodedInstruction) -> None:
        state = self.state
        src_value, _src_addr, extra = self._src_operand(instr)
        self.cycles += extra

        if instr.ad_mode == 0:
            dst_value = state.regs[instr.dst]
            dst_addr = None
        else:
            ext = self._fetch()
            base = 0 if instr.dst == SR else state.regs[instr.dst]
            dst_addr = (base + ext) & MASK16
            if instr.mnemonic == "mov":
                dst_value = 0  # never read
                self.cycles += 1
            else:
                dst_value = self.read_word(dst_addr)
                self.cycles += 2

        result, flags = self._alu(instr.mnemonic, src_value, dst_value)
        writes_back = instr.mnemonic not in ("cmp", "bit")
        if writes_back:
            if dst_addr is None:
                if instr.dst != CG2:  # r3 has no storage; writes dropped
                    state.regs[instr.dst] = result & MASK16
            else:
                self.write_word(dst_addr, result)
        if writes_back and dst_addr is None and instr.dst == SR:
            # dst = SR in register mode: the register write wins over the
            # flag update (matches the gate's write_sr_port mux), so e.g.
            # `add r4, sr` leaves SR = the raw sum, not ALU flags
            return
        state.set_flags(**flags)

    def _alu(self, mnemonic: str, src: int, dst: int) -> tuple[int, dict]:
        state = self.state
        if mnemonic == "mov":
            return src, {}
        if mnemonic in ("add", "addc"):
            carry_in = state.flag(SR_C) if mnemonic == "addc" else 0
            total = dst + src + carry_in
            result = total & MASK16
            overflow = (~(dst ^ src) & (dst ^ result)) >> 15 & 1
            return result, dict(
                c=total >> 16, z=result == 0, n=result >> 15, v=overflow
            )
        if mnemonic in ("sub", "subc", "cmp"):
            carry_in = state.flag(SR_C) if mnemonic == "subc" else 1
            total = dst + (src ^ MASK16) + carry_in
            result = total & MASK16
            overflow = ((dst ^ src) & (dst ^ result)) >> 15 & 1
            return result, dict(
                c=total >> 16, z=result == 0, n=result >> 15, v=overflow
            )
        if mnemonic in ("and", "bit"):
            result = dst & src
            return result, dict(
                c=result != 0, z=result == 0, n=result >> 15, v=0
            )
        if mnemonic == "xor":
            result = (dst ^ src) & MASK16
            return result, dict(
                c=result != 0,
                z=result == 0,
                n=result >> 15,
                v=(dst >> 15) & (src >> 15),
            )
        if mnemonic == "bis":
            return (dst | src) & MASK16, {}
        if mnemonic == "bic":
            return dst & (src ^ MASK16), {}
        if mnemonic == "dadd":
            raise IssError("dadd is not supported in this subset")
        raise IssError(f"unhandled Format I mnemonic {mnemonic}")

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self, max_instructions: int = 200_000) -> IssState:
        """Run until the ``jmp $`` halt convention; returns final state."""
        for _ in range(max_instructions):
            if self.halted:
                return self.state
            self.step()
        raise IssError(
            f"program {self.program.name} did not halt within "
            f"{max_instructions} instructions"
        )
