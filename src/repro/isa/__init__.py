"""MSP430-subset instruction set architecture.

The paper evaluates on openMSP430, an open-source implementation of TI's
MSP430 ISA.  This package defines the word-width subset used throughout the
reproduction: all Format I (two-operand) and Format II (single-operand)
instructions plus the full jump family, with the real MSP430 encodings and
constant-generator registers.

Byte-mode (``.b``) forms are intentionally unsupported — none of the
benchmark kernels need them (see DESIGN.md, Known deviations).
"""

from repro.isa.spec import (
    COND_CODES,
    FORMAT_I_OPCODES,
    FORMAT_II_OPCODES,
    PC,
    REG_NAMES,
    SP,
    SR,
    SR_C,
    SR_N,
    SR_V,
    SR_Z,
    DecodedInstruction,
    decode,
    encode_format_i,
    encode_format_ii,
    encode_jump,
)
from repro.isa.iss import InstructionSetSimulator, IssState

__all__ = [
    "FORMAT_I_OPCODES",
    "FORMAT_II_OPCODES",
    "COND_CODES",
    "REG_NAMES",
    "PC",
    "SP",
    "SR",
    "SR_C",
    "SR_Z",
    "SR_N",
    "SR_V",
    "DecodedInstruction",
    "decode",
    "encode_format_i",
    "encode_format_ii",
    "encode_jump",
    "InstructionSetSimulator",
    "IssState",
]
