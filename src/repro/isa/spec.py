"""MSP430 instruction encodings, register conventions, and decode.

Encodings follow the real MSP430 format:

* Format I  (two-operand):  ``oooo ssss ad bw as dddd``
* Format II (single-operand): ``0001 00oo o bw as dddd``
* Jump: ``001c cc oooooooooo`` (10-bit signed word offset)

Registers r0-r3 have their architectural roles: r0=PC, r1=SP, r2=SR/CG1,
r3=CG2.  The constant generators deliver 0, 1, 2, 4, 8 and -1 without an
extension word, exactly as on real silicon — several of the paper's
optimizations (e.g. OPT2's ``ADD #2, SP``) depend on them.
"""

from __future__ import annotations

from dataclasses import dataclass

MASK16 = 0xFFFF

PC, SP, SR, CG2 = 0, 1, 2, 3

SR_C, SR_Z, SR_N, SR_V = 0, 1, 2, 8  # bit positions within the status register

REG_NAMES = {0: "pc", 1: "sp", 2: "sr", 3: "cg2"}
REG_NAMES.update({n: f"r{n}" for n in range(4, 16)})

FORMAT_I_OPCODES = {
    "mov": 0x4,
    "add": 0x5,
    "addc": 0x6,
    "subc": 0x7,
    "sub": 0x8,
    "cmp": 0x9,
    "dadd": 0xA,
    "bit": 0xB,
    "bic": 0xC,
    "bis": 0xD,
    "xor": 0xE,
    "and": 0xF,
}

FORMAT_II_OPCODES = {
    "rrc": 0b000,
    "swpb": 0b001,
    "rra": 0b010,
    "sxt": 0b011,
    "push": 0b100,
    "call": 0b101,
    "reti": 0b110,
}

COND_CODES = {
    "jnz": 0b000,
    "jne": 0b000,
    "jz": 0b001,
    "jeq": 0b001,
    "jnc": 0b010,
    "jlo": 0b010,
    "jc": 0b011,
    "jhs": 0b011,
    "jn": 0b100,
    "jge": 0b101,
    "jl": 0b110,
    "jmp": 0b111,
}

#: Canonical mnemonic for each condition code (for the disassembler).
COND_NAMES = {0: "jnz", 1: "jz", 2: "jnc", 3: "jc", 4: "jn", 5: "jge", 6: "jl", 7: "jmp"}

_FORMAT_I_NAMES = {v: k for k, v in FORMAT_I_OPCODES.items()}
_FORMAT_II_NAMES = {v: k for k, v in FORMAT_II_OPCODES.items()}

# Addressing modes (values of the As field; Ad uses 0/1 only).
MODE_REGISTER = 0
MODE_INDEXED = 1  # also absolute (&addr, via SR) and symbolic (via PC)
MODE_INDIRECT = 2
MODE_INDIRECT_INC = 3  # also immediate (#imm, via PC)


def encode_format_i(
    opcode: int, src: int, dst: int, as_mode: int, ad_mode: int, byte: bool = False
) -> int:
    if not 0x4 <= opcode <= 0xF:
        raise ValueError(f"bad Format I opcode {opcode:#x}")
    return (
        (opcode << 12)
        | (src << 8)
        | (ad_mode << 7)
        | (int(byte) << 6)
        | (as_mode << 4)
        | dst
    )


def encode_format_ii(opcode: int, reg: int, as_mode: int, byte: bool = False) -> int:
    if not 0 <= opcode <= 0b111:
        raise ValueError(f"bad Format II opcode {opcode}")
    return 0x1000 | (opcode << 7) | (int(byte) << 6) | (as_mode << 4) | reg


def encode_jump(cond: int, word_offset: int) -> int:
    if not -512 <= word_offset <= 511:
        raise ValueError(f"jump offset {word_offset} out of 10-bit range")
    return 0x2000 | (cond << 10) | (word_offset & 0x3FF)


@dataclass(frozen=True)
class DecodedInstruction:
    """Architectural view of one instruction word (extensions excluded)."""

    fmt: str  # "I", "II", or "J"
    mnemonic: str
    src: int = 0
    dst: int = 0
    as_mode: int = 0
    ad_mode: int = 0
    byte: bool = False
    cond: int = 0
    offset: int = 0  # signed word offset for jumps

    @property
    def src_needs_ext(self) -> bool:
        """Does the source operand consume an extension word?"""
        if self.fmt == "J":
            return False
        if self.as_mode == MODE_INDEXED:
            return self.src not in (CG2,)  # x(Rn), &abs, symbolic; CG 1 does not
        if self.as_mode == MODE_INDIRECT_INC:
            return self.src == PC  # immediate
        return False

    @property
    def dst_needs_ext(self) -> bool:
        return self.fmt == "I" and self.ad_mode == 1

    @property
    def n_words(self) -> int:
        words = 1
        if self.fmt in ("I", "II") and self.src_needs_ext:
            words += 1
        if self.dst_needs_ext:
            words += 1
        return words

    def is_constant_gen(self) -> bool:
        """True when the source operand comes from a constant generator."""
        if self.fmt == "J":
            return False
        if self.src == CG2:
            return True
        return self.src == SR and self.as_mode in (MODE_INDIRECT, MODE_INDIRECT_INC)

    def constant_value(self) -> int:
        """The generated constant (only valid when is_constant_gen())."""
        if self.src == CG2:
            return {0: 0, 1: 1, 2: 2, 3: 0xFFFF}[self.as_mode]
        return {MODE_INDIRECT: 4, MODE_INDIRECT_INC: 8}[self.as_mode]


def decode(word: int) -> DecodedInstruction:
    """Decode one 16-bit instruction word; raises ValueError on illegal."""
    word &= MASK16
    top = word >> 13
    if top == 0b001:
        cond = (word >> 10) & 0b111
        offset = word & 0x3FF
        if offset & 0x200:
            offset -= 0x400
        return DecodedInstruction(
            fmt="J", mnemonic=COND_NAMES[cond], cond=cond, offset=offset
        )
    if (word >> 10) == 0b000100:
        opcode = (word >> 7) & 0b111
        if opcode not in _FORMAT_II_NAMES:
            raise ValueError(f"illegal Format II opcode in {word:#06x}")
        return DecodedInstruction(
            fmt="II",
            mnemonic=_FORMAT_II_NAMES[opcode],
            src=word & 0xF,
            dst=word & 0xF,
            as_mode=(word >> 4) & 0b11,
            byte=bool((word >> 6) & 1),
        )
    opcode = word >> 12
    if opcode in _FORMAT_I_NAMES:
        return DecodedInstruction(
            fmt="I",
            mnemonic=_FORMAT_I_NAMES[opcode],
            src=(word >> 8) & 0xF,
            dst=word & 0xF,
            as_mode=(word >> 4) & 0b11,
            ad_mode=(word >> 7) & 1,
            byte=bool((word >> 6) & 1),
        )
    raise ValueError(f"illegal instruction word {word:#06x}")
