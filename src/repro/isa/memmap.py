"""Peripheral memory map shared by the ISS and the gate-level CPU.

Byte addresses, word-aligned, in the openMSP430 style: peripheral space
below 0x0200, RAM at 0x0200-0x09FF, program flash at 0xF000-0xFFFF.
"""

P1IN = 0x0020
P1OUT = 0x0022
WDTCTL = 0x0120
WDTCNT = 0x0122
MPY = 0x0130
OP2 = 0x0138
RESLO = 0x013A
RESHI = 0x013C
DBG_CTL = 0x01F0
PERIPHERAL_END = 0x0200

RAM_START = 0x0200
RAM_END = 0x0A00
CODE_START = 0xF000

WDT_HOLD_KEY = 0x5A80

RESET_PC = 0xF000
RESET_SP = 0x0A00
