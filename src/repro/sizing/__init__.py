"""Energy harvester and battery sizing models (Chapter 1, Tables 5.1/5.2)."""

from repro.sizing.models import (
    BATTERY_TYPES,
    HARVESTER_TYPES,
    Battery,
    Harvester,
    SystemSizing,
    battery_volume_mm3,
    effective_capacity_fraction,
    harvester_area_cm2,
    reduction_table,
    size_system,
)

__all__ = [
    "Battery",
    "Harvester",
    "BATTERY_TYPES",
    "HARVESTER_TYPES",
    "harvester_area_cm2",
    "battery_volume_mm3",
    "effective_capacity_fraction",
    "reduction_table",
    "SystemSizing",
    "size_system",
]
