"""Sizing models for ULP system components.

Implements the calculations of Figure 1.3 — how peak power and energy
requirements translate into harvester area and battery volume for Type
1/2/3 ULP systems — together with the battery and harvester density data
of Tables 1.1 and 1.2 and the reduction computations behind Tables 5.1
and 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Battery:
    """Battery chemistry data from Table 1.1."""

    name: str
    specific_energy_j_per_g: float
    energy_density_mj_per_l: float

    def volume_mm3_for_joules(self, joules: float) -> float:
        """Volume storing *joules*; 1 MJ/L is exactly 1 J/mm^3."""
        return joules / self.energy_density_mj_per_l


#: Table 1.1 — specific energy [J/g] and energy density [MJ/L].
BATTERY_TYPES: dict[str, Battery] = {
    "li-ion": Battery("Li-ion", 460, 1.152),
    "alkaline": Battery("Alkaline", 400, 0.331),
    "carbon-zinc": Battery("Carbon-zinc", 130, 1.080),
    "ni-mh": Battery("Ni-MH", 340, 0.504),
    "ni-cad": Battery("Ni-cad", 140, 0.828),
    "lead-acid": Battery("Lead-acid", 146, 0.360),
}


@dataclass(frozen=True)
class Harvester:
    """Harvester technology data from Table 1.2."""

    name: str
    power_density_mw_per_cm2: float


#: Table 1.2 — power density per harvester type.
HARVESTER_TYPES: dict[str, Harvester] = {
    "photovoltaic-sun": Harvester("Photovoltaic (sun)", 100.0),
    "photovoltaic-indoor": Harvester("Photovoltaic (indoor)", 0.1),
    "thermoelectric": Harvester("Thermoelectric", 0.06),
    "ambient-airflow": Harvester("Ambient airflow", 1.0),
}


def harvester_area_cm2(power_mw: float, harvester: str | Harvester) -> float:
    """Harvester area delivering *power_mw* (Type 1: peak; Type 2: avg)."""
    if isinstance(harvester, str):
        harvester = HARVESTER_TYPES[harvester]
    return power_mw / harvester.power_density_mw_per_cm2


def effective_capacity_fraction(
    peak_power_mw: float, rated_power_mw: float, peukert: float = 1.2
) -> float:
    """Effective battery capacity fraction under pulsed peak load.

    Models the capacity loss at high discharge rates (Peukert-style):
    drawing above the rated power shrinks usable capacity, the effect the
    paper cites for coin cells under pulsed loads.
    """
    if peak_power_mw <= rated_power_mw:
        return 1.0
    return (rated_power_mw / peak_power_mw) ** (peukert - 1.0)


def battery_volume_mm3(
    energy_j: float,
    battery: str | Battery = "li-ion",
    peak_power_mw: float | None = None,
    rated_power_mw: float | None = None,
) -> float:
    """Battery volume holding *energy_j* usable joules.

    When peak and rated powers are given, the nominal capacity is scaled
    up to compensate the effective-capacity loss at the peak rate.
    """
    if isinstance(battery, str):
        battery = BATTERY_TYPES[battery]
    required = energy_j
    if peak_power_mw is not None and rated_power_mw is not None:
        required /= effective_capacity_fraction(peak_power_mw, rated_power_mw)
    return battery.volume_mm3_for_joules(required)


@dataclass
class SystemSizing:
    """Component sizes for one ULP system type (Figure 1.3)."""

    system_type: int
    harvester_area_cm2: float | None
    battery_volume_mm3: float | None


def size_system(
    system_type: int,
    peak_power_mw: float,
    avg_power_mw: float,
    lifetime_hours: float = 24.0,
    harvester: str = "photovoltaic-indoor",
    battery: str = "li-ion",
) -> SystemSizing:
    """Size harvester/battery per Figure 1.3.

    Type 1: harvester covers peak power, no battery.
    Type 2: harvester covers average power; battery buffers peaks.
    Type 3: battery alone powers the system for *lifetime_hours*.
    """
    if system_type == 1:
        return SystemSizing(1, harvester_area_cm2(peak_power_mw, harvester), None)
    energy_j = avg_power_mw * 1e-3 * lifetime_hours * 3600.0
    if system_type == 2:
        return SystemSizing(
            2,
            harvester_area_cm2(avg_power_mw, harvester),
            battery_volume_mm3(
                energy_j, battery,
                peak_power_mw=peak_power_mw, rated_power_mw=avg_power_mw * 4,
            ),
        )
    if system_type == 3:
        return SystemSizing(
            3,
            None,
            battery_volume_mm3(
                energy_j, battery,
                peak_power_mw=peak_power_mw, rated_power_mw=avg_power_mw * 4,
            ),
        )
    raise ValueError(f"unknown ULP system type {system_type}")


def reduction_table(
    baseline_by_app: dict[str, float],
    x_based_by_app: dict[str, float],
    contributions: tuple[int, ...] = (10, 25, 50, 75, 90, 100),
) -> dict[int, float]:
    """Tables 5.1/5.2: % component-size reduction vs a baseline technique.

    For a processor contributing ``c%`` of system peak power (or energy),
    the component shrinks by ``c * (1 - x/baseline)``, averaged over the
    benchmark set.
    """
    names = sorted(baseline_by_app)
    if names != sorted(x_based_by_app):
        raise ValueError("benchmark sets differ between baseline and X-based")
    fractional = [
        1.0 - x_based_by_app[name] / baseline_by_app[name] for name in names
    ]
    mean_reduction = sum(fractional) / len(fractional)
    return {
        c: round(c * mean_reduction, 2) for c in contributions
    }
