"""MSP430F1610 measurement-rig substitute (Chapter 2)."""

from repro.hw.rig import Measurement, MeasurementRig

__all__ = ["MeasurementRig", "Measurement"]
