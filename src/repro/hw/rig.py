"""The Chapter 2 silicon-measurement substitute.

The paper measures an MSP430F1610 at 8 MHz with an oscilloscope sampling
V and I at 10 MHz (at least one sample per cycle) and <2% run-to-run
variation.  We reproduce the *methodology*: the same core is "fabricated"
in the 130 nm-class library, clocked at 8 MHz, its per-cycle power resampled
on a 10 MHz oscilloscope timebase with measurement noise.  Everything
Chapter 2 derives from silicon — application- and input-dependence of peak
power and the rated-vs-observed gap — emerges from this model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asm.program import Program
from repro.cells import SG130
from repro.power.model import PowerModel, design_tool_rating
from repro.sim.trace import Trace


@dataclass
class Measurement:
    """One oscilloscope capture of a full application run."""

    time_s: np.ndarray
    power_mw: np.ndarray
    cycles: int

    @property
    def peak_mw(self) -> float:
        return float(self.power_mw.max())

    @property
    def avg_mw(self) -> float:
        return float(self.power_mw.mean())

    @property
    def npe_j_per_cycle(self) -> float:
        """Energy per cycle in joules (Fig 2.2's normalized peak energy)."""
        total_j = float(self.power_mw.sum()) * 1e-3 * self._sample_period_s
        return total_j / max(self.cycles, 1)

    _sample_period_s: float = 1e-7  # set by the rig


class MeasurementRig:
    """Runs programs on the "silicon" core and captures scope traces."""

    def __init__(
        self,
        cpu,
        clock_mhz: float = 8.0,
        sample_rate_mhz: float = 10.0,
        noise_fraction: float = 0.01,
        seed: int = 7,
    ):
        self.cpu = cpu
        self.clock_ns = 1e3 / clock_mhz
        self.sample_period_ns = 1e3 / sample_rate_mhz
        self.noise_fraction = noise_fraction
        self.rng = np.random.default_rng(seed)
        self.model = PowerModel(cpu.netlist, SG130, clock_ns=self.clock_ns)

    def rated_peak_mw(self) -> float:
        """The datasheet-style rated peak (the paper's 4.8 mW analogue)."""
        power, _energy = design_tool_rating(self.model)
        return power

    def measure(
        self, program: Program, port_in: int = 0, max_cycles: int = 100_000
    ) -> Measurement:
        """Run one concrete program and capture its power on the scope."""
        if program.n_input_words:
            raise ValueError(
                "measurement rig needs a concrete program; call "
                "Program.with_inputs() first"
            )
        machine = self.cpu.make_machine(
            program, symbolic_inputs=False, port_in=port_in
        )
        trace = Trace(machine.netlist.n_nets)
        cycles = self.cpu.run_to_halt(machine, max_cycles=max_cycles, trace=trace)
        per_cycle = self.model.trace_power(
            trace.values_matrix(), trace.mem_accesses()
        ).total_mw

        duration_ns = len(per_cycle) * self.clock_ns
        sample_times_ns = np.arange(0.0, duration_ns, self.sample_period_ns)
        cycle_index = np.minimum(
            (sample_times_ns / self.clock_ns).astype(int), len(per_cycle) - 1
        )
        sampled = per_cycle[cycle_index]
        noise = self.rng.normal(1.0, self.noise_fraction, size=sampled.shape)
        measurement = Measurement(
            time_s=sample_times_ns * 1e-9,
            power_mw=sampled * noise,
            cycles=cycles,
        )
        measurement._sample_period_s = self.sample_period_ns * 1e-9
        return measurement
