"""Datapath builders: ALU, shifter unit, register file, array multiplier.

Each function elaborates gates into the caller's :class:`NetlistBuilder`
under the current module scope and returns the result nets.  Buses are
LSB-first lists of net ids, 16 bits unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.builder import Bus, NetlistBuilder


@dataclass
class AluOutputs:
    """Result and flag nets produced by the Format I ALU."""

    result: Bus
    c: int
    z: int
    n: int
    v: int
    #: asserted when the decoded opcode updates the status flags
    sets_flags: int


def and_or_select(nb: NetlistBuilder, choices: list[tuple[int, Bus]]) -> Bus:
    """One-hot AND-OR bus selector: sum(sel_i & bus_i) per bit.

    Exactly one select should be hot; with X selects the output degrades to
    X conservatively, which is the behaviour the analysis needs.
    """
    width = len(choices[0][1])
    out: Bus = []
    for bit in range(width):
        terms = [nb.and_(sel, bus[bit]) for sel, bus in choices]
        out.append(nb.or_n(terms))
    return out


def build_alu(
    nb: NetlistBuilder,
    opcode: Bus,
    src: Bus,
    dst: Bus,
    carry_flag: int,
) -> AluOutputs:
    """The Format I ALU: one shared adder plus a logic unit.

    *opcode* is the 4-bit top nibble of the instruction word; *src* and
    *dst* are the operand buses; *carry_flag* is the current SR carry for
    ADDC/SUBC.
    """
    op = nb.decoder(opcode)  # 16 one-hot lines, indices 0x4..0xF meaningful
    is_mov, is_add, is_addc = op[0x4], op[0x5], op[0x6]
    is_subc, is_sub, is_cmp = op[0x7], op[0x8], op[0x9]
    is_dadd, is_bit, is_bic = op[0xA], op[0xB], op[0xC]
    is_bis, is_xor, is_and = op[0xD], op[0xE], op[0xF]

    subtract = nb.or_n([is_subc, is_sub, is_cmp])
    adder_b = nb.bus_mux(subtract, src, nb.bus_not(src))
    use_carry = nb.or_(is_addc, is_subc)
    forced_one = nb.or_(is_sub, is_cmp)
    carry_in = nb.or_(forced_one, nb.and_(use_carry, carry_flag))
    total, carry_out = nb.ripple_add(dst, adder_b, carry_in)

    and_out = nb.bus_and(dst, src)
    bic_out = nb.bus_and(dst, nb.bus_not(src))
    bis_out = nb.bus_or(dst, src)
    xor_out = nb.bus_xor(dst, src)

    use_adder = nb.or_n([is_add, is_addc, is_subc, is_sub, is_cmp, is_dadd])
    use_and = nb.or_(is_and, is_bit)
    result = and_or_select(
        nb,
        [
            (is_mov, src),
            (use_adder, total),
            (use_and, and_out),
            (is_bic, bic_out),
            (is_bis, bis_out),
            (is_xor, xor_out),
        ],
    )

    zero = nb.is_zero(result)
    negative = result[15]
    not_zero = nb.not_(zero)
    logic_carry_op = nb.or_n([is_and, is_bit, is_xor])
    carry = nb.or_(
        nb.and_(use_adder, carry_out), nb.and_(logic_carry_op, not_zero)
    )

    d_xor_s = nb.xor(dst[15], src[15])
    d_xor_r = nb.xor(dst[15], result[15])
    overflow_add = nb.and_(nb.not_(d_xor_s), d_xor_r)
    overflow_sub = nb.and_(d_xor_s, d_xor_r)
    overflow_xor = nb.and_(dst[15], src[15])
    add_type = nb.or_(is_add, is_addc)
    overflow = nb.or_n(
        [
            nb.and_(add_type, overflow_add),
            nb.and_(subtract, overflow_sub),
            nb.and_(is_xor, overflow_xor),
        ]
    )

    sets_flags = nb.or_n(
        [is_add, is_addc, is_subc, is_sub, is_cmp, is_bit, is_xor, is_and]
    )
    return AluOutputs(
        result=result, c=carry, z=zero, n=negative, v=overflow,
        sets_flags=sets_flags,
    )


@dataclass
class ShiftOutputs:
    """Result and flags of the Format II shifter (RRC/SWPB/RRA/SXT)."""

    result: Bus
    c: int
    z: int
    n: int
    v: int
    sets_flags: int


def build_shifter(
    nb: NetlistBuilder, opcode2: Bus, src: Bus, carry_flag: int
) -> ShiftOutputs:
    """Format II shift/byte unit; *opcode2* is the 3-bit opcode field."""
    lines = nb.decoder(opcode2)
    is_rrc, is_swpb, is_rra, is_sxt = lines[0], lines[1], lines[2], lines[3]

    rrc_out = src[1:] + [carry_flag]
    rra_out = src[1:] + [src[15]]
    swpb_out = src[8:] + src[:8]
    sxt_out = src[:8] + [src[7]] * 8

    result = and_or_select(
        nb,
        [
            (is_rrc, rrc_out),
            (is_rra, rra_out),
            (is_swpb, swpb_out),
            (is_sxt, sxt_out),
        ],
    )
    zero = nb.is_zero(result)
    not_zero = nb.not_(zero)
    shifted = nb.or_(is_rrc, is_rra)
    carry = nb.or_(nb.and_(shifted, src[0]), nb.and_(is_sxt, not_zero))
    sets_flags = nb.or_n([is_rrc, is_rra, is_sxt])
    return ShiftOutputs(
        result=result, c=carry, z=zero, n=result[15], v=nb.const0(),
        sets_flags=sets_flags,
    )


@dataclass
class RegisterFile:
    """r4..r15 DFF banks plus the two read-port muxes."""

    banks: list[Bus]  # banks[0] is r4
    read_a: Bus
    read_b: Bus


def build_register_file(
    nb: NetlistBuilder,
    sel_a: Bus,
    sel_b: Bus,
    pc: Bus,
    sp: Bus,
    sr: Bus,
    write_index: Bus,
    write_enable: int,
    write_data: Bus,
) -> RegisterFile:
    """12 general registers with two read ports and one write port.

    Read selects are the 4-bit src/dst fields; entries 0-2 map to the
    dedicated PC/SP/SR registers and entry 3 reads as constant 0 (the
    constant-generator register has no storage).
    """
    banks: list[Bus] = []
    write_lines = nb.decoder(write_index)
    for n in range(4, 16):
        bank = nb.register(16, f"r{n}")
        enable = nb.and_(write_enable, write_lines[n])
        nb.register_with_enable(bank, write_data, enable)
        banks.append(bank)

    zero_bus = nb.bus_const(0, 16)
    choices = [pc, sp, sr, zero_bus] + banks
    read_a = nb.bus_mux_tree(sel_a, choices)
    read_b = nb.bus_mux_tree(sel_b, choices)
    return RegisterFile(banks=banks, read_a=read_a, read_b=read_b)


def build_array_multiplier(nb: NetlistBuilder, a: Bus, b: Bus) -> Bus:
    """Combinational 16x16 -> 32 unsigned array multiplier.

    The classic shift-and-add array: one AND row per multiplier bit, summed
    with ripple adders.  ~1.7k gates — deliberately the largest, most
    power-hungry block in the design, as the multiplier is on real ULP
    parts (the paper leans on this for the `mult` benchmark and OPT3).
    """
    width = len(a)
    zero = nb.const0()
    accumulator: Bus = [nb.and_(a[0], bit) for bit in b] + [zero] * width
    for position in range(1, width):
        partial = [nb.and_(a[position], bit) for bit in b]
        segment = accumulator[position : position + width]
        total, carry = nb.ripple_add(segment, partial)
        accumulator = (
            accumulator[:position]
            + total
            + [carry]
            + accumulator[position + width + 1 :]
        )
    return accumulator[: 2 * width]
