"""Gate-level ULP processor (openMSP430-class).

``build_ulp430()`` elaborates a complete MSP430-subset microcontroller —
frontend FSM, execution unit (ALU + register file), memory backbone,
16x16 hardware multiplier, watchdog, SFR/GPIO, clock module, and debug
block — into a flat gate-level netlist, and wraps it in :class:`Ulp430`,
which knows how to load programs, run concretely, and expose the hooks the
symbolic explorer needs (fork points, halt detection, COI annotations).
"""

from repro.cpu.core import Ulp430, build_ulp430, UnresolvedPCError

__all__ = ["Ulp430", "build_ulp430", "UnresolvedPCError"]
