"""Elaboration of the complete gate-level ULP processor.

The core is a multicycle MSP430-subset machine with the openMSP430 module
split the paper's figures use: ``frontend`` (fetch/decode FSM), ``exec_unit``
(ALU + register file + PC/SP/SR), ``mem_backbone`` (address muxing,
peripheral decode, data-in select), ``multiplier`` (memory-mapped 16x16
array multiplier), ``watchdog``, ``sfr`` (GPIO), ``clk_module`` and ``dbg``.

FSM states (3-bit register)::

    FETCH ──> DISPATCH ──(reg/CG operands)── exec ──> FETCH
                 │  \\──(jump)── PC update ──> FETCH
                 │──(x(Rn)/&abs)──> SRC_EXT ──> SRC_RD ...
                 │──(@Rn/@Rn+/#imm)──────────> SRC_RD ...
    SRC_RD ──(Ad=1)──> DST_EXT ──(RMW)──> DST_RD ──> FETCH
    CALL_PUSH pushes the return address and loads the PC.

Memory is synchronous: a read issued in cycle *t* is on the data-in bus in
cycle *t+1*, which is why DISPATCH consumes the word fetched during FETCH.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.isa import memmap
from repro.isa.spec import SR_C, SR_N, SR_V, SR_Z
from repro.logic import X
from repro.netlist.builder import Bus, NetlistBuilder
from repro.netlist.core import Netlist
from repro.sim.evaluator import LevelizedEvaluator
from repro.sim.machine import Machine, MemoryPorts
from repro.sim.memory import TernaryMemory
from repro.cpu.datapath import (
    and_or_select,
    build_alu,
    build_array_multiplier,
    build_shifter,
)

MASK16 = 0xFFFF

S_FETCH, S_DISPATCH, S_SRC_EXT, S_SRC_RD = 0, 1, 2, 3
S_DST_EXT, S_DST_RD, S_CALL_PUSH = 4, 5, 6

STATE_NAMES = {
    S_FETCH: "FETCH",
    S_DISPATCH: "DISPATCH",
    S_SRC_EXT: "SRC_EXT",
    S_SRC_RD: "SRC_RD",
    S_DST_EXT: "DST_EXT",
    S_DST_RD: "DST_RD",
    S_CALL_PUSH: "CALL_PUSH",
}

HALT_WORD = 0x3FFF  # `jmp $` — unconditional jump with offset -1


class UnresolvedPCError(Exception):
    """The program counter became X outside a forkable conditional jump.

    This happens for computed jumps through unconstrained (input-derived)
    pointers; the paper's benchmarks — and ours — do not contain them.
    """


@dataclass
class CpuNets:
    """Net handles the wrapper and the analyses need after elaboration."""

    pc_q: Bus
    pc_d: list[int]
    sp_q: Bus
    sr_q: Bus
    state_q: Bus
    state_d: list[int]
    ir_q: Bus
    iw: Bus
    din_cpu: Bus
    port_in: Bus
    mem_addr_byte: Bus
    #: r4..r15 DFF banks (regfile[0] is r4)
    regfile: list[Bus]


def _declare_register(
    nb: NetlistBuilder, width: int, name: str, reset: int = 0
) -> Bus:
    return nb.register(width, name, reset_value=reset)


def build_ulp430() -> "Ulp430":
    """Elaborate the processor and return its wrapper."""
    nb = NetlistBuilder("ulp430")

    # ------------------------------------------------------------------
    # Architectural and micro-architectural registers (forward-declared)
    # ------------------------------------------------------------------
    with nb.module("exec_unit"):
        pc = _declare_register(nb, 16, "pc", memmap.RESET_PC)
        sp = _declare_register(nb, 16, "sp", memmap.RESET_SP)
        sr = _declare_register(nb, 16, "sr", 0)
        srcv = _declare_register(nb, 16, "srcv", 0)
    with nb.module("frontend"):
        ir = _declare_register(nb, 16, "ir", 0)
        state = _declare_register(nb, 3, "state", S_FETCH)
        mar = _declare_register(nb, 16, "mar", 0)

    # ------------------------------------------------------------------
    # External interfaces
    # ------------------------------------------------------------------
    with nb.module("mem_backbone"):
        mem_dout = nb.bus_input("mem_dout", 16)
        per_sel_q = _declare_register(nb, 1, "per_sel", 0)
        per_addr_q = _declare_register(nb, 8, "per_addr", 0)
    with nb.module("sfr"):
        port_in = nb.bus_input("port_in", 16)
        p1out = _declare_register(nb, 16, "p1out", 0)
    with nb.module("watchdog"):
        wdtctl = _declare_register(nb, 16, "wdtctl", 0)
        wdtcnt = _declare_register(nb, 8, "wdtcnt", 0)
    with nb.module("multiplier"):
        mpy_op1 = _declare_register(nb, 16, "mpy_op1", 0)
        mpy_op2 = _declare_register(nb, 16, "mpy_op2", 0)
        mult_go = _declare_register(nb, 1, "mult_go", 0)
        reslo = _declare_register(nb, 16, "reslo", 0)
        reshi = _declare_register(nb, 16, "reshi", 0)
    with nb.module("dbg"):
        dbg_ctl = _declare_register(nb, 16, "dbg_ctl", 0)
    with nb.module("clk_module"):
        prescaler = _declare_register(nb, 4, "prescaler", 0)
        # Free-running divider: constant background activity, like the
        # clock tree of the real design (visible in Fig 3.6 breakdowns).
        nb.connect_register(prescaler, nb.increment(prescaler))
        # Clock distribution tree: buffers re-driven every cycle by the
        # half-rate toggle bit.  Input-independent power floor shared by
        # symbolic bounds and silicon-style measurements alike.
        stage = prescaler[0]
        for buffer_index in range(160):
            stage = nb.buf(
                prescaler[0] if buffer_index % 8 == 0 else stage,
                name=f"clktree{buffer_index}",
            )

    # ------------------------------------------------------------------
    # Peripheral readback and the CPU data-in bus
    # ------------------------------------------------------------------
    def word_code(byte_addr: int) -> int:
        return (byte_addr >> 1) & 0xFF

    with nb.module("mem_backbone"):
        readback_map = [
            (memmap.P1IN, port_in),
            (memmap.P1OUT, p1out),
            (memmap.WDTCTL, wdtctl),
            (memmap.WDTCNT, wdtcnt + [nb.const0()] * 8),
            (memmap.MPY, mpy_op1),
            (memmap.OP2, mpy_op2),
            (memmap.RESLO, reslo),
            (memmap.RESHI, reshi),
            (memmap.DBG_CTL, dbg_ctl),
        ]
        selects = [
            (nb.eq_const(per_addr_q, word_code(addr)), bus)
            for addr, bus in readback_map
        ]
        per_readback = and_or_select(nb, selects)
        din_cpu = nb.bus_mux(per_sel_q[0], mem_dout, per_readback)

    # ------------------------------------------------------------------
    # Frontend: current instruction word and field decode
    # ------------------------------------------------------------------
    with nb.module("frontend"):
        st = nb.decoder(state)  # 8 one-hot state lines
        in_fetch, in_dispatch = st[S_FETCH], st[S_DISPATCH]
        in_src_ext, in_src_rd = st[S_SRC_EXT], st[S_SRC_RD]
        in_dst_ext, in_dst_rd = st[S_DST_EXT], st[S_DST_RD]
        in_call_push = st[S_CALL_PUSH]

        iw = nb.bus_mux(in_dispatch, ir, din_cpu)
        nb.connect_register(ir, nb.bus_mux(in_dispatch, ir, din_cpu))

        src_field = iw[8:12]
        dst_field = iw[0:4]
        as_mode = iw[4:6]
        ad_bit = iw[7]
        opcode = iw[12:16]
        opcode2 = iw[7:10]
        cond = iw[10:13]

        fmt_j = nb.and_n([nb.not_(iw[15]), nb.not_(iw[14]), iw[13]])
        fmt_ii = nb.and_n(
            [nb.not_(iw[15]), nb.not_(iw[14]), nb.not_(iw[13]), iw[12],
             nb.not_(iw[11]), nb.not_(iw[10])]
        )
        fmt_i = nb.or_(iw[15], iw[14])
        fmt_op = nb.or_(fmt_i, fmt_ii)

        # Format I carries the source register in bits [11:8]; Format II
        # carries its single operand register in bits [3:0].
        op_field = nb.bus_mux(fmt_ii, src_field, dst_field)
        src_is_cg2 = nb.eq_const(op_field, 3)
        src_is_sr = nb.eq_const(op_field, 2)
        src_is_pc = nb.eq_const(op_field, 0)
        src_is_sp = nb.eq_const(op_field, 1)
        as_0 = nb.eq_const(as_mode, 0)
        as_1 = nb.eq_const(as_mode, 1)
        as_2 = nb.eq_const(as_mode, 2)
        as_3 = nb.eq_const(as_mode, 3)

        is_cg = nb.and_(
            fmt_op,
            nb.or_(src_is_cg2, nb.and_(src_is_sr, nb.or_(as_2, as_3))),
        )
        imm_mode = nb.and_n([fmt_op, as_3, src_is_pc])
        idx_mode = nb.and_n([fmt_op, as_1, nb.not_(is_cg)])
        ind_mode = nb.and_n(
            [fmt_op, nb.or_(as_2, as_3), nb.not_(is_cg), nb.not_(imm_mode)]
        )
        reg_mode = nb.and_n([fmt_op, as_0, nb.not_(is_cg)])
        operand_ready = nb.or_(is_cg, reg_mode)

        is_push = nb.and_n([fmt_ii, opcode2[2], nb.not_(opcode2[1]), nb.not_(opcode2[0])])
        is_call = nb.and_n([fmt_ii, opcode2[2], nb.not_(opcode2[1]), opcode2[0]])
        is_shift_op = nb.and_(fmt_ii, nb.not_(opcode2[2]))

        is_mov = nb.and_(fmt_i, nb.eq_const(opcode, 0x4))
        is_cmp = nb.and_(fmt_i, nb.eq_const(opcode, 0x9))
        is_bit = nb.and_(fmt_i, nb.eq_const(opcode, 0xB))
        no_writeback = nb.or_(is_cmp, is_bit)

        _dst_is_mem = nb.and_(fmt_i, ad_bit)  # reserved decode line

        # Constant generator value
        cg_all_ones = nb.and_(src_is_cg2, as_3)
        cg_bit0 = nb.and_(src_is_cg2, as_1)
        cg_bit1 = nb.and_(src_is_cg2, as_2)
        cg_bit2 = nb.and_(src_is_sr, as_2)
        cg_bit3 = nb.and_(src_is_sr, as_3)
        cg_value = [
            nb.or_(cg_all_ones, cg_bit0),
            nb.or_(cg_all_ones, cg_bit1),
            nb.or_(cg_all_ones, cg_bit2),
            nb.or_(cg_all_ones, cg_bit3),
        ] + [cg_all_ones] * 12

    # ------------------------------------------------------------------
    # Execution unit: register file read ports, ALU, shifter
    # ------------------------------------------------------------------
    with nb.module("exec_unit"):
        with nb.module("regfile"):
            banks = [
                _declare_register(nb, 16, f"r{n}") for n in range(4, 16)
            ]
            zero_bus = nb.bus_const(0, 16)
            choices = [pc, sp, sr, zero_bus] + banks
            reg_a = nb.bus_mux_tree(op_field, choices)
            reg_b = nb.bus_mux_tree(dst_field, choices)

        src_operand_now = nb.bus_mux(is_cg, reg_a, cg_value)

        with nb.module("alu"):
            alu_src = and_or_select(
                nb,
                [
                    (in_dispatch, src_operand_now),
                    (in_src_rd, din_cpu),
                    (nb.or_(in_dst_rd, in_dst_ext), srcv),
                ],
            )
            alu_dst = nb.bus_mux(in_dst_rd, reg_b, din_cpu)
            alu = build_alu(nb, opcode, alu_src, alu_dst, sr[SR_C])

        with nb.module("shifter"):
            shift_src = nb.bus_mux(in_dispatch, din_cpu, src_operand_now)
            shifter = build_shifter(nb, opcode2, shift_src, sr[SR_C])

    # ------------------------------------------------------------------
    # Frontend: next-state logic and jump resolution
    # ------------------------------------------------------------------
    with nb.module("frontend"):
        flag_c, flag_z = sr[SR_C], sr[SR_Z]
        flag_n, flag_v = sr[SR_N], sr[SR_V]
        cond_lines = nb.decoder(cond)
        n_xor_v = nb.xor(flag_n, flag_v)
        taken = nb.or_n(
            [
                nb.and_(cond_lines[0], nb.not_(flag_z)),
                nb.and_(cond_lines[1], flag_z),
                nb.and_(cond_lines[2], nb.not_(flag_c)),
                nb.and_(cond_lines[3], flag_c),
                nb.and_(cond_lines[4], flag_n),
                nb.and_(cond_lines[5], nb.not_(n_xor_v)),
                nb.and_(cond_lines[6], n_xor_v),
                cond_lines[7],
            ]
        )

        goto_dispatch = in_fetch
        goto_src_ext = nb.and_(in_dispatch, idx_mode)
        goto_src_rd = nb.or_(
            nb.and_(in_dispatch, nb.or_(imm_mode, ind_mode)), in_src_ext
        )
        exec_entry = nb.or_(nb.and_(in_dispatch, operand_ready), in_src_rd)
        goto_dst_ext = nb.and_n([exec_entry, fmt_i, ad_bit])
        goto_dst_rd = nb.and_(in_dst_ext, nb.not_(is_mov))
        goto_call_push = nb.and_(exec_entry, is_call)
        state_next = [
            nb.or_n([goto_dispatch, goto_src_rd, goto_dst_rd]),
            nb.or_n([goto_src_ext, goto_src_rd, goto_call_push]),
            nb.or_n([goto_dst_ext, goto_dst_rd, goto_call_push]),
        ]
        nb.connect_register(state, state_next)

    # ------------------------------------------------------------------
    # Address generation and memory control (mem_backbone)
    # ------------------------------------------------------------------
    with nb.module("mem_backbone"):
        pc_plus_2 = nb.increment(pc, 2)
        sp_minus_2 = nb.increment(sp, 0xFFFE)
        sp_plus_2 = nb.increment(sp, 2)
        reg_a_plus_2 = nb.increment(reg_a, 2)

        # Jump target: PC + 2*sign-extended(offset)
        offset_times_2 = [nb.const0()] + list(iw[0:10]) + [iw[9]] * 5
        jump_target, _ = nb.ripple_add(pc, offset_times_2)

        ea_base_src = nb.bus_mux(src_is_sr, reg_a, zero_bus)
        ea_base_dst = nb.bus_mux(nb.eq_const(dst_field, 2), reg_b, zero_bus)
        ea_base = nb.bus_mux(in_dst_ext, ea_base_src, ea_base_dst)
        effective_addr, _ = nb.ripple_add(ea_base, din_cpu)

        dispatch_push = nb.and_n([in_dispatch, operand_ready, is_push])
        _dispatch_rd_pc = nb.or_n(  # reserved decode line
            [
                nb.and_(in_dispatch, idx_mode),
                nb.and_(in_dispatch, imm_mode),
                nb.and_n([in_dispatch, operand_ready, fmt_i, ad_bit]),
            ]
        )
        src_rd_push = nb.and_(in_src_rd, is_push)
        src_rd_shift_wb = nb.and_n(
            [in_src_rd, is_shift_op, nb.not_(nb.and_(fmt_ii, as_0))]
        )
        src_rd_dst_ext = nb.and_n([in_src_rd, fmt_i, ad_bit])

        dispatch_addr_ind = nb.and_(in_dispatch, ind_mode)
        dispatch_addr_default = nb.and_(
            in_dispatch, nb.nor_n([ind_mode, dispatch_push])
        )
        mem_addr_byte = and_or_select(
            nb,
            [
                (in_fetch, pc),
                (dispatch_addr_ind, reg_a),
                (dispatch_push, sp_minus_2),
                (dispatch_addr_default, pc),
                (in_src_ext, effective_addr),
                (src_rd_push, sp_minus_2),
                (src_rd_shift_wb, mar),
                (nb.and_(in_src_rd, nb.nor_n([src_rd_push, src_rd_shift_wb])), pc),
                (in_dst_ext, effective_addr),
                (in_dst_rd, mar),
                (in_call_push, sp_minus_2),
            ],
        )

        mem_en = nb.or_n(
            [
                in_fetch,
                nb.and_(in_dispatch, nb.or_n([idx_mode, imm_mode, ind_mode])),
                nb.and_n([in_dispatch, operand_ready, fmt_i, ad_bit]),
                in_src_ext,
                src_rd_dst_ext,
                nb.and_(in_dst_ext, nb.not_(is_mov)),
            ]
        )
        mem_we = nb.or_n(
            [
                dispatch_push,
                src_rd_push,
                src_rd_shift_wb,
                nb.and_(in_dst_ext, is_mov),
                nb.and_(in_dst_rd, nb.not_(no_writeback)),
                in_call_push,
            ]
        )
        mem_din = and_or_select(
            nb,
            [
                (dispatch_push, src_operand_now),
                (src_rd_push, din_cpu),
                (src_rd_shift_wb, shifter.result),
                (nb.and_(in_dst_ext, is_mov), srcv),
                (nb.and_(in_dst_rd, nb.not_(no_writeback)), alu.result),
                (in_call_push, pc),
            ],
        )

        is_per = nb.nor_n(mem_addr_byte[9:16])
        nb.connect_register(per_sel_q, [nb.and_(is_per, mem_en)])
        per_addr_now = mem_addr_byte[1:9]
        nb.connect_register(
            per_addr_q, nb.bus_mux(mem_en, per_addr_q, per_addr_now)
        )

    # ------------------------------------------------------------------
    # Register write-back, PC/SP/SR updates
    # ------------------------------------------------------------------
    with nb.module("exec_unit"):
        exec_alu = nb.or_n(
            [
                nb.and_n([in_dispatch, operand_ready, fmt_i, nb.not_(ad_bit)]),
                nb.and_n([in_src_rd, fmt_i, nb.not_(ad_bit)]),
            ]
        )
        exec_shift_reg = nb.and_n(
            [in_dispatch, operand_ready, is_shift_op]
        )
        reg_write_value = nb.bus_mux(exec_shift_reg, alu.result, shifter.result)
        reg_write_exec = nb.and_(
            nb.or_(exec_alu, exec_shift_reg), nb.not_(no_writeback)
        )
        autoinc = nb.and_n(
            [
                in_dispatch,
                fmt_op,
                as_3,
                nb.not_(is_cg),
                nb.not_(src_is_pc),
            ]
        )
        reg_write_en = nb.or_(reg_write_exec, autoinc)
        reg_write_index = nb.bus_mux(autoinc, dst_field, op_field)
        reg_write_data = nb.bus_mux(autoinc, reg_write_value, reg_a_plus_2)

        with nb.module("regfile"):
            write_lines = nb.decoder(reg_write_index)
            for offset, bank in enumerate(banks):
                enable = nb.and_(reg_write_en, write_lines[offset + 4])
                nb.register_with_enable(bank, reg_write_data, enable)

        write_pc_exec = nb.and_(reg_write_exec, nb.eq_const(reg_write_index, 0))
        write_sp_port = nb.and_(reg_write_en, nb.eq_const(reg_write_index, 1))
        write_sr_port = nb.and_(reg_write_exec, nb.eq_const(reg_write_index, 2))

        # --- PC ---
        jump_pc = nb.bus_mux(taken, pc, jump_target)
        # DISPATCH consumes a word at @PC for: #imm reads, x(Rn)/&abs
        # extension reads, and dst-extension reads after a reg/CG source.
        dispatch_pc_advance = nb.and_(
            in_dispatch,
            nb.or_n(
                [
                    imm_mode,
                    idx_mode,
                    nb.and_n([operand_ready, fmt_i, ad_bit]),
                ]
            ),
        )
        dispatch_jump = nb.and_(in_dispatch, fmt_j)
        pc_selects = [
            (in_fetch, pc_plus_2),
            (dispatch_jump, jump_pc),
            (dispatch_pc_advance, pc_plus_2),
            (src_rd_dst_ext, pc_plus_2),
            (write_pc_exec, reg_write_data),
            (in_call_push, srcv),
        ]
        hold_pc = nb.nor_n([sel for sel, _bus in pc_selects])
        pc_next = and_or_select(nb, pc_selects + [(hold_pc, pc)])
        nb.connect_register(pc, pc_next)

        # --- SP ---
        push_now = nb.or_n([dispatch_push, src_rd_push, in_call_push])
        sp_autoinc = nb.and_(autoinc, src_is_sp)
        sp_next = and_or_select(
            nb,
            [
                (push_now, sp_minus_2),
                (sp_autoinc, sp_plus_2),
                (write_sp_port_only := nb.and_(
                    write_sp_port, nb.not_(nb.or_(push_now, sp_autoinc))
                ), reg_write_data),
                (
                    nb.nor_n([push_now, sp_autoinc, write_sp_port_only]),
                    sp,
                ),
            ],
        )
        nb.connect_register(sp, sp_next)

        # --- SR (flags) ---
        exec_cycle = nb.or_n(
            [
                exec_alu,
                exec_shift_reg,
                in_dst_rd,
                nb.and_(in_src_rd, src_rd_shift_wb),
            ]
        )
        use_shift_flags = nb.or_(exec_shift_reg, src_rd_shift_wb)
        sets_flags = nb.mux(use_shift_flags, alu.sets_flags, shifter.sets_flags)
        flag_en = nb.and_(exec_cycle, sets_flags)
        new_c = nb.mux(use_shift_flags, alu.c, shifter.c)
        new_z = nb.mux(use_shift_flags, alu.z, shifter.z)
        new_n = nb.mux(use_shift_flags, alu.n, shifter.n)
        new_v = nb.mux(use_shift_flags, alu.v, shifter.v)
        sr_next: Bus = []
        flag_bits = {SR_C: new_c, SR_Z: new_z, SR_N: new_n, SR_V: new_v}
        for bit in range(16):
            if bit in flag_bits:
                flagged = nb.mux(flag_en, sr[bit], flag_bits[bit])
            else:
                flagged = sr[bit]
            sr_next.append(nb.mux(write_sr_port, flagged, reg_write_data[bit]))
        nb.connect_register(sr, sr_next)

        # --- SRCV / MAR ---
        srcv_next = and_or_select(
            nb,
            [
                (nb.and_(in_dispatch, operand_ready), src_operand_now),
                (in_src_rd, din_cpu),
                (
                    nb.nor_n([nb.and_(in_dispatch, operand_ready), in_src_rd]),
                    srcv,
                ),
            ],
        )
        nb.connect_register(srcv, srcv_next)

    with nb.module("frontend"):
        mar_capture = nb.or_n(
            [
                nb.and_(in_dispatch, ind_mode),
                in_src_ext,
                in_dst_ext,
            ]
        )
        mar_value = nb.bus_mux(
            nb.and_(in_dispatch, ind_mode),
            effective_addr,
            reg_a,
        )
        nb.connect_register(mar, nb.bus_mux(mar_capture, mar, mar_value))

    # ------------------------------------------------------------------
    # Peripherals: write decode and internals
    # ------------------------------------------------------------------
    with nb.module("mem_backbone"):
        per_we = nb.and_(mem_we, is_per)
        per_addr_now_wr = mem_addr_byte[1:9]

        def write_strobe(byte_addr: int) -> int:
            return nb.and_(per_we, nb.eq_const(per_addr_now_wr, word_code(byte_addr)))

        wr_p1out = write_strobe(memmap.P1OUT)
        wr_wdtctl = write_strobe(memmap.WDTCTL)
        wr_mpy = write_strobe(memmap.MPY)
        wr_op2 = write_strobe(memmap.OP2)
        wr_dbg = write_strobe(memmap.DBG_CTL)

    with nb.module("sfr"):
        nb.register_with_enable(p1out, mem_din, wr_p1out)

    with nb.module("watchdog"):
        nb.register_with_enable(wdtctl, mem_din, wr_wdtctl)
        wdt_hold = nb.eq_const(wdtctl, memmap.WDT_HOLD_KEY)
        wdtcnt_next = nb.increment(wdtcnt)
        nb.connect_register(
            wdtcnt, nb.bus_mux(wdt_hold, wdtcnt_next, wdtcnt)
        )

    with nb.module("dbg"):
        nb.register_with_enable(dbg_ctl, mem_din, wr_dbg)

    with nb.module("multiplier"):
        nb.register_with_enable(mpy_op1, mem_din, wr_mpy)
        nb.register_with_enable(mpy_op2, mem_din, wr_op2)
        nb.connect_register(mult_go, [wr_op2])
        product = build_array_multiplier(nb, mpy_op1, mpy_op2)
        nb.register_with_enable(reslo, product[:16], mult_go[0])
        nb.register_with_enable(reshi, product[16:], mult_go[0])

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------
    word_addr = mem_addr_byte[1:16]
    nb.bus_output("mem_addr", word_addr)
    nb.bus_output("mem_din", mem_din)
    nb.output("mem_en", mem_en)
    nb.output("mem_we", mem_we)
    nb.bus_output("pc", pc)

    netlist = nb.finish()
    ports = MemoryPorts(
        addr=word_addr, din=mem_din, dout=mem_dout, we=mem_we, en=mem_en
    )
    nets = CpuNets(
        pc_q=pc,
        pc_d=[netlist.gates[q].inputs[0] for q in pc],
        sp_q=sp,
        sr_q=sr,
        state_q=state,
        state_d=[netlist.gates[q].inputs[0] for q in state],
        ir_q=ir,
        iw=iw,
        din_cpu=din_cpu,
        port_in=port_in,
        mem_addr_byte=mem_addr_byte,
        regfile=banks,
    )
    return Ulp430(netlist, ports, nets)


class Ulp430(object):
    """The elaborated processor plus the hooks used by the analyses."""

    def __init__(self, netlist: Netlist, ports: MemoryPorts, nets: CpuNets):
        self.netlist = netlist
        self.ports = ports
        self.nets = nets
        #: the uint8 reference evaluator (kept eagerly: it is the oracle)
        self.evaluator = LevelizedEvaluator(netlist)
        #: the packed dual-rail evaluator, compiled on first use and then
        #: shared by every machine/batch built from this CPU
        self._bitplane_evaluator = None
        #: the native-kernel evaluator (or the bitplane one after a
        #: compiler-less fallback), built on first use
        self._native_evaluator = None

    # ------------------------------------------------------------------
    # Machine construction
    # ------------------------------------------------------------------
    def evaluator_for(self, engine: str | None = None):
        """The shared evaluator for *engine* (``None``: ``REPRO_ENGINE``)."""
        from repro.sim.bitplane import (
            ENGINES,
            BitplaneEvaluator,
            default_engine,
        )

        engine = engine or default_engine()
        if engine == "reference":
            return self.evaluator
        if engine == "bitplane":
            if self._bitplane_evaluator is None:
                self._bitplane_evaluator = BitplaneEvaluator(self.netlist)
            return self._bitplane_evaluator
        if engine == "native":
            if self._native_evaluator is None:
                # share the compiled program with the bitplane evaluator
                # (one schedule compile per CPU, whatever engines run)
                base = self.evaluator_for("bitplane")
                from repro.sim.native import (
                    NativeEvaluator,
                    NativeKernelError,
                    warn_fallback,
                )

                try:
                    self._native_evaluator = NativeEvaluator(
                        self.netlist, base.program
                    )
                except NativeKernelError as exc:
                    warn_fallback(exc)
                    self._native_evaluator = base
            return self._native_evaluator
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )

    def make_machine(
        self,
        program: Program,
        symbolic_inputs: bool = True,
        port_in: int | None = None,
        reset_cycles: int = 2,
        trace=None,
        engine: str | None = None,
    ) -> Machine:
        """Load *program* and return a reset machine ready to step.

        With ``symbolic_inputs=True`` the program's ``.input`` regions stay
        X and the GPIO input pins are forced to X (Algorithm 1's setting);
        otherwise the regions must have been filled via
        ``program.with_inputs(...)`` and *port_in* gives the pin values.
        *engine* picks the simulation representation (bitplane/reference);
        ``None`` honors ``REPRO_ENGINE``.
        """
        memory = TernaryMemory(n_words=1 << 15)
        memory.load_program(program.words)
        machine = Machine(
            self.netlist, self.ports, self.evaluator_for(engine), memory
        )
        for position, net in enumerate(self.nets.port_in):
            if symbolic_inputs or port_in is None:
                machine.forced_inputs[net] = X
            else:
                machine.forced_inputs[net] = (port_in >> position) & 1
        machine.annotator = self.annotate
        machine.reset_sequence(reset_cycles, trace=trace)
        return machine

    # ------------------------------------------------------------------
    # Introspection used by the explorer and the COI analysis
    # ------------------------------------------------------------------
    def read_state(self, machine: Machine) -> int | None:
        value, xmask = machine.peek_bus(self.nets.state_q)
        return None if xmask else value

    def read_pc(self, machine: Machine) -> int | None:
        value, xmask = machine.peek_bus(self.nets.pc_q)
        return None if xmask else value

    def read_iw(self, machine: Machine) -> int | None:
        value, xmask = machine.peek_bus(self.nets.iw)
        return None if xmask else value

    def annotate(self, machine: Machine) -> dict:
        state = self.read_state(machine)
        pc_value, _ = machine.peek_bus(self.nets.pc_q)
        return {
            "state": STATE_NAMES.get(state, "X"),
            "pc": pc_value,
            "iw": self.read_iw(machine),
        }

    def in_dispatch(self, machine: Machine) -> bool:
        return self.read_state(machine) == S_DISPATCH

    def halted(self, machine: Machine) -> bool:
        """True when the CPU is dispatching the ``jmp $`` halt idiom."""
        return (
            self.in_dispatch(machine)
            and self.read_iw(machine) == HALT_WORD
        )

    def pc_next_unknown(self, machine: Machine) -> bool:
        """Will the PC load an X at the next clock edge?

        Reads the PC D-inputs as a bus through ``peek_bus`` so packed
        lanes answer from their plane words without unpacking the row.
        """
        _value, xmask = machine.peek_bus(self.nets.pc_d)
        return xmask != 0

    def flag_dff_for(self, bit: int) -> int:
        return self.nets.sr_q[bit]

    def read_registers(self, machine: Machine) -> list[tuple[int, int]]:
        """All 16 architectural registers as ``(value, xmask)`` pairs."""
        buses = [self.nets.pc_q, self.nets.sp_q, self.nets.sr_q]
        values = [machine.peek_bus(bus) for bus in buses]
        values.append((0, 0))  # r3: the storage-less constant generator
        values.extend(machine.peek_bus(bank) for bank in self.nets.regfile)
        return values

    def run_to_halt(
        self,
        machine: Machine,
        max_cycles: int = 100_000,
        trace=None,
    ) -> int:
        """Step a concrete machine until the halt idiom; returns cycles run.

        For symbolic machines use :class:`repro.core.activity` instead —
        this helper raises on an unknown program counter.
        """
        for _ in range(max_cycles):
            machine.step(trace=trace)
            if self.halted(machine):
                return machine.cycle
            if self.pc_next_unknown(machine):
                raise UnresolvedPCError(
                    "concrete run reached an unknown PC; did you forget "
                    "Program.with_inputs()?"
                )
        raise RuntimeError(f"no halt within {max_cycles} cycles")

    def branch_fork_assignments(self, machine: Machine) -> list[dict[int, int]]:
        """Flag concretizations that resolve an X conditional jump.

        Returns one ``{sr_dff_net: value}`` dict per execution path.  The
        machine must be mid-DISPATCH of a conditional jump whose condition
        evaluated to X; raises :class:`UnresolvedPCError` otherwise.
        """
        if not self.in_dispatch(machine):
            raise UnresolvedPCError(
                "PC became unknown outside instruction dispatch "
                "(computed jump through unconstrained data?)"
            )
        iw = self.read_iw(machine)
        if iw is None or (iw >> 13) != 0b001:
            raise UnresolvedPCError(
                f"PC became unknown while dispatching non-jump word "
                f"{iw if iw is None else hex(iw)}"
            )
        cond = (iw >> 10) & 0b111
        needed_bits = {
            0b000: [SR_Z], 0b001: [SR_Z],
            0b010: [SR_C], 0b011: [SR_C],
            0b100: [SR_N],
            0b101: [SR_N, SR_V], 0b110: [SR_N, SR_V],
        }.get(cond, [])
        unknown = [
            bit
            for bit in needed_bits
            if machine.peek_bus([self.nets.sr_q[bit]])[1]
        ]
        if not unknown:
            raise UnresolvedPCError(
                "conditional jump has concrete flags yet PC is X"
            )
        assignments: list[dict[int, int]] = []
        for pattern in range(1 << len(unknown)):
            assignments.append(
                {
                    self.nets.sr_q[bit]: (pattern >> i) & 1
                    for i, bit in enumerate(unknown)
                }
            )
        return assignments
