"""Three-valued (0 / 1 / X) logic used by the symbolic gate-level simulator.

The paper's activity analysis propagates unknown values (``X``) for every
signal that cannot be constrained by the application binary.  This package
provides the scalar and vectorized (numpy) kernels for that logic system.
"""

from repro.logic.ternary import (
    ONE,
    TRIT_NAMES,
    X,
    ZERO,
    Trit,
    all_trits,
    bus_to_int,
    int_to_bus,
    is_known,
    refines,
    t_and,
    t_buf,
    t_mux,
    t_nand,
    t_nor,
    t_not,
    t_or,
    t_xnor,
    t_xor,
)
from repro.logic.tables import BINARY_TABLES, MUX_TABLE, NOT_TABLE, table_for

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "Trit",
    "TRIT_NAMES",
    "all_trits",
    "is_known",
    "refines",
    "t_and",
    "t_or",
    "t_xor",
    "t_nand",
    "t_nor",
    "t_xnor",
    "t_not",
    "t_buf",
    "t_mux",
    "bus_to_int",
    "int_to_bus",
    "BINARY_TABLES",
    "NOT_TABLE",
    "MUX_TABLE",
    "table_for",
]
