"""Vectorized lookup tables for three-valued gate evaluation.

The levelized simulator evaluates every gate of one type in one numpy
operation: ``out = TABLE[a_values, b_values]``.  Tables are 3x3 uint8
arrays (indexed by the 0/1/2 trit encoding) generated from the scalar
semantics in :mod:`repro.logic.ternary`, so the two can never drift apart.
"""

from __future__ import annotations

import numpy as np

from repro.logic import ternary
from repro.logic.ternary import all_trits

_BINARY_FUNCS = {
    "AND": ternary.t_and,
    "OR": ternary.t_or,
    "NAND": ternary.t_nand,
    "NOR": ternary.t_nor,
    "XOR": ternary.t_xor,
    "XNOR": ternary.t_xnor,
}


def _build_binary_table(func) -> np.ndarray:
    table = np.zeros((3, 3), dtype=np.uint8)
    for a in all_trits():
        for b in all_trits():
            table[a, b] = func(a, b)
    return table


def _build_not_table() -> np.ndarray:
    return np.array([ternary.t_not(a) for a in all_trits()], dtype=np.uint8)


def _build_mux_table() -> np.ndarray:
    table = np.zeros((3, 3, 3), dtype=np.uint8)
    for sel in all_trits():
        for a in all_trits():
            for b in all_trits():
                table[sel, a, b] = ternary.t_mux(sel, a, b)
    return table


BINARY_TABLES: dict[str, np.ndarray] = {
    name: _build_binary_table(func) for name, func in _BINARY_FUNCS.items()
}

NOT_TABLE: np.ndarray = _build_not_table()

BUF_TABLE: np.ndarray = np.array(all_trits(), dtype=np.uint8)

MUX_TABLE: np.ndarray = _build_mux_table()


def table_for(gate_type: str) -> np.ndarray:
    """Return the lookup table for *gate_type* (e.g. ``"AND"``, ``"MUX"``)."""
    if gate_type in BINARY_TABLES:
        return BINARY_TABLES[gate_type]
    if gate_type == "NOT":
        return NOT_TABLE
    if gate_type == "BUF":
        return BUF_TABLE
    if gate_type == "MUX":
        return MUX_TABLE
    raise KeyError(f"no lookup table for gate type {gate_type!r}")
