"""Scalar three-valued logic primitives.

Values are plain ints for speed and easy numpy interop:

* ``ZERO`` (0) — known logic low
* ``ONE``  (1) — known logic high
* ``X``    (2) — unknown; stands for *either* 0 or 1

The operators implement the standard pessimistic (Kleene) semantics used by
gate-level simulators: a gate output is known only when the known inputs
force it (e.g. ``AND(0, X) == 0`` but ``AND(1, X) == X``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

Trit = int

ZERO: Trit = 0
ONE: Trit = 1
X: Trit = 2

TRIT_NAMES = {ZERO: "0", ONE: "1", X: "x"}

_VALID = (ZERO, ONE, X)


def all_trits() -> tuple[Trit, Trit, Trit]:
    """Return the three logic values, in encoding order."""
    return _VALID


def is_known(value: Trit) -> bool:
    """True when *value* is a concrete 0 or 1 rather than an X."""
    return value == ZERO or value == ONE


def refines(concrete: Trit, symbolic: Trit) -> bool:
    """True when *concrete* is a legal resolution of *symbolic*.

    An ``X`` may resolve to anything; a known value only to itself.  This is
    the partial order underpinning the soundness argument of the paper: every
    concrete-input simulation must refine the X-based symbolic simulation.
    """
    return symbolic == X or concrete == symbolic


def t_not(a: Trit) -> Trit:
    if a == X:
        return X
    return ONE - a


def t_buf(a: Trit) -> Trit:
    return a


def t_and(a: Trit, b: Trit) -> Trit:
    if a == ZERO or b == ZERO:
        return ZERO
    if a == ONE and b == ONE:
        return ONE
    return X


def t_or(a: Trit, b: Trit) -> Trit:
    if a == ONE or b == ONE:
        return ONE
    if a == ZERO and b == ZERO:
        return ZERO
    return X


def t_nand(a: Trit, b: Trit) -> Trit:
    return t_not(t_and(a, b))


def t_nor(a: Trit, b: Trit) -> Trit:
    return t_not(t_or(a, b))


def t_xor(a: Trit, b: Trit) -> Trit:
    if a == X or b == X:
        return X
    return a ^ b


def t_xnor(a: Trit, b: Trit) -> Trit:
    return t_not(t_xor(a, b))


def t_mux(sel: Trit, a: Trit, b: Trit) -> Trit:
    """2:1 multiplexer: returns *a* when ``sel == 0``, *b* when ``sel == 1``.

    With an unknown select the output is known only if both data inputs
    agree — the optimistic-X mux rule, which keeps the analysis tight
    without sacrificing soundness.
    """
    if sel == ZERO:
        return a
    if sel == ONE:
        return b
    if a == b:
        return a
    return X


def bus_to_int(bits: Sequence[Trit]) -> int | None:
    """Interpret *bits* (LSB first) as an unsigned int; ``None`` if any X."""
    value = 0
    for position, bit in enumerate(bits):
        if bit == X:
            return None
        value |= bit << position
    return value


def int_to_bus(value: int, width: int) -> list[Trit]:
    """Encode *value* as a known LSB-first bit vector of *width* bits."""
    return [(value >> position) & 1 for position in range(width)]


def bus_known(bits: Iterable[Trit]) -> bool:
    """True when every bit of the bus is a concrete 0 or 1."""
    return all(is_known(bit) for bit in bits)
