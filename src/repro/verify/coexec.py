"""Lock-step co-execution: gate-level machine vs the behavioral ISS.

The paper's guarantee — "the bound holds for *this* application on *this*
core" — is only as strong as the gate-level model it is computed on.  This
module runs a concrete program simultaneously on the behavioral ISS
(:mod:`repro.isa.iss`, the architectural golden model) and the gate-level
:class:`~repro.sim.machine.Machine` (under any engine: bitplane, native,
reference), retiring instruction by instruction and diffing the full
architectural state at every retirement boundary:

* all 16 registers (PC, SP, SR, and the r4-r15 file; r3 is the
  storage-less constant generator on both sides),
* the SR flags (C/Z/N/V) individually, for readable reports,
* the data-memory write stream (address, value) per instruction, and
* X-contamination: a concrete run must never produce an unknown bit.

The retirement boundary is the multicycle FSM's return to FETCH: at that
cycle the gate-level PC holds the next fetch address and every register
and memory effect of the retired instruction has committed, which is
exactly the ISS's state between two ``step()`` calls.

A mismatch produces a :class:`Divergence` that pinpoints the first
diverging instruction (index, PC, source line) and dumps both
architectural states; :func:`repro.verify.shrink.shrink` reduces a
diverging fuzz program to a minimal reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.disasm import disassemble_at
from repro.asm.program import Program
from repro.cpu.core import S_FETCH, Ulp430
from repro.isa.iss import InstructionSetSimulator, IssError
from repro.isa.memmap import PERIPHERAL_END
from repro.isa.spec import PC, SR, SR_C, SR_N, SR_V, SR_Z

#: FETCH + DISPATCH + SRC_EXT + SRC_RD + DST_EXT + DST_RD + CALL_PUSH is
#: the longest instruction (7 cycles); anything past this bound means the
#: gate-level FSM is stuck and never retires.
MAX_CYCLES_PER_INSTRUCTION = 12

FLAG_BITS = ((SR_C, "C"), (SR_Z, "Z"), (SR_N, "N"), (SR_V, "V"))


class CoexecError(Exception):
    """An infrastructure failure (not a divergence): ISS fault on a
    supposedly-valid program, or neither side halting within budget."""


def _fmt(value: int | None, xmask: int = 0) -> str:
    if value is None or xmask:
        return f"X(xmask={xmask:#06x})" if xmask else "X"
    return f"{value:#06x}"


@dataclass
class Divergence:
    """The first architectural disagreement between ISS and gate."""

    kind: str  # register | flag | pc | memory | x-state | halt | liveness
    index: int  # 0-based retired-instruction index
    pc: int  # fetch address of the diverging instruction
    source: str  # assembly text of that instruction
    detail: str  # one-line "field: iss=... gate=..." summary
    iss_state: dict = field(default_factory=dict)
    gate_state: dict = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"first divergence at instruction #{self.index} "
            f"(pc={self.pc:#06x}): {self.source}",
            f"  kind  : {self.kind}",
            f"  detail: {self.detail}",
            "  ISS state : " + _dump_line(self.iss_state),
            "  gate state: " + _dump_line(self.gate_state),
        ]
        return "\n".join(lines)


def _dump_line(state: dict) -> str:
    regs = " ".join(
        f"r{i}={state.get(f'r{i}', '?')}" for i in range(16)
    )
    flags = state.get("flags", "?")
    writes = state.get("writes", [])
    return f"{regs} flags[{flags}] writes={writes}"


@dataclass
class DivergenceReport:
    """A confirmed divergence plus everything needed to reproduce it:
    the engine, the generating seed, and a minimal shrunk reproducer."""

    divergence: Divergence
    engine: str
    program_name: str
    seed: int | None = None
    reproducer_asm: str | None = None
    original_units: int | None = None
    shrunk_units: int | None = None
    shrink_checks: int = 0

    def describe(self) -> str:
        lines = [
            f"DIVERGENCE: {self.program_name} on engine "
            f"{self.engine!r}"
            + (f" (seed {self.seed})" if self.seed is not None else ""),
            self.divergence.describe(),
        ]
        if self.shrunk_units is not None:
            lines.append(
                f"reproducer shrunk from {self.original_units} to "
                f"{self.shrunk_units} units "
                f"({self.shrink_checks} re-runs)"
            )
        return "\n".join(lines)

    def payload(self) -> dict:
        """JSON view for the service layer and CI artifacts."""
        return {
            "program": self.program_name,
            "engine": self.engine,
            "seed": self.seed,
            "kind": self.divergence.kind,
            "index": self.divergence.index,
            "pc": self.divergence.pc,
            "source": self.divergence.source,
            "detail": self.divergence.detail,
            "iss_state": self.divergence.iss_state,
            "gate_state": self.divergence.gate_state,
            "original_units": self.original_units,
            "shrunk_units": self.shrunk_units,
            "reproducer_asm": self.reproducer_asm,
        }


@dataclass
class CoexecResult:
    """Outcome of one lock-step run of one program on one engine."""

    program: str
    engine: str
    instructions: int = 0
    cycles: int = 0
    divergence: Divergence | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None


def _source_for(program: Program, pc: int) -> str:
    text = program.source_map.get(pc)
    if text:
        return text
    text, _n = disassemble_at(program.words, pc)
    return text


def _iss_dump(iss: InstructionSetSimulator, writes: list) -> dict:
    state = {f"r{i}": _fmt(iss.state.regs[i]) for i in range(16)}
    state["flags"] = " ".join(
        f"{name}={iss.state.flag(bit)}" for bit, name in FLAG_BITS
    )
    state["writes"] = [(hex(a), hex(v)) for a, v in writes]
    return state


def _gate_dump(cpu: Ulp430, machine, writes: list) -> dict:
    regs = cpu.read_registers(machine)
    state = {
        f"r{i}": _fmt(value, xmask)
        for i, (value, xmask) in enumerate(regs)
    }
    sr_value, sr_xmask = regs[SR]
    state["flags"] = " ".join(
        f"{name}={'X' if (sr_xmask >> bit) & 1 else (sr_value >> bit) & 1}"
        for bit, name in FLAG_BITS
    )
    state["writes"] = [(hex(a), hex(v)) for a, v in writes]
    return state


def coexecute(
    cpu: Ulp430,
    program: Program,
    engine: str | None = None,
    port_in: int = 0,
    max_instructions: int = 50_000,
    machine=None,
) -> CoexecResult:
    """Run *program* lock-step on the ISS and the gate-level machine.

    Returns a :class:`CoexecResult`; ``result.divergence`` is ``None``
    when every retirement boundary agreed.  *machine* lets tests inject a
    pre-built (possibly sabotaged) machine; by default a fresh concrete
    machine is built for *engine*.  Programs must be concrete (inputs
    filled via :meth:`Program.with_inputs`) and halt via ``jmp $``.
    """
    from repro.sim.bitplane import default_engine

    engine_name = engine or default_engine()
    if machine is None:
        machine = cpu.make_machine(
            program, symbolic_inputs=False, port_in=port_in, engine=engine
        )
    machine.annotator = None  # skip per-cycle annotation: speed

    iss = InstructionSetSimulator(program, port_in=port_in)
    iss.write_log = []
    result = CoexecResult(program=program.name, engine=engine_name)

    def diverge(kind, pc, detail, gate_writes, iss_writes) -> CoexecResult:
        result.divergence = Divergence(
            kind=kind,
            index=result.instructions,
            pc=pc,
            source=_source_for(program, pc),
            detail=detail,
            iss_state=_iss_dump(iss, iss_writes),
            gate_state=_gate_dump(cpu, machine, gate_writes),
        )
        result.cycles = machine.cycle
        return result

    # boundary 0: both sides out of reset, nothing retired yet
    mismatch = _compare_boundary(cpu, machine, iss)
    if mismatch is not None:
        return diverge(mismatch[0], iss.state.regs[PC], mismatch[1], [], [])

    while result.instructions < max_instructions:
        fetch_pc = iss.state.regs[PC]
        iss.write_log.clear()
        try:
            iss.step()
        except IssError as exc:
            raise CoexecError(
                f"ISS fault in {program.name} at instruction "
                f"#{result.instructions}: {exc}"
            ) from exc
        iss_writes = list(iss.write_log)

        if iss.halted:
            # the gate-level halt idiom is the same `jmp $`: the machine
            # must report halted() within one instruction's cycle budget
            for _ in range(MAX_CYCLES_PER_INSTRUCTION):
                machine.step()
                if cpu.halted(machine):
                    break
            else:
                return diverge(
                    "halt", fetch_pc,
                    "ISS halted but the gate-level machine did not reach "
                    "the halt idiom", [], iss_writes,
                )
            # final boundary: everything but the PC (the ISS steps past
            # the halt word; the gate loops on it)
            mismatch = _compare_boundary(
                cpu, machine, iss, check_pc=False
            )
            if mismatch is not None:
                return diverge(
                    mismatch[0], fetch_pc, mismatch[1], [], iss_writes
                )
            result.instructions += 1
            result.cycles = machine.cycle
            return result

        # step the gate to its next retirement boundary, collecting the
        # data-memory write stream on the way
        gate_writes: list[tuple[int, int]] = []
        retired = False
        for _ in range(MAX_CYCLES_PER_INSTRUCTION):
            machine.step()
            request = machine._request
            if request.we == 1:
                if not request.addr_known or request.din_xmask:
                    return diverge(
                        "x-state", fetch_pc,
                        f"gate memory write with unknown "
                        f"{'address' if not request.addr_known else 'data'}"
                        f" (addr={request.addr}, "
                        f"din={_fmt(request.din_value, request.din_xmask)})",
                        gate_writes, iss_writes,
                    )
                byte_addr = request.addr * 2
                if byte_addr >= PERIPHERAL_END:
                    gate_writes.append((byte_addr, request.din_value))
            elif request.we != 0:
                return diverge(
                    "x-state", fetch_pc,
                    "gate memory write-enable is X on a concrete run",
                    gate_writes, iss_writes,
                )
            if cpu.pc_next_unknown(machine):
                return diverge(
                    "x-state", fetch_pc,
                    "gate PC goes unknown on a concrete run",
                    gate_writes, iss_writes,
                )
            if cpu.halted(machine):
                return diverge(
                    "halt", fetch_pc,
                    "gate-level machine halted but the ISS did not",
                    gate_writes, iss_writes,
                )
            if cpu.read_state(machine) == S_FETCH:
                retired = True
                break
        if not retired:
            return diverge(
                "liveness", fetch_pc,
                f"gate-level FSM did not retire within "
                f"{MAX_CYCLES_PER_INSTRUCTION} cycles",
                gate_writes, iss_writes,
            )

        if gate_writes != iss_writes:
            return diverge(
                "memory", fetch_pc,
                f"write stream: iss={[(hex(a), hex(v)) for a, v in iss_writes]} "
                f"gate={[(hex(a), hex(v)) for a, v in gate_writes]}",
                gate_writes, iss_writes,
            )
        mismatch = _compare_boundary(cpu, machine, iss)
        if mismatch is not None:
            return diverge(
                mismatch[0], fetch_pc, mismatch[1], gate_writes, iss_writes
            )
        result.instructions += 1

    raise CoexecError(
        f"{program.name} did not halt within {max_instructions} "
        f"instructions (no divergence found)"
    )


def _compare_boundary(
    cpu: Ulp430, machine, iss: InstructionSetSimulator, check_pc: bool = True
) -> tuple[str, str] | None:
    """Diff the architectural registers at a retirement boundary.

    Returns ``(kind, detail)`` for the first mismatch, or ``None``.
    """
    gate_regs = cpu.read_registers(machine)
    for i, (value, xmask) in enumerate(gate_regs):
        if i == PC and not check_pc:
            continue
        if xmask:
            return (
                "x-state",
                f"r{i} has unknown bits on a concrete run "
                f"(value={value:#06x}, xmask={xmask:#06x})",
            )
        expected = iss.state.regs[i]
        if value != expected:
            if i == PC:
                return (
                    "pc",
                    f"pc: iss={_fmt(expected)} gate={_fmt(value)}",
                )
            if i == SR:
                for bit, name in FLAG_BITS:
                    iss_bit = (expected >> bit) & 1
                    gate_bit = (value >> bit) & 1
                    if iss_bit != gate_bit:
                        return (
                            "flag",
                            f"SR.{name}: iss={iss_bit} gate={gate_bit} "
                            f"(sr: iss={_fmt(expected)} gate={_fmt(value)})",
                        )
                return (
                    "register",
                    f"SR (non-flag bits): iss={_fmt(expected)} "
                    f"gate={_fmt(value)}",
                )
            return (
                "register",
                f"r{i}: iss={_fmt(expected)} gate={_fmt(value)}",
            )
    return None
