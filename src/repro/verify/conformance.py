"""The conformance driver shared by the CLI verb and the service job.

Two legs, both optional:

* **benchmark leg** — every requested registry benchmark, concretized
  with its seeded input set, co-executed lock-step on every requested
  engine (the "14 benchmarks x 3 engines" CI gate);
* **fuzz leg** — a seeded random-program campaign of N instruction units
  per engine, with automatic reproducer shrinking on divergence.

The aggregated :class:`ConformanceReport` serializes to JSON for the
service layer and renders human-readable for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.verify.coexec import CoexecResult, DivergenceReport, coexecute
from repro.verify.fuzz import fuzz_campaign


@dataclass
class ConformanceReport:
    """Aggregate of both legs; ``ok`` gates the CLI/CI exit status."""

    engines: tuple[str, ...]
    benchmarks: list[CoexecResult] = field(default_factory=list)
    fuzz_programs: int = 0
    fuzz_units: int = 0
    fuzz_seed: int | None = None
    divergences: list[DivergenceReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def payload(self) -> dict:
        return {
            "kind": "conformance",
            "ok": self.ok,
            "engines": list(self.engines),
            "benchmarks": [
                {
                    "benchmark": result.program,
                    "engine": result.engine,
                    "ok": result.ok,
                    "instructions": result.instructions,
                    "cycles": result.cycles,
                }
                for result in self.benchmarks
            ],
            "fuzz_programs": self.fuzz_programs,
            "fuzz_units": self.fuzz_units,
            "fuzz_seed": self.fuzz_seed,
            "divergences": [d.payload() for d in self.divergences],
        }


def run_conformance(
    cpu=None,
    benchmarks: list[str] | None = None,
    fuzz_instructions: int = 0,
    seed: int = 2017,
    engines: tuple[str, ...] | None = None,
    program_size: int = 40,
    input_seed: int = 2017,
    emit=None,
    cancel=None,
) -> ConformanceReport:
    """Run the benchmark and/or fuzz conformance legs.

    *benchmarks* is a list of registry names (``None`` with
    ``fuzz_instructions == 0`` means **all** of them; ``[]`` skips the
    leg).  *engines* defaults to every engine.  *emit* is an optional
    ``(stage, detail)`` progress callback; *cancel* a
    :class:`~repro.parallel.cancel.CancelToken` honored between runs.
    """
    from repro.bench.suite import ALL_BENCHMARKS
    from repro.sim.bitplane import ENGINES

    engines = tuple(engines) if engines else ENGINES
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
    if benchmarks is None:
        benchmarks = [] if fuzz_instructions else list(ALL_BENCHMARKS)
    unknown = [name for name in benchmarks if name not in ALL_BENCHMARKS]
    if unknown:
        valid = ", ".join(sorted(ALL_BENCHMARKS))
        raise KeyError(
            f"unknown benchmark{'s' if len(unknown) > 1 else ''} "
            f"{', '.join(map(repr, unknown))}; valid names: {valid}"
        )

    if cpu is None:
        from repro.cpu import build_ulp430

        cpu = build_ulp430()

    report = ConformanceReport(engines=engines)

    for name in benchmarks:
        benchmark = ALL_BENCHMARKS[name]
        program = benchmark.program()
        concrete = program.with_inputs(
            benchmark.input_sets(1, seed=input_seed)[0]
        )
        for engine in engines:
            if cancel is not None:
                cancel.check()
            result = coexecute(cpu, concrete, engine=engine)
            report.benchmarks.append(result)
            if result.ok:
                if emit:
                    emit(
                        "benchmark",
                        f"{name} on {engine}: {result.instructions} "
                        f"instructions lock-step clean",
                    )
                continue
            if emit:
                emit(
                    "divergence",
                    f"{name} on {engine}: {result.divergence.detail}",
                )
            report.divergences.append(DivergenceReport(
                divergence=result.divergence,
                engine=engine,
                program_name=name,
            ))

    if fuzz_instructions > 0:
        report.fuzz_seed = seed
        fuzz = fuzz_campaign(
            cpu, fuzz_instructions, seed, engines=engines,
            program_size=program_size, emit=emit, cancel=cancel,
        )
        report.fuzz_programs = fuzz.programs
        report.fuzz_units = fuzz.units
        report.divergences.extend(fuzz.divergences)

    return report
