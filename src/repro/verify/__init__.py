"""Lock-step co-execution conformance layer.

The oracle hierarchy, weakest to strongest claim:

1. :mod:`repro.isa.iss` — the behavioral ISS, the architectural golden
   model (independent of the netlist).
2. ``reference`` engine — the uint8 levelized evaluator of the gate-level
   netlist (the simulation oracle).
3. ``bitplane`` engine — packed dual-rail uint64 planes, validated
   bit-identical to the reference.
4. ``native`` engine — the compiled C kernel, validated bit-identical to
   the bitplane planes it shares a schedule with.

:func:`repro.verify.coexec.coexecute` pins 2-4 against 1 per retired
instruction; :func:`repro.verify.fuzz.fuzz_campaign` feeds it seeded
random programs; :func:`repro.verify.conformance.run_conformance` is the
driver behind ``repro conformance`` and the ``conformance`` service job.
"""

from repro.verify.coexec import (
    CoexecError,
    CoexecResult,
    Divergence,
    DivergenceReport,
    coexecute,
)
from repro.verify.conformance import ConformanceReport, run_conformance
from repro.verify.fuzz import (
    FuzzProgram,
    FuzzReport,
    FuzzUnit,
    fuzz_campaign,
    generate_program,
)
from repro.verify.shrink import shrink_program

__all__ = [
    "CoexecError",
    "CoexecResult",
    "Divergence",
    "DivergenceReport",
    "coexecute",
    "ConformanceReport",
    "run_conformance",
    "FuzzProgram",
    "FuzzReport",
    "FuzzUnit",
    "fuzz_campaign",
    "generate_program",
    "shrink_program",
]
