"""Seeded random instruction-stream fuzzing for the co-execution oracle.

:func:`generate_program` builds a valid, terminating MSP430-subset
program from a seed: straight-line ALU work over registers and an
initialized data buffer (register/indexed/indirect/autoincrement/absolute
addressing), Format II shifts, stack pushes with matched pops, SR-targeted
writes (the "register write wins over flags" corner), multiplier and GPIO
peripheral traffic, and forward conditional jumps whose skip regions are
stack-neutral — so every generated program halts and never reads
uninitialized memory (which is X on the gate side but 0 in the ISS).

:func:`fuzz_campaign` co-executes a stream of such programs across the
requested engines and, on the first divergence, shrinks the failing
program to a minimal reproducer via :mod:`repro.verify.shrink`.

Byte-mode (``.b``) instructions are deliberately absent: they are outside
the reproduced subset — the assembler rejects them and the ISS raises on
a bw=1 word (pinned in ``tests/test_isa_edges.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.asm import assemble
from repro.asm.program import Program
from repro.isa.memmap import P1IN, P1OUT, MPY, OP2, RESHI, RESLO

#: data buffer backing every memory operand: 512 initialized words
BUF_ADDR = 0x0300
BUF_WORDS = 512
#: pointer registers and the byte offset of the buffer segment each owns
POINTER_SEGMENTS = {10: 0, 11: 256, 12: 512, 13: 768}
#: per-pointer autoincrement budget: 32 * 2 bytes + max index 30 stays
#: inside the owning 256-byte segment
MAX_AUTOINC = 32
DATA_REGS = (4, 5, 6, 7, 8, 9, 14, 15)

ALU_OPS = (
    "mov", "add", "addc", "sub", "subc", "cmp",
    "and", "bit", "bis", "bic", "xor",
)
SHIFT_OPS = ("rra", "rrc", "swpb", "sxt")
JUMPS = ("jmp", "jz", "jnz", "jc", "jnc", "jn", "jge", "jl")
#: values that sit on carry/overflow/sign boundaries (plus the constant
#: generators 0/1/2/4/8/-1, which the assembler encodes register-free)
EDGE_IMMEDIATES = (
    0, 1, 2, 4, 8, 0xFFFF, 0x7FFF, 0x8000, 0x00FF, 0xFF00,
    0xAAAA, 0x5555, 0xFFFE, 0x0100,
)


@dataclass
class FuzzUnit:
    """One generated instruction (or atomic multi-line idiom)."""

    orig: int  # stable identity; render labels are u{orig}
    lines: tuple[str, ...]  # "{target}" marks the jump label slot
    target: int | None = None  # orig index a jump aims at
    stack_delta: int = 0
    partner: int | None = None  # orig of the matching push/pop
    #: simpler same-shape variants the shrinker may substitute
    alts: tuple[tuple[str, ...], ...] = ()


@dataclass
class FuzzProgram:
    """A generated program: renderable in full or as any kept subset."""

    seed: int
    units: list[FuzzUnit]
    prologue: tuple[str, ...]
    data_words: tuple[int, ...]
    port_in: int = 0
    name: str = "fuzz"

    def render(self, keep: list[FuzzUnit] | None = None) -> str:
        units = self.units if keep is None else keep
        kept_origs = [unit.orig for unit in units]
        lines = list(self.prologue)
        for unit in units:
            lines.append(f"u{unit.orig}:")
            for text in unit.lines:
                if "{target}" in text:
                    text = text.format(target=self._label(
                        unit.target, kept_origs
                    ))
                lines.append(f"    {text}")
        lines.append("end:")
        lines.append("    jmp end")
        lines.append("")
        lines.append(f"    .org {BUF_ADDR:#06x}")
        lines.append("buf:")
        for start in range(0, len(self.data_words), 8):
            chunk = self.data_words[start:start + 8]
            lines.append(
                "    .word " + ", ".join(f"{w:#06x}" for w in chunk)
            )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _label(target: int | None, kept_origs: list[int]) -> str:
        for orig in kept_origs:
            if target is not None and orig >= target:
                return f"u{orig}"
        return "end"

    def assemble(
        self, keep: list[FuzzUnit] | None = None, name: str | None = None
    ) -> Program:
        return assemble(self.render(keep), name or self.name)


def generate_program(
    seed: int, size: int = 40, name: str | None = None
) -> FuzzProgram:
    """A valid, halting program of *size* instruction units from *seed*."""
    rng = random.Random(seed)
    units: list[FuzzUnit] = []
    open_pushes: list[int] = []  # orig indices of unmatched pushes
    autoincs = {reg: 0 for reg in POINTER_SEGMENTS}
    no_stack_until = 0  # units below this orig sit in a jump skip region

    def imm(rng) -> int:
        if rng.random() < 0.7:
            return rng.choice(EDGE_IMMEDIATES)
        return rng.getrandbits(16)

    def data_reg() -> str:
        return f"r{rng.choice(DATA_REGS)}"

    def pointer() -> int:
        return rng.choice(tuple(POINTER_SEGMENTS))

    def abs_addr() -> str:
        return f"&{BUF_ADDR + 2 * rng.randrange(BUF_WORDS):#06x}"

    def mem_operand(allow_autoinc: bool = True) -> str:
        kinds = ["indexed", "indirect", "abs"]
        if allow_autoinc:
            kinds.append("autoinc")
        kind = rng.choice(kinds)
        if kind == "abs":
            return abs_addr()
        reg = pointer()
        if kind == "indexed":
            return f"{2 * rng.randrange(16)}(r{reg})"
        if kind == "autoinc" and autoincs[reg] < MAX_AUTOINC:
            autoincs[reg] += 1
            return f"@r{reg}+"
        return f"@r{reg}"

    index = 0
    while index < size:
        orig = index
        in_skip_region = orig < no_stack_until
        roll = rng.random()
        unit = None

        if roll < 0.35:  # register/immediate ALU
            op = rng.choice(ALU_OPS)
            src = (
                f"#{imm(rng):#06x}" if rng.random() < 0.5
                else data_reg()
            )
            unit = FuzzUnit(
                orig, (f"{op} {src}, {data_reg()}",),
                alts=((f"mov #0x0000, {data_reg()}",),),
            )
        elif roll < 0.50:  # memory-source ALU
            op = rng.choice(ALU_OPS)
            src = mem_operand()
            dst = data_reg()
            unit = FuzzUnit(
                orig, (f"{op} {src}, {dst}",),
                alts=((f"{op} {data_reg()}, {dst}",),),
            )
        elif roll < 0.62:  # memory-destination ALU
            op = rng.choice(ALU_OPS)
            src = (
                f"#{imm(rng):#06x}" if rng.random() < 0.5
                else data_reg()
            )
            dst = (
                abs_addr() if rng.random() < 0.5
                else f"{2 * rng.randrange(16)}(r{pointer()})"
            )
            unit = FuzzUnit(
                orig, (f"{op} {src}, {dst}",),
                alts=((f"{op} {src}, {data_reg()}",),),
            )
        elif roll < 0.72:  # Format II shift/rotate/byte-swap/sign-extend
            op = rng.choice(SHIFT_OPS)
            operand = (
                data_reg() if rng.random() < 0.6 else mem_operand()
            )
            unit = FuzzUnit(
                orig, (f"{op} {operand}",),
                alts=((f"{op} {data_reg()}",),),
            )
        elif roll < 0.80 and not in_skip_region:  # stack traffic
            if open_pushes and rng.random() < 0.5:
                partner = open_pushes.pop()
                unit = FuzzUnit(
                    orig, (f"pop {data_reg()}",),
                    stack_delta=-1, partner=partner,
                )
                for pushed in units:
                    if pushed.orig == partner:
                        pushed.partner = orig
            else:
                src = (
                    data_reg() if rng.random() < 0.6
                    else f"#{imm(rng):#06x}"
                )
                unit = FuzzUnit(
                    orig, (f"push {src}",), stack_delta=1
                )
                open_pushes.append(orig)
        elif roll < 0.88:  # forward jump over a stack-neutral region
            skip = rng.randrange(1, 4)
            target = orig + 1 + skip
            cond = rng.choice(JUMPS)
            unit = FuzzUnit(
                orig, (f"{cond} {{target}}",), target=target
            )
            no_stack_until = max(no_stack_until, target)
        elif roll < 0.93:  # SR as destination: write wins over flags
            choice = rng.randrange(5)
            if choice == 0:
                text = f"mov #{rng.getrandbits(4):#06x}, sr"
            elif choice == 1:
                text = f"bis #{1 << rng.choice((0, 1, 2, 8)):#06x}, sr"
            elif choice == 2:
                text = f"bic #{1 << rng.choice((0, 1, 2, 8)):#06x}, sr"
            elif choice == 3:
                text = "clrc" if rng.random() < 0.5 else "setc"
            else:
                text = "rra sr"  # shift result lands in SR verbatim
            unit = FuzzUnit(orig, (text,), alts=(("clrc",),))
        elif roll < 0.97:  # hardware multiplier round-trip
            unit = FuzzUnit(
                orig,
                (
                    f"mov {data_reg()}, &{MPY:#06x}",
                    f"mov {data_reg()}, &{OP2:#06x}",
                    f"mov &{RESLO:#06x}, {data_reg()}",
                    f"mov &{RESHI:#06x}, {data_reg()}",
                ),
                alts=((f"mov #0x0000, {data_reg()}",),),
            )
        else:  # GPIO traffic
            if rng.random() < 0.5:
                unit = FuzzUnit(
                    orig, (f"mov &{P1IN:#06x}, {data_reg()}",)
                )
            else:
                unit = FuzzUnit(
                    orig,
                    (
                        f"mov {data_reg()}, &{P1OUT:#06x}",
                        f"mov &{P1OUT:#06x}, {data_reg()}",
                    ),
                )
        if unit is None:  # stack op rolled inside a skip region: retry
            continue
        units.append(unit)
        index += 1

    prologue = [
        "    .org 0xf000",
        "start:",
        "    mov #0x5a80, &0x0120    ; stop the watchdog",
    ]
    for reg, offset in POINTER_SEGMENTS.items():
        prologue.append(f"    mov #buf+{offset}, r{reg}")
    for reg in DATA_REGS:
        prologue.append(f"    mov #{imm(rng):#06x}, r{reg}")

    data_words = tuple(rng.getrandbits(16) for _ in range(BUF_WORDS))
    return FuzzProgram(
        seed=seed,
        units=units,
        prologue=tuple(prologue),
        data_words=data_words,
        port_in=rng.getrandbits(16),
        name=name or f"fuzz_{seed}",
    )


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign across one or more engines."""

    seed: int
    engines: tuple[str, ...]
    programs: int = 0
    units: int = 0  # generated instruction units (the campaign budget)
    divergences: list = field(default_factory=list)  # DivergenceReport

    @property
    def ok(self) -> bool:
        return not self.divergences


def fuzz_campaign(
    cpu,
    instructions: int,
    seed: int,
    engines: tuple[str, ...] | None = None,
    program_size: int = 40,
    do_shrink: bool = True,
    machine_factory=None,
    max_shrink_checks: int = 150,
    emit=None,
    cancel=None,
) -> FuzzReport:
    """Generate and co-execute programs until *instructions* units have
    been fuzzed on every engine, or a divergence is found (the campaign
    stops at the first one, shrunk to a minimal reproducer).

    *machine_factory* (``program -> Machine``) substitutes the gate-level
    machine under test — the hook the broken-engine tests use to inject
    mutations.  *cancel* is an optional
    :class:`~repro.parallel.cancel.CancelToken` checked between runs.
    """
    from repro.sim.bitplane import ENGINES, default_engine
    from repro.verify.coexec import DivergenceReport, coexecute
    from repro.verify.shrink import shrink_program

    engines = tuple(engines) if engines else (default_engine(),)
    for engine in engines:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
    report = FuzzReport(seed=seed, engines=engines)

    while report.units < instructions:
        program_seed = seed + 0x9E3779B1 * report.programs
        fuzz_program = generate_program(program_seed, size=program_size)
        program = fuzz_program.assemble()
        report.programs += 1
        report.units += len(fuzz_program.units)
        for engine in engines:
            if cancel is not None:
                cancel.check()
            machine = (
                machine_factory(program) if machine_factory else None
            )
            result = coexecute(
                cpu, program, engine=engine,
                port_in=fuzz_program.port_in, machine=machine,
            )
            if result.ok:
                continue
            if emit:
                emit(
                    "divergence",
                    f"{program.name} on {engine}: "
                    f"{result.divergence.detail}",
                )
            kept = fuzz_program.units
            checks = 0
            if do_shrink:
                kept, checks, result = shrink_program(
                    cpu, fuzz_program, engine,
                    machine_factory=machine_factory,
                    first_result=result,
                    max_checks=max_shrink_checks,
                )
            report.divergences.append(DivergenceReport(
                divergence=result.divergence,
                engine=engine,
                program_name=program.name,
                seed=program_seed,
                reproducer_asm=fuzz_program.render(kept),
                original_units=len(fuzz_program.units),
                shrunk_units=len(kept),
                shrink_checks=checks,
            ))
            return report
        if emit and report.programs % 5 == 0:
            emit(
                "fuzz",
                f"{report.units}/{instructions} units clean "
                f"({report.programs} programs, engines={engines})",
            )
    return report
