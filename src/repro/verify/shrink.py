"""Reproducer shrinking for diverging fuzz programs.

Three passes over the generated unit list, each bounded by a shared
re-run budget and each preserving the generator's validity invariants
(stack safety via push/pop partner closure, jump retargeting via the
renderer's next-surviving-label rule):

1. **Trim from the end** — binary search for the shortest prefix that
   still diverges (a prefix is always valid: pops only ever follow their
   pushes, and a push without its pop is harmless).
2. **Single-unit removal** — drop one unit at a time (removing a push or
   pop also removes its partner), iterated to a fixpoint.
3. **Operand simplification** — substitute each unit's pre-computed
   simpler variants (immediate → 0, memory operand → register, ...).

Every candidate is re-assembled and re-co-executed on the diverging
engine; a candidate is kept only if it still diverges, so the result is
always a genuine reproducer.
"""

from __future__ import annotations

from dataclasses import replace

from repro.asm.assembler import AssemblyError
from repro.verify.coexec import CoexecError, CoexecResult, coexecute
from repro.verify.fuzz import FuzzProgram, FuzzUnit


def shrink_program(
    cpu,
    fuzz_program: FuzzProgram,
    engine: str,
    machine_factory=None,
    first_result: CoexecResult | None = None,
    max_checks: int = 150,
    max_instructions: int = 5_000,
) -> tuple[list[FuzzUnit], int, CoexecResult]:
    """Shrink *fuzz_program* to a minimal unit list that still diverges.

    Returns ``(kept_units, checks_run, final_result)`` where
    *final_result* is the co-execution of the shrunk program (its
    divergence is the one worth reporting: same root cause, minimal
    context).  Never returns a non-diverging program: if no candidate
    reproduces, the original unit list and *first_result* come back.
    """
    checks = 0
    last_result: dict[int, CoexecResult] = {}

    def diverges(keep: list[FuzzUnit]) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        try:
            program = fuzz_program.assemble(
                keep, name=f"{fuzz_program.name}_shrink"
            )
            machine = (
                machine_factory(program) if machine_factory else None
            )
            result = coexecute(
                cpu, program, engine=engine,
                port_in=fuzz_program.port_in, machine=machine,
                max_instructions=max_instructions,
            )
        except (AssemblyError, CoexecError):
            return False
        if result.divergence is None:
            return False
        last_result[id(keep)] = result
        return True

    units = list(fuzz_program.units)

    # pass 1: shortest diverging prefix
    best = len(units)
    low = 1
    while low < best:
        mid = (low + best) // 2
        if diverges(units[:mid]):
            best = mid
        else:
            low = mid + 1
    keep = units[:best]

    # pass 2: single-unit removal (with push/pop partner closure)
    changed = True
    while changed and checks < max_checks:
        changed = False
        for position in range(len(keep) - 1, -1, -1):
            unit = keep[position]
            drop = {unit.orig}
            if unit.partner is not None:
                drop.add(unit.partner)
            candidate = [u for u in keep if u.orig not in drop]
            if candidate and diverges(candidate):
                keep = candidate
                changed = True

    # pass 3: operand simplification via the generator's alternatives
    for position, unit in enumerate(keep):
        for alt in unit.alts:
            candidate = list(keep)
            candidate[position] = replace(unit, lines=alt, alts=())
            if diverges(candidate):
                keep = candidate
                break

    # confirm the final reproducer (and get its divergence for the report)
    final = list(keep)
    if diverges(final):
        return final, checks, last_result[id(final)]
    # budget exhausted mid-pass or a flaky candidate: re-run whatever we
    # know still diverged, falling back to the original program
    checks += 1
    try:
        program = fuzz_program.assemble(keep)
        machine = machine_factory(program) if machine_factory else None
        result = coexecute(
            cpu, program, engine=engine,
            port_in=fuzz_program.port_in, machine=machine,
            max_instructions=max_instructions,
        )
        if result.divergence is not None:
            return keep, checks, result
    except (AssemblyError, CoexecError):
        pass
    if first_result is None:
        raise CoexecError(
            "shrink lost the divergence and no original result was kept"
        )
    return list(fuzz_program.units), checks, first_result
