"""Analysis service layer: store + scheduler + HTTP API.

The paper's output — an application-specific peak power/energy bound —
is computed once per application and then reused for harvester/battery
sizing and power-management decisions.  This package turns the engine of
PRs 1-4 into a long-lived query service with three layers:

* :mod:`repro.service.store` — a content-addressed artifact store that
  generalizes the ``.repro_cache`` pickle scheme into keyed, versioned,
  atomically-written artifacts with integrity digests, hit/miss
  counters, and a size-capped gc policy (``repro cache stats|gc``).
* :mod:`repro.service.scheduler` — an async job scheduler that accepts
  many concurrent analysis requests, dedupes identical in-flight jobs,
  orders them by priority, and multiplexes them over the host's core
  budget (jobs x inner workers <= cores, PR 4's non-oversubscription
  rule) with cancellation and per-job progress events.
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only HTTP/JSON API (``repro serve``) and client (``repro
  submit``) exposing submit/status/result/events/store endpoints, so
  sizing questions become cheap repeatable queries.
* :mod:`repro.service.journal` — a durable write-ahead log of job
  transitions; ``repro serve`` replays it on startup so queued and
  running jobs survive crashes and restarts.
* :mod:`repro.service.faults` — named, seedable fault-injection sites
  (``REPRO_FAULTS``) so the crash/hang/retry machinery is exercised by
  chaos tests, not just written.
* :mod:`repro.service.gateway` — the multi-tenant upload pipeline:
  arbitrary MSP430 assembly in (size-capped, schema- and
  assembly-validated), the same guaranteed bound as ``repro analyze``
  out, namespaced per tenant with result TTLs (authn/quotas live in
  :mod:`repro.tenancy`).
"""

from repro.service.faults import FaultInjected, FaultSpecError
from repro.service.gateway import UploadError, run_upload_job, validate_upload
from repro.service.journal import JobJournal, ReplayReport, recover_jobs
from repro.service.scheduler import Job, JobScheduler, UnknownJobError
from repro.service.store import ArtifactStore, GcReport, StoreStats
from repro.service.workers import (
    DeadlineExceeded,
    ProcessBackend,
    WorkerCrashed,
    WorkerError,
    WorkerHung,
    describe_exit,
)

__all__ = [
    "ArtifactStore",
    "GcReport",
    "StoreStats",
    "Job",
    "JobScheduler",
    "UnknownJobError",
    "JobJournal",
    "ReplayReport",
    "recover_jobs",
    "FaultInjected",
    "FaultSpecError",
    "ProcessBackend",
    "WorkerCrashed",
    "WorkerError",
    "WorkerHung",
    "DeadlineExceeded",
    "describe_exit",
    "UploadError",
    "validate_upload",
    "run_upload_job",
]
