"""Stdlib-only HTTP/JSON API over the scheduler and the artifact store.

Endpoints (all JSON)::

    GET    /healthz                      liveness + job counts
    GET    /v1/benchmarks                the Table 4.1 registry
    POST   /v1/jobs                      submit {kind, benchmark?, priority?, ...}
    GET    /v1/jobs                      list jobs (results elided)
    GET    /v1/jobs/<id>                 one job, result included when done
    GET    /v1/jobs/<id>/result?wait=1&timeout=N   block until terminal
    GET    /v1/jobs/<id>/events?since=N  incremental progress stream
    DELETE /v1/jobs/<id>                 cancel (queued: immediate)
    GET    /v1/store/stats               artifact-store stats + counters
    POST   /v1/store/gc                  {"max_mb": N} -> gc report

``repro serve`` wraps :func:`serve`; :mod:`repro.service.client` is the
matching client.  The server is a ``ThreadingHTTPServer`` so a blocked
``result?wait=1`` poll never starves other clients; the actual engine
concurrency is owned by the scheduler's slot budget, not by HTTP
threads.
"""

from __future__ import annotations

import json
import signal
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.service.journal import JOURNAL_NAME, JobJournal, recover_jobs
from repro.service.scheduler import (
    CANCELLED,
    FAILED,
    QUEUED,
    TERMINAL_STATES,
    JobScheduler,
    UnknownJobError,
)

#: default TCP port for ``repro serve`` / ``repro submit``
DEFAULT_PORT = 8437

#: cap on a single blocking result wait; clients poll past it
MAX_WAIT_S = 120.0


class AnalysisService:
    """The server-side bundle: one scheduler + the artifact store.

    When no *scheduler* is supplied, one is built on the **process**
    execution backend by default: each job runs in its own worker
    process, so an engine crash fails that one job (the server keeps
    serving) and DELETE on a running job actually stops it.
    *backend* ``"thread"`` restores the in-process executors (tests,
    single-shot scripting).
    """

    def __init__(
        self,
        scheduler: JobScheduler | None = None,
        store=None,
        max_jobs: int | None = None,
        workers_per_job: int | None = None,
        backend: str = "process",
        recover: bool = True,
        heartbeat_timeout: float | None = None,
        max_job_seconds: float | None = None,
        max_retries: int | None = None,
    ) -> None:
        self.started = time.time()
        self.recovered: dict = {"requeued": 0, "merged": 0, "skipped": 0}
        if scheduler is not None:
            self.scheduler = scheduler
            self._store = store
            return
        journal = None
        report = None
        if recover:
            from repro.bench import runner

            journal = JobJournal(Path(runner.CACHE_DIR) / JOURNAL_NAME)
            # replay BEFORE the scheduler exists, compact, then let the
            # resubmissions below re-append fresh submit records
            report = journal.replay()
            journal.compact()
        kwargs: dict = {}
        if max_retries is not None:
            kwargs["max_retries"] = max_retries
        self.scheduler = JobScheduler(
            max_concurrent=max_jobs,
            workers_per_job=workers_per_job,
            backend=backend,
            heartbeat_timeout=heartbeat_timeout,
            max_job_seconds=max_job_seconds,
            journal=journal,
            **kwargs,
        )
        self._store = store
        if report is not None:
            self.recovered = recover_jobs(self.scheduler, report)

    @property
    def store(self):
        """The artifact store (late-bound to the runner's active root,
        so a relocated cache dir is picked up without a restart)."""
        if self._store is not None:
            return self._store
        from repro.bench import runner

        return runner.artifact_store()

    def close(self) -> None:
        self.scheduler.shutdown()


class _HTTPError(Exception):
    def __init__(self, status: int, message: str, **extra) -> None:
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **extra}


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @staticmethod
    def _number(query: dict, key: str, default: float) -> float:
        """Parse a numeric query parameter; malformed input is the
        client's fault (400), not an internal error."""
        raw = query.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise _HTTPError(400, f"{key} must be a number, got {raw!r}") from None

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            raise _HTTPError(400, "request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        # Resolve the response first, then write it exactly once: the
        # write is guarded against the client hanging up mid-response
        # (long polls get abandoned all the time), which must not dump
        # tracebacks from handler threads or re-write to a dead socket.
        try:
            payload, status = self._route(method, parts, query)
        except _HTTPError as err:
            payload, status = err.payload, err.status
        except UnknownJobError as err:
            # only the scheduler's "no such job" is a 404; any other
            # KeyError is a genuine server bug and surfaces as a 500
            payload, status = {"error": str(err).strip("'\"")}, 404
        except Exception as err:  # pragma: no cover - defensive surface
            payload, status = {"error": f"internal error: {err}"}, 500
        try:
            self._send_json(payload, status)
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            self.close_connection = True

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # -- routes ---------------------------------------------------------

    def _route(
        self, method: str, parts: list[str], query: dict
    ) -> tuple[dict, int]:
        scheduler = self.service.scheduler
        if method == "GET" and parts == ["healthz"]:
            counts = scheduler.counts()
            return {
                "ok": True,
                "jobs": counts,
                "queue_depth": counts[QUEUED],
                "backend": scheduler.backend,
                "max_concurrent": scheduler.max_concurrent,
                "workers_per_job": scheduler.workers_per_job,
                "uptime_s": round(time.time() - self.service.started, 3),
                "recovered": self.service.recovered,
                "config": scheduler.config(),
            }, 200
        if parts[:1] != ["v1"]:
            raise _HTTPError(404, f"no such endpoint: {self.path}")
        parts = parts[1:]

        if method == "GET" and parts == ["benchmarks"]:
            from repro.bench.suite import ALL_BENCHMARKS

            return {
                "benchmarks": [
                    {
                        "name": b.name,
                        "category": b.category,
                        "description": b.description,
                    }
                    for b in ALL_BENCHMARKS.values()
                ]
            }, 200

        if parts[:1] == ["jobs"]:
            return self._route_jobs(method, parts[1:], query)
        if parts[:1] == ["store"]:
            return self._route_store(method, parts[1:])
        raise _HTTPError(404, f"no such endpoint: {self.path}")

    def _route_jobs(
        self, method: str, parts: list[str], query: dict
    ) -> tuple[dict, int]:
        scheduler = self.service.scheduler
        if method == "POST" and not parts:
            from repro.service.scheduler import _require_benchmark

            body = self._read_body()
            kind = body.pop("kind", "analyze")
            priority = body.pop("priority", 0)
            deadline_s = body.pop("deadline_s", None)
            if not isinstance(priority, int):
                raise _HTTPError(400, "priority must be an integer")
            if deadline_s is not None:
                if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
                    raise _HTTPError(400, "deadline_s must be a number > 0")
                deadline_s = float(deadline_s)
            try:
                if kind in ("analyze", "profile"):
                    _require_benchmark(body)  # fail fast: 400, not a job
                job, deduped = scheduler.submit(
                    kind, body, priority=priority, deadline_s=deadline_s
                )
            except (KeyError, ValueError) as err:
                # unknown kind / unknown benchmark / invalid knob values:
                # client error, with the valid names in the message
                raise _HTTPError(400, str(err).strip("'\"")) from None
            return {
                "job_id": job.id,
                "state": job.state,
                "deduped": deduped,
            }, 202
        if method == "GET" and not parts:
            return {
                "jobs": [
                    job.payload(include_result=False)
                    for job in scheduler.jobs()
                ]
            }, 200
        if not parts:
            raise _HTTPError(405, f"{method} not allowed on /v1/jobs")

        job = scheduler.get(parts[0])  # UnknownJobError -> 404
        if method == "GET" and len(parts) == 1:
            return job.payload(), 200
        if method == "DELETE" and len(parts) == 1:
            cancelled = scheduler.cancel(job.id)
            return {
                "job_id": job.id,
                "state": job.state,
                "cancelled": cancelled,
                "cancel_requested": job.cancel_requested,
            }, 200
        if method == "GET" and parts[1:] == ["result"]:
            if query.get("wait", "1") not in ("0", "false"):
                timeout = min(
                    self._number(query, "timeout", 30.0), MAX_WAIT_S
                )
                scheduler.wait(job.id, timeout=timeout)
            if job.state not in TERMINAL_STATES:
                return job.payload(include_result=False), 202
            if job.state == FAILED:
                raise _HTTPError(
                    500, f"job {job.id} failed: {job.error}",
                    job_id=job.id, state=FAILED,
                )
            if job.state == CANCELLED or job.result is None:
                raise _HTTPError(
                    409, f"job {job.id} was cancelled",
                    job_id=job.id, state=CANCELLED,
                )
            return job.payload(), 200
        if method == "GET" and parts[1:] == ["events"]:
            since = int(self._number(query, "since", 0))
            events = scheduler.events_since(job.id, since)
            return {
                "job_id": job.id,
                "state": job.state,
                "events": events,
                "next": events[-1]["seq"] + 1 if events else since,
            }, 200
        raise _HTTPError(404, f"no such endpoint: {self.path}")

    def _route_store(self, method: str, parts: list[str]) -> tuple[dict, int]:
        store = self.service.store
        if method == "GET" and parts == ["stats"]:
            return store.stats().to_dict(), 200
        if method == "POST" and parts == ["gc"]:
            body = self._read_body()
            max_mb = body.get("max_mb")
            if max_mb is not None and not isinstance(max_mb, (int, float)):
                raise _HTTPError(400, "max_mb must be a number")
            return store.gc(max_mb=max_mb).to_dict(), 200
        raise _HTTPError(404, f"no such endpoint: {self.path}")


def make_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server to *host*:*port* (0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    max_jobs: int | None = None,
    workers_per_job: int | None = None,
    verbose: bool = True,
    backend: str = "process",
    recover: bool = True,
    heartbeat_timeout: float | None = None,
    max_job_seconds: float | None = None,
    max_retries: int | None = None,
) -> int:
    """Run the analysis service until interrupted (the CLI entry).

    SIGTERM and Ctrl-C both take the graceful path: the scheduler's
    ``shutdown`` cancels running workers and — because a graceful drain
    writes no terminal journal records — queued and running jobs are
    requeued by the next ``repro serve`` in the same store directory.
    """
    service = AnalysisService(
        max_jobs=max_jobs,
        workers_per_job=workers_per_job,
        backend=backend,
        recover=recover,
        heartbeat_timeout=heartbeat_timeout,
        max_job_seconds=max_job_seconds,
        max_retries=max_retries,
    )
    server = make_server(service, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro service on http://{bound_host}:{bound_port} "
        f"({service.scheduler.max_concurrent} job slots x "
        f"{service.scheduler.workers_per_job} workers, "
        f"{service.scheduler.backend} backend, "
        f"store {service.store.root})",
        flush=True,
    )
    recovered = service.recovered
    if recovered.get("requeued") or recovered.get("merged"):
        print(
            f"recovered {recovered['requeued']} job(s) from the journal "
            f"({recovered['merged']} merged, {recovered['skipped']} skipped)",
            flush=True,
        )

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        # raising unwinds serve_forever on the main thread; calling
        # server.shutdown() here would deadlock (it joins the serving
        # loop we are interrupting)
        raise SystemExit(0)

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        service.close()
    return 0
