"""Stdlib-only HTTP/JSON API over the scheduler and the artifact store.

Endpoints (all JSON)::

    GET    /healthz                      liveness + job counts
    GET    /v1/benchmarks                the Table 4.1 registry
    POST   /v1/jobs                      submit {kind, benchmark?, priority?, ...}
    GET    /v1/jobs                      list jobs (results elided)
    GET    /v1/jobs/<id>                 one job, result included when done
    GET    /v1/jobs/<id>/result?wait=1&timeout=N   block until terminal
    GET    /v1/jobs/<id>/events?since=N  incremental progress stream
    DELETE /v1/jobs/<id>                 cancel (queued: immediate)
    POST   /v1/programs                  upload MSP430 assembly -> analyze job
    GET    /v1/programs/<pid>            the stored bound for an upload
    GET    /v1/store/stats               artifact-store stats + counters
    POST   /v1/store/gc                  {"max_mb": N} -> gc report

``repro serve`` wraps :func:`serve`; :mod:`repro.service.client` is the
matching client.  The server is a ``ThreadingHTTPServer`` so a blocked
``result?wait=1`` poll never starves other clients; the actual engine
concurrency is owned by the scheduler's slot budget, not by HTTP
threads.

**Multi-tenancy.**  With a keyring (``repro serve --keyring``), every
endpoint except ``/healthz`` requires an API key (``X-API-Key`` or
``Authorization: Bearer``); jobs are namespaced per tenant (a foreign
job id answers 404, never 403 — existence is not leaked), expensive
POSTs are token-bucket rate limited and concurrency-quota'd (429 with
an honest ``Retry-After``), and the store-maintenance endpoints are
admin-only.  Without a keyring the server behaves exactly as before:
fully open, no tenant bookkeeping.

**Error envelope.**  Every non-2xx body is ``{"error": <human
message>, "code": <machine code>, ...}``.  Unexpected failures answer
a fixed ``{"error": "internal server error", "code": "internal"}`` —
exception text, tracebacks, and filesystem paths never reach a
response body.
"""

from __future__ import annotations

import json
import signal
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.service.journal import JOURNAL_NAME, JobJournal, recover_jobs
from repro.service.scheduler import (
    CANCELLED,
    FAILED,
    QUEUED,
    TERMINAL_STATES,
    JobScheduler,
    UnknownJobError,
)
from repro.tenancy import JobQuota, Keyring, RateLimiter

#: default TCP port for ``repro serve`` / ``repro submit``
DEFAULT_PORT = 8437

#: cap on a single blocking result wait; clients poll past it
MAX_WAIT_S = 120.0

#: global request-body cap (any endpoint): bigger uploads are rejected
#: before the body is read, so a hostile payload can't balloon memory
MAX_BODY_BYTES = 1024 * 1024

#: default fallback error codes per HTTP status (call sites may override)
_DEFAULT_CODES = {
    400: "invalid_request",
    401: "unauthorized",
    403: "forbidden",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "too_large",
    422: "unprocessable",
    429: "rate_limited",
    500: "internal",
}


class AnalysisService:
    """The server-side bundle: one scheduler + the artifact store.

    When no *scheduler* is supplied, one is built on the **process**
    execution backend by default: each job runs in its own worker
    process, so an engine crash fails that one job (the server keeps
    serving) and DELETE on a running job actually stops it.
    *backend* ``"thread"`` restores the in-process executors (tests,
    single-shot scripting).

    *keyring* (a :class:`repro.tenancy.Keyring` or a path to one)
    switches on multi-tenancy: authn, per-tenant rate limits and job
    quotas, and tenant-namespaced jobs/artifacts.  ``None`` keeps the
    server fully open.
    """

    def __init__(
        self,
        scheduler: JobScheduler | None = None,
        store=None,
        max_jobs: int | None = None,
        workers_per_job: int | None = None,
        backend: str = "process",
        recover: bool = True,
        heartbeat_timeout: float | None = None,
        max_job_seconds: float | None = None,
        max_retries: int | None = None,
        keyring: Keyring | str | Path | None = None,
    ) -> None:
        self.started = time.time()
        self.recovered: dict = {"requeued": 0, "merged": 0, "skipped": 0}
        self.keyring = (
            keyring if keyring is None or isinstance(keyring, Keyring)
            else Keyring(keyring)
        )
        self.rate_limiter = RateLimiter()
        self.job_quota = JobQuota()
        if scheduler is not None:
            self.scheduler = scheduler
            self._store = store
            self._wire_quota_release()
            return
        journal = None
        report = None
        if recover:
            from repro.bench import runner

            journal = JobJournal(Path(runner.CACHE_DIR) / JOURNAL_NAME)
            # replay BEFORE the scheduler exists, compact, then let the
            # resubmissions below re-append fresh submit records
            report = journal.replay()
            journal.compact()
        kwargs: dict = {}
        if max_retries is not None:
            kwargs["max_retries"] = max_retries
        self.scheduler = JobScheduler(
            max_concurrent=max_jobs,
            workers_per_job=workers_per_job,
            backend=backend,
            heartbeat_timeout=heartbeat_timeout,
            max_job_seconds=max_job_seconds,
            journal=journal,
            **kwargs,
        )
        self._store = store
        self._wire_quota_release()
        if report is not None:
            self.recovered = recover_jobs(self.scheduler, report)
            for job in self.scheduler.jobs():
                if job.tenant is not None and job.state not in TERMINAL_STATES:
                    self.job_quota.note(job.tenant)

    def _wire_quota_release(self) -> None:
        """Release the owning tenant's concurrency-quota slot whenever
        one of its jobs reaches a terminal state."""

        def _on_terminal(job) -> None:
            if job.tenant is not None:
                self.job_quota.release(job.tenant)

        self.scheduler.on_terminal = _on_terminal

    @property
    def store(self):
        """The artifact store (late-bound to the runner's active root,
        so a relocated cache dir is picked up without a restart)."""
        if self._store is not None:
            return self._store
        from repro.bench import runner

        return runner.artifact_store()

    def close(self) -> None:
        self.scheduler.shutdown()


class _HTTPError(Exception):
    """One structured error response: status + envelope + headers.

    The envelope always carries a machine-readable ``code`` (defaulted
    per status, overridable per call site) next to the human message.
    """

    def __init__(
        self,
        status: int,
        message: str,
        code: str | None = None,
        headers: dict[str, str] | None = None,
        **extra,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})
        self.payload = {
            "error": message,
            "code": code or _DEFAULT_CODES.get(status, "error"),
            **extra,
        }


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------

    def _send_json(
        self,
        payload: dict,
        status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    @staticmethod
    def _number(query: dict, key: str, default: float) -> float:
        """Parse a numeric query parameter; malformed input is the
        client's fault (400), not an internal error."""
        raw = query.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise _HTTPError(400, f"{key} must be a number, got {raw!r}") from None

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        if length > MAX_BODY_BYTES:
            # reject before reading; the unread body makes the
            # connection unreusable, so close it after responding
            self.close_connection = True
            raise _HTTPError(
                413,
                f"request body is {length} bytes; the limit is "
                f"{MAX_BODY_BYTES}",
                limit_bytes=MAX_BODY_BYTES,
            )
        try:
            body = json.loads(self.rfile.read(length) or b"{}")
        except ValueError:
            raise _HTTPError(400, "request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        return body

    # -- authn/limits ---------------------------------------------------

    def _presented_key(self) -> str | None:
        key = self.headers.get("X-API-Key")
        if key:
            return key.strip()
        auth = self.headers.get("Authorization") or ""
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return None

    def _authenticate(self, parts: list[str]):
        """Resolve the requesting tenant, or raise 401.

        ``None`` on open servers (no keyring).  ``/healthz`` stays open
        even under tenancy — load balancers don't carry API keys.
        """
        keyring = self.service.keyring
        if keyring is None or parts[:1] == ["healthz"]:
            return None
        tenant = keyring.authenticate(self._presented_key())
        if tenant is None:
            raise _HTTPError(
                401,
                "a valid API key is required "
                "(X-API-Key or Authorization: Bearer)",
                headers={"WWW-Authenticate": "Bearer"},
            )
        return tenant

    def _check_rate(self, tenant) -> None:
        """Token-bucket admission for expensive POSTs (429 on refusal)."""
        if tenant is None:
            return
        decision = self.service.rate_limiter.check(tenant.id, tenant.quotas)
        if not decision.allowed:
            raise _HTTPError(
                429,
                f"rate limit exceeded; retry in {decision.retry_after_s}s",
                code="rate_limited",
                headers={"Retry-After": str(decision.retry_after_s)},
                retry_after_s=decision.retry_after_s,
            )

    def _acquire_quota(self, tenant) -> None:
        """Concurrent-job quota slot for one submission (429 on refusal)."""
        if tenant is None:
            return
        decision = self.service.job_quota.try_acquire(
            tenant.id, tenant.quotas
        )
        if not decision.allowed:
            raise _HTTPError(
                429,
                f"concurrent-job quota "
                f"({tenant.quotas.max_concurrent_jobs}) exhausted; "
                f"retry in {decision.retry_after_s}s",
                code="quota_exceeded",
                headers={"Retry-After": str(decision.retry_after_s)},
                retry_after_s=decision.retry_after_s,
            )

    def _release_quota(self, tenant) -> None:
        if tenant is not None:
            self.service.job_quota.release(tenant.id)

    def _visible_job(self, job, tenant) -> bool:
        """Tenant isolation: a job is visible to its owner, to admins,
        and to everyone on an open server."""
        if tenant is None or tenant.admin:
            return True
        return job.tenant == tenant.id

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = {
            key: values[-1] for key, values in parse_qs(parsed.query).items()
        }
        # Resolve the response first, then write it exactly once: the
        # write is guarded against the client hanging up mid-response
        # (long polls get abandoned all the time), which must not dump
        # tracebacks from handler threads or re-write to a dead socket.
        headers: dict[str, str] = {}
        try:
            tenant = self._authenticate(parts)
            payload, status = self._route(method, parts, query, tenant)
        except _HTTPError as err:
            payload, status, headers = err.payload, err.status, err.headers
        except UnknownJobError as err:
            # only the scheduler's "no such job" is a 404; any other
            # KeyError is a genuine server bug and surfaces as a 500
            payload, status = (
                {"error": str(err).strip("'\""), "code": "not_found"},
                404,
            )
        except Exception:  # pragma: no cover - defensive surface
            # deliberately opaque: exception text can carry store paths,
            # tenant ids, or other internals that must not leak
            payload, status = (
                {"error": "internal server error", "code": "internal"},
                500,
            )
        try:
            self._send_json(payload, status, headers=headers)
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            self.close_connection = True

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # -- routes ---------------------------------------------------------

    def _route(
        self, method: str, parts: list[str], query: dict, tenant=None
    ) -> tuple[dict, int]:
        scheduler = self.service.scheduler
        if method == "GET" and parts == ["healthz"]:
            counts = scheduler.counts()
            return {
                "ok": True,
                "jobs": counts,
                "queue_depth": counts[QUEUED],
                "backend": scheduler.backend,
                "max_concurrent": scheduler.max_concurrent,
                "workers_per_job": scheduler.workers_per_job,
                "uptime_s": round(time.time() - self.service.started, 3),
                "recovered": self.service.recovered,
                "tenancy": self.service.keyring is not None,
                "config": scheduler.config(),
            }, 200
        if parts[:1] != ["v1"]:
            raise _HTTPError(404, f"no such endpoint: {self.path}")
        parts = parts[1:]

        if method == "GET" and parts == ["benchmarks"]:
            from repro.bench.suite import ALL_BENCHMARKS

            return {
                "benchmarks": [
                    {
                        "name": b.name,
                        "category": b.category,
                        "description": b.description,
                    }
                    for b in ALL_BENCHMARKS.values()
                ]
            }, 200

        if parts[:1] == ["jobs"]:
            return self._route_jobs(method, parts[1:], query, tenant)
        if parts[:1] == ["programs"]:
            return self._route_programs(method, parts[1:], tenant)
        if parts[:1] == ["store"]:
            if tenant is not None and not tenant.admin:
                raise _HTTPError(
                    403, "store maintenance requires an admin key"
                )
            return self._route_store(method, parts[1:])
        raise _HTTPError(404, f"no such endpoint: {self.path}")

    def _route_jobs(
        self, method: str, parts: list[str], query: dict, tenant=None
    ) -> tuple[dict, int]:
        scheduler = self.service.scheduler
        if method == "POST" and not parts:
            from repro.service.scheduler import _require_benchmark

            body = self._read_body()
            kind = body.pop("kind", "analyze")
            priority = body.pop("priority", 0)
            deadline_s = body.pop("deadline_s", None)
            if not isinstance(priority, int):
                raise _HTTPError(400, "priority must be an integer")
            if deadline_s is not None:
                if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
                    raise _HTTPError(400, "deadline_s must be a number > 0")
                deadline_s = float(deadline_s)
            if kind == "upload":
                raise _HTTPError(
                    400,
                    "uploads go through POST /v1/programs "
                    "(size caps and source validation live there)",
                )
            self._check_rate(tenant)
            self._acquire_quota(tenant)
            try:
                if kind in ("analyze", "profile"):
                    _require_benchmark(body)  # fail fast: 400, not a job
                job, deduped = scheduler.submit(
                    kind, body, priority=priority, deadline_s=deadline_s,
                    tenant=tenant.id if tenant is not None else None,
                )
            except (KeyError, ValueError) as err:
                # unknown kind / unknown benchmark / invalid knob values:
                # client error, with the valid names in the message
                self._release_quota(tenant)
                raise _HTTPError(400, str(err).strip("'\"")) from None
            except BaseException:
                self._release_quota(tenant)
                raise
            if deduped:
                # joining an in-flight job holds no new scheduler slot
                self._release_quota(tenant)
            return {
                "job_id": job.id,
                "state": job.state,
                "deduped": deduped,
            }, 202
        if method == "GET" and not parts:
            return {
                "jobs": [
                    job.payload(include_result=False)
                    for job in scheduler.jobs()
                    if self._visible_job(job, tenant)
                ]
            }, 200
        if not parts:
            raise _HTTPError(405, f"{method} not allowed on /v1/jobs")

        job = scheduler.get(parts[0])  # UnknownJobError -> 404
        if not self._visible_job(job, tenant):
            # a foreign job id answers exactly like a nonexistent one:
            # 403 would confirm the id exists across the tenant boundary
            raise _HTTPError(404, f"unknown job {parts[0]!r}")
        if method == "GET" and len(parts) == 1:
            return job.payload(), 200
        if method == "DELETE" and len(parts) == 1:
            cancelled = scheduler.cancel(job.id)
            return {
                "job_id": job.id,
                "state": job.state,
                "cancelled": cancelled,
                "cancel_requested": job.cancel_requested,
            }, 200
        if method == "GET" and parts[1:] == ["result"]:
            if query.get("wait", "1") not in ("0", "false"):
                timeout = min(
                    self._number(query, "timeout", 30.0), MAX_WAIT_S
                )
                scheduler.wait(job.id, timeout=timeout)
            if job.state not in TERMINAL_STATES:
                return job.payload(include_result=False), 202
            if job.state == FAILED:
                from repro.service.gateway import job_error_code

                code = (
                    job_error_code(job.error) if job.kind == "upload"
                    else None
                )
                if code is not None:
                    # the uploaded program itself is at fault (bad
                    # assembly, tripped cycle budget, ...): that's the
                    # client's 422, not a server failure
                    raise _HTTPError(
                        422, f"job {job.id} failed: {job.error}",
                        code=code, job_id=job.id, state=FAILED,
                    )
                raise _HTTPError(
                    500, f"job {job.id} failed: {job.error}",
                    code="job_failed", job_id=job.id, state=FAILED,
                )
            if job.state == CANCELLED or job.result is None:
                raise _HTTPError(
                    409, f"job {job.id} was cancelled",
                    code="cancelled", job_id=job.id, state=CANCELLED,
                )
            return job.payload(), 200
        if method == "GET" and parts[1:] == ["events"]:
            since = int(self._number(query, "since", 0))
            events = scheduler.events_since(job.id, since)
            return {
                "job_id": job.id,
                "state": job.state,
                "events": events,
                "next": events[-1]["seq"] + 1 if events else since,
            }, 200
        raise _HTTPError(404, f"no such endpoint: {self.path}")

    def _route_programs(
        self, method: str, parts: list[str], tenant=None
    ) -> tuple[dict, int]:
        from repro.service import gateway

        scheduler = self.service.scheduler
        tenant_id = tenant.id if tenant is not None else None
        if method == "POST" and not parts:
            self._check_rate(tenant)
            body = self._read_body()
            max_source = (
                tenant.quotas.max_source_bytes if tenant is not None
                else gateway.MAX_SOURCE_BYTES_CAP
            )
            try:
                params = gateway.validate_upload(body, max_source)
            except gateway.UploadError as err:
                # rejected before submit: no scheduler or journal residue
                raise _HTTPError(
                    err.status, str(err), code=err.code, **err.extra
                ) from None
            if tenant is not None:
                params["tenant"] = tenant.id
                params["ttl_s"] = tenant.quotas.result_ttl_s
                deadline_s = tenant.quotas.max_job_seconds
            else:
                from repro.tenancy.keyring import DEFAULT_MAX_JOB_SECONDS

                # open servers still budget uploads: arbitrary source
                # must not occupy a slot forever
                deadline_s = DEFAULT_MAX_JOB_SECONDS
            self._acquire_quota(tenant)
            try:
                job, deduped = scheduler.submit(
                    "upload", params, deadline_s=deadline_s,
                    tenant=tenant_id,
                )
            except (KeyError, ValueError) as err:
                self._release_quota(tenant)
                raise _HTTPError(400, str(err).strip("'\"")) from None
            except BaseException:
                self._release_quota(tenant)
                raise
            if deduped:
                self._release_quota(tenant)
            return {
                "job_id": job.id,
                "program_id": params["program_id"],
                "state": job.state,
                "deduped": deduped,
            }, 202
        if method == "GET" and len(parts) == 1:
            key = gateway.store_key(tenant_id, parts[0])
            try:
                payload = self.service.store.get(key)
            except KeyError:
                raise _HTTPError(
                    404,
                    f"no stored result for program {parts[0]!r} "
                    "(never analyzed, or expired and collected)",
                ) from None
            if not isinstance(payload, dict):
                raise _HTTPError(
                    404, f"no stored result for program {parts[0]!r}"
                )
            return payload, 200
        raise _HTTPError(404, f"no such endpoint: {self.path}")

    def _route_store(self, method: str, parts: list[str]) -> tuple[dict, int]:
        store = self.service.store
        if method == "GET" and parts == ["stats"]:
            return store.stats().to_dict(), 200
        if method == "POST" and parts == ["gc"]:
            body = self._read_body()
            max_mb = body.get("max_mb")
            if max_mb is not None and not isinstance(max_mb, (int, float)):
                raise _HTTPError(400, "max_mb must be a number")
            return store.gc(max_mb=max_mb).to_dict(), 200
        raise _HTTPError(404, f"no such endpoint: {self.path}")


def make_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server to *host*:*port* (0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), ServiceRequestHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    max_jobs: int | None = None,
    workers_per_job: int | None = None,
    verbose: bool = True,
    backend: str = "process",
    recover: bool = True,
    heartbeat_timeout: float | None = None,
    max_job_seconds: float | None = None,
    max_retries: int | None = None,
    keyring: str | Path | None = None,
) -> int:
    """Run the analysis service until interrupted (the CLI entry).

    SIGTERM and Ctrl-C both take the graceful path: the scheduler's
    ``shutdown`` cancels running workers and — because a graceful drain
    writes no terminal journal records — queued and running jobs are
    requeued by the next ``repro serve`` in the same store directory.
    """
    service = AnalysisService(
        max_jobs=max_jobs,
        workers_per_job=workers_per_job,
        backend=backend,
        recover=recover,
        heartbeat_timeout=heartbeat_timeout,
        max_job_seconds=max_job_seconds,
        max_retries=max_retries,
        keyring=keyring,
    )
    server = make_server(service, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    tenancy = (
        f"{len(service.keyring.tenants())}-tenant keyring"
        if service.keyring is not None else "open (no keyring)"
    )
    print(
        f"repro service on http://{bound_host}:{bound_port} "
        f"({service.scheduler.max_concurrent} job slots x "
        f"{service.scheduler.workers_per_job} workers, "
        f"{service.scheduler.backend} backend, {tenancy}, "
        f"store {service.store.root})",
        flush=True,
    )
    recovered = service.recovered
    if recovered.get("requeued") or recovered.get("merged"):
        print(
            f"recovered {recovered['requeued']} job(s) from the journal "
            f"({recovered['merged']} merged, {recovered['skipped']} skipped)",
            flush=True,
        )

    def _on_sigterm(signum, frame):  # pragma: no cover - signal path
        # raising unwinds serve_forever on the main thread; calling
        # server.shutdown() here would deadlock (it joins the serving
        # loop we are interrupting)
        raise SystemExit(0)

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        service.close()
    return 0
