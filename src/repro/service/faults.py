"""Named, seedable fault-injection sites for chaos testing.

The robustness machinery — worker crash retries, the heartbeat
watchdog, journal-based crash recovery — is only trustworthy if its
failure paths are *exercised*, not just written.  This module plants
named fault sites at the seams where real faults strike::

    worker.start        the worker process, before the executor runs
    explore.batch       each pending-path drain iteration (Algorithm 1)
    peakpower.segment   each segment/parity pass (Algorithm 2)
    store.read          every artifact-store read
    store.write         every artifact-store publish

A site is a single cheap call — ``faults.hit("worker.start")`` — that
does nothing unless the ``REPRO_FAULTS`` environment variable names it.
Spawn-start worker processes inherit the environment, so one exported
spec arms the whole service stack, CI included.

Spec grammar (``;``-separated sites)::

    REPRO_FAULTS="<site>=<action>[:key=value[,key=value...]][;<site>=...]"

Actions:

``crash``   SIGKILL this process (a segfault/OOM stand-in — exercises
            the retryable :class:`~repro.service.workers.WorkerCrashed`
            path and the exit-code decoding).
``hang``    stop making progress: sleep without reaching another
            checkpoint, so only the heartbeat watchdog (or the kill
            backstop) ends it.  ``ms`` caps the hang for non-supervised
            contexts (default: forever).
``delay``   sleep ``ms`` milliseconds, then continue (slows a job down
            so tests can reliably catch it mid-flight).
``raise``   raise :class:`FaultInjected` (an ordinary executor
            exception — the *permanent* failure path).

Triggers (combinable; all must agree for the fault to fire):

``nth=N``         fire only on the Nth hit of this site in this process
``on_attempt=N``  fire only when the ambient job attempt is N (workers
                  call :func:`set_attempt`; retries get a fresh worker
                  process, so per-process hit counts cannot distinguish
                  attempts — this trigger can)
``p=0.25``        fire with probability p per eligible hit, from a
                  dedicated ``random.Random(seed)`` stream (``seed=S``,
                  default 0) so chaos runs replay deterministically

Examples::

    REPRO_FAULTS="worker.start=crash:on_attempt=1"      # retried crash
    REPRO_FAULTS="worker.start=hang:on_attempt=1"       # watchdog prey
    REPRO_FAULTS="explore.batch=delay:ms=200"           # slow-motion job
    REPRO_FAULTS="store.read=raise:p=0.5,seed=7"        # flaky store
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass

FAULTS_ENV = "REPRO_FAULTS"

ACTIONS = ("crash", "hang", "delay", "raise")

#: chunked sleep so a hang stays killable and honors its optional cap
_HANG_POLL_S = 0.25


class FaultInjected(RuntimeError):
    """The ``raise`` action fired at a fault site."""


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULTS`` spec (bad site/action/trigger)."""


@dataclass
class FaultRule:
    """One armed site, as parsed from the spec."""

    site: str
    action: str
    p: float = 1.0
    nth: int | None = None
    on_attempt: int | None = None
    ms: float | None = None
    seed: int = 0


def parse_spec(spec: str) -> dict[str, FaultRule]:
    """Parse a ``REPRO_FAULTS`` spec into per-site rules.

    Raises :class:`FaultSpecError` on malformed input — a chaos run
    with a typo'd spec must fail loudly, not silently inject nothing.
    """
    rules: dict[str, FaultRule] = {}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        site, sep, rest = clause.partition("=")
        site = site.strip()
        if not sep or not site:
            raise FaultSpecError(
                f"fault clause {clause!r} is not <site>=<action>[:k=v,...]"
            )
        action, _, params = rest.partition(":")
        action = action.strip()
        if action not in ACTIONS:
            valid = ", ".join(ACTIONS)
            raise FaultSpecError(
                f"unknown fault action {action!r} for site {site!r}; "
                f"valid actions: {valid}"
            )
        rule = FaultRule(site=site, action=action)
        for item in params.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep:
                raise FaultSpecError(
                    f"fault trigger {item!r} for site {site!r} is not key=value"
                )
            try:
                if key == "p":
                    rule.p = float(value)
                elif key == "nth":
                    rule.nth = int(value)
                elif key == "on_attempt":
                    rule.on_attempt = int(value)
                elif key == "ms":
                    rule.ms = float(value)
                elif key == "seed":
                    rule.seed = int(value)
                else:
                    raise FaultSpecError(
                        f"unknown fault trigger {key!r} for site {site!r}; "
                        f"valid triggers: p, nth, on_attempt, ms, seed"
                    )
            except ValueError as err:
                if isinstance(err, FaultSpecError):
                    raise
                raise FaultSpecError(
                    f"fault trigger {item!r} for site {site!r}: bad value"
                ) from None
        if not 0.0 <= rule.p <= 1.0:
            raise FaultSpecError(
                f"fault probability for site {site!r} must be in [0, 1], "
                f"got {rule.p}"
            )
        rules[site] = rule
    return rules


class _Plan:
    """The active spec plus per-process firing state (hit counters and
    one seeded RNG stream per site)."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self.rules = parse_spec(spec)
        self.hits: dict[str, int] = {}
        self.rngs = {
            site: random.Random(rule.seed)
            for site, rule in self.rules.items()
        }


_plan: _Plan | None = None
_attempt: int = 1


def set_attempt(attempt: int) -> None:
    """Set the ambient job attempt (worker processes call this on entry)
    so ``on_attempt=N`` triggers can target a specific retry."""
    global _attempt
    _attempt = attempt


def active_spec() -> str:
    """The raw ``REPRO_FAULTS`` value ('' when chaos is off)."""
    return os.environ.get(FAULTS_ENV, "")


def hit(site: str) -> None:
    """Pass through a named fault site.

    Free when ``REPRO_FAULTS`` is unset.  When the active spec arms
    *site*, evaluate its triggers and fire the action.  The plan (hit
    counters, RNG streams) is cached per spec string, so flipping the
    environment variable re-arms cleanly mid-process (tests) while
    steady-state calls stay cheap.
    """
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return
    global _plan
    plan = _plan
    if plan is None or plan.spec != spec:
        plan = _plan = _Plan(spec)
    rule = plan.rules.get(site)
    if rule is None:
        return
    plan.hits[site] = count = plan.hits.get(site, 0) + 1
    if rule.on_attempt is not None and _attempt != rule.on_attempt:
        return
    if rule.nth is not None and count != rule.nth:
        return
    if rule.p < 1.0 and plan.rngs[site].random() >= rule.p:
        return
    _fire(rule)


def _fire(rule: FaultRule) -> None:
    if rule.action == "crash":
        # indistinguishable from a segfault/OOM kill: no cleanup, no
        # terminal pipe message, exit code -SIGKILL
        os.kill(os.getpid(), signal.SIGKILL)
    elif rule.action == "hang":
        deadline = (
            time.monotonic() + rule.ms / 1000.0 if rule.ms is not None
            else None
        )
        while deadline is None or time.monotonic() < deadline:
            time.sleep(_HANG_POLL_S)
    elif rule.action == "delay":
        time.sleep((rule.ms if rule.ms is not None else 100.0) / 1000.0)
    else:  # raise
        raise FaultInjected(f"injected fault at site {rule.site!r}")
