"""Durable job journal: crash recovery for the analysis service.

The scheduler's state lives in memory, so without a journal a ``repro
serve`` restart (deploy, OOM, ``kill -9``) silently drops every queued
and running job.  This module is the write-ahead log that closes that
hole: an **append-only JSONL** file in the store directory recording
each job's lifecycle transitions —

    {"op": "submit",   "job_id", "kind", "params", "priority",
                       "deadline_s", "ts"}
    {"op": "start",    "job_id", "attempt", "ts"}
    {"op": "retry",    "job_id", "attempt", "ts"}
    {"op": "terminal", "job_id", "state", "error", "ts"}

— one JSON object per line, fsynced per append (transitions are rare;
progress *events* are deliberately not journaled).  On startup ``repro
serve`` replays the journal and requeues every job with no terminal
record: jobs that were QUEUED, and jobs orphaned mid-RUNNING by the
crash.  Requeued jobs keep their job ids (clients polling across the
restart keep working) and resolve through the artifact store — so a job
whose artifact was already published completes instantly, and one
killed mid-compute recomputes to a bit-identical result.

Robustness of the log itself:

* a crash mid-append can only tear the **last** line; replay ignores
  any line that fails to parse (and counts it);
* unknown ops and unknown job ids are skipped, so a newer server can
  replay an older journal;
* replay is followed by :meth:`JobJournal.compact` — the file is
  atomically truncated and the resubmitted pending jobs immediately
  re-append fresh ``submit`` records, so the journal stays bounded by
  the live job population instead of growing forever.

A *graceful* shutdown deliberately does **not** write terminal records
for the jobs it interrupts (see ``JobScheduler.shutdown``): to the
journal a drain looks exactly like a crash, so queued and running work
survives planned restarts too.  Only genuine terminals — done, failed,
user-cancelled — retire a job from the log.

Two pending jobs that share a dedupe signature collapse onto one job on
recovery (the second requeue merges, exactly like a live duplicate
submission); the collapsed id is gone after the restart, which mirrors
what the scheduler would have done had the two arrived live.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

#: journal file name inside the store directory
JOURNAL_NAME = "jobs.journal.jsonl"


@dataclass
class PendingJob:
    """A journaled job with no terminal record — requeue it."""

    job_id: str
    kind: str
    params: dict
    priority: int = 0
    deadline_s: float | None = None
    #: owning tenant id (None: pre-tenancy record or open server)
    tenant: str | None = None
    #: "queued" or "running" at crash time (running = orphaned worker)
    last_state: str = "queued"
    #: highest attempt journaled (informational; recovery resets to 1)
    attempts: int = 1


@dataclass
class ReplayReport:
    """What a replay pass found."""

    pending: list[PendingJob] = field(default_factory=list)
    n_records: int = 0
    n_terminal: int = 0
    n_torn: int = 0


class JobJournal:
    """Append-only JSONL write-ahead log of job transitions.

    Thread-safe: appends serialize on an internal lock (the scheduler
    journals from its dispatcher, job threads, and the submit path).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    # -- writing --------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (fsync before returning, so a
        crash immediately after a transition cannot lose it)."""
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())

    def record_submit(
        self,
        job_id: str,
        kind: str,
        params: dict,
        priority: int = 0,
        deadline_s: float | None = None,
        tenant: str | None = None,
    ) -> None:
        record = {
            "op": "submit",
            "job_id": job_id,
            "kind": kind,
            "params": params,
            "priority": priority,
            "deadline_s": deadline_s,
            "ts": time.time(),
        }
        if tenant is not None:
            record["tenant"] = tenant
        self.append(record)

    def record_start(self, job_id: str, attempt: int = 1) -> None:
        self.append(
            {"op": "start", "job_id": job_id, "attempt": attempt,
             "ts": time.time()}
        )

    def record_retry(self, job_id: str, attempt: int) -> None:
        self.append(
            {"op": "retry", "job_id": job_id, "attempt": attempt,
             "ts": time.time()}
        )

    def record_terminal(
        self, job_id: str, state: str, error: str | None = None
    ) -> None:
        self.append(
            {"op": "terminal", "job_id": job_id, "state": state,
             "error": error, "ts": time.time()}
        )

    # -- replay ---------------------------------------------------------

    def replay(self) -> ReplayReport:
        """Read the journal and classify every job.

        Jobs with a ``submit`` record and no ``terminal`` record are
        pending: ``last_state`` distinguishes never-started (queued)
        from orphaned-running.  Torn lines (crash mid-append) and
        unknown ops are skipped, not fatal.
        """
        report = ReplayReport()
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return report
        submitted: dict[str, PendingJob] = {}
        terminal: set[str] = set()
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                report.n_torn += 1
                continue
            if not isinstance(record, dict):
                report.n_torn += 1
                continue
            report.n_records += 1
            op = record.get("op")
            job_id = record.get("job_id")
            if not isinstance(job_id, str):
                continue
            if op == "submit":
                params = record.get("params")
                deadline = record.get("deadline_s")
                tenant = record.get("tenant")
                submitted[job_id] = PendingJob(
                    job_id=job_id,
                    kind=str(record.get("kind", "")),
                    params=params if isinstance(params, dict) else {},
                    priority=int(record.get("priority", 0) or 0),
                    deadline_s=(
                        float(deadline) if deadline is not None else None
                    ),
                    tenant=tenant if isinstance(tenant, str) else None,
                )
            elif op in ("start", "retry"):
                pending = submitted.get(job_id)
                if pending is not None:
                    pending.last_state = "running"
                    pending.attempts = max(
                        pending.attempts, int(record.get("attempt", 1) or 1)
                    )
            elif op == "terminal":
                terminal.add(job_id)
        report.n_terminal = len(terminal)
        report.pending = [
            job for job_id, job in submitted.items() if job_id not in terminal
        ]
        return report

    def compact(self) -> None:
        """Atomically truncate the journal (called right after replay;
        the requeued jobs re-append fresh ``submit`` records, so the log
        is reborn holding exactly the live population)."""
        with self._lock:
            if not self.path.exists():
                return
            scratch = self.path.with_name(
                f"{self.path.name}.tmp{os.getpid()}"
            )
            try:
                scratch.write_bytes(b"")
                os.replace(scratch, self.path)
            except BaseException:
                try:
                    scratch.unlink()
                except OSError:
                    pass
                raise


def recover_jobs(scheduler, report: ReplayReport) -> dict:
    """Requeue a replay's pending jobs into *scheduler*.

    Preserves job ids (``recover_id``), priorities, and per-job
    deadlines.  Jobs whose kind the scheduler no longer knows are
    skipped (a journal written by a differently-configured server must
    not wedge startup).  Returns a summary dict for ``/healthz`` and
    the serve banner.
    """
    requeued = merged = skipped = 0
    for pending in report.pending:
        try:
            job, deduped = scheduler.submit(
                pending.kind,
                pending.params,
                priority=pending.priority,
                deadline_s=pending.deadline_s,
                recover_id=pending.job_id,
                tenant=pending.tenant,
            )
        except (KeyError, ValueError):
            skipped += 1
            continue
        if deduped:
            merged += 1
        else:
            requeued += 1
            scheduler._emit(
                job,
                "recovered",
                f"requeued from journal after restart "
                f"(was {pending.last_state})",
            )
    return {
        "requeued": requeued,
        "merged": merged,
        "skipped": skipped,
        "torn_lines": report.n_torn,
    }
