"""Async job scheduler for concurrent analysis requests.

Many clients asking the same sizing questions at once is the service's
whole workload, so the scheduler is built around three rules:

* **In-flight dedupe** — two requests with the same canonical signature
  (kind + params, priority excluded) share one :class:`Job` while it is
  queued or running; the engine runs once and every waiter gets the
  same result.  Completed jobs do not dedupe: a resubmission becomes a
  new job that resolves instantly through the artifact store.
* **Priority queue** — jobs wait in a max-priority heap (FIFO within a
  priority); a freed slot always goes to the highest-priority request.
* **Core budget** — at most ``max_concurrent`` jobs run at once, each
  with ``inner`` engine workers, such that ``max_concurrent * inner``
  never exceeds the host's cores (PR 4's non-oversubscription rule,
  via :func:`repro.parallel.pool.service_slots` /
  :func:`repro.parallel.pool.inner_workers`).

Jobs emit progress events (``queued``/``deduped``/``started``/
``finished``/...) that the HTTP layer streams incrementally, and jobs
can be cancelled: queued jobs die immediately, and running jobs are
interrupted for real — the cancel token trips the engine's cooperative
checkpoints (:mod:`repro.parallel.cancel`), with the process backend's
worker kill as the backstop.

Two execution backends share the same state machine:

* ``backend="thread"`` (the default for a raw ``JobScheduler``) runs
  executors on scheduler threads inside this process — zero setup cost,
  in-process store counters, and arbitrary (even unpicklable) executor
  callables, which is what the test suite wants.  Cancellation of a
  running job is cooperative-only here.
* ``backend="process"`` (the default for the HTTP service) runs each
  job in a **spawn-start worker process**
  (:class:`repro.service.workers.ProcessBackend`): an engine crash
  fails one job instead of the server, cancellation has a worker-kill
  backstop, and the engine's fork-start pools are created from the
  single-threaded worker instead of this multithreaded process — which
  retires the Python 3.12+ fork-in-threads hazard this docstring used
  to have to admit.

Progress events, the jobs × inner-workers core budget, in-flight
dedupe, and bit-identical results are backend-independent.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable

from repro.parallel.cancel import CancelToken, JobCancelled

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: states in which a job no longer dedupes and no longer changes
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: terminal jobs retained for status/result queries before the oldest
#: are evicted — bounds a long-lived server's memory
MAX_FINISHED_JOBS = 512

#: default retry budget for retryable failures (worker crashes and
#: watchdog kills): up to 1 + MAX_RETRIES attempts per job
DEFAULT_MAX_RETRIES = 2

#: exponential-backoff base and cap between retry attempts
DEFAULT_RETRY_BACKOFF_S = 0.5
DEFAULT_RETRY_BACKOFF_CAP_S = 30.0


class UnknownJobError(KeyError):
    """Lookup of a job id the scheduler does not know.

    A :class:`KeyError` subclass so callers may keep catching
    ``KeyError``, but distinct enough that the HTTP layer can map *this*
    to 404 without masking genuine server-side ``KeyError`` bugs as
    "not found".
    """


def normalize_params(kind: str, params: dict) -> dict:
    """Resolve defaulted knobs before signing, so requests that spell
    the same engine run differently (omitted vs explicit defaults)
    dedupe onto one job instead of running twice."""
    params = dict(params)
    if kind == "stressmark":
        from repro.core.stressmark import resolve_island_knobs

        params.setdefault("objective", "peak")
        params["islands"], params["migration_interval"] = (
            resolve_island_knobs(
                params.get("islands"), params.get("migration_interval")
            )
        )
    if kind in ("analyze", "profile"):
        from repro.sim.bitplane import ENGINES, default_engine

        engine = params.get("engine")
        if engine is None:
            # resolve the server-side default so "omitted" and "explicit
            # default" sign identically and dedupe onto one job
            params["engine"] = default_engine()
        elif engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
    if kind == "conformance":
        from repro.sim.bitplane import ENGINES

        engine = params.get("engine")
        if engine is not None and engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        params["engine"] = engine  # None signs as "all engines"
        benchmarks = params.get("benchmarks")
        if benchmarks is not None:
            if isinstance(benchmarks, str):
                benchmarks = [
                    name.strip() for name in benchmarks.split(",")
                    if name.strip()
                ]
            from repro.bench.suite import ALL_BENCHMARKS

            unknown = [n for n in benchmarks if n not in ALL_BENCHMARKS]
            if unknown:
                valid = ", ".join(sorted(ALL_BENCHMARKS))
                raise KeyError(
                    f"unknown benchmark"
                    f"{'s' if len(unknown) > 1 else ''} "
                    f"{', '.join(map(repr, unknown))}; "
                    f"valid names: {valid}"
                )
            params["benchmarks"] = list(benchmarks)
        else:
            params["benchmarks"] = None
        fuzz = params.get("fuzz", 0) or 0
        if not isinstance(fuzz, int) or fuzz < 0:
            raise ValueError("fuzz must be an integer >= 0")
        params["fuzz"] = fuzz
        params["seed"] = int(params.get("seed", 2017))
    if kind == "upload":
        from repro.service.gateway import normalize_upload_params

        params = normalize_upload_params(params)
    return params


def job_signature(kind: str, params: dict, tenant: str | None = None) -> str:
    """Canonical dedupe signature: kind + sorted params, priority excluded
    (a high-priority duplicate should join the in-flight run, not fork
    a second one).  The owning tenant is part of the signature — two
    tenants uploading identical source must get distinct jobs, or one
    would learn the other's job id through the dedup echo."""
    payload = {"kind": kind, "params": params}
    if tenant is not None:
        payload["tenant"] = tenant
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )


@dataclass
class Job:
    """One analysis request and its lifecycle."""

    id: str
    kind: str
    params: dict
    priority: int
    signature: str
    state: str = QUEUED
    result: dict | None = None
    error: str | None = None
    merged: int = 0  # duplicate submissions folded into this job
    attempt: int = 1  # current/last execution attempt (retries bump it)
    deadline_s: float | None = None  # per-job wall-clock budget
    deadline_hit: bool = False  # the thread backend's deadline timer fired
    recovered: bool = False  # requeued from the journal after a restart
    tenant: str | None = None  # owning tenant id (None on open servers)
    cancel_requested: bool = False
    #: trips the engine's cooperative checkpoints (and, on the process
    #: backend, arms the worker-kill backstop)
    cancel_token: CancelToken = field(
        default_factory=CancelToken, repr=False
    )
    created: float = field(default_factory=time.time)
    finished: float | None = None
    events: list[dict] = field(default_factory=list)
    done_event: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    @property
    def finished_ok(self) -> bool:
        return self.state == DONE

    def payload(self, include_result: bool = True) -> dict:
        """JSON view of the job for the HTTP layer."""
        data = {
            "job_id": self.id,
            "kind": self.kind,
            "params": self.params,
            "priority": self.priority,
            "state": self.state,
            "merged": self.merged,
            "attempt": self.attempt,
            "created": self.created,
            "finished": self.finished,
            "n_events": len(self.events),
        }
        if self.deadline_s is not None:
            data["deadline_s"] = self.deadline_s
        if self.recovered:
            data["recovered"] = True
        if self.tenant is not None:
            data["tenant"] = self.tenant
        if self.error is not None:
            data["error"] = self.error
        if include_result and self.result is not None:
            data["result"] = self.result
        return data


@dataclass
class JobContext:
    """What an executor sees of its job: progress + budget + cancel."""

    scheduler: "JobScheduler"
    job: Job
    workers: int  # inner engine workers this job may use

    def emit(self, stage: str, detail: str = "") -> None:
        self.scheduler._emit(self.job, stage, detail)

    def cancelled(self) -> bool:
        return self.job.cancel_requested

    @property
    def cancel(self) -> CancelToken:
        """The job's cancel token, for threading into engine loops."""
        return self.job.cancel_token

    def check_cancelled(self) -> None:
        self.job.cancel_token.check()


Executor = Callable[[dict, JobContext], dict]


class JobScheduler:
    """Priority scheduler multiplexing jobs over the host's cores.

    *max_concurrent* ``None`` derives the slot count from the core
    budget (``cores // inner``); an explicit value is honored verbatim
    (the caller owns the trade-off) with the inner worker count clamped
    so ``slots * inner`` still fits the host, exactly like
    ``run_suite(jobs=, workers=)``.  *executors* maps job kinds to
    callables ``(params, ctx) -> result dict``; the default set runs
    the store-backed benchmark pipeline (see :func:`default_executors`).

    *backend* selects where executors run: ``"thread"`` (scheduler
    threads in this process, the default) or ``"process"`` (one
    spawn-start worker process per job — crash isolation and a
    worker-kill cancellation backstop, see
    :mod:`repro.service.workers`).  The process backend takes an
    *executor_factory* — a picklable zero-argument callable rebuilding
    the executor table inside the worker — instead of an *executors*
    dict (whose callables would have to cross the process boundary);
    *kill_grace* is the seconds a cancelled worker gets to reach a
    cooperative checkpoint before its process group is SIGKILLed.
    """

    def __init__(
        self,
        max_concurrent: int | None = None,
        workers_per_job: int | None = None,
        executors: dict[str, Executor] | None = None,
        max_finished_jobs: int = MAX_FINISHED_JOBS,
        backend: str = "thread",
        executor_factory: Callable[[], dict[str, Executor]] | None = None,
        kill_grace: float | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        retry_backoff_cap_s: float = DEFAULT_RETRY_BACKOFF_CAP_S,
        heartbeat_timeout: float | None = None,
        max_job_seconds: float | None = None,
        journal=None,
    ) -> None:
        from repro.parallel.pool import inner_workers, service_slots

        if max_concurrent is None:
            self.max_concurrent, self.workers_per_job = service_slots(
                workers_per_job=workers_per_job
            )
        else:
            if max_concurrent < 1:
                message = f"max_concurrent must be >= 1, got {max_concurrent}"
                raise ValueError(message)
            self.max_concurrent = max_concurrent
            self.workers_per_job = inner_workers(max_concurrent, workers_per_job)
        if backend not in ("thread", "process"):
            message = f"unknown backend {backend!r}; valid: thread, process"
            raise ValueError(message)
        if executors is not None and backend == "process":
            raise ValueError(
                "the process backend needs a picklable executor_factory, "
                "not an executors dict"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.backend = backend
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s
        self.heartbeat_timeout = heartbeat_timeout
        self.max_job_seconds = max_job_seconds
        self.journal = journal
        self._executor_factory = (
            executor_factory if executor_factory is not None
            else default_executors
        )
        self.executors = (
            dict(executors) if executors is not None
            else self._executor_factory()
        )
        self._backend_impl = None
        if backend == "process":
            from repro.service.workers import (
                DEFAULT_KILL_GRACE_S,
                ProcessBackend,
            )

            self._backend_impl = ProcessBackend(
                kill_grace=(
                    kill_grace if kill_grace is not None
                    else DEFAULT_KILL_GRACE_S
                ),
                heartbeat_timeout=heartbeat_timeout,
                max_job_seconds=max_job_seconds,
            )
        self.max_finished_jobs = max_finished_jobs
        self._cond = threading.Condition()
        self._queue: list[tuple[int, int, Job]] = []  # (-priority, seq, job)
        self._finished_order: list[str] = []  # eviction FIFO
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}  # signature -> queued/running job
        self._running = 0
        self._seq = 0
        self._stop = False
        self._workers: set[threading.Thread] = set()
        #: optional ``(job) -> None`` hook fired once per job as it
        #: reaches a terminal state (the gateway releases the owning
        #: tenant's concurrency quota here); called with the scheduler
        #: lock held, so it must not call back into the scheduler
        self.on_terminal: Callable[[Job], None] | None = None
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-scheduler", daemon=True
        )
        self._dispatcher.start()

    # -- public API -----------------------------------------------------

    def submit(
        self,
        kind: str,
        params: dict | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
        recover_id: str | None = None,
        tenant: str | None = None,
    ) -> tuple[Job, bool]:
        """Enqueue a request; return ``(job, deduped)``.

        *deduped* is true when an identical request was already in
        flight and this submission joined it instead of creating a new
        job.  *deadline_s* is an optional per-job wall-clock budget
        (excluded from the dedupe signature; a duplicate's tighter
        deadline transfers to the shared job).  *recover_id* reuses a
        journaled job id on crash recovery so clients polling across a
        restart keep working.  *tenant* scopes the job (and its dedupe
        signature) to one authenticated principal; it survives journal
        replay.
        """
        if kind not in self.executors:
            known = ", ".join(sorted(self.executors))
            raise KeyError(f"unknown job kind {kind!r}; valid kinds: {known}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        params = normalize_params(kind, params or {})
        signature = job_signature(kind, params, tenant=tenant)
        with self._cond:
            if self._stop:
                raise RuntimeError("scheduler is shut down")
            existing = self._inflight.get(signature)
            if existing is not None and existing.state not in TERMINAL_STATES:
                existing.merged += 1
                self._emit_locked(
                    existing, "deduped",
                    f"identical request joined in-flight job ({existing.merged} merged)",
                )
                if deadline_s is not None and (
                    existing.deadline_s is None
                    or deadline_s < existing.deadline_s
                ):
                    existing.deadline_s = deadline_s
                if existing.state == QUEUED and priority > existing.priority:
                    # the joined waiter's urgency transfers to the shared
                    # job: re-push at the higher priority (the stale heap
                    # entry is skipped when popped — state check below)
                    existing.priority = priority
                    self._seq += 1
                    heapq.heappush(
                        self._queue, (-priority, self._seq, existing)
                    )
                    self._emit_locked(
                        existing, "priority_raised", f"to {priority}"
                    )
                    self._cond.notify_all()
                return existing, True
            if recover_id is not None:
                if recover_id in self._jobs:
                    raise ValueError(f"job id {recover_id!r} already exists")
                # keep fresh ids monotonic past every recovered one
                tail = recover_id.rsplit("-", 1)[-1]
                if tail.isdigit():
                    self._seq = max(self._seq, int(tail))
            self._seq += 1
            job = Job(
                id=recover_id if recover_id is not None else f"job-{self._seq:05d}",
                kind=kind,
                params=params,
                priority=priority,
                signature=signature,
                deadline_s=deadline_s,
                recovered=recover_id is not None,
                tenant=tenant,
            )
            self._jobs[job.id] = job
            self._inflight[signature] = job
            heapq.heappush(self._queue, (-priority, self._seq, job))
            self._emit_locked(job, "queued", f"priority {priority}")
            if self.journal is not None:
                self.journal.record_submit(
                    job.id, kind, params,
                    priority=priority, deadline_s=deadline_s, tenant=tenant,
                )
            self._cond.notify_all()
        return job, False

    def get(self, job_id: str) -> Job:
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(f"unknown job {job_id!r}") from None

    def jobs(self) -> list[Job]:
        with self._cond:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (or timeout)."""
        return self.get(job_id).done_event.wait(timeout)

    def events_since(self, job_id: str, since: int = 0) -> list[dict]:
        """Progress events with sequence numbers >= *since* (the
        streaming contract: poll with the last ``next`` cursor)."""
        job = self.get(job_id)
        with self._cond:
            return [event for event in job.events if event["seq"] >= since]

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.  Queued jobs die immediately (returns True) —
        unless other submissions were deduped onto them, in which case
        one waiter is peeled off and the shared job survives (returns
        False).  Running jobs are cancelled asynchronously (returns
        False, the job reaches CANCELLED shortly after): the cancel
        token trips the engine's cooperative checkpoints, and on the
        process backend the worker is killed if it misses the grace
        window.  Terminal jobs are left untouched (returns False)."""
        job = self.get(job_id)
        with self._cond:
            if job.state == QUEUED:
                if job.merged > 0:
                    job.merged -= 1
                    self._emit_locked(
                        job, "cancel_merged",
                        f"one waiter cancelled, {job.merged + 1} remain",
                    )
                    return False
                job.cancel_requested = True
                job.cancel_token.set()
                self._finish_locked(job, CANCELLED, error="cancelled while queued")
                return True
            if job.state == RUNNING:
                job.cancel_requested = True
                job.cancel_token.set()
                detail = (
                    "cooperative checkpoint + worker kill backstop"
                    if self._backend_impl is not None
                    else "cooperative checkpoints only (thread backend)"
                )
                self._emit_locked(job, "cancel_requested", detail)
                return False
            return False

    def shutdown(self, wait: bool = True, timeout: float | None = 10.0) -> None:
        """Stop dispatching, cancel everything queued, join workers.

        Running jobs get their cancel token set so engine checkpoints
        (and, on the process backend, the worker monitors) wind down
        instead of running to completion unattended."""
        with self._cond:
            self._stop = True
            for _, _, job in self._queue:
                if job.state == QUEUED:
                    self._finish_locked(
                        job, CANCELLED, error="scheduler shut down"
                    )
            self._queue.clear()
            for job in self._jobs.values():
                if job.state == RUNNING:
                    job.cancel_token.set()
            self._cond.notify_all()
            workers = list(self._workers)
        self._dispatcher.join(timeout)
        if wait:
            for worker in workers:
                worker.join(timeout)

    def counts(self) -> dict[str, int]:
        with self._cond:
            counts = {
                QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0, CANCELLED: 0
            }
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def config(self) -> dict:
        """Static supervision configuration, surfaced by ``/healthz``."""
        kill_grace = (
            self._backend_impl.kill_grace
            if self._backend_impl is not None else None
        )
        return {
            "backend": self.backend,
            "max_concurrent": self.max_concurrent,
            "workers_per_job": self.workers_per_job,
            "max_retries": self.max_retries,
            "retry_backoff_s": self.retry_backoff_s,
            "heartbeat_timeout_s": self.heartbeat_timeout,
            "max_job_seconds": self.max_job_seconds,
            "kill_grace_s": kill_grace,
            # file name only: /healthz may be reachable unauthenticated
            # and must not leak the store's filesystem layout
            "journal": (
                self.journal.path.name if self.journal is not None else None
            ),
        }

    # -- dispatch -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop and not (
                    self._queue and self._running < self.max_concurrent
                ):
                    self._cond.wait()
                if self._stop:
                    return
                _, _, job = heapq.heappop(self._queue)
                if job.state != QUEUED:  # cancelled while waiting
                    continue
                job.state = RUNNING
                self._running += 1
                self._emit_locked(
                    job, "started",
                    f"slot {self._running}/{self.max_concurrent}, "
                    f"{self.workers_per_job} inner workers",
                )
                if self.journal is not None:
                    self.journal.record_start(job.id, attempt=job.attempt)
                worker = threading.Thread(
                    target=self._run_job, args=(job,),
                    name=f"repro-{job.id}", daemon=True,
                )
                self._workers.add(worker)
            worker.start()

    def _run_job(self, job: Job) -> None:
        from repro.service.workers import WorkerCrashed, WorkerError

        ctx = JobContext(self, job, self.workers_per_job)
        state, result, error = DONE, None, None
        try:
            while True:
                try:
                    if self._backend_impl is not None:
                        result = self._backend_impl.run(
                            job, ctx, self._executor_factory,
                            attempt=job.attempt,
                        )
                    else:
                        result = self._run_in_thread(job, ctx)
                    state = DONE
                except JobCancelled:
                    if job.deadline_hit:
                        # the thread backend's deadline timer trips the
                        # cancel token; report it as the distinct
                        # permanent failure, not a cancellation
                        state = FAILED
                        error = (
                            f"deadline exceeded: {job.id} ran past "
                            f"{job.deadline_s or self.max_job_seconds:.1f}s "
                            f"wall clock"
                        )
                    else:
                        state, error = CANCELLED, "cancelled while running"
                except WorkerCrashed as exc:
                    # crash or watchdog kill: retryable with backoff
                    if self._should_retry(job):
                        delay = self.retry_delay(job.id, job.attempt)
                        self._emit(
                            job, "retrying",
                            f"attempt {job.attempt} failed ({exc}); "
                            f"attempt {job.attempt + 1}/"
                            f"{self.max_retries + 1} in {delay:.2f}s",
                        )
                        if self.journal is not None:
                            self.journal.record_retry(
                                job.id, attempt=job.attempt + 1
                            )
                        if self._backoff_wait(job, delay):
                            job.attempt += 1
                            continue
                        state, error = (
                            CANCELLED, "cancelled during retry backoff"
                        )
                    else:
                        state = FAILED
                        error = str(exc)
                        if job.attempt > 1:
                            error += f" (after {job.attempt} attempts)"
                except WorkerError as exc:
                    # executor exceptions and deadline kills are
                    # permanent: the worker formatted the failure verbatim
                    state, error = FAILED, str(exc)
                except BaseException as exc:
                    # EVERY other failure — Exception or BaseException
                    # (SystemExit, KeyboardInterrupt, MemoryError) — fails
                    # the job; the slot release lives in the finally
                    # below, so no raise can strand ``_running``.
                    state = FAILED
                    error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                break
        finally:
            with self._cond:
                self._running -= 1
                self._workers.discard(threading.current_thread())
                if job.state not in TERMINAL_STATES:
                    self._finish_locked(job, state, result=result, error=error)
                self._cond.notify_all()

    def _run_in_thread(self, job: Job, ctx: JobContext) -> dict:
        """Thread-backend execution with a cooperative deadline: a timer
        trips the job's cancel token at the wall-clock budget (the
        process backend enforces deadlines with a worker kill instead)."""
        deadline_s = (
            job.deadline_s if job.deadline_s is not None
            else self.max_job_seconds
        )
        timer = None
        if deadline_s:
            def _trip() -> None:
                job.deadline_hit = True
                job.cancel_token.set()

            timer = threading.Timer(deadline_s, _trip)
            timer.daemon = True
            timer.start()
        try:
            return self.executors[job.kind](job.params, ctx)
        finally:
            if timer is not None:
                timer.cancel()

    def _should_retry(self, job: Job) -> bool:
        return (
            job.attempt <= self.max_retries
            and not job.cancel_requested
            and not self._stop
        )

    def retry_delay(self, job_id: str, attempt: int) -> float:
        """Exponential backoff with deterministic jitter: the jitter is
        a pure function of (job id, attempt), so chaos tests and
        journal replays see identical schedules."""
        base = min(
            self.retry_backoff_cap_s,
            self.retry_backoff_s * (2 ** (attempt - 1)),
        )
        digest = hashlib.blake2b(
            f"{job_id}:{attempt}".encode(), digest_size=4
        ).hexdigest()
        jitter = (int(digest, 16) % 1000) / 1000.0 * 0.25
        return base * (1.0 + jitter)

    def _backoff_wait(self, job: Job, delay: float) -> bool:
        """Sleep out a retry backoff, abandoning it immediately on
        cancel or shutdown; True when the full delay elapsed."""
        deadline = time.monotonic() + delay
        while time.monotonic() < deadline:
            if job.cancel_requested or self._stop:
                return False
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
        return not (job.cancel_requested or self._stop)

    # -- locked helpers -------------------------------------------------

    def _emit(self, job: Job, stage: str, detail: str = "") -> None:
        with self._cond:
            self._emit_locked(job, stage, detail)

    def _emit_locked(self, job: Job, stage: str, detail: str) -> None:
        job.events.append(
            {
                "seq": len(job.events),
                "ts": time.time(),
                "stage": stage,
                "detail": detail,
            }
        )

    def _finish_locked(
        self,
        job: Job,
        state: str,
        result: dict | None = None,
        error: str | None = None,
    ) -> None:
        # result/error land before the state flips terminal: the HTTP
        # layer reads jobs without the lock, and a terminal state with a
        # still-missing result would be misreported as cancelled/failed
        job.result = result
        job.error = error
        job.finished = time.time()
        job.state = state
        self._emit_locked(job, "finished" if state == DONE else state, error or "")
        if self.journal is not None and not (
            self._stop and state == CANCELLED
        ):
            # graceful shutdown leaves no terminal record: to the journal
            # a drain looks like a crash, so interrupted work is requeued
            # on the next start instead of silently dropped
            self.journal.record_terminal(job.id, state, error=error)
        if self._inflight.get(job.signature) is job:
            del self._inflight[job.signature]
        if self.on_terminal is not None:
            try:
                self.on_terminal(job)
            except Exception:
                pass  # quota bookkeeping must never fail a job transition
        job.done_event.set()
        self._finished_order.append(job.id)
        while len(self._finished_order) > self.max_finished_jobs:
            stale_id = self._finished_order.pop(0)
            stale = self._jobs.get(stale_id)
            if stale is not None and stale.state in TERMINAL_STATES:
                del self._jobs[stale_id]


# ----------------------------------------------------------------------
# Default executors: the store-backed benchmark pipeline
# ----------------------------------------------------------------------

def _analysis_payload(result) -> dict:
    """JSON result for one benchmark's X-based analysis
    (:class:`repro.bench.runner.BenchmarkResults`)."""
    return {
        "kind": "analysis",
        "benchmark": result.name,
        "peak_power_mw": result.peak_power_mw,
        "peak_energy_pj": result.peak_energy_pj,
        "npe_pj_per_cycle": result.npe_pj_per_cycle,
        "path_cycles": result.path_cycles,
        "n_segments": result.n_segments,
        "avg_peak_trace_mw": result.avg_peak_trace_mw,
    }


def _require_benchmark(params: dict) -> str:
    from repro.bench.suite import ALL_BENCHMARKS

    name = params.get("benchmark")
    if name not in ALL_BENCHMARKS:
        valid = ", ".join(sorted(ALL_BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; valid names: {valid}")
    return name


def run_analyze_job(params: dict, ctx: JobContext) -> dict:
    """Input-independent peak power/energy bound for one benchmark,
    resolved through the artifact store (cold runs fill it, warm runs
    are pure lookups)."""
    from repro.bench import runner

    name = _require_benchmark(params)
    engine = params.get("engine")
    ctx.emit(
        "resolve",
        f"x_based({name!r}), workers={ctx.workers}, engine={engine}",
    )
    result = runner.x_based(
        name, workers=ctx.workers, cancel=getattr(ctx, "cancel", None),
        engine=engine,
    )
    return _analysis_payload(result)


def run_profile_job(params: dict, ctx: JobContext) -> dict:
    """Guardbanded input-profiling baseline for one benchmark."""
    from repro.bench import runner
    from repro.core.baselines import GUARDBAND

    name = _require_benchmark(params)
    engine = params.get("engine")
    ctx.emit("resolve", f"profiling({name!r}), engine={engine}")
    profile = runner.profiling(
        name, cancel=getattr(ctx, "cancel", None), engine=engine
    )
    return {
        "kind": "profiling",
        "benchmark": name,
        "n_input_sets": len(profile.runs),
        "observed_peak_power_mw": profile.observed_peak_power_mw,
        "guardbanded_peak_power_mw": profile.guardbanded_peak_power_mw,
        "guardband": GUARDBAND,
    }


def run_stressmark_job(params: dict, ctx: JobContext) -> dict:
    """GA stressmark for this core (islands knobs reachable per job)."""
    from repro.bench import runner

    objective = params.get("objective", "peak")
    ctx.emit("resolve", f"stressmark({objective!r})")
    mark = runner.stressmark(
        objective,
        islands=params.get("islands"),
        migration_interval=params.get("migration_interval"),
        workers=ctx.workers,
        cancel=getattr(ctx, "cancel", None),
    )
    return {
        "kind": "stressmark",
        "objective": objective,
        "peak_power_mw": mark.peak_power_mw,
        "avg_power_mw": mark.avg_power_mw,
        "source": mark.source,
    }


def run_conformance_job(params: dict, ctx: JobContext) -> dict:
    """Lock-step ISS-vs-gate conformance: benchmark suite and/or fuzz
    campaign.  Divergence reproducers land in the artifact store so a
    failed fuzz job leaves a durable, replayable seed behind."""
    from repro.bench import runner
    from repro.verify import run_conformance

    benchmarks = params.get("benchmarks")
    fuzz = params.get("fuzz", 0)
    seed = params.get("seed", 2017)
    engine = params.get("engine")
    engines = (engine,) if engine else None
    ctx.emit(
        "resolve",
        f"conformance(benchmarks={benchmarks}, fuzz={fuzz}, "
        f"seed={seed}, engines={engines or 'all'})",
    )
    report = run_conformance(
        benchmarks=benchmarks,
        fuzz_instructions=fuzz,
        seed=seed,
        engines=engines,
        emit=ctx.emit,
        cancel=getattr(ctx, "cancel", None),
    )
    payload = report.payload()
    if report.divergences:
        store = runner.artifact_store()
        keys = []
        for divergence in report.divergences:
            key = (
                f"divergence_{divergence.program_name}"
                f"_{divergence.engine}"
                + (
                    f"_seed{divergence.seed}"
                    if divergence.seed is not None else ""
                )
            )
            store.put(key, divergence.payload())
            keys.append(key)
        payload["divergence_artifacts"] = keys
        ctx.emit("divergence", f"stored reproducers: {', '.join(keys)}")
    return payload


def default_executors() -> dict[str, Executor]:
    # the upload executor lives in the gateway module; imported lazily so
    # a bare scheduler import stays cheap, referenced as a module-level
    # function so the table stays picklable for the process backend
    from repro.service.gateway import run_upload_job

    return {
        "analyze": run_analyze_job,
        "profile": run_profile_job,
        "stressmark": run_stressmark_job,
        "conformance": run_conformance_job,
        "upload": run_upload_job,
    }
