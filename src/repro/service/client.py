"""Stdlib-only client for the analysis service.

``repro submit`` wraps this; it is also importable for scripting::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8437")
    bound = client.analyze("FFT")          # submit + wait + result
    print(bound["peak_power_mw"])

Every method returns the decoded JSON payload; HTTP errors raise
:class:`ServiceError` carrying the status code and the server's error
payload (which, for an unknown benchmark, lists the valid names).
Connection-level failures — refused, reset, DNS, a server mid-restart —
are retried with capped exponential backoff and then raised as
:class:`ServiceUnavailableError`, so a ``repro serve`` bounce under a
polling client looks like a brief stall, not a stack trace.

Tenanted servers: pass ``api_key=`` and the client sends it as
``X-API-Key`` on every request.  429 answers (rate limit / job quota)
are honored automatically — the client sleeps out the server's
``Retry-After`` (bounded by ``retry_429_budget_s``) and retries, so a
burst over quota degrades to a stall instead of an exception; when the
budget runs out it raises :class:`RateLimitedError` with the server's
hint attached.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request

from repro.service.server import DEFAULT_PORT

DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"

#: connection-failure retries per request (total attempts = retries + 1)
DEFAULT_CONNECT_RETRIES = 2

#: backoff between connection retries: min(cap, base * 2**k)
CONNECT_BACKOFF_S = 0.2
CONNECT_BACKOFF_CAP_S = 2.0

#: total seconds a request may spend sleeping out 429 Retry-After hints
#: before giving up with RateLimitedError
DEFAULT_RETRY_429_BUDGET_S = 30.0

#: ceiling on one 429 sleep — a server asking for more than this gets
#: the error surfaced instead of a silent multi-minute stall
MAX_RETRY_AFTER_SLEEP_S = 10.0


class ServiceError(RuntimeError):
    """An HTTP-level failure from the service."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("error") or f"HTTP {status}"
        super().__init__(f"{message} (HTTP {status})")
        self.status = status
        self.payload = payload


class ServiceUnavailableError(ServiceError):
    """The service could not be reached at the transport level
    (connection refused/reset, DNS failure, socket timeout) after the
    client's retries were exhausted.  ``status`` is 0 — no HTTP response
    ever arrived."""

    def __init__(self, message: str) -> None:
        super().__init__(0, {"error": message})


class JobFailedError(ServiceError):
    """The awaited job ended FAILED; the server's error text is in
    :attr:`payload` (``ServiceError`` subclass — ``status`` is 500)."""


class JobCancelledError(ServiceError):
    """The awaited job was cancelled before producing a result
    (``ServiceError`` subclass — ``status`` is 409)."""


class RateLimitedError(ServiceError):
    """The server kept answering 429 past the client's retry budget.
    ``retry_after_s`` carries the server's last ``Retry-After`` hint."""

    def __init__(self, payload: dict, retry_after_s: float) -> None:
        super().__init__(429, payload)
        self.retry_after_s = retry_after_s


class ServiceClient:
    def __init__(
        self,
        base_url: str = DEFAULT_URL,
        timeout: float = 60.0,
        connect_retries: int = DEFAULT_CONNECT_RETRIES,
        api_key: str | None = None,
        retry_429_budget_s: float = DEFAULT_RETRY_429_BUDGET_S,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_retries = max(0, connect_retries)
        self.api_key = api_key
        self.retry_429_budget_s = max(0.0, retry_429_budget_s)

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        if self.api_key:
            headers["X-API-Key"] = self.api_key
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        last_error: Exception | None = None
        budget_429 = self.retry_429_budget_s
        attempt = 0
        while attempt <= self.connect_retries:
            if attempt:
                time.sleep(
                    min(
                        CONNECT_BACKOFF_CAP_S,
                        CONNECT_BACKOFF_S * (2 ** (attempt - 1)),
                    )
                )
            attempt += 1
            try:
                with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout
                ) as response:
                    return json.loads(response.read() or b"{}")
            except urllib.error.HTTPError as err:
                # the server answered: a real HTTP status
                raw = err.read() or b"{}"
                try:
                    payload = json.loads(raw)
                except ValueError:
                    payload = {"error": raw.decode(errors="replace")}
                if err.code == 429:
                    # honor Retry-After within the bounded budget; a
                    # throttled burst stalls briefly instead of erroring
                    hint = self._retry_after_hint(err, payload)
                    sleep_s = min(hint, MAX_RETRY_AFTER_SLEEP_S)
                    if sleep_s <= budget_429:
                        budget_429 -= sleep_s
                        time.sleep(sleep_s)
                        attempt -= 1  # a 429 retry is not a connect retry
                        continue
                    raise RateLimitedError(payload, hint) from None
                raise ServiceError(err.code, payload) from None
            except urllib.error.URLError as err:
                # urlopen wraps socket-level failures (refused, DNS);
                # unwrap so the final message names the real cause
                last_error = err.reason if isinstance(
                    err.reason, Exception
                ) else err
            except (OSError, http.client.HTTPException) as err:
                # reset mid-response, truncated reply, socket timeout
                last_error = err
        raise ServiceUnavailableError(
            f"cannot reach analysis service at {self.base_url}: "
            f"{last_error} (after {self.connect_retries + 1} attempts)"
        ) from last_error

    @staticmethod
    def _retry_after_hint(err, payload: dict) -> float:
        """The server's Retry-After (header first, payload fallback),
        floored so a zero hint can never spin the retry loop."""
        raw = err.headers.get("Retry-After") if err.headers else None
        if raw is None:
            raw = payload.get("retry_after_s")
        try:
            hint = float(raw) if raw is not None else 1.0
        except (TypeError, ValueError):
            hint = 1.0
        return max(0.1, hint)

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def benchmarks(self) -> list[dict]:
        return self._request("GET", "/v1/benchmarks")["benchmarks"]

    def submit(
        self,
        kind: str = "analyze",
        priority: int = 0,
        deadline_s: float | None = None,
        **params,
    ) -> dict:
        """Submit a job; returns ``{job_id, state, deduped}``.

        *deadline_s* is an optional wall-clock budget: the server kills
        the job past it and fails it with ``deadline exceeded``."""
        body = {"kind": kind, "priority": priority, **params}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        return self._request("POST", "/v1/jobs", body)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str, timeout: float = 300.0) -> dict:
        """Block until *job_id* finishes and return its DONE payload.

        The server caps one blocking poll, so long waits loop; the
        overall *timeout* bounds the total wall clock.  A job that ends
        FAILED raises :class:`JobFailedError` (the server reports it as
        HTTP 500) and a cancelled job raises :class:`JobCancelledError`
        (HTTP 409) — this method only ever *returns* a payload with
        ``state == "done"``.  Other HTTP failures raise plain
        :class:`ServiceError`, and exceeding *timeout* raises
        :class:`TimeoutError`.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} did not finish within {timeout:.0f}s"
                )
            # millisecond resolution: a sub-second remaining budget must
            # not truncate to timeout=0 and busy-loop out the deadline
            chunk = min(remaining, 30.0)
            try:
                payload = self._request(
                    "GET",
                    f"/v1/jobs/{job_id}/result?wait=1&timeout={chunk:.3f}",
                    timeout=chunk + self.timeout,
                )
            except ServiceError as err:
                if err.payload.get("job_id") == job_id:
                    # the *job's* terminal failure, not a transport or
                    # server-internal error: surface it as a typed error
                    # (422: an upload job rejected its program — bad
                    # assembly, tripped cycle budget — same failure shape)
                    if err.status in (500, 422):
                        raise JobFailedError(err.status, err.payload) from None
                    if err.status == 409:
                        raise JobCancelledError(
                            err.status, err.payload
                        ) from None
                raise
            if payload.get("state") == "done":
                return payload

    def events(self, job_id: str, since: int = 0) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/events?since={since}")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def upload(
        self,
        source: str,
        name: str = "upload",
        loop_bound: int | None = None,
        max_cycles: int | None = None,
        max_segments: int | None = None,
    ) -> dict:
        """Upload MSP430 assembly for analysis; returns
        ``{job_id, program_id, state, deduped}`` (poll with
        :meth:`result` / :meth:`events`, or fetch the stored bound later
        with :meth:`program`)."""
        body: dict = {"source": source, "name": name}
        if loop_bound is not None:
            body["loop_bound"] = loop_bound
        if max_cycles is not None:
            body["max_cycles"] = max_cycles
        if max_segments is not None:
            body["max_segments"] = max_segments
        return self._request("POST", "/v1/programs", body)

    def program(self, program_id: str) -> dict:
        """The stored bound for an uploaded program (404 -> ServiceError
        once the result TTL has expired and gc collected it)."""
        return self._request("GET", f"/v1/programs/{program_id}")

    def store_stats(self) -> dict:
        return self._request("GET", "/v1/store/stats")

    def store_gc(self, max_mb: float | None = None) -> dict:
        body = {} if max_mb is None else {"max_mb": max_mb}
        return self._request("POST", "/v1/store/gc", body)

    # -- conveniences ---------------------------------------------------

    def analyze(
        self, benchmark: str, priority: int = 0, timeout: float = 300.0
    ) -> dict:
        """Submit + wait: the peak power/energy bound for *benchmark*."""
        job = self.submit("analyze", benchmark=benchmark, priority=priority)
        return self.result(job["job_id"], timeout=timeout)["result"]

    def stressmark(
        self,
        objective: str = "peak",
        islands: int | None = None,
        migration_interval: int | None = None,
        timeout: float = 600.0,
    ) -> dict:
        params = {"objective": objective}
        if islands is not None:
            params["islands"] = islands
        if migration_interval is not None:
            params["migration_interval"] = migration_interval
        job = self.submit("stressmark", **params)
        return self.result(job["job_id"], timeout=timeout)["result"]
