"""Upload gateway: arbitrary MSP430 assembly in, guaranteed bounds out.

The paper's headline query — an input-independent peak power/energy
bound for *your* application — was only reachable for the 14 registry
benchmarks.  This module opens it to uploaded source:

* :func:`validate_upload` turns a ``POST /v1/programs`` body into
  canonical job params, rejecting oversized, malformed, or
  non-assembling source with a structured :class:`UploadError` **before
  anything touches the scheduler or the journal** — a bad upload leaves
  zero residue;
* :func:`run_upload_job` is the ``"upload"`` job-kind executor: it
  re-assembles the (pre-validated) source, runs the exact same
  :func:`repro.core.analyze` flow as local ``repro analyze`` (same
  default budgets, so the bounds are bit-identical), and publishes the
  result into the artifact store under a tenant-namespaced key with the
  tenant's result TTL;
* failures that can only be discovered *during* analysis — the cycle
  budget tripping on a non-halting program, an unbounded cyclic tree,
  the worker's memory cap — surface as ``FAILED`` jobs whose error
  string carries a machine-readable ``<code>:`` prefix that the HTTP
  layer maps back to a structured 422.

Resource budgets: wall-clock rides the scheduler's existing per-job
deadline/watchdog primitives (the tenant's ``max_job_seconds`` becomes
``deadline_s``); memory is capped with ``RLIMIT_AS`` — applied **only**
inside process-backend workers (a worker context has no ``scheduler``
attribute), never on scheduler threads where it would cap the whole
server process.
"""

from __future__ import annotations

import hashlib
import re

# NOTE: engine imports (repro.asm, repro.core) happen inside the
# functions that need them — repro.core.activity imports
# repro.service.faults, so a module-level import here would be circular

#: hard server-side cap on uploaded source, regardless of tenant quota
MAX_SOURCE_BYTES_CAP = 512 * 1024

#: upload analysis budgets default to :func:`repro.core.analyze`'s own
#: defaults so an uploaded registry benchmark reproduces `repro analyze`
#: bit for bit; callers may only tighten them, never exceed the cap
DEFAULT_MAX_CYCLES = 200_000
DEFAULT_MAX_SEGMENTS = 4_096

#: RLIMIT_AS for upload workers (MiB) — generous (the bitplane engine
#: is memory-light) but finite, so a pathological allocation kills one
#: worker instead of the host
DEFAULT_MEMORY_LIMIT_MB = 4096

#: error-code prefixes an upload job may fail with; the HTTP layer maps
#: ``FAILED`` upload jobs whose error carries one of these to a 422
JOB_ERROR_CODES = (
    "assembly_error",
    "cycle_budget_exceeded",
    "unbounded_energy",
    "memory_limit_exceeded",
)

_JOB_ERROR_RE = re.compile(
    r"(?:^|:\s)(" + "|".join(JOB_ERROR_CODES) + r"): "
)

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class UploadError(Exception):
    """A rejected upload: maps straight to one structured HTTP 4xx."""

    def __init__(self, status: int, code: str, message: str, **extra):
        super().__init__(message)
        self.status = status
        self.code = code
        self.extra = dict(extra)


def program_id(source: str) -> str:
    """Content-derived program id: identical source (per tenant) lands
    on one id, so re-uploads dedupe and results are addressable."""
    digest = hashlib.blake2b(source.encode(), digest_size=8).hexdigest()
    return f"p{digest}"


def store_key(tenant: str | None, pid: str) -> str:
    """Tenant-namespaced artifact key for an uploaded program's bound.

    The ``upload_`` prefix keeps the family visible in store stats and
    distinct from the TTL-free registry-benchmark artifacts.
    """
    return f"upload_{tenant or 'public'}_{pid}"


def job_error_code(error: str | None) -> str | None:
    """The structured failure code in an upload job's error string, if
    any (``None`` for crashes/deadlines/other plain failures)."""
    if not error:
        return None
    match = _JOB_ERROR_RE.search(error)
    return match.group(1) if match else None


def _positive_int(body: dict, field: str, cap: int | None = None) -> int | None:
    value = body.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise UploadError(
            400, "invalid_request",
            f"{field} must be a positive integer", field=field,
        )
    if cap is not None and value > cap:
        raise UploadError(
            400, "invalid_request",
            f"{field} must be <= {cap}", field=field,
        )
    return value


def validate_upload(body: object, max_source_bytes: int) -> dict:
    """Validate a ``POST /v1/programs`` body into canonical job params.

    Raises :class:`UploadError` for anything wrong, including source
    that does not assemble — the whole pipeline after this point may
    assume the source is well-formed, so assembler bugs can never
    masquerade as worker crashes.
    """
    if not isinstance(body, dict):
        raise UploadError(
            400, "invalid_request", "request body must be a JSON object"
        )
    unknown = set(body) - {
        "source", "name", "loop_bound", "max_cycles", "max_segments"
    }
    if unknown:
        raise UploadError(
            400, "invalid_request",
            f"unknown field{'s' if len(unknown) > 1 else ''}: "
            f"{', '.join(sorted(unknown))}",
        )
    source = body.get("source")
    if not isinstance(source, str) or not source.strip():
        raise UploadError(
            400, "invalid_request",
            "source must be a non-empty string of MSP430 assembly",
            field="source",
        )
    limit = min(int(max_source_bytes), MAX_SOURCE_BYTES_CAP)
    size = len(source.encode())
    if size > limit:
        raise UploadError(
            413, "source_too_large",
            f"source is {size} bytes; this tenant's limit is {limit}",
            limit_bytes=limit, size_bytes=size,
        )
    name = body.get("name", "upload")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise UploadError(
            400, "invalid_request",
            "name must match [A-Za-z0-9._-]{1,64}", field="name",
        )
    loop_bound = _positive_int(body, "loop_bound")
    max_cycles = _positive_int(body, "max_cycles", cap=DEFAULT_MAX_CYCLES)
    max_segments = _positive_int(
        body, "max_segments", cap=DEFAULT_MAX_SEGMENTS
    )
    from repro.asm import AssemblyError, assemble

    try:
        assemble(source, name)
    except AssemblyError as err:
        extra = {}
        if err.line_no is not None:
            extra["line"] = err.line_no
            extra["source_line"] = err.line
        raise UploadError(
            422, "assembly_error", err.reason, **extra
        ) from None
    return {
        "source": source,
        "name": name,
        "program_id": program_id(source),
        "loop_bound": loop_bound,
        "max_cycles": (
            max_cycles if max_cycles is not None else DEFAULT_MAX_CYCLES
        ),
        "max_segments": (
            max_segments if max_segments is not None else DEFAULT_MAX_SEGMENTS
        ),
    }


def normalize_upload_params(params: dict) -> dict:
    """Canonicalize upload params for signing (scheduler hook).

    Journal replay and direct ``submit("upload", ...)`` calls pass
    through here too, so the invariants validate_upload established are
    re-checked cheaply (assembly is *not* re-run — the executor does
    that anyway and reports failures as structured job errors).
    """
    params = dict(params)
    source = params.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError("upload params need a non-empty 'source' string")
    name = params.get("name", "upload")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError("upload name must match [A-Za-z0-9._-]{1,64}")
    loop_bound = params.get("loop_bound")
    if loop_bound is not None:
        loop_bound = int(loop_bound)
        if loop_bound < 1:
            raise ValueError("loop_bound must be a positive integer")
    canonical = {
        "source": source,
        "name": name,
        # always recomputed: a forged program_id must not let one upload
        # overwrite another's artifact
        "program_id": program_id(source),
        "loop_bound": loop_bound,
        "max_cycles": min(
            int(params.get("max_cycles") or DEFAULT_MAX_CYCLES),
            DEFAULT_MAX_CYCLES,
        ),
        "max_segments": min(
            int(params.get("max_segments") or DEFAULT_MAX_SEGMENTS),
            DEFAULT_MAX_SEGMENTS,
        ),
    }
    # server-injected tenancy fields: params are all that crosses the
    # process boundary to a worker, so namespacing and TTL ride here
    tenant = params.get("tenant")
    if tenant is not None:
        canonical["tenant"] = str(tenant)
    ttl_s = params.get("ttl_s")
    if ttl_s is not None:
        canonical["ttl_s"] = float(ttl_s)
    return canonical


def _apply_memory_limit(limit_mb: int) -> None:
    """Best-effort RLIMIT_AS inside an upload worker process."""
    try:
        import resource
    except ImportError:  # non-POSIX host
        return
    limit = int(limit_mb) * 1024 * 1024
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        if soft == resource.RLIM_INFINITY or soft > limit:
            resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):
        pass  # a host refusing the cap must not fail the job


def run_upload_job(params: dict, ctx) -> dict:
    """Executor for the ``"upload"`` job kind.

    Warm path: the tenant-namespaced artifact is served straight from
    the store (TTL-checked — an expired result recomputes).  Cold path:
    assemble + :func:`repro.core.analyze` with the job's budgets, then
    publish with the tenant's TTL.  Analysis-time failures are re-raised
    as ``RuntimeError("<code>: detail")`` so both backends surface the
    same machine-readable error string.
    """
    from repro.asm import AssemblyError, assemble
    from repro.bench import runner
    from repro.core import PathExplosionError, analyze
    from repro.core.peakenergy import UnboundedEnergyError

    pid = params["program_id"]
    key = store_key(params.get("tenant"), pid)
    ttl_s = params.get("ttl_s")  # injected by the server from the keyring
    store = runner.artifact_store()
    try:
        cached = store.get(key)
    except KeyError:
        cached = None
    if isinstance(cached, dict):
        ctx.emit("resolve", f"upload {pid}: artifact hit ({key})")
        return {**cached, "cached": True}
    # memory cap: worker contexts (process backend) lack a .scheduler
    # attribute; scheduler threads must never rlimit the server itself
    if not hasattr(ctx, "scheduler"):
        _apply_memory_limit(DEFAULT_MEMORY_LIMIT_MB)
    ctx.emit("resolve", f"upload {pid}: assemble + analyze ({params['name']})")
    try:
        program = assemble(params["source"], params["name"])
    except AssemblyError as err:
        raise RuntimeError(f"assembly_error: {err}") from None
    try:
        report = analyze(
            runner.shared_cpu(),
            program,
            runner.shared_model(),
            loop_bound=params.get("loop_bound"),
            max_cycles=params["max_cycles"],
            max_segments=params["max_segments"],
            workers=getattr(ctx, "workers", None),
            cancel=getattr(ctx, "cancel", None),
        )
    except PathExplosionError as err:
        raise RuntimeError(f"cycle_budget_exceeded: {err}") from None
    except UnboundedEnergyError as err:
        raise RuntimeError(f"unbounded_energy: {err}") from None
    except MemoryError:
        raise RuntimeError(
            "memory_limit_exceeded: analysis exceeded the worker's "
            "memory budget"
        ) from None
    payload = {
        "kind": "upload",
        "program_id": pid,
        "name": params["name"],
        **report.to_payload(),
    }
    ctx.emit("publish", f"storing bound under {key}")
    store.put(key, payload, ttl_s=ttl_s)
    return {**payload, "cached": False}
