"""Process-pool job execution: fault isolation + real cancellation.

Each job runs in its own **spawn-start** worker process rather than on a
scheduler thread inside the server:

* **Fault isolation** — an engine that segfaults, is OOM-killed, or
  calls ``os._exit`` takes down one worker process; the scheduler maps
  the dead worker to one FAILED job and the server keeps serving.
* **Real cancellation** — the worker checks a shared
  ``multiprocessing.Event`` at the engine's cooperative checkpoints
  (path-queue batches, segment chunks, GA generations — see
  :mod:`repro.parallel.cancel`); if the worker does not reach a
  checkpoint within the kill grace period, the monitor SIGKILLs the
  worker's whole process group as the backstop.  Either way a DELETE on
  a RUNNING job reaches a terminal state and frees its slot.
* **No fork-in-threads** — spawn is safe from the multithreaded server
  process, and the engine's fork-start pools (sharded exploration, GA
  islands) are then created inside the single-threaded worker, clearing
  the Python 3.12+ hazard the scheduler previously had to live with.

The worker is **non-daemonic** so it may fork those inner engine pools
(daemonic processes cannot have children — the jobs × inner-workers
core budget would silently collapse to serial).  The worker calls
``os.setsid()`` on entry, so the backstop ``killpg`` also reaps any
fork-start grandchildren the engine had in flight.

Protocol over the one-way pipe, worker → monitor::

    ("event", stage, detail)   progress, forwarded to the job's stream
    ("done", result)           executor returned *result* (a JSON dict)
    ("cancelled", None)        a checkpoint observed the cancel event
    ("failed", detail)         executor raised; detail is "Type: message"

EOF without a terminal message means the worker died; the monitor turns
that into :class:`WorkerCrashed` (or a cancellation, if one was pending).

Results are bit-identical to the in-thread backend: the worker runs the
same executors against the same artifact store (``CACHE_DIR`` is shipped
explicitly — spawn does not inherit parent module-global mutations), and
cancellation only ever aborts work, it never alters a result.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from pathlib import Path

from repro.parallel.cancel import JobCancelled
from repro.parallel.pool import spawn_context

#: seconds a cancelled worker gets to reach a cooperative checkpoint
#: before the monitor SIGKILLs its process group
DEFAULT_KILL_GRACE_S = 2.0

#: sentinel from :meth:`ProcessBackend._pump` when the pipe broke
_EOF = ("__eof__", None)


class WorkerError(RuntimeError):
    """An executor failed inside the worker process.

    ``str()`` is the worker's verbatim ``"Type: message"`` line, so the
    job's error field reads the same as it would from the in-thread
    backend.
    """


class WorkerCrashed(WorkerError):
    """The worker process died without reporting a result."""


class _WorkerContext:
    """The executor context inside the worker process.

    Mirrors :class:`repro.service.scheduler.JobContext`: ``emit`` ships
    progress up the pipe, ``cancel`` is the shared token the engine's
    checkpoints poll.
    """

    def __init__(self, conn, cancel_token, workers: int) -> None:
        self._conn = conn
        self.cancel = cancel_token
        self.workers = workers

    def emit(self, stage: str, detail: str = "") -> None:
        try:
            self._conn.send(("event", stage, detail))
        except (BrokenPipeError, OSError):
            pass  # monitor went away; keep computing (or die with it)

    def cancelled(self) -> bool:
        return self.cancel.is_set()

    def check_cancelled(self) -> None:
        self.cancel.check()


def _worker_main(
    conn,
    cancel_event,
    factory,
    kind: str,
    params: dict,
    workers: int,
    cache_dir: str | None,
) -> None:
    """Worker-process entry: run one job's executor, report, exit.

    Spawned fresh, so nothing from the server process leaks in except
    what arrives through the arguments: *factory* rebuilds the executor
    table (it must be a picklable module-level callable), *cache_dir*
    re-points the runner's artifact store (spawn inherits the
    environment but **not** parent module-global mutations like
    ``runner.CACHE_DIR``).
    """
    try:
        os.setsid()  # own process group: the kill backstop reaps our forks
    except OSError:
        pass
    from repro.bench import runner
    from repro.parallel.cancel import CancelToken

    if cache_dir is not None:
        runner.CACHE_DIR = Path(cache_dir)
    ctx = _WorkerContext(conn, CancelToken(cancel_event), workers)
    try:
        executors = factory()
        result = executors[kind](params, ctx)
    except JobCancelled:
        message = ("cancelled", None)
    except BaseException as exc:
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        message = ("failed", detail)
    else:
        message = ("done", result)
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass
    finally:
        conn.close()


class ProcessBackend:
    """Runs each job in a spawn-start worker process and monitors it.

    One :meth:`run` call per job, invoked from the scheduler's job
    thread: it launches the worker, pumps progress events, watches for
    cancellation/shutdown, and translates the worker's fate into the
    same exceptions the in-thread backend produces — so the scheduler's
    state machine is backend-agnostic.
    """

    def __init__(self, kill_grace: float = DEFAULT_KILL_GRACE_S) -> None:
        if kill_grace <= 0:
            raise ValueError(f"kill_grace must be > 0, got {kill_grace}")
        self.kill_grace = kill_grace

    def run(self, job, ctx, factory):
        """Execute *job* in a worker process; return its result dict.

        Raises :class:`JobCancelled` when the job was cancelled (via a
        cooperative checkpoint or the kill backstop),
        :class:`WorkerError` when the executor raised, and
        :class:`WorkerCrashed` when the worker died without an answer.
        """
        from repro.bench import runner

        mp = spawn_context()
        cancel_event = mp.Event()
        recv, send = mp.Pipe(duplex=False)
        process = mp.Process(
            target=_worker_main,
            args=(
                send, cancel_event, factory, job.kind, job.params,
                ctx.workers, str(runner.CACHE_DIR),
            ),
            name=f"repro-worker-{job.id}",
        )
        process.start()
        send.close()  # keep one writer so EOF means the worker is gone

        outcome = None
        kill_deadline = None
        killed = False
        try:
            while outcome is None:
                if kill_deadline is None and self._cancelling(job, ctx):
                    cancel_event.set()
                    kill_deadline = time.monotonic() + self.kill_grace
                    ctx.emit(
                        "cancelling",
                        f"cooperative checkpoint, worker kill in "
                        f"{self.kill_grace:.1f}s",
                    )
                if (
                    kill_deadline is not None
                    and not killed
                    and time.monotonic() >= kill_deadline
                ):
                    self._kill(process)
                    killed = True
                if recv.poll(0.05):
                    got = self._pump(recv, ctx)
                    if got is _EOF:
                        break
                    outcome = got
                elif not process.is_alive():
                    # dead worker: drain events still in the pipe buffer
                    while outcome is None and recv.poll():
                        got = self._pump(recv, ctx)
                        if got is _EOF:
                            break
                        outcome = got
                    break
        finally:
            if process.is_alive() and outcome is None:
                self._kill(process)
            process.join(10.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(5.0)
            recv.close()

        if outcome is None:
            if self._cancelling(job, ctx):
                raise JobCancelled(
                    "worker process terminated after cancellation"
                )
            raise WorkerCrashed(
                f"worker process for {job.id} died unexpectedly "
                f"(exit code {process.exitcode})"
            )
        tag, value = outcome
        if tag == "done":
            return value
        if tag == "cancelled":
            raise JobCancelled("cancelled at a cooperative checkpoint")
        raise WorkerError(value)

    @staticmethod
    def _cancelling(job, ctx) -> bool:
        return job.cancel_requested or ctx.scheduler._stop

    @staticmethod
    def _pump(recv, ctx):
        """Read one pipe message; forward events, return terminal ones
        (``_EOF`` for a broken pipe, ``None`` for a forwarded event)."""
        try:
            message = recv.recv()
        except (EOFError, OSError):
            return _EOF
        if message[0] == "event":
            ctx.emit(message[1], message[2])
            return None
        return (message[0], message[1])

    @staticmethod
    def _kill(process) -> None:
        """SIGKILL the worker's process group (engine forks included)."""
        if not process.is_alive() or process.pid is None:
            return
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            try:
                process.kill()
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
