"""Process-pool job execution: fault isolation + real cancellation.

Each job runs in its own **spawn-start** worker process rather than on a
scheduler thread inside the server:

* **Fault isolation** — an engine that segfaults, is OOM-killed, or
  calls ``os._exit`` takes down one worker process; the scheduler maps
  the dead worker to one FAILED job and the server keeps serving.
* **Real cancellation** — the worker checks a shared
  ``multiprocessing.Event`` at the engine's cooperative checkpoints
  (path-queue batches, segment chunks, GA generations — see
  :mod:`repro.parallel.cancel`); if the worker does not reach a
  checkpoint within the kill grace period, the monitor SIGKILLs the
  worker's whole process group as the backstop.  Either way a DELETE on
  a RUNNING job reaches a terminal state and frees its slot.
* **No fork-in-threads** — spawn is safe from the multithreaded server
  process, and the engine's fork-start pools (sharded exploration, GA
  islands) are then created inside the single-threaded worker, clearing
  the Python 3.12+ hazard the scheduler previously had to live with.

The worker is **non-daemonic** so it may fork those inner engine pools
(daemonic processes cannot have children — the jobs × inner-workers
core budget would silently collapse to serial).  The worker calls
``os.setsid()`` on entry, so the backstop ``killpg`` also reaps any
fork-start grandchildren the engine had in flight.

Protocol over the one-way pipe, worker → monitor::

    ("event", stage, detail)   progress, forwarded to the job's stream
    ("hb", None)               heartbeat ping (swallowed, not an event)
    ("done", result)           executor returned *result* (a JSON dict)
    ("cancelled", None)        a checkpoint observed the cancel event
    ("failed", detail)         executor raised; detail is "Type: message"

EOF without a terminal message means the worker died; the monitor turns
that into :class:`WorkerCrashed` (or a cancellation, if one was
pending), with negative exit codes decoded to their signal names —
``killed by SIGKILL — possible OOM or external kill`` triages from the
job's error field alone.

The monitor is also the **watchdog**.  Every pipe message refreshes a
last-heard-from clock; the engine's cooperative checkpoints double as
throttled heartbeat pings (:class:`repro.parallel.cancel.CancelToken`'s
``heartbeat`` hook), so a worker that is *computing* stays loud while a
worker that is *stuck* — wedged kernel, injected hang — goes silent.
Silence past ``heartbeat_timeout`` kills the worker's process group and
raises :class:`WorkerHung` (retryable, like a crash).  Independently, a
per-job wall-clock deadline (``max_job_seconds`` server-wide, or the
job's own ``deadline_s``) kills an overrunning worker and raises
:class:`DeadlineExceeded` — a *permanent* failure: the job was not
unlucky, it was too big for its budget.

Results are bit-identical to the in-thread backend: the worker runs the
same executors against the same artifact store (``CACHE_DIR`` is shipped
explicitly — spawn does not inherit parent module-global mutations), and
cancellation only ever aborts work, it never alters a result.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from pathlib import Path

from repro.parallel.cancel import JobCancelled
from repro.parallel.pool import spawn_context

#: seconds a cancelled worker gets to reach a cooperative checkpoint
#: before the monitor SIGKILLs its process group
DEFAULT_KILL_GRACE_S = 2.0

#: sentinel from :meth:`ProcessBackend._pump` when the pipe broke
_EOF = ("__eof__", None)


class WorkerError(RuntimeError):
    """An executor failed inside the worker process.

    ``str()`` is the worker's verbatim ``"Type: message"`` line, so the
    job's error field reads the same as it would from the in-thread
    backend.
    """


class WorkerCrashed(WorkerError):
    """The worker process died without reporting a result.

    Retryable: the fault may be transient (OOM kill, node pressure, an
    injected crash) — the scheduler re-runs the job in a fresh worker,
    with exponential backoff, up to its retry budget.
    """


class WorkerHung(WorkerCrashed):
    """The heartbeat watchdog killed a silent worker.

    A :class:`WorkerCrashed` subclass, so hangs share the crash retry
    policy: the slot is reclaimed immediately and the job gets a fresh
    worker instead of holding its slot forever.
    """


class DeadlineExceeded(WorkerError):
    """The job overran its wall-clock deadline and was killed.

    Deliberately *not* a :class:`WorkerCrashed`: exceeding a deadline is
    a property of the request, not a transient fault — retrying would
    just burn another deadline's worth of compute.  The job fails
    permanently with a distinct ``deadline exceeded`` error.
    """


def describe_exit(exitcode: int | None) -> str:
    """Human-readable worker exit: signal names for negative codes so
    operators can triage a crash from the job's error field alone."""
    if exitcode is None:
        return "no exit code"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = f"signal {-exitcode}"
        hint = (
            " — possible OOM or external kill"
            if -exitcode == signal.SIGKILL
            else ""
        )
        return f"killed by {name}{hint}"
    return f"exit code {exitcode}"


class _WorkerContext:
    """The executor context inside the worker process.

    Mirrors :class:`repro.service.scheduler.JobContext`: ``emit`` ships
    progress up the pipe, ``cancel`` is the shared token the engine's
    checkpoints poll.  The token's ``heartbeat`` hook is wired to a
    throttled pipe ping, so every engine checkpoint refreshes the
    monitor's watchdog clock.
    """

    def __init__(
        self,
        conn,
        cancel_token,
        workers: int,
        heartbeat_every: float = 1.0,
        attempt: int = 1,
    ) -> None:
        self._conn = conn
        # pipe sends are length-prefixed and NOT safe under concurrent
        # writers: serialize within this process, and refuse to write
        # from fork-pool children that inherited us (they inherit the
        # token — and with it this heartbeat hook — via fork)
        self._send_lock = threading.Lock()
        self._pid = os.getpid()
        self._hb_every = max(0.05, heartbeat_every)
        self._hb_last = time.monotonic()
        self.cancel = cancel_token
        cancel_token.heartbeat = self._maybe_heartbeat
        self.workers = workers
        self.attempt = attempt

    def _send(self, message) -> None:
        if os.getpid() != self._pid:
            return  # an engine fork child; the pipe belongs to the worker
        try:
            with self._send_lock:
                self._conn.send(message)
        except (BrokenPipeError, OSError):
            pass  # monitor went away; keep computing (or die with it)

    def _maybe_heartbeat(self) -> None:
        now = time.monotonic()
        if now - self._hb_last >= self._hb_every:
            self._hb_last = now
            self._send(("hb", None))

    def emit(self, stage: str, detail: str = "") -> None:
        self._send(("event", stage, detail))

    def cancelled(self) -> bool:
        return self.cancel.is_set()

    def check_cancelled(self) -> None:
        self.cancel.check()


def _worker_main(
    conn,
    cancel_event,
    factory,
    kind: str,
    params: dict,
    workers: int,
    cache_dir: str | None,
    attempt: int = 1,
    heartbeat_every: float = 1.0,
) -> None:
    """Worker-process entry: run one job's executor, report, exit.

    Spawned fresh, so nothing from the server process leaks in except
    what arrives through the arguments: *factory* rebuilds the executor
    table (it must be a picklable module-level callable), *cache_dir*
    re-points the runner's artifact store (spawn inherits the
    environment but **not** parent module-global mutations like
    ``runner.CACHE_DIR``).  *attempt* arms per-attempt fault triggers
    (``REPRO_FAULTS`` rides in on the inherited environment) and
    *heartbeat_every* throttles the checkpoint heartbeat pings.
    """
    try:
        os.setsid()  # own process group: the kill backstop reaps our forks
    except OSError:
        pass
    from repro.bench import runner
    from repro.parallel.cancel import CancelToken
    from repro.service import faults

    if cache_dir is not None:
        runner.CACHE_DIR = Path(cache_dir)
    faults.set_attempt(attempt)
    ctx = _WorkerContext(
        conn,
        CancelToken(cancel_event),
        workers,
        heartbeat_every=heartbeat_every,
        attempt=attempt,
    )
    # first pipe message: resets the monitor's watchdog clock, so slow
    # interpreter/numpy imports are never mistaken for a hang
    ctx.emit("booted", f"worker pid {os.getpid()}, attempt {attempt}")
    try:
        faults.hit("worker.start")
        executors = factory()
        result = executors[kind](params, ctx)
    except JobCancelled:
        message = ("cancelled", None)
    except BaseException as exc:
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        message = ("failed", detail)
    else:
        message = ("done", result)
    try:
        conn.send(message)
    except (BrokenPipeError, OSError):
        pass
    finally:
        conn.close()


class ProcessBackend:
    """Runs each job in a spawn-start worker process and monitors it.

    One :meth:`run` call per job, invoked from the scheduler's job
    thread: it launches the worker, pumps progress events, watches for
    cancellation/shutdown, and translates the worker's fate into the
    same exceptions the in-thread backend produces — so the scheduler's
    state machine is backend-agnostic.
    """

    def __init__(
        self,
        kill_grace: float = DEFAULT_KILL_GRACE_S,
        heartbeat_timeout: float | None = None,
        max_job_seconds: float | None = None,
    ) -> None:
        if kill_grace <= 0:
            raise ValueError(f"kill_grace must be > 0, got {kill_grace}")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0 or None, got {heartbeat_timeout}"
            )
        if max_job_seconds is not None and max_job_seconds <= 0:
            raise ValueError(
                f"max_job_seconds must be > 0 or None, got {max_job_seconds}"
            )
        self.kill_grace = kill_grace
        self.heartbeat_timeout = heartbeat_timeout
        self.max_job_seconds = max_job_seconds

    def run(self, job, ctx, factory, attempt: int = 1):
        """Execute *job* in a worker process; return its result dict.

        Raises :class:`JobCancelled` when the job was cancelled (via a
        cooperative checkpoint or the kill backstop),
        :class:`WorkerError` when the executor raised,
        :class:`DeadlineExceeded` when the job overran its wall-clock
        budget, :class:`WorkerHung` when the heartbeat watchdog killed a
        silent worker, and :class:`WorkerCrashed` when the worker died
        without an answer.
        """
        from repro.bench import runner

        deadline_s = getattr(job, "deadline_s", None)
        if deadline_s is None:
            deadline_s = self.max_job_seconds
        heartbeat_every = (
            min(1.0, self.heartbeat_timeout / 4.0)
            if self.heartbeat_timeout
            else 1.0
        )
        mp = spawn_context()
        cancel_event = mp.Event()
        recv, send = mp.Pipe(duplex=False)
        process = mp.Process(
            target=_worker_main,
            args=(
                send, cancel_event, factory, job.kind, job.params,
                ctx.workers, str(runner.CACHE_DIR), attempt,
                heartbeat_every,
            ),
            name=f"repro-worker-{job.id}-a{attempt}",
        )
        process.start()
        send.close()  # keep one writer so EOF means the worker is gone

        outcome = None
        kill_deadline = None
        killed = False
        hung = False
        deadline_hit = False
        started = time.monotonic()
        last_msg = started  # refreshed by every pipe message (events, hb)
        try:
            while outcome is None:
                now = time.monotonic()
                if kill_deadline is None and self._cancelling(job, ctx):
                    cancel_event.set()
                    kill_deadline = now + self.kill_grace
                    ctx.emit(
                        "cancelling",
                        f"cooperative checkpoint, worker kill in "
                        f"{self.kill_grace:.1f}s",
                    )
                if kill_deadline is None and not killed:
                    # watchdog passes run only until a kill is in motion
                    if deadline_s and now - started >= deadline_s:
                        deadline_hit = True
                        ctx.emit(
                            "deadline",
                            f"wall clock exceeded {deadline_s:.1f}s; "
                            f"killing worker",
                        )
                        self._kill(process)
                        killed = True
                    elif (
                        self.heartbeat_timeout
                        and now - last_msg >= self.heartbeat_timeout
                    ):
                        hung = True
                        ctx.emit(
                            "hung",
                            f"no heartbeat for "
                            f"{self.heartbeat_timeout:.1f}s; killing "
                            f"worker process group",
                        )
                        self._kill(process)
                        killed = True
                if (
                    kill_deadline is not None
                    and not killed
                    and now >= kill_deadline
                ):
                    self._kill(process)
                    killed = True
                if recv.poll(0.05):
                    last_msg = time.monotonic()
                    got = self._pump(recv, ctx)
                    if got is _EOF:
                        break
                    outcome = got
                elif not process.is_alive():
                    # dead worker: drain events still in the pipe buffer
                    while outcome is None and recv.poll():
                        got = self._pump(recv, ctx)
                        if got is _EOF:
                            break
                        outcome = got
                    break
        finally:
            if process.is_alive() and outcome is None:
                self._kill(process)
            process.join(10.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(5.0)
            recv.close()

        if outcome is None:
            if self._cancelling(job, ctx):
                raise JobCancelled(
                    "worker process terminated after cancellation"
                )
            if deadline_hit:
                raise DeadlineExceeded(
                    f"deadline exceeded: {job.id} ran past "
                    f"{deadline_s:.1f}s wall clock and was killed"
                )
            if hung:
                raise WorkerHung(
                    f"worker process for {job.id} presumed hung: no "
                    f"heartbeat for {self.heartbeat_timeout:.1f}s; "
                    f"process group killed"
                )
            raise WorkerCrashed(
                f"worker process for {job.id} died unexpectedly "
                f"({describe_exit(process.exitcode)})"
            )
        tag, value = outcome
        if tag == "done":
            return value
        if tag == "cancelled":
            raise JobCancelled("cancelled at a cooperative checkpoint")
        raise WorkerError(value)

    @staticmethod
    def _cancelling(job, ctx) -> bool:
        return job.cancel_requested or ctx.scheduler._stop

    @staticmethod
    def _pump(recv, ctx):
        """Read one pipe message; forward events, return terminal ones
        (``_EOF`` for a broken pipe, ``None`` for a forwarded event)."""
        try:
            message = recv.recv()
        except (EOFError, OSError):
            return _EOF
        if message[0] == "hb":
            return None  # heartbeat: refreshes the watchdog clock only
        if message[0] == "event":
            ctx.emit(message[1], message[2])
            return None
        return (message[0], message[1])

    @staticmethod
    def _kill(process) -> None:
        """SIGKILL the worker's process group (engine forks included)."""
        if not process.is_alive() or process.pid is None:
            return
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            try:
                process.kill()
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
