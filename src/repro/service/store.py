"""Content-addressed artifact store.

Generalizes the ``.repro_cache`` pickle scheme (``bench/runner``) into a
reusable store for every expensive artifact the pipeline produces —
analysis results, stressmarks, activity profiles, sizing answers.  The
on-disk contract is deliberately the same as the runner's historical
layout so existing caches keep working byte for byte:

* an artifact lives at ``<root>/<key>-<fingerprint>.pkl`` where
  *fingerprint* versions the producing code/model (see
  :func:`repro.bench.runner.cache_fingerprint`);
* the payload is the plain ``pickle.dumps`` of the value — the file
  contents are byte-identical to what ``bench/runner`` wrote before the
  store existed;
* a sidecar ``<artifact>.meta.json`` carries the integrity digest
  (blake2b over the pickle bytes), size, creation/access timestamps and
  a per-entry hit counter.  Entries without a sidecar (seed-era caches)
  are still readable and still gc-able — they are reported as *legacy*.

Writes are atomic (scratch file + ``os.replace``), so concurrent
writers — suite worker processes racing on one key, or two service jobs
resolving the same request — can never publish a torn artifact: a
reader sees the complete old bytes or the complete new bytes, nothing
in between.  Reads verify the digest; a corrupt artifact counts as a
miss and is recomputed over, never silently returned.

Garbage collection (:meth:`ArtifactStore.gc`) evicts in waves:
stale-fingerprint versions and legacy unversioned entries first (they
can never be read again), then entries whose TTL has lapsed, then
least-recently-used entries until the store fits under the requested
size cap.

Entries may carry a TTL: ``put(key, value, ttl_s=...)`` stamps an
``expires_at`` into the sidecar, after which reads miss and gc evicts
the artifact.  Registry-benchmark artifacts are written without a TTL
and are never expiry-evicted — TTLs exist for tenant-uploaded results,
which must age out of a shared store.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

try:
    import fcntl
except ImportError:  # non-POSIX host: publishes fall back to unserialized
    fcntl = None

from repro.service import faults

META_SUFFIX = ".meta.json"

#: scratch files older than this are considered abandoned by a dead
#: writer and reclaimed by gc; younger ones may be in-flight writes.
TMP_REAP_AGE_S = 3600.0

#: versioned artifact names end in ``-<16 hex chars>`` (the blake2b-8
#: fingerprint ``bench/runner`` has used since PR 1).
_FINGERPRINT_RE = re.compile(r"^(?P<key>.+)-(?P<fp>[0-9a-f]{16})$")


def content_digest(data: bytes) -> str:
    """Integrity digest of an artifact's pickle bytes."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


@dataclass
class StoreCounters:
    """Per-process hit/miss accounting (not persisted)."""

    hits_disk: int = 0
    hits_memory: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    @property
    def hits_total(self) -> int:
        return self.hits_disk + self.hits_memory

    def to_dict(self) -> dict:
        return {
            "hits_disk": self.hits_disk,
            "hits_memory": self.hits_memory,
            "hits_total": self.hits_total,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
        }


@dataclass
class Entry:
    """One on-disk artifact, as seen by ``stats``/``gc``."""

    path: Path
    key: str
    fingerprint: str | None  # None: legacy unversioned entry
    size: int
    created: float
    accessed: float
    hits: int
    legacy: bool  # no sidecar metadata (seed-era pickle)
    expires_at: float | None = None  # None: immortal (no TTL)

    def expired(self, now: float | None = None) -> bool:
        if self.expires_at is None:
            return False
        return (time.time() if now is None else now) >= self.expires_at

    @property
    def kind(self) -> str:
        """Artifact family — the key prefix up to the first underscore
        (``xbased``, ``profiling``, ``stressmark``, ...)."""
        return self.key.split("_", 1)[0] if "_" in self.key else self.key


@dataclass
class StoreStats:
    """Aggregate store state plus this process's counters."""

    root: str
    n_entries: int
    n_legacy: int
    n_stale: int
    total_bytes: int
    by_kind: dict[str, int]
    counters: StoreCounters

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "entries": {
                "n_entries": self.n_entries,
                "n_legacy": self.n_legacy,
                "n_stale": self.n_stale,
                "total_bytes": self.total_bytes,
                "by_kind": dict(sorted(self.by_kind.items())),
            },
            "counters": self.counters.to_dict(),
        }


@dataclass
class GcReport:
    """What one :meth:`ArtifactStore.gc` pass removed and kept."""

    removed: list[str] = field(default_factory=list)
    freed_bytes: int = 0
    kept_entries: int = 0
    remaining_bytes: int = 0

    def to_dict(self) -> dict:
        return {
            "removed": list(self.removed),
            "n_removed": len(self.removed),
            "freed_bytes": self.freed_bytes,
            "kept_entries": self.kept_entries,
            "remaining_bytes": self.remaining_bytes,
        }


class ArtifactStore:
    """Keyed, versioned, atomically-written artifact store.

    *fingerprint* versions every key: a string, or a zero-arg callable
    resolved at each use (so an interactive fingerprint bump — e.g. a
    monkeypatched model — is picked up without rebuilding the store),
    or ``None`` for unversioned keys.
    """

    def __init__(
        self,
        root: str | Path,
        fingerprint: str | Callable[[], str] | None = None,
    ) -> None:
        self.root = Path(root)
        self._fingerprint = fingerprint
        self.counters = StoreCounters()

    # -- keys and paths -------------------------------------------------

    def fingerprint(self) -> str | None:
        if callable(self._fingerprint):
            return self._fingerprint()
        return self._fingerprint

    def path_for(self, key: str) -> Path:
        fp = self.fingerprint()
        name = f"{key}-{fp}.pkl" if fp else f"{key}.pkl"
        return self.root / name

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    # -- read/write -----------------------------------------------------

    def get(self, key: str):
        """Load *key* or raise :class:`KeyError` on miss.

        The payload digest is verified against the sidecar before
        unpickling; a mismatch is retried once (an atomic-replace race
        can briefly pair new bytes with the old sidecar) and then
        treated as a corrupt miss.  The corrupt file is left in place —
        the caller's recompute overwrites it — so a racing reader can
        never delete a concurrently-published good artifact.
        """
        faults.hit("store.read")
        path = self.path_for(key)
        for attempt in (0, 1):
            try:
                data = path.read_bytes()
            except OSError:
                self.counters.misses += 1
                raise KeyError(key) from None
            meta = self._read_meta(path)
            if meta is None or not meta.get("digest"):
                break  # legacy entry: no digest to verify
            if content_digest(data) == meta["digest"]:
                break
            if attempt == 1:
                self.counters.corrupt += 1
                self.counters.misses += 1
                raise KeyError(key)
        if meta is not None and self._meta_expired(meta):
            # an expired entry is a miss, not a stale hit; eviction of
            # the bytes themselves is gc's job
            self.counters.misses += 1
            raise KeyError(key)
        try:
            value = pickle.loads(data)
        except Exception:
            self.counters.corrupt += 1
            self.counters.misses += 1
            raise KeyError(key) from None
        self.counters.hits_disk += 1
        if meta is not None:
            try:
                # re-read under the publish lock and merge into the
                # CURRENT sidecar: writing back the meta snapshot from
                # before the reads would revert a concurrent publisher's
                # digest and poison the entry for every later read
                with self._publish_lock(path):
                    current = self._read_meta(path)
                    if current is not None:
                        current["accessed"] = time.time()
                        current["hits"] = int(current.get("hits", 0)) + 1
                        self._write_meta(path, current)
            except OSError:
                # recency/hit bookkeeping is best-effort: a read-only or
                # full store must still serve warm reads
                pass
        return value

    def put(self, key: str, value, ttl_s: float | None = None) -> str:
        """Atomically publish *value* under *key*; return its digest.

        The artifact file holds exactly ``pickle.dumps(value)`` — byte
        identical to the pre-store ``bench/runner`` cache format.
        With *ttl_s* the sidecar gains an ``expires_at`` stamp; once it
        passes, reads miss and gc evicts the entry.
        """
        faults.hit("store.write")
        self.root.mkdir(parents=True, exist_ok=True)
        data = pickle.dumps(value)
        digest = content_digest(data)
        path = self.path_for(key)
        # the artifact and its sidecar are two separate atomic replaces;
        # without serialization two writers can interleave them
        # (A.data, B.data, B.meta, A.meta) and leave a mismatched pair
        # at rest that every digest-verified read rejects
        with self._publish_lock(path):
            self._atomic_write(path, data)
            now = time.time()
            meta = {
                "key": key,
                "fingerprint": self.fingerprint(),
                "digest": digest,
                "size": len(data),
                "created": now,
                "accessed": now,
                "hits": 0,
            }
            if ttl_s is not None:
                meta["expires_at"] = now + float(ttl_s)
            self._write_meta(path, meta)
        self.counters.writes += 1
        return digest

    def get_or_compute(self, key: str, compute: Callable[[], object]):
        """``get(key)``, falling back to ``put(key, compute())``."""
        try:
            return self.get(key)
        except KeyError:
            value = compute()
            self.put(key, value)
            return value

    def note_memory_hit(self) -> None:
        """Record a hit served by a caller's in-process memory layer."""
        self.counters.hits_memory += 1

    # -- maintenance ----------------------------------------------------

    def entries(self) -> list[Entry]:
        """Scan the store directory (versioned + legacy artifacts)."""
        found: list[Entry] = []
        if not self.root.is_dir():
            return found
        for path in sorted(self.root.glob("*.pkl")):
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent gc/replace
            meta = self._read_meta(path)
            match = _FINGERPRINT_RE.match(path.stem)
            key = match.group("key") if match else path.stem
            fingerprint = match.group("fp") if match else None
            if meta is not None:
                # the sidecar counts toward size caps too: what gc frees
                # must match what the directory actually occupies
                try:
                    meta_size = self._meta_path(path).stat().st_size
                except OSError:
                    meta_size = 0
                expires_at = meta.get("expires_at")
                found.append(
                    Entry(
                        path=path,
                        key=str(meta.get("key", key)),
                        fingerprint=meta.get("fingerprint", fingerprint),
                        size=stat.st_size + meta_size,
                        created=float(meta.get("created", stat.st_mtime)),
                        accessed=float(meta.get("accessed", stat.st_mtime)),
                        hits=int(meta.get("hits", 0)),
                        legacy=False,
                        expires_at=(
                            float(expires_at) if expires_at is not None else None
                        ),
                    )
                )
            else:
                found.append(
                    Entry(
                        path=path,
                        key=key,
                        fingerprint=fingerprint,
                        size=stat.st_size,
                        created=stat.st_mtime,
                        accessed=stat.st_mtime,
                        hits=0,
                        legacy=True,
                    )
                )
        return found

    def stats(self) -> StoreStats:
        entries = self.entries()
        current = self.fingerprint()
        by_kind: dict[str, int] = {}
        n_stale = 0
        for entry in entries:
            by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
            if self._is_stale(entry, current):
                n_stale += 1
        return StoreStats(
            root=str(self.root),
            n_entries=len(entries),
            n_legacy=sum(1 for e in entries if e.legacy),
            n_stale=n_stale,
            total_bytes=sum(e.size for e in entries),
            by_kind=by_kind,
            counters=self.counters,
        )

    def gc(self, max_mb: float | None = None) -> GcReport:
        """Evict artifacts; optionally enforce a *max_mb* size cap.

        Eviction order: abandoned scratch files, then stale-fingerprint
        and legacy unversioned entries (unreadable by the current
        version, pure dead weight), then entries whose TTL has lapsed,
        then — only when the cap is still exceeded — live entries from
        least to most recently used.
        """
        report = GcReport()
        if not self.root.is_dir():
            return report
        now = time.time()
        for tmp in self.root.glob("*.tmp*"):
            try:
                if now - tmp.stat().st_mtime >= TMP_REAP_AGE_S:
                    size = tmp.stat().st_size
                    tmp.unlink()
                    report.removed.append(tmp.name)
                    report.freed_bytes += size
            except OSError:
                pass
        current = self.fingerprint()
        live: list[Entry] = []
        for entry in self.entries():
            if self._is_stale(entry, current) or entry.expired(now):
                self._remove(entry, report)
            else:
                live.append(entry)
        if max_mb is not None:
            cap_bytes = int(max_mb * 1024 * 1024)
            total = sum(e.size for e in live)
            for entry in sorted(live, key=lambda e: e.accessed):
                if total <= cap_bytes:
                    break
                self._remove(entry, report)
                live.remove(entry)
                total -= entry.size
        report.kept_entries = len(live)
        report.remaining_bytes = sum(e.size for e in live)
        return report

    # -- internals ------------------------------------------------------

    @staticmethod
    def _is_stale(entry: Entry, current: str | None) -> bool:
        """Unreadable by the current version: in a versioned store,
        legacy unversioned names and versioned names whose fingerprint
        no longer matches.  An unversioned store (``fingerprint=None``)
        reads its own unversioned entries fine, so nothing is stale."""
        if current is None:
            return False
        return entry.fingerprint is None or entry.fingerprint != current

    def _remove(self, entry: Entry, report: GcReport) -> None:
        lock = entry.path.with_name(entry.path.name + ".lock")
        for path in (entry.path, self._meta_path(entry.path), lock):
            try:
                path.unlink()
            except OSError:
                pass
        report.removed.append(entry.path.name)
        report.freed_bytes += entry.size

    @staticmethod
    def _meta_expired(meta: dict) -> bool:
        expires_at = meta.get("expires_at")
        if expires_at is None:
            return False
        try:
            return time.time() >= float(expires_at)
        except (TypeError, ValueError):
            return False

    @staticmethod
    def _meta_path(path: Path) -> Path:
        return path.with_name(path.name + META_SUFFIX)

    def _read_meta(self, path: Path) -> dict | None:
        try:
            raw = self._meta_path(path).read_text()
        except OSError:
            return None
        try:
            meta = json.loads(raw)
        except ValueError:
            return None
        return meta if isinstance(meta, dict) else None

    def _write_meta(self, path: Path, meta: dict) -> None:
        self._atomic_write(
            self._meta_path(path), json.dumps(meta, sort_keys=True).encode()
        )

    @contextmanager
    def _publish_lock(self, path: Path):
        """Serialize data+sidecar publishes (and sidecar bookkeeping)
        for one artifact across processes via an advisory flock.

        Each file replace stays individually atomic; the lock only keeps
        the *pair* consistent at rest.  Reads never take it.  On hosts
        without ``fcntl`` or stores where the lock file cannot be
        created, degrade to the unserialized behavior.
        """
        if fcntl is None:
            yield
            return
        lock_path = path.with_name(path.name + ".lock")
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            yield
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)

    def _atomic_write(self, path: Path, data: bytes) -> None:
        # pid + thread id: service jobs are threads of one process, and
        # two writers sharing a scratch name could publish a torn file
        scratch = path.with_name(
            f"{path.name}.tmp{os.getpid()}-{threading.get_ident()}"
        )
        try:
            scratch.write_bytes(data)
            os.replace(scratch, path)
        except BaseException:
            try:
                scratch.unlink()
            except OSError:
                pass
            raise
