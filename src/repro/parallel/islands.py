"""Island-model GA scheduling (stressmark populations across processes).

An archipelago of :class:`~repro.core.stressmark.Island` states evolves
in epochs: every island advances ``migration_interval`` generations
independently (these are the parallel units), then the best-ever genome
of island *i* replaces the youngest child of island ``(i+1) % N`` — a
deterministic ring migration.  Because each island owns a private seeded
random stream and migration happens at synchronized epoch boundaries,
the archipelago's evolution is a pure function of the island seeds: any
worker count — 1, N, or anything between — produces the identical
stressmark.

Workers are fork-start processes that inherit the elaborated CPU and
power model from the parent; only the (small) island states cross the
process boundary.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any

_CTX: dict[str, Any] | None = None


def _evolve_task(args: tuple):
    """Worker body: advance one island a whole epoch; returns the island."""
    from repro.core.stressmark import evolve_island

    island, objective, span, population, genome_length, batch_size = args
    ctx = _CTX
    return evolve_island(
        ctx["cpu"],
        ctx["model"],
        island,
        objective,
        span,
        population,
        genome_length,
        batch_size,
    )


def migrate_ring(states: list) -> None:
    """Deterministic ring migration: best of *i* -> worst slot of *i+1*.

    The receiving slot is the population's last member (the youngest
    child of the previous epoch), so migration needs no fitness
    re-evaluation and is identical however the epoch was scheduled.
    Islands without a best yet (possible only with zero-fitness pools)
    simply skip their send.
    """
    bests = [island.best for island in states]
    for index, island in enumerate(states):
        incoming = bests[(index - 1) % len(states)]
        if incoming is not None:
            island.pool[-1] = list(incoming[2])


def evolve_archipelago(
    cpu,
    model,
    states: list,
    objective: str,
    generations: int,
    population: int,
    genome_length: int,
    batch_size: int,
    migration_interval: int,
    workers: int | None = None,
    cancel=None,
) -> list:
    """Evolve *states* for *generations* with periodic ring migration.

    Epochs of ``migration_interval`` generations alternate with
    migrations; the final epoch is truncated to the remaining budget.
    With ``workers > 1`` (and fork available) each epoch's islands are
    evaluated in worker processes; the serial path runs them in order.
    Both paths produce identical islands.  *cancel* is checked at epoch
    boundaries in the master (tokens do not cross the fork boundary —
    worker epochs are bounded, so the check latency is one epoch).
    """
    from repro.parallel.pool import fork_available, fork_context, resolve_workers

    global _CTX
    if migration_interval < 1:
        message = f"migration_interval must be >= 1, got {migration_interval}"
        raise ValueError(message)
    workers = resolve_workers(workers)
    use_pool = workers > 1 and len(states) > 1 and fork_available()
    done = 0
    _CTX = {"cpu": cpu, "model": model}
    try:
        pool = None
        if use_pool:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(states)),
                mp_context=fork_context(),
            )
        try:
            while done < generations:
                if cancel is not None:
                    cancel.check()
                span = min(migration_interval, generations - done)
                common = (objective, span, population, genome_length, batch_size)
                tasks = [(island, *common) for island in states]
                if pool is not None:
                    states = list(pool.map(_evolve_task, tasks))
                else:
                    states = [_evolve_task(task) for task in tasks]
                done += span
                if done < generations:
                    migrate_ring(states)
        finally:
            if pool is not None:
                pool.shutdown()
    finally:
        _CTX = None
    return states
