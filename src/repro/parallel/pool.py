"""Worker-count resolution and process-pool plumbing.

One knob drives every parallel component: ``workers``, resolved from the
explicit argument, then the ``REPRO_WORKERS`` environment variable, then
the serial default of 1.  ``workers=0`` (or ``REPRO_WORKERS=0``) means
"one per core".

Process pools use the **fork** start method so workers inherit the
elaborated CPU, the compiled evaluators, and the loaded program from the
parent for free — no per-worker elaboration, no pickling of netlists.
On hosts without fork (or inside a daemonic worker), every consumer
degrades to its serial path; results are identical either way.
"""

from __future__ import annotations

import multiprocessing
import os

#: serial default when neither ``workers=`` nor ``REPRO_WORKERS`` is set
DEFAULT_WORKERS = 1


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit arg > ``REPRO_WORKERS`` > 1.

    ``0`` (either source) resolves to the core count.  Negative counts
    are rejected.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "")
        if not raw.strip():
            return DEFAULT_WORKERS
        try:
            workers = int(raw)
        except ValueError:
            message = f"REPRO_WORKERS must be an integer, got {raw!r}"
            raise ValueError(message) from None
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def inner_workers(outer_jobs: int, workers: int | None = None) -> int:
    """Per-task worker count under an *outer_jobs*-wide process fan-out.

    Composes benchmark-level parallelism (``bench.runner.run_suite
    --jobs``) with path-level sharding without oversubscribing: the
    product ``outer_jobs * inner`` never exceeds the core count.  With
    more outer jobs than cores this resolves to 1 (serial inner), which
    is also what keeps nested pools off single-core hosts.
    """
    requested = resolve_workers(workers)
    cores = os.cpu_count() or 1
    return max(1, min(requested, cores // max(1, outer_jobs)))


def service_slots(
    max_jobs: int | None = None, workers_per_job: int | None = None
) -> tuple[int, int]:
    """Core budget for the analysis service: ``(job slots, inner workers)``.

    Splits the host between concurrently running jobs and each job's
    inner engine workers so ``slots * inner`` never exceeds the core
    count — the same non-oversubscription rule :func:`inner_workers`
    enforces for ``run_suite(jobs=, workers=)``, applied from the other
    side: the per-job worker request is fixed and the job fan-out is
    derived.  *workers_per_job* resolves like every other worker knob
    (``None`` honors ``REPRO_WORKERS``, ``0`` means one per core — which
    yields a single job slot using the whole host).  An explicit
    *max_jobs* lowers, never raises, the derived slot count.
    """
    cores = os.cpu_count() or 1
    inner = min(resolve_workers(workers_per_job), cores)
    slots = max(1, cores // inner)
    if max_jobs is not None:
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        slots = min(slots, max_jobs)
    return slots, inner


def fork_available() -> bool:
    """True when this process may create fork-start worker processes."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    # Daemonic workers (some executor configurations) cannot fork children.
    return not multiprocessing.current_process().daemon


def fork_context():
    """The fork multiprocessing context every repro pool uses."""
    return multiprocessing.get_context("fork")


def spawn_context():
    """The spawn multiprocessing context for service job workers.

    Unlike fork, spawn is safe to use from a multithreaded process (the
    HTTP server + scheduler threads), which is exactly where job workers
    are launched from.  The engine's fork-start pools are then created
    *inside* the single-threaded worker process, clearing the Python
    3.12+ fork-in-threads hazard.  Spawn is available on every platform.
    """
    return multiprocessing.get_context("spawn")
