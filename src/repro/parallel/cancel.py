"""Cooperative cancellation for long-running engine loops.

The analysis service needs ``DELETE`` on a running job to actually stop
the engine, not just flip a flag.  The engine's inner loops — the
pending-path drain in :func:`repro.core.activity.explore`, the per-
parity/per-segment passes of :func:`repro.core.peakpower
.compute_peak_power`, the GA generations in
:func:`repro.core.stressmark.generate_stressmark` — therefore accept an
optional :class:`CancelToken` and call :meth:`CancelToken.check` at
their natural batch boundaries.  A set token raises
:class:`JobCancelled` out of the loop; an absent token costs one
``is None`` branch per checkpoint.

The token wraps any event-like object (``threading.Event`` for the
in-thread execution backend, ``multiprocessing.Event`` for the
process-pool backend), so the same checkpoints serve both.  Checkpoints
are *cooperative*: code that never reaches one (a stuck numpy kernel, a
wedged worker) is covered by the process backend's hard-kill backstop
(:mod:`repro.service.workers`), not by this module.
"""

from __future__ import annotations

import threading


class JobCancelled(BaseException):
    """Raised at a cancellation checkpoint once the token is set.

    Deliberately a :class:`BaseException`: the engine has several broad
    ``except Exception`` recovery paths (batch-evaluation fallbacks,
    store compute wrappers) that must not swallow a cancellation on its
    way out of a deep loop.
    """


class CancelToken:
    """A set-once cancellation signal shared between a controller and a
    long-running computation.

    *event* is any object with ``is_set()`` (and, for :meth:`set`,
    ``set()``): a ``threading.Event`` (the default), a
    ``multiprocessing.Event`` forwarded into a worker process, or a test
    double.

    *heartbeat* is an optional zero-arg callable invoked on every
    :meth:`check`.  The engine's checkpoints thus double as liveness
    proof: the process-backend worker wires a throttled pipe ping here,
    and a worker that stops reaching checkpoints (wedged kernel,
    injected hang) stops heartbeating — which is exactly what the
    monitor's heartbeat watchdog detects.  Callbacks must be cheap and
    must never raise.
    """

    __slots__ = ("_event", "heartbeat")

    def __init__(self, event=None, heartbeat=None) -> None:
        self._event = event if event is not None else threading.Event()
        self.heartbeat = heartbeat

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return bool(self._event.is_set())

    def check(self) -> None:
        """Raise :class:`JobCancelled` if the token has been set."""
        if self.heartbeat is not None:
            self.heartbeat()
        if self._event.is_set():
            raise JobCancelled("cancelled at a cooperative checkpoint")
