"""Multi-core execution layer.

Three independent levels of the pipeline parallelize without changing a
single result bit:

* :mod:`repro.parallel.explore` — shards one execution tree's
  pending-path queue across worker processes (Algorithm 1),
* :mod:`repro.parallel.kernel` — a shared thread pool for chunk-sliced
  numpy kernels such as the Algorithm 2 transition-energy einsum,
* :mod:`repro.parallel.islands` — island-model scheduling for the GA
  stressmark (N populations across processes, deterministic migration).

:mod:`repro.parallel.pool` holds the shared knob resolution
(``workers=`` / ``REPRO_WORKERS``) and the oversubscription composition
used when benchmark-level fan-out and path-level sharding are both on.
"""

from repro.parallel.pool import (
    DEFAULT_WORKERS,
    fork_available,
    inner_workers,
    resolve_workers,
)

__all__ = [
    "DEFAULT_WORKERS",
    "fork_available",
    "inner_workers",
    "resolve_workers",
]
