"""Shared thread pool for GIL-releasing numpy kernels.

The Algorithm 2 transition-energy kernel reduces independent row chunks
with ``einsum`` (which drops the GIL for the duration of the reduction),
and every chunk writes a disjoint row range of preallocated outputs —
so threading the chunk loop changes wall-clock, never bits.  The pool is
process-global and lazily grown: thread startup is paid once, not per
trace evaluation.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

_LOCK = threading.Lock()
_POOL: ThreadPoolExecutor | None = None
_POOL_SIZE = 0


def kernel_pool(workers: int) -> ThreadPoolExecutor:
    """The shared kernel thread pool, grown to at least *workers*."""
    global _POOL, _POOL_SIZE
    with _LOCK:
        if _POOL is None or _POOL_SIZE < workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False)
            _POOL = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-kernel"
            )
            _POOL_SIZE = workers
        return _POOL


def map_spans(
    workers: int,
    spans: list[tuple[int, int]],
    fn: Callable[[int, int], None],
) -> None:
    """Run ``fn(start, stop)`` over *spans*, threaded when it pays off.

    Each span must touch a disjoint output range (the caller's
    contract); results are therefore identical at any worker count, and
    the serial path is simply the in-order loop.
    """
    if workers <= 1 or len(spans) <= 1:
        for start, stop in spans:
            fn(start, stop)
        return
    pool = kernel_pool(workers)
    futures = [pool.submit(fn, start, stop) for start, stop in spans]
    for future in futures:
        future.result()
