"""Sharded execution-tree exploration (Algorithm 1 across processes).

The pending-path queue of one benchmark's execution tree is drained by a
pool of **fork-start worker processes**: the master keeps the memoization
set and the work queue, workers simulate path segments (lock-step on a
:class:`~repro.sim.batch.BatchMachine`) and ship back each segment's
records plus its fork edges and the packed snapshot children restart
from.  Scheduling is pull-based — every worker that finishes a chunk
immediately receives the next one, and chunk sizes shrink as the queue
drains — so load rebalances like work stealing without shared-memory
deques.

Bit identity with the serial engines is structural, not incidental: a
pending path's entire future is a function of its memoization key, so
the *set* of simulated segments is scheduling-independent, and
:func:`repro.core.activity._assemble_tree` replays the scalar engine's
exact stack discipline over the ``{key: node}`` graph to assign segment
numbering, parents, memo-hit counts and the flat-trace layout.  Any
worker count — including 1 — produces the identical
:class:`~repro.core.activity.ExecutionTree`.

IPC stays small: snapshots ship their behavioral memory as a delta
against the fork-inherited program image, and (on the bit-plane engine)
trace records ship as packed plane words that unpack lazily at the trace
boundary.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any

import numpy as np

from repro.core.activity import (
    _ROOT_KEY,
    ExecutionTree,
    PathExplosionError,
    _assemble_tree,
    _memo_key,
    _Node,
)
from repro.parallel.pool import fork_context
from repro.sim.batch import BatchMachine
from repro.sim.machine import _MemRequest
from repro.sim.memory import TernaryMemory
from repro.sim.trace import CycleRecord

#: fork-inherited worker context: the elaborated CPU, the loaded template
#: machine, and the base memory image snapshots are delta-encoded against
_CTX: dict[str, Any] | None = None

#: chunks kept in flight per worker: 2 pipelines dispatch against compute
#: (a worker grabs its next chunk while the master merges the previous
#: one) without hoarding queue entries that an idle worker could steal
_CHUNKS_PER_WORKER = 2


# ----------------------------------------------------------------------
# Snapshot and record marshalling
# ----------------------------------------------------------------------
def _pack_snapshot(snap: dict[str, Any], ctx: dict[str, Any]) -> dict[str, Any]:
    """Machine snapshot -> picklable dict with delta-encoded memory."""
    memory = snap["memory"]
    base_words = ctx["base_words"]
    base_xmask = ctx["base_xmask"]
    if memory.words is base_words and memory.xmask is base_xmask:
        diff = None  # copy-on-write chain still shares the base image
    else:
        changed = np.flatnonzero(
            (memory.words != base_words) | (memory.xmask != base_xmask)
        )
        diff = (changed, memory.words[changed], memory.xmask[changed])
    return {
        "values": np.ascontiguousarray(snap["values"]),
        "mem_diff": diff,
        "cycle": snap["cycle"],
        "dout_value": snap["dout_value"],
        "dout_xmask": snap["dout_xmask"],
        "request": vars(snap["request"]).copy(),
        "prev_active": snap["prev_active"],
        "forced_inputs": dict(snap["forced_inputs"]),
        "next_dff_forces": dict(snap["next_dff_forces"]),
    }


def _unpack_snapshot(packed: dict[str, Any], ctx: dict[str, Any]) -> dict[str, Any]:
    """Rebuild a machine snapshot against the fork-inherited base image."""
    base_words = ctx["base_words"]
    base_xmask = ctx["base_xmask"]
    memory = TernaryMemory.__new__(TernaryMemory)
    memory.n_words = len(base_words)
    diff = packed["mem_diff"]
    if diff is None or len(diff[0]) == 0:
        # share the base arrays copy-on-write; every holder treats them
        # as shared, so the image itself is never written
        memory.words = base_words
        memory.xmask = base_xmask
        memory._shared = True
    else:
        changed, words, xmask = diff
        memory.words = base_words.copy()
        memory.xmask = base_xmask.copy()
        memory.words[changed] = words
        memory.xmask[changed] = xmask
        memory._shared = False
    memory._digest = None
    return {
        "values": packed["values"],
        "memory": memory,
        "cycle": packed["cycle"],
        "dout_value": packed["dout_value"],
        "dout_xmask": packed["dout_xmask"],
        "request": _MemRequest(**packed["request"]),
        "prev_active": packed["prev_active"],
        "forced_inputs": dict(packed["forced_inputs"]),
        "next_dff_forces": dict(packed["next_dff_forces"]),
    }


def _pack_node(node: dict[str, Any]) -> dict[str, Any]:
    """Stack one simulated segment's records into picklable matrices."""
    records = node.pop("records")
    node["cycles"] = [r.cycle for r in records]
    node["mem"] = [(r.mem_reads, r.mem_writes) for r in records]
    node["annotations"] = [r.annotations for r in records]
    if records and records[0].value_words is not None:
        node["value_words"] = np.stack([r.value_words for r in records])
        node["active_words"] = np.stack([r.active_words for r in records])
    elif records:
        node["values"] = np.stack([r.values for r in records])
        node["active"] = np.stack([r.active for r in records])
    return node


def _unpack_node(packed: dict[str, Any], packing) -> _Node:
    """Rebuild a :class:`_Node` with per-cycle records on the master."""
    records: list[CycleRecord] = []
    value_words = packed.get("value_words")
    for i, cycle in enumerate(packed["cycles"]):
        mem_reads, mem_writes = packed["mem"][i]
        if value_words is not None:
            record = CycleRecord(
                cycle=cycle,
                mem_reads=mem_reads,
                mem_writes=mem_writes,
                annotations=packed["annotations"][i],
                active_words=packed["active_words"][i],
                value_words=value_words[i],
                packing=packing,
            )
        else:
            record = CycleRecord(
                cycle=cycle,
                values=packed["values"][i],
                active=packed["active"][i],
                mem_reads=mem_reads,
                mem_writes=mem_writes,
                annotations=packed["annotations"][i],
            )
        records.append(record)
    return _Node(
        key=packed["key"],
        records=records,
        end=packed["end"],
        forks=packed["forks"],
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _simulate_chunk(
    chunk: list[tuple[bytes, dict[str, Any], dict[int, int]]],
) -> list[dict[str, Any]]:
    """Simulate a chunk of pending paths to halt/fork, lock-step.

    Runs in a fork-start worker; ``_CTX`` (the elaborated CPU, template
    machine, and base memory image) is inherited from the parent.  Each
    pending path becomes one lane; the chunk retires without refill —
    scheduling stays with the master, which is what keeps the global
    memoization exact.

    This loop mirrors ``repro.core.activity._explore_batched`` (the
    pre-step snapshot, the dispatch-record pop, the memo-key
    enumeration); keep the two in lockstep — the differential layer in
    ``tests/test_parallel.py`` enforces the equivalence.
    """
    ctx = _CTX
    cpu = ctx["cpu"]
    machine = ctx["machine"]
    evaluator = machine.evaluator
    batch = BatchMachine(
        machine.netlist,
        machine.ports,
        evaluator,
        len(chunk),
        annotator=machine.annotator,
        record_packed=True,
    )
    max_cycles_per_path = ctx["max_cycles_per_path"]
    name = ctx["name"]
    lane_node: dict[int, dict[str, Any]] = {}
    for key, packed_snap, forces in chunk:
        lane = batch.load(_unpack_snapshot(packed_snap, ctx), dict(forces))
        lane_node[id(lane)] = {
            "key": key,
            "records": [],
            "end": "",
            "forks": [],
            "fork_snapshot": None,
        }
    out: list[dict[str, Any]] = []
    while batch.lanes:
        # Pre-step snapshots: children restart from the state *before*
        # the X-condition dispatch cycle, exactly like the serial engines.
        snap_before = {id(lane): batch.snapshot(lane) for lane in batch.lanes}
        records = batch.step()
        for lane, record in zip(list(batch.lanes), records):
            node = lane_node[id(lane)]
            node["records"].append(record)
            if len(node["records"]) > max_cycles_per_path:
                raise PathExplosionError(
                    f"{name}: path exceeded {max_cycles_per_path} cycles"
                )
            view = batch.lane_view(lane)
            if cpu.halted(view):
                node["end"] = "halt"
            elif cpu.pc_next_unknown(view):
                assignments = cpu.branch_fork_assignments(view)
                node["records"].pop()
                node["end"] = "fork"
                snapshot = snap_before[id(lane)]
                node["fork_snapshot"] = _pack_snapshot(snapshot, ctx)
                for assignment in assignments:
                    child_key = _memo_key(evaluator, snapshot, assignment)
                    node["forks"].append((assignment, child_key))
            else:
                continue
            batch.retire(lane)
            out.append(_pack_node(lane_node.pop(id(lane))))
    return out


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
def explore_sharded(
    cpu,
    program,
    max_cycles: int,
    max_segments: int,
    max_cycles_per_path: int,
    batch_size: int,
    engine: str | None,
    workers: int,
    cancel=None,
) -> ExecutionTree:
    """Run Algorithm 1 with the pending-path queue sharded over *workers*.

    Returns the identical tree as
    :func:`repro.core.activity.explore` at any worker count.  Exploration
    budgets are enforced globally on the master (total cycles, segment
    count) and per path in the workers; an exhausted budget raises
    :class:`~repro.core.activity.PathExplosionError`, though — unlike the
    serial engines — the raise may come after more segments have been
    simulated, since several are in flight at once.  *cancel* is checked
    on the master between merge rounds; a set token cancels the pending
    futures and aborts with :class:`repro.parallel.cancel.JobCancelled`
    (the pool teardown reaps the worker processes).
    """
    global _CTX
    machine = cpu.make_machine(program, symbolic_inputs=True, engine=engine)
    evaluator = machine.evaluator
    packing = getattr(evaluator, "program", None)
    ctx = {
        "cpu": cpu,
        "machine": machine,
        "name": program.name,
        "max_cycles_per_path": max_cycles_per_path,
        "base_words": machine.memory.words,
        "base_xmask": machine.memory.xmask,
    }
    root = _pack_snapshot(machine.snapshot(), ctx)
    nodes: dict[bytes, _Node] = {}
    pending: list[tuple[bytes, dict[str, Any], dict[int, int]]] = [
        (_ROOT_KEY, root, {})
    ]
    seen: set[bytes] = {_ROOT_KEY}
    total_cycles = 0
    max_in_flight = workers * _CHUNKS_PER_WORKER
    _CTX = ctx
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=fork_context()
        ) as pool:
            futures: set = set()

            def dispatch() -> None:
                # Adaptive chunking: split the queue across every in-flight
                # slot, never exceeding the lock-step batch width.  Deep
                # queues amortize IPC over big chunks; shallow queues fall
                # back to single-path chunks so no worker sits idle while
                # another holds the only work.
                while pending and len(futures) < max_in_flight:
                    per_slot = -(-len(pending) // max_in_flight)
                    size = max(1, min(batch_size, per_slot))
                    take = min(size, len(pending))
                    chunk = [pending.pop() for _ in range(take)]
                    futures.add(pool.submit(_simulate_chunk, chunk))

            def merge(packed_node: dict[str, Any]) -> None:
                nonlocal total_cycles
                if len(nodes) >= max_segments:
                    raise PathExplosionError(
                        f"{program.name}: more than {max_segments} "
                        "path segments"
                    )
                node = _unpack_node(packed_node, packing)
                nodes[node.key] = node
                total_cycles += len(node.records)
                if total_cycles > max_cycles:
                    raise PathExplosionError(
                        f"{program.name}: exceeded {max_cycles} total cycles"
                    )
                snapshot = packed_node["fork_snapshot"]
                for assignment, child_key in node.forks:
                    if child_key not in seen:
                        seen.add(child_key)
                        pending.append((child_key, snapshot, assignment))

            dispatch()
            while futures:
                if cancel is not None and cancel.is_set():
                    for future in futures:
                        future.cancel()
                    cancel.check()
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    for packed_node in future.result():
                        merge(packed_node)
                dispatch()
    finally:
        _CTX = None
    return _assemble_tree(nodes, machine.netlist.n_nets, packing=packing)
