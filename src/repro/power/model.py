"""Per-cycle power computation from value traces.

Power in cycle *c* is the energy of every output transition between cycles
*c-1* and *c* (per-cell rise/fall energies from the library), plus the
behavioral memory access energy, divided by the clock period, plus leakage:

    P(c) = (sum_g E_trans(g, dir) + E_mem(c)) / T_clk + P_leak

Units: energies in femtojoules, clock in nanoseconds, power in milliwatts
(1 fJ/ns = 1 uW).  Per-module breakdowns use the netlist's top-level module
tags, matching the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cells import CellLibrary
from repro.netlist.core import Netlist

#: Per-module transition-energy scaling, matched by the longest module-path
#: prefix.  Synthesis maps slack-rich blocks (the multiplier array) to
#: minimum-drive cells, and the register file stands in for a compact
#: custom macro rather than a discrete-mux-tree — without these scalings
#: the gate-count of those structures would dwarf the core and invert the
#: paper's technique ordering.
DEFAULT_MODULE_ENERGY_SCALE = {
    "multiplier": 0.08,
    "exec_unit": 0.45,
    "exec_unit/regfile": 0.25,
    "exec_unit/alu": 0.3,
    "mem_backbone": 0.5,
}


def _scale_for(module: str, scale_map: dict[str, float]) -> float:
    """Longest-prefix lookup of *module* in *scale_map*."""
    best_len = -1
    best = 1.0
    for prefix, scale in scale_map.items():
        if module == prefix or module.startswith(prefix + "/"):
            if len(prefix) > best_len:
                best_len = len(prefix)
                best = scale
    return best


@dataclass
class PowerTrace:
    """Per-cycle total power plus per-module breakdown, all in mW."""

    total_mw: np.ndarray
    module_mw: dict[str, np.ndarray] = field(default_factory=dict)
    leakage_mw: float = 0.0
    clock_ns: float = 10.0

    def __len__(self) -> int:
        return len(self.total_mw)

    def peak(self) -> float:
        return float(self.total_mw.max()) if len(self.total_mw) else 0.0

    def peak_cycle(self) -> int:
        return int(self.total_mw.argmax())

    def average(self) -> float:
        return float(self.total_mw.mean()) if len(self.total_mw) else 0.0

    def energy_pj(self) -> float:
        """Total energy of the trace in picojoules."""
        return float(self.total_mw.sum() * self.clock_ns)

    def energy_per_cycle_pj(self) -> float:
        return self.energy_pj() / max(len(self.total_mw), 1)

    def top_modules(self, cycle: int, count: int = 8) -> list[tuple[str, float]]:
        """Module power ranking at *cycle* — the §3.5 COI breakdown."""
        ranking = sorted(
            ((name, float(series[cycle])) for name, series in self.module_mw.items()),
            key=lambda item: -item[1],
        )
        return ranking[:count]


class PowerModel:
    """Characterizes one netlist against one cell library."""

    def __init__(
        self,
        netlist: Netlist,
        library: CellLibrary,
        clock_ns: float = 10.0,
        module_energy_scale: dict[str, float] | None = None,
    ):
        self.netlist = netlist
        self.library = library
        self.clock_ns = clock_ns
        scale_map = (
            DEFAULT_MODULE_ENERGY_SCALE
            if module_energy_scale is None
            else module_energy_scale
        )

        n = netlist.n_nets
        self.e_rise = np.zeros(n)
        self.e_fall = np.zeros(n)
        self.max_prev = np.zeros(n, dtype=np.uint8)
        self.max_cur = np.ones(n, dtype=np.uint8)
        leakage_nw = 0.0
        self.module_clk_fj: dict[str, float] = {}
        for gate in netlist.gates:
            cell = library.cell_for_gate(gate.kind)
            top = gate.module.split("/", 1)[0] if gate.module else "misc"
            scale = _scale_for(gate.module, scale_map)
            self.e_rise[gate.index] = cell.e_rise_fj * scale
            self.e_fall[gate.index] = cell.e_fall_fj * scale
            prev, cur = cell.max_power_transition()
            self.max_prev[gate.index] = prev
            self.max_cur[gate.index] = cur
            leakage_nw += cell.leakage_nw
            if cell.e_clk_fj:
                self.module_clk_fj[top] = (
                    self.module_clk_fj.get(top, 0.0) + cell.e_clk_fj * scale
                )
        leakage_nw += library.mem_leakage_nw
        self.leakage_mw = leakage_nw * 1e-6
        #: Clock-pin energy burned every cycle by the sequential cells —
        #: input-independent, so it raises bound and measurement equally.
        self.clock_pin_fj = sum(self.module_clk_fj.values())

        self.module_masks: dict[str, np.ndarray] = {}
        for name, indices in netlist.gates_by_top_module().items():
            mask = np.zeros(n, dtype=bool)
            mask[indices] = True
            self.module_masks[name] = mask
        #: per-module net columns and compacted transition-energy weights:
        #: a module's energy in one cycle is ``rising[:, cols] . w_rise``
        #: + ``falling[:, cols] . w_fall`` — modules partition the nets,
        #: so compacted dots cost one full-width pass across *all* modules
        #: instead of one per module.
        self._module_cols = {
            name: np.flatnonzero(mask)
            for name, mask in self.module_masks.items()
        }
        self._module_rise_w = {
            name: self.e_rise[cols] for name, cols in self._module_cols.items()
        }
        self._module_fall_w = {
            name: self.e_fall[cols] for name, cols in self._module_cols.items()
        }

    # ------------------------------------------------------------------
    # Activity statistics
    # ------------------------------------------------------------------
    def activity_profile(self, trace) -> dict:
        """Per-cycle activity statistics of a simulation trace.

        On bitplane-engine traces the counts come straight from the packed
        activity words (``np.bitwise_count`` over uint64 planes, 64 nets
        per word) without unpacking; reference traces fall back to bool
        sums.  Both count the same paper-defined active set, so the stats
        are engine-independent — the perf harness records them per
        benchmark as a cheap cross-engine consistency signal.
        """
        counts = trace.activity_counts()
        toggled = trace.toggled_any()
        n_cells = len(self.netlist.cell_gate_indices())
        return {
            "mean_active_nets": round(float(counts.mean()), 1) if len(counts) else 0.0,
            "max_active_nets": int(counts.max()) if len(counts) else 0,
            "toggled_nets": int(toggled.sum()),
            "cell_count": n_cells,
        }

    # ------------------------------------------------------------------
    # Core computation
    # ------------------------------------------------------------------
    def mem_energy_fj(self, mem_accesses: np.ndarray | None) -> np.ndarray | None:
        """Price a (n_cycles, 2) [reads, writes] matrix with the library."""
        if mem_accesses is None:
            return None
        return (
            mem_accesses[:, 0] * self.library.mem_read_energy_fj
            + mem_accesses[:, 1] * self.library.mem_write_energy_fj
        )

    #: rows per transition-energy chunk in :meth:`trace_power`.  Bounds
    #: the (chunk, n_nets) float64 working set to a few MB so evaluating a
    #: whole stacked trace in one call stays cache-resident instead of
    #: streaming hundreds of MB of temporaries; chunking is row-wise, so
    #: results are bit-identical regardless of the chunk size.
    TRACE_CHUNK_ROWS = 256

    def _transition_chunk(
        self,
        prev: np.ndarray,
        cur: np.ndarray,
        module_names: list[str],
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Transition energies for paired value rows: totals + per-module.

        The kernel behind both :meth:`trace_power` and
        :meth:`transition_power`.  einsum, not ``@``: BLAS matvec blocks
        by matrix shape, so its row sums would depend on how the trace was
        chunked; einsum reduces each row identically whatever the chunk
        height, keeping results bit-identical across engines, chunk sizes,
        and row subsets.
        """
        toggled = prev != cur
        rising = (toggled & (cur != 0)).astype(np.float64)
        falling = (toggled & (cur == 0)).astype(np.float64)
        totals = np.einsum("cn,n->c", rising, self.e_rise)
        totals += np.einsum("cn,n->c", falling, self.e_fall)
        module_fj: dict[str, np.ndarray] = {}
        for name in module_names:
            cols = self._module_cols[name]
            series = np.einsum(
                "ck,k->c", rising[:, cols], self._module_rise_w[name]
            )
            series += np.einsum(
                "ck,k->c", falling[:, cols], self._module_fall_w[name]
            )
            module_fj[name] = series
        return totals, module_fj

    def _assemble_power(
        self,
        totals: np.ndarray,
        module_fj: dict[str, np.ndarray],
        mem_accesses: np.ndarray | None,
        per_module: bool,
    ) -> PowerTrace:
        """Fold memory/clock/leakage into energies; convert to mW."""
        n_rows = len(totals)
        mem_energy_fj = self.mem_energy_fj(mem_accesses)
        if mem_energy_fj is not None:
            totals = totals + mem_energy_fj
        totals = totals + self.clock_pin_fj + self.library.mem_idle_fj
        total_mw = totals / self.clock_ns * 1e-3 + self.leakage_mw
        module_mw: dict[str, np.ndarray] = {}
        if per_module:
            for name, series in module_fj.items():
                series = series + self.module_clk_fj.get(name, 0.0)
                module_mw[name] = series / self.clock_ns * 1e-3
            mem_series = np.full(n_rows, self.library.mem_idle_fj)
            if mem_energy_fj is not None:
                mem_series = mem_series + mem_energy_fj
            module_mw["mem_backbone"] = module_mw.get(
                "mem_backbone", np.zeros(n_rows)
            ) + mem_series / self.clock_ns * 1e-3
        return PowerTrace(
            total_mw=total_mw,
            module_mw=module_mw,
            leakage_mw=self.leakage_mw,
            clock_ns=self.clock_ns,
        )

    def trace_power(
        self,
        values_matrix: np.ndarray,
        mem_accesses: np.ndarray | None = None,
        per_module: bool = False,
        workers: int = 1,
    ) -> PowerTrace:
        """Power trace for a fully (or partially) resolved value matrix.

        Transitions into or out of X count as transitions at the rising
        energy — conservative for the few never-initialized nets of a
        concrete run; the symbolic flows resolve Xs before calling this.
        Accepts arbitrarily long traces: the transition-energy matrix is
        reduced in bounded row chunks, never materialized whole.  With
        ``workers > 1`` the chunks run on the shared kernel thread pool
        (einsum releases the GIL; every chunk writes a disjoint row
        range, so results are bit-identical at any worker count).
        """
        n_rows = len(values_matrix)
        totals = np.zeros(n_rows)
        module_names = list(self.module_masks) if per_module else []
        module_fj = {name: np.zeros(n_rows) for name in module_names}

        def price(start: int, stop: int) -> None:
            # Row start-1 supplies each chunk row's previous values.
            chunk_totals, chunk_modules = self._transition_chunk(
                values_matrix[start - 1 : stop - 1],
                values_matrix[start:stop],
                module_names,
            )
            totals[start:stop] = chunk_totals
            for name in module_names:
                module_fj[name][start:stop] = chunk_modules[name]

        self._map_chunks(price, 1, n_rows, workers)
        return self._assemble_power(totals, module_fj, mem_accesses, per_module)

    def transition_power(
        self,
        prev_rows: np.ndarray,
        cur_rows: np.ndarray,
        mem_accesses: np.ndarray | None = None,
        per_module: bool = False,
        workers: int = 1,
    ) -> PowerTrace:
        """Power of explicit ``(previous, current)`` value-row pairs.

        Row *i* prices the transition ``prev_rows[i] -> cur_rows[i]`` —
        same kernel, constants, and bit-exact results as
        :meth:`trace_power`, but over an arbitrary subset of a trace's
        rows.  The stacked Algorithm 2 engine uses this to evaluate each
        parity profile only at the rows the peak trace actually takes
        from it, halving the energy-kernel work.  ``workers`` threads the
        chunk loop exactly like :meth:`trace_power`.
        """

        def pairs(start: int, stop: int):
            return prev_rows[start:stop], cur_rows[start:stop]

        return self.pair_power(
            pairs, len(cur_rows), mem_accesses, per_module, workers
        )

    def pair_power(
        self,
        pairs,
        n_rows: int,
        mem_accesses: np.ndarray | None = None,
        per_module: bool = False,
        workers: int = 1,
    ) -> PowerTrace:
        """Like :meth:`transition_power`, but *pulls* each chunk's
        ``(prev, cur)`` row pairs from ``pairs(start, stop)`` instead of
        receiving the full matrices up front.

        This inverts the dataflow so a producer whose pairs are
        *derived* (gathered, X-assigned) can do that work per chunk too:
        the whole gather → assign → price pipeline then runs inside one
        :attr:`TRACE_CHUNK_ROWS` working set instead of streaming
        full-trace temporaries through memory — the blocked Algorithm 2
        walk in :mod:`repro.core.peakpower` is the customer.  Chunks
        cover disjoint row spans and each is priced by the same kernel
        on the same rows whatever the chunk size, so results are
        bit-identical to the eager path at any worker count (``pairs``
        must therefore be pure per span, which a gather/assign of
        disjoint target rows is).
        """
        totals = np.zeros(n_rows)
        module_names = list(self.module_masks) if per_module else []
        module_fj = {name: np.zeros(n_rows) for name in module_names}

        def price(start: int, stop: int) -> None:
            prev_chunk, cur_chunk = pairs(start, stop)
            chunk_totals, chunk_modules = self._transition_chunk(
                prev_chunk, cur_chunk, module_names
            )
            totals[start:stop] = chunk_totals
            for name in module_names:
                module_fj[name][start:stop] = chunk_modules[name]

        self._map_chunks(price, 0, n_rows, workers)
        return self._assemble_power(totals, module_fj, mem_accesses, per_module)

    def _map_chunks(self, price, first_row: int, n_rows: int, workers: int) -> None:
        """Run *price* over TRACE_CHUNK_ROWS-sized spans, threaded when
        asked; chunking is row-wise so the split never changes results."""
        from repro.parallel.kernel import map_spans

        chunk = self.TRACE_CHUNK_ROWS
        spans = [
            (start, min(start + chunk, n_rows))
            for start in range(first_row, n_rows, chunk)
        ]
        map_spans(workers, spans, price)


def design_tool_rating(
    model: PowerModel,
    toggle_rate: float | None = None,
    mem_access_rate: float = 1.0,
) -> tuple[float, float]:
    """The design-specification baseline (Figure 1.4, "design tool").

    Emulates rating the design with the tool's default switching activity:
    every cell toggles with probability *toggle_rate* each cycle at its
    worst-case transition energy, and the memory is accessed every cycle.
    Returns ``(peak_power_mw, energy_per_cycle_pj)``.
    """
    library = model.library
    rate = library.default_toggle_rate if toggle_rate is None else toggle_rate
    worst = np.maximum(model.e_rise, model.e_fall)
    switching_fj = rate * worst.sum()
    mem_fj = mem_access_rate * library.mem_read_energy_fj
    power_mw = (
        switching_fj + mem_fj + model.clock_pin_fj + library.mem_idle_fj
    ) / model.clock_ns * 1e-3 + model.leakage_mw
    energy_pj = power_mw * model.clock_ns
    return power_mw, energy_pj
