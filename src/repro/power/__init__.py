"""Activity-based gate-level power analysis (the PrimeTime stand-in)."""

from repro.power.model import PowerModel, PowerTrace, design_tool_rating

__all__ = ["PowerModel", "PowerTrace", "design_tool_rating"]
