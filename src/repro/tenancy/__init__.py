"""Multi-tenancy primitives for the analysis gateway.

``keyring`` answers *who is this* (hashed API keys → tenants with
budgets); ``limits`` answers *may they do this right now* (token-bucket
rates + concurrent-job quotas).  The service layer composes both in
front of the upload pipeline; nothing in here knows about HTTP.
"""

from .keyring import (
    KEY_PREFIX,
    Keyring,
    KeyringError,
    Tenant,
    TenantQuotas,
    generate_key,
    hash_key,
)
from .limits import Decision, JobQuota, RateLimiter

__all__ = [
    "KEY_PREFIX",
    "Keyring",
    "KeyringError",
    "Tenant",
    "TenantQuotas",
    "generate_key",
    "hash_key",
    "Decision",
    "JobQuota",
    "RateLimiter",
]
