"""Per-tenant admission control: token-bucket rates and job quotas.

Two independent budgets gate expensive requests:

* a **token bucket** per tenant (capacity = ``burst``, refill =
  ``requests_per_min``/60 tokens per second) throttles request *rate*;
* a **concurrent-job quota** caps how many of a tenant's jobs may be
  queued or running at once, so one tenant cannot occupy the whole
  scheduler.

Both answer with a ``RetryAfter`` hint so the server can emit an honest
``Retry-After`` header and the client can back off without guessing.
All state is in-memory — limits reset on server restart, which is the
right trade for a rate limiter (a restart forgiving a few requests is
harmless; persisting buckets is not).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from .keyring import TenantQuotas


@dataclass(frozen=True)
class Decision:
    """Outcome of an admission check."""

    allowed: bool
    #: seconds until the request would be admitted (0 when allowed);
    #: already ceil'd to an integer suitable for a Retry-After header
    retry_after_s: int = 0
    #: which budget said no: "rate" or "jobs" (empty when allowed)
    reason: str = ""


class _Bucket:
    __slots__ = ("tokens", "stamp")

    def __init__(self, tokens: float, stamp: float) -> None:
        self.tokens = tokens
        self.stamp = stamp


class RateLimiter:
    """Token buckets keyed by tenant id."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._buckets: dict[str, _Bucket] = {}
        self._lock = threading.Lock()

    def check(self, tenant_id: str, quotas: TenantQuotas) -> Decision:
        """Consume one token if available, else say when one will be."""
        rate = quotas.requests_per_min / 60.0
        capacity = float(max(1, quotas.burst))
        if rate <= 0:
            return Decision(False, retry_after_s=60, reason="rate")
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(tenant_id)
            if bucket is None:
                bucket = _Bucket(capacity, now)
                self._buckets[tenant_id] = bucket
            elapsed = max(0.0, now - bucket.stamp)
            bucket.tokens = min(capacity, bucket.tokens + elapsed * rate)
            bucket.stamp = now
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                return Decision(True)
            wait = (1.0 - bucket.tokens) / rate
        return Decision(False, retry_after_s=max(1, math.ceil(wait)), reason="rate")


class JobQuota:
    """Counts a tenant's in-flight (queued or running) jobs."""

    def __init__(self) -> None:
        self._active: dict[str, int] = {}
        self._lock = threading.Lock()

    def try_acquire(self, tenant_id: str, quotas: TenantQuotas) -> Decision:
        limit = quotas.max_concurrent_jobs
        with self._lock:
            current = self._active.get(tenant_id, 0)
            if limit > 0 and current >= limit:
                # no refill schedule to predict here — a job has to
                # finish; suggest a short fixed poll interval
                return Decision(False, retry_after_s=2, reason="jobs")
            self._active[tenant_id] = current + 1
        return Decision(True)

    def note(self, tenant_id: str) -> None:
        """Unconditionally count one active job (used when requeuing a
        tenant's journaled jobs on recovery — they hold slots exactly
        like live submissions, but must never be refused)."""
        with self._lock:
            self._active[tenant_id] = self._active.get(tenant_id, 0) + 1

    def release(self, tenant_id: str) -> None:
        with self._lock:
            current = self._active.get(tenant_id, 0)
            if current <= 1:
                self._active.pop(tenant_id, None)
            else:
                self._active[tenant_id] = current - 1

    def active(self, tenant_id: str) -> int:
        with self._lock:
            return self._active.get(tenant_id, 0)
