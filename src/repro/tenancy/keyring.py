"""API-key keyring: who may talk to the gateway, and with what budget.

The multi-tenant gateway authenticates every request against a keyring
file — a small JSON document mapping **hashed** API keys to tenants.
Plaintext keys are never stored: ``repro keys add`` generates a key,
prints it exactly once, and persists only its SHA-256.  Losing the key
means issuing a new one, exactly like any production API-key scheme.

File format (``keyring.json``)::

    {
      "version": 1,
      "tenants": [
        {
          "id": "acme",
          "key_sha256": "<64 hex chars>",
          "admin": false,
          "revoked": false,
          "created": 1754600000.0,
          "quotas": {
            "requests_per_min": 120,
            "burst": 20,
            "max_concurrent_jobs": 4,
            "max_source_bytes": 262144,
            "result_ttl_s": 604800.0
          }
        }
      ]
    }

Unknown quota keys are ignored and missing ones take the defaults, so a
newer server reads an older keyring (and vice versa).  The server
re-stats the file on each authentication and reloads when it changed,
so ``repro keys add``/``revoke`` against a live server's keyring take
effect without a restart.

Admin tenants (``admin: true``) may additionally use the store
maintenance endpoints and see every tenant's jobs; ordinary tenants see
only their own namespace.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import secrets
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

#: prefix on every generated key — makes leaked keys grep-able and
#: lets the server reject garbage before hashing
KEY_PREFIX = "rk_"

#: default per-tenant budgets (a keyring entry may override any subset)
DEFAULT_REQUESTS_PER_MIN = 120.0
DEFAULT_BURST = 20
DEFAULT_MAX_CONCURRENT_JOBS = 4
DEFAULT_MAX_SOURCE_BYTES = 256 * 1024
DEFAULT_MAX_JOB_SECONDS = 300.0
DEFAULT_RESULT_TTL_S = 7 * 24 * 3600.0


class KeyringError(Exception):
    """A malformed keyring file or an invalid admin operation."""


def hash_key(key: str) -> str:
    """The stored form of an API key (SHA-256 hex)."""
    return hashlib.sha256(key.encode()).hexdigest()


def generate_key() -> str:
    """A fresh API key: ``rk_`` + 192 bits of urlsafe randomness."""
    return KEY_PREFIX + secrets.token_urlsafe(24)


@dataclass(frozen=True)
class TenantQuotas:
    """Per-tenant budgets the gateway enforces."""

    requests_per_min: float = DEFAULT_REQUESTS_PER_MIN
    burst: int = DEFAULT_BURST
    max_concurrent_jobs: int = DEFAULT_MAX_CONCURRENT_JOBS
    max_source_bytes: int = DEFAULT_MAX_SOURCE_BYTES
    max_job_seconds: float = DEFAULT_MAX_JOB_SECONDS
    result_ttl_s: float = DEFAULT_RESULT_TTL_S

    def to_dict(self) -> dict:
        return {
            "requests_per_min": self.requests_per_min,
            "burst": self.burst,
            "max_concurrent_jobs": self.max_concurrent_jobs,
            "max_source_bytes": self.max_source_bytes,
            "max_job_seconds": self.max_job_seconds,
            "result_ttl_s": self.result_ttl_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantQuotas":
        """Tolerant parse: unknown keys ignored, missing keys default."""
        kwargs = {}
        for name, caster in (
            ("requests_per_min", float),
            ("burst", int),
            ("max_concurrent_jobs", int),
            ("max_source_bytes", int),
            ("max_job_seconds", float),
            ("result_ttl_s", float),
        ):
            value = data.get(name)
            if value is not None:
                try:
                    kwargs[name] = caster(value)
                except (TypeError, ValueError):
                    raise KeyringError(
                        f"quota {name} must be a number, got {value!r}"
                    ) from None
        return cls(**kwargs)


@dataclass(frozen=True)
class Tenant:
    """One authenticated principal."""

    id: str
    key_sha256: str
    admin: bool = False
    revoked: bool = False
    created: float = field(default_factory=time.time)
    quotas: TenantQuotas = field(default_factory=TenantQuotas)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "key_sha256": self.key_sha256,
            "admin": self.admin,
            "revoked": self.revoked,
            "created": self.created,
            "quotas": self.quotas.to_dict(),
        }


def _parse_tenant(data: dict) -> Tenant:
    tenant_id = data.get("id")
    key_sha256 = data.get("key_sha256")
    if not isinstance(tenant_id, str) or not tenant_id:
        raise KeyringError("tenant entry is missing a string 'id'")
    if not isinstance(key_sha256, str) or len(key_sha256) != 64:
        raise KeyringError(
            f"tenant {tenant_id!r} is missing a valid 'key_sha256'"
        )
    quotas = data.get("quotas")
    return Tenant(
        id=tenant_id,
        key_sha256=key_sha256,
        admin=bool(data.get("admin", False)),
        revoked=bool(data.get("revoked", False)),
        created=float(data.get("created", 0.0) or 0.0),
        quotas=TenantQuotas.from_dict(
            quotas if isinstance(quotas, dict) else {}
        ),
    )


class Keyring:
    """The set of tenants loaded from (and saved to) a keyring file.

    ``authenticate`` is the hot path: it re-stats the file and reloads
    on mtime change (so key rotation against a live server works), then
    matches the presented key's hash against every non-revoked tenant
    with ``hmac.compare_digest``.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._tenants: dict[str, Tenant] = {}
        self._loaded_mtime: float | None = None
        if self.path.exists():
            self.reload()

    # -- persistence ----------------------------------------------------

    def reload(self) -> None:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError as err:
            raise KeyringError(f"cannot read keyring {self.path}: {err}")
        try:
            data = json.loads(raw)
        except ValueError as err:
            raise KeyringError(f"keyring {self.path} is not valid JSON: {err}")
        if not isinstance(data, dict) or not isinstance(
            data.get("tenants"), list
        ):
            raise KeyringError(
                f"keyring {self.path} must be an object with a 'tenants' list"
            )
        tenants: dict[str, Tenant] = {}
        for entry in data["tenants"]:
            if not isinstance(entry, dict):
                raise KeyringError("tenant entries must be objects")
            tenant = _parse_tenant(entry)
            if tenant.id in tenants:
                raise KeyringError(f"duplicate tenant id {tenant.id!r}")
            tenants[tenant.id] = tenant
        self._tenants = tenants
        try:
            self._loaded_mtime = self.path.stat().st_mtime
        except OSError:
            self._loaded_mtime = None

    def save(self) -> None:
        """Atomically persist the keyring, owner-readable only."""
        payload = {
            "version": 1,
            "tenants": [t.to_dict() for t in self._tenants.values()],
        }
        data = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        scratch = self.path.with_name(f"{self.path.name}.tmp{os.getpid()}")
        try:
            scratch.write_text(data, encoding="utf-8")
            os.chmod(scratch, 0o600)
            os.replace(scratch, self.path)
        except BaseException:
            try:
                scratch.unlink()
            except OSError:
                pass
            raise
        try:
            self._loaded_mtime = self.path.stat().st_mtime
        except OSError:
            self._loaded_mtime = None

    def _maybe_reload(self) -> None:
        try:
            mtime = self.path.stat().st_mtime
        except OSError:
            return
        if self._loaded_mtime is None or mtime != self._loaded_mtime:
            try:
                self.reload()
            except KeyringError:
                # a half-written keyring must not take down a live
                # server's auth; keep serving the last good snapshot
                pass

    # -- queries --------------------------------------------------------

    def tenants(self) -> list[Tenant]:
        return list(self._tenants.values())

    def get(self, tenant_id: str) -> Tenant | None:
        return self._tenants.get(tenant_id)

    def authenticate(self, presented: str | None) -> Tenant | None:
        """The tenant owning *presented*, or None (unknown/revoked/empty)."""
        if not presented or not presented.startswith(KEY_PREFIX):
            return None
        self._maybe_reload()
        digest = hash_key(presented)
        for tenant in self._tenants.values():
            if tenant.revoked:
                continue
            if hmac.compare_digest(tenant.key_sha256, digest):
                return tenant
        return None

    # -- admin operations (the `repro keys` verbs) ----------------------

    def add(
        self,
        tenant_id: str,
        admin: bool = False,
        quotas: TenantQuotas | None = None,
    ) -> tuple[Tenant, str]:
        """Create a tenant; returns ``(tenant, plaintext_key)``.

        The plaintext key exists only in the return value — persist it
        on the caller's side or lose it.
        """
        if not tenant_id or not all(
            c.isalnum() or c in "-_." for c in tenant_id
        ):
            raise KeyringError(
                f"tenant id must be [A-Za-z0-9._-]+, got {tenant_id!r}"
            )
        if tenant_id in self._tenants:
            raise KeyringError(f"tenant {tenant_id!r} already exists")
        key = generate_key()
        tenant = Tenant(
            id=tenant_id,
            key_sha256=hash_key(key),
            admin=admin,
            quotas=quotas if quotas is not None else TenantQuotas(),
        )
        self._tenants[tenant_id] = tenant
        self.save()
        return tenant, key

    def revoke(self, tenant_id: str) -> Tenant:
        """Mark a tenant revoked (kept in the file for audit)."""
        tenant = self._tenants.get(tenant_id)
        if tenant is None:
            raise KeyringError(f"unknown tenant {tenant_id!r}")
        revoked = replace(tenant, revoked=True)
        self._tenants[tenant_id] = revoked
        self.save()
        return revoked
