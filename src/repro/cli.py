"""Command-line interface.

Usage::

    python -m repro analyze  prog.asm [--loop-bound N] [--vcd-dir DIR]
    python -m repro profile  prog.asm --inputs 1,2,3 [--inputs 4,5,6 ...]
    python -m repro coi      prog.asm [--count N]
    python -m repro suite    [--benchmarks mult,tea8,...] [--jobs N]
                             [--no-cache] [--islands N]
    python -m repro bench    [--benchmarks ...] [--output BENCH_suite.json]
    python -m repro conformance [--benchmarks ...] [--fuzz N] [--seed S]
                             [--engine E]
    python -m repro serve    [--host H] [--port P] [--max-jobs N]
                             [--keyring FILE]
    python -m repro submit   BENCHMARK [--url URL] [--kind analyze|...]
    python -m repro upload   prog.asm [--url URL] [--api-key KEY]
    python -m repro keys     add|list|revoke [--keyring FILE] ...
    python -m repro cache    stats | gc --max-mb N

``analyze`` prints the guaranteed input-independent peak power and energy
for an assembly program whose ``.input`` regions are symbolic; ``profile``
measures concrete input sets and applies the 4/3 guardband; ``coi`` shows
the cycles of interest with culprit instructions; ``suite`` runs the
Table 4.1 benchmarks end to end (process-parallel, store-cached);
``bench`` times the scalar vs batched engines and writes a perf-trajectory
JSON artifact; ``conformance`` co-executes benchmarks and/or seeded fuzz
programs lock-step on the behavioral ISS and the gate-level engines,
exits 1 with a written reproducer on any architectural divergence (infra
errors exit 2).

The service verbs turn sizing questions into repeatable queries:
``serve`` runs the HTTP analysis service (async job scheduler +
content-addressed artifact store, see :mod:`repro.service`); ``submit``
sends one job to a running server and prints the bound; ``upload``
posts arbitrary assembly source to a (possibly tenanted) server's
``POST /v1/programs`` gateway and waits for the bound; ``keys``
administers the API-key keyring file ``serve --keyring`` reads
(``add`` prints the plaintext key exactly once — only its hash is
stored); ``cache`` inspects (``stats``) or trims (``gc --max-mb N``)
the artifact store, including seed-era legacy pickles.

Engine knobs shared by the analysis commands: ``--engine bitplane``
(default) simulates on packed dual-rail uint64 bit planes, ``--engine
native`` on a per-netlist C kernel compiled and cached at first use
(one foreign call per settle; falls back to bitplane with a warning when
no C compiler is available), ``--engine reference`` on the original
uint8 evaluator — bit-identical results every way (also settable via
``REPRO_ENGINE``).  ``--batch-size N`` settles N
execution paths in lock-step (1 = one path at a time; default 32 for the
bitplane engine, 8 for the reference engine, or ``REPRO_BATCH_SIZE``).
``--workers N`` spreads one analysis over N cores — sharded path-queue
exploration, threaded Algorithm 2 kernel, island-parallel GA — with
bit-identical results at any count (``0`` = one per core, also
``REPRO_WORKERS``).  ``suite --no-cache`` (or ``REPRO_NO_CACHE=1``)
bypasses the versioned disk cache; ``suite`` composes ``--jobs``
(benchmark fan-out) with ``--workers`` (per-benchmark sharding) without
oversubscribing the host.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.asm import assemble
from repro.cells import SG65
from repro.core import analyze
from repro.core.baselines import GUARDBAND, input_profiling
from repro.core.coi import cycles_of_interest, dominant_modules
from repro.cpu import build_ulp430
from repro.power import PowerModel
from repro.sim.bitplane import ENGINES


class CliError(Exception):
    """A user-input error: printed to stderr, exit status 2, no traceback."""


def _resolve_benchmarks(spec: str | None) -> list[str] | None:
    """Validate a ``--benchmarks`` list against the registry.

    Returns ``None`` for "all benchmarks"; raises :class:`CliError`
    naming the offending entries and every valid name (instead of the
    raw ``KeyError`` traceback the suite used to die with).
    """
    from repro.bench.suite import ALL_BENCHMARKS

    if spec is None:
        return None
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise CliError("--benchmarks selected nothing")
    unknown = [name for name in names if name not in ALL_BENCHMARKS]
    if unknown:
        listed = ", ".join(repr(name) for name in unknown)
        plural = "s" if len(unknown) > 1 else ""
        valid = ", ".join(sorted(ALL_BENCHMARKS))
        raise CliError(
            f"unknown benchmark{plural} {listed}; valid names: {valid}"
        )
    return names


def _load_program(path: str):
    source = Path(path).read_text()
    return assemble(source, Path(path).stem)


def _make_context():
    cpu = build_ulp430()
    model = PowerModel(cpu.netlist, SG65, clock_ns=10.0)
    return cpu, model


def _apply_engine(args: argparse.Namespace) -> None:
    """Export --engine/--workers/--islands so everything downstream
    honors them."""
    if getattr(args, "engine", None):
        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "workers", None) is not None:
        os.environ["REPRO_WORKERS"] = str(args.workers)
    if getattr(args, "islands", None) is not None:
        os.environ["REPRO_ISLANDS"] = str(args.islands)
    if getattr(args, "migration_interval", None) is not None:
        os.environ["REPRO_MIGRATION_INTERVAL"] = str(args.migration_interval)


def cmd_analyze(args: argparse.Namespace) -> int:
    _apply_engine(args)
    cpu, model = _make_context()
    program = _load_program(args.program)
    report = analyze(
        cpu, program, model,
        loop_bound=args.loop_bound, vcd_dir=args.vcd_dir,
        batch_size=args.batch_size, engine=args.engine,
        workers=args.workers,
    )
    if args.json:
        import json

        # machine-readable, bit-exact floats (repr round-trip) — the CI
        # gateway smoke compares this against an uploaded bound
        print(json.dumps(report.to_payload(), sort_keys=True))
        return 0
    print(report.summary())
    print(f"peak power : {report.peak_power_mw:.3f} mW (all inputs)")
    print(f"peak energy: {report.peak_energy_pj:.1f} pJ over "
          f"{report.peak_energy.path_cycles} cycles")
    print(f"NPE        : {report.npe_pj_per_cycle:.3f} pJ/cycle")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    _apply_engine(args)
    cpu, model = _make_context()
    program = _load_program(args.program)
    input_sets = [
        [int(token, 0) for token in spec.split(",")] for spec in args.inputs
    ]
    profile = input_profiling(
        cpu, program, input_sets, model, batch_size=args.batch_size
    )
    for run in profile.runs:
        print(f"inputs={run.inputs}: peak {run.peak_power_mw:.3f} mW, "
              f"{run.energy_pj:.1f} pJ over {run.cycles} cycles")
    print(f"observed peak : {profile.observed_peak_power_mw:.3f} mW")
    print(f"guardbanded   : {profile.guardbanded_peak_power_mw:.3f} mW "
          f"(x{GUARDBAND:.2f})")
    return 0


def cmd_coi(args: argparse.Namespace) -> int:
    _apply_engine(args)
    cpu, model = _make_context()
    program = _load_program(args.program)
    report = analyze(
        cpu, program, model,
        loop_bound=args.loop_bound, batch_size=args.batch_size,
        engine=args.engine, workers=args.workers,
    )
    reports = cycles_of_interest(
        report.tree, report.peak_power, program, count=args.count
    )
    for coi in reports:
        print(coi.describe())
    print(f"dominant modules: {dominant_modules(reports)[:4]}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.bench import runner

    _apply_engine(args)
    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    results = runner.run_suite(
        _resolve_benchmarks(args.benchmarks),  # None = all benchmarks
        jobs=args.jobs,
        batch_size=args.batch_size,
        no_cache=args.no_cache,
        engine=args.engine,
        workers=args.workers,
        islands=args.islands,
        migration_interval=args.migration_interval,
    )
    for result in results:
        print(f"{result.name:>10}: peak {result.peak_power_mw:.3f} mW, "
              f"NPE {result.npe_pj_per_cycle:.2f} pJ/cycle, "
              f"{result.n_segments} segments")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.perf import run_perf_suite, write_report

    _apply_engine(args)

    names = _resolve_benchmarks(args.benchmarks)
    report = run_perf_suite(
        names, batch_size=args.batch_size, repeats=args.repeats,
        workers=args.workers, islands=args.islands,
        migration_interval=args.migration_interval,
    )
    write_report(report, args.output)
    for row in report["benchmarks"]:
        ex = row["explore"]
        native = (
            f"native {ex['native_speedup']:.2f}x vs bitplane "
            f"({ex['native_s']:.2f}s), " if "native_s" in ex else ""
        )
        print(f"{row['name']:>10}: "
              f"explore {native}"
              f"bitplane {ex['bitplane_speedup']:.2f}x vs batched "
              f"ref ({ex['batched_s']:.2f}s -> {ex['bitplane_s']:.2f}s; "
              f"scalar ref {ex['scalar_s']:.2f}s), "
              f"peakpower {row['peakpower']['speedup']:.2f}x "
              f"({row['peakpower']['scalar_s']:.2f}s -> "
              f"{row['peakpower']['stacked_s']:.2f}s), "
              f"baselines {row['baselines']['speedup']:.2f}x, "
              f"total {row['total_s']:.2f}s")
    sm = report["stressmark"]
    print(f"stressmark: {sm['speedup']:.2f}x "
          f"({sm['scalar_s']:.2f}s -> {sm['batched_s']:.2f}s)")
    print(f"wrote {args.output}")
    return 0


def cmd_conformance(args: argparse.Namespace) -> int:
    from repro.verify import CoexecError, run_conformance

    names = _resolve_benchmarks(args.benchmarks)  # None = all benchmarks
    if args.fuzz < 0:
        raise CliError("--fuzz must be >= 0")
    engines = (args.engine,) if args.engine else None

    def emit(stage: str, detail: str) -> None:
        print(f"[{stage}] {detail}")

    try:
        report = run_conformance(
            benchmarks=names,
            fuzz_instructions=args.fuzz,
            seed=args.seed,
            engines=engines,
            program_size=args.program_size,
            emit=emit if not args.quiet else None,
        )
    except CoexecError as err:
        raise CliError(f"conformance infrastructure failure: {err}")
    clean = sum(1 for r in report.benchmarks if r.ok)
    if report.benchmarks:
        print(
            f"benchmarks: {clean}/{len(report.benchmarks)} "
            f"program-engine runs lock-step clean"
        )
    if report.fuzz_units:
        print(
            f"fuzz: {report.fuzz_units} instruction units over "
            f"{report.fuzz_programs} programs "
            f"(seed {report.fuzz_seed}, engines {report.engines})"
        )
    if report.ok:
        print("conformance OK: no architectural divergence")
        return 0
    out_dir = Path(args.output or ".")
    out_dir.mkdir(parents=True, exist_ok=True)
    for divergence in report.divergences:
        print()
        print(divergence.describe())
        stem = f"divergence_{divergence.program_name}_{divergence.engine}"
        if divergence.reproducer_asm is not None:
            path = out_dir / f"{stem}.asm"
            path.write_text(divergence.reproducer_asm)
        else:
            path = out_dir / f"{stem}.txt"
            path.write_text(divergence.describe() + "\n")
        print(f"reproducer written to {path}")
        if divergence.seed is not None:
            print(
                f"replay: repro conformance --fuzz {args.fuzz or 2000} "
                f"--seed {report.fuzz_seed} --engine {divergence.engine}"
            )
    return 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.bench import runner
    from repro.service.server import serve

    _apply_engine(args)
    if args.store is not None:
        runner.CACHE_DIR = Path(args.store)
    return serve(
        host=args.host,
        port=args.port,
        max_jobs=args.max_jobs,
        workers_per_job=args.workers,
        verbose=args.verbose,
        backend=args.backend,
        recover=not args.no_recover,
        heartbeat_timeout=args.heartbeat_timeout or None,
        max_job_seconds=args.max_job_seconds or None,
        max_retries=args.max_retries,
        keyring=args.keyring,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import (
        ServiceClient,
        ServiceError,
        ServiceUnavailableError,
    )

    if args.kind in ("analyze", "profile"):
        _resolve_benchmarks(args.benchmark)  # fail fast, before the network
    params = {}
    if args.kind in ("analyze", "profile"):
        params["benchmark"] = args.benchmark
        if args.engine is not None:
            params["engine"] = args.engine
    elif args.kind == "conformance":
        # positional: "all" = the whole registry, "none" = fuzz only,
        # otherwise a comma-separated subset (validated before the wire)
        if args.benchmark == "all":
            params["benchmarks"] = None
        elif args.benchmark == "none":
            params["benchmarks"] = []
        else:
            params["benchmarks"] = _resolve_benchmarks(args.benchmark)
        params["fuzz"] = args.fuzz
        params["seed"] = args.seed
        if args.engine is not None:
            params["engine"] = args.engine
    else:
        params["objective"] = args.benchmark
        if args.islands is not None:
            params["islands"] = args.islands
        if args.migration_interval is not None:
            params["migration_interval"] = args.migration_interval
    client = ServiceClient(args.url)
    try:
        job = client.submit(
            args.kind,
            priority=args.priority,
            deadline_s=args.deadline or None,
            **params,
        )
        if args.no_wait:
            print(f"{job['job_id']}: {job['state']}"
                  f"{' (deduped)' if job.get('deduped') else ''}")
            return 0
        payload = client.result(job["job_id"], timeout=args.timeout)
    except ServiceUnavailableError as err:
        # the client already retried with backoff; the service is down
        print(
            f"repro submit: {err}; is `repro serve` running?",
            file=sys.stderr,
        )
        return 1
    except ServiceError as err:
        print(f"repro submit: {err}", file=sys.stderr)
        return 1
    except TimeoutError as err:
        # the job may well still be running server-side — distinguish
        # "slow" from "down" (TimeoutError is an OSError: catch it first)
        print(
            f"repro submit: {err}; the job may still be running — "
            f"retry or query its status",
            file=sys.stderr,
        )
        return 1
    result = payload.get("result", {})
    dedup = " (deduped)" if job.get("deduped") else ""
    if result.get("kind") == "analysis":
        print(
            f"{result['benchmark']}: peak {result['peak_power_mw']:.3f} mW, "
            f"NPE {result['npe_pj_per_cycle']:.2f} pJ/cycle, "
            f"{result['n_segments']} segments "
            f"[{payload['job_id']}{dedup}]"
        )
    elif result.get("kind") == "profiling":
        print(
            f"{result['benchmark']}: observed "
            f"{result['observed_peak_power_mw']:.3f} mW, guardbanded "
            f"{result['guardbanded_peak_power_mw']:.3f} mW "
            f"[{payload['job_id']}{dedup}]"
        )
    elif result.get("kind") == "conformance":
        n_div = len(result.get("divergences", []))
        status = "OK" if result.get("ok") else f"{n_div} DIVERGENCE(S)"
        print(
            f"conformance: {status}, "
            f"{len(result.get('benchmarks', []))} benchmark runs, "
            f"{result.get('fuzz_units', 0)} fuzz units "
            f"[{payload['job_id']}{dedup}]"
        )
        for entry in result.get("divergence_artifacts", []):
            print(f"  reproducer artifact: {entry}")
    elif result.get("kind") == "stressmark":
        print(
            f"stressmark({result['objective']}): peak "
            f"{result['peak_power_mw']:.3f} mW, avg "
            f"{result['avg_power_mw']:.3f} mW [{payload['job_id']}{dedup}]"
        )
    else:
        import json

        print(json.dumps(payload, indent=2))
    return 0


def cmd_upload(args: argparse.Namespace) -> int:
    from repro.service.client import (
        JobFailedError,
        RateLimitedError,
        ServiceClient,
        ServiceError,
        ServiceUnavailableError,
    )

    path = Path(args.program)
    try:
        source = path.read_text()
    except OSError as err:
        raise CliError(f"cannot read {args.program}: {err}")
    name = args.name or path.stem
    client = ServiceClient(args.url, api_key=args.api_key)
    try:
        job = client.upload(
            source,
            name=name,
            loop_bound=args.loop_bound,
            max_cycles=args.max_cycles,
            max_segments=args.max_segments,
        )
        if args.no_wait:
            print(f"{job['job_id']}: {job['state']} "
                  f"(program {job['program_id']}"
                  f"{', deduped' if job.get('deduped') else ''})")
            return 0
        payload = client.result(job["job_id"], timeout=args.timeout)
    except ServiceUnavailableError as err:
        print(f"repro upload: {err}; is `repro serve` running?",
              file=sys.stderr)
        return 1
    except RateLimitedError as err:
        print(f"repro upload: {err} — retry in {err.retry_after_s:.0f}s",
              file=sys.stderr)
        return 1
    except JobFailedError as err:
        # structured upload rejection (bad assembly, tripped budget, ...)
        code = err.payload.get("code", "job_failed")
        print(f"repro upload: [{code}] {err.payload.get('error', err)}",
              file=sys.stderr)
        return 1
    except ServiceError as err:
        print(f"repro upload: {err}", file=sys.stderr)
        return 1
    except TimeoutError as err:
        print(f"repro upload: {err}; the job may still be running — "
              f"retry or query its status", file=sys.stderr)
        return 1
    result = payload.get("result", {})
    if args.json:
        import json

        print(json.dumps(result, sort_keys=True))
        return 0
    dedup = " (deduped)" if job.get("deduped") else ""
    cached = " [cached]" if result.get("cached") else ""
    print(f"{result.get('name', name)} "
          f"({result.get('program_id', job.get('program_id'))}): "
          f"peak {result['peak_power_mw']:.3f} mW, "
          f"{result['peak_energy_pj']:.1f} pJ, "
          f"NPE {result['npe_pj_per_cycle']:.3f} pJ/cycle "
          f"[{payload['job_id']}{dedup}]{cached}")
    return 0


def cmd_keys(args: argparse.Namespace) -> int:
    from repro.tenancy import Keyring, KeyringError

    keyring = Keyring(args.keyring)
    try:
        if args.keys_command == "add":
            quotas = None
            overrides = {
                key: value
                for key, value in (
                    ("requests_per_min", args.requests_per_min),
                    ("burst", args.burst),
                    ("max_concurrent_jobs", args.max_jobs),
                    ("max_source_bytes", args.max_source_bytes),
                    ("max_job_seconds", args.max_job_seconds),
                    ("result_ttl_s", args.result_ttl),
                )
                if value is not None
            }
            if overrides:
                from repro.tenancy import TenantQuotas

                quotas = TenantQuotas.from_dict(overrides)
            tenant, plaintext = keyring.add(
                args.tenant, admin=args.admin, quotas=quotas
            )
            print(f"tenant {tenant.id!r} added to {keyring.path}")
            print("API key (shown once, only its hash is stored):")
            print(plaintext)
            return 0
        if args.keys_command == "revoke":
            keyring.revoke(args.tenant)
            print(f"tenant {args.tenant!r} revoked in {keyring.path}")
            return 0
        # list
        tenants = keyring.tenants()
        if not tenants:
            print(f"{keyring.path}: no tenants")
            return 0
        for tenant in tenants:
            q = tenant.quotas
            flags = "".join(
                flag for flag, on in (
                    (" admin", tenant.admin), (" REVOKED", tenant.revoked)
                ) if on
            )
            print(f"{tenant.id}{flags}: {q.requests_per_min:g} req/min "
                  f"(burst {q.burst}), {q.max_concurrent_jobs} jobs, "
                  f"src<={q.max_source_bytes}B, "
                  f"{q.max_job_seconds:g}s/job, "
                  f"ttl {q.result_ttl_s:g}s")
        return 0
    except KeyringError as err:
        raise CliError(str(err))


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.bench import runner

    if args.store is not None:
        runner.CACHE_DIR = Path(args.store)
    store = runner.artifact_store()
    if args.cache_command == "stats":
        stats = store.stats()
        print(f"store      : {stats.root}")
        print(f"entries    : {stats.n_entries} "
              f"({stats.n_legacy} legacy, {stats.n_stale} stale)")
        print(f"total size : {stats.total_bytes / (1024 * 1024):.2f} MB")
        for kind, count in sorted(stats.by_kind.items()):
            print(f"  {kind:<12} {count}")
        counters = stats.counters
        print(f"this run   : {counters.hits_total} hits "
              f"({counters.hits_memory} memory, {counters.hits_disk} disk), "
              f"{counters.misses} misses, {counters.writes} writes")
        return 0
    report = store.gc(max_mb=args.max_mb)
    print(f"removed {len(report.removed)} artifacts, "
          f"freed {report.freed_bytes / (1024 * 1024):.2f} MB; "
          f"{report.kept_entries} kept "
          f"({report.remaining_bytes / (1024 * 1024):.2f} MB)")
    for name in report.removed:
        print(f"  - {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Input-independent peak power/energy bounds for ULP "
                    "processors (ASPLOS 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_batch_size(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--batch-size", type=int, default=None, metavar="N",
            help="settle N execution paths in lock-step (1 = one path at "
                 "a time; default 32 bitplane / 8 reference, or "
                 "$REPRO_BATCH_SIZE)",
        )
        sub_parser.add_argument(
            "--engine", choices=ENGINES, default=None,
            help="simulation representation: packed dual-rail bit planes "
                 "(default), a compiled per-netlist C kernel, or the uint8 "
                 "reference evaluator; results are bit-identical (also "
                 "$REPRO_ENGINE)",
        )
        sub_parser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="cores per analysis: shard the pending-path queue over N "
                 "worker processes and thread the Algorithm 2 kernel; "
                 "bit-identical at any count (0 = one per core, also "
                 "$REPRO_WORKERS)",
        )

    p_analyze = sub.add_parser("analyze", help="X-based analysis of a program")
    p_analyze.add_argument("program", help="assembly source file")
    p_analyze.add_argument("--loop-bound", type=int, default=None)
    p_analyze.add_argument("--vcd-dir", default=None,
                           help="write even/odd VCD artifacts here")
    p_analyze.add_argument("--json", action="store_true",
                           help="print the bound as one JSON object "
                                "(bit-exact floats, for scripting/CI)")
    add_batch_size(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_profile = sub.add_parser("profile", help="guardbanded input profiling")
    p_profile.add_argument("program")
    p_profile.add_argument("--inputs", action="append", required=True,
                           help="comma-separated input words; repeatable")
    add_batch_size(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_coi = sub.add_parser("coi", help="cycles-of-interest report")
    p_coi.add_argument("program")
    p_coi.add_argument("--count", type=int, default=5)
    p_coi.add_argument("--loop-bound", type=int, default=None)
    add_batch_size(p_coi)
    p_coi.set_defaults(func=cmd_coi)

    def add_island_knobs(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--islands", type=int, default=None, metavar="N",
            help="GA island populations for stressmark generation "
                 "(default 1 = classic single population, also "
                 "$REPRO_ISLANDS)",
        )
        sub_parser.add_argument(
            "--migration-interval", type=int, default=None, metavar="G",
            help="generations between island ring migrations (default 2, "
                 "also $REPRO_MIGRATION_INTERVAL)",
        )

    p_suite = sub.add_parser("suite", help="run Table 4.1 benchmarks")
    p_suite.add_argument("--benchmarks", default=None,
                         help="comma-separated subset (default: all)")
    p_suite.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: one per benchmark, "
                              "capped at the core count; 1 = in-process)")
    p_suite.add_argument("--no-cache", action="store_true",
                         help="bypass the versioned artifact store "
                              "(same as REPRO_NO_CACHE=1)")
    add_batch_size(p_suite)
    add_island_knobs(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_bench = sub.add_parser(
        "bench", help="time each pipeline phase scalar vs batched, "
                      "write perf JSON"
    )
    p_bench.add_argument("--benchmarks", default=None,
                         help="comma-separated subset (default: all 14)")
    p_bench.add_argument("--output", default="BENCH_suite.json")
    p_bench.add_argument("--repeats", type=int, default=1)
    add_batch_size(p_bench)
    add_island_knobs(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_conf = sub.add_parser(
        "conformance",
        help="lock-step co-execution oracle: ISS vs gate-level engines",
    )
    p_conf.add_argument(
        "--benchmarks", default=None,
        help="comma-separated registry subset to co-execute (default: "
             "all 14 when --fuzz is 0, none otherwise)",
    )
    p_conf.add_argument(
        "--fuzz", type=int, default=0, metavar="N",
        help="co-execute seeded random programs totalling N instruction "
             "units per engine (0 = benchmark leg only)",
    )
    p_conf.add_argument(
        "--seed", type=int, default=2017,
        help="fuzz campaign seed; a divergence report names the exact "
             "per-program seed to replay (default 2017)",
    )
    p_conf.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="restrict to one engine (default: all of "
             f"{', '.join(ENGINES)})",
    )
    p_conf.add_argument(
        "--program-size", type=int, default=40, metavar="K",
        help="instructions per generated fuzz program (default 40)",
    )
    p_conf.add_argument(
        "--output", default=None, metavar="DIR",
        help="directory for divergence reproducers (default: cwd)",
    )
    p_conf.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")
    p_conf.set_defaults(func=cmd_conformance)

    from repro.service.server import DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve", help="run the HTTP analysis service (scheduler + store)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="artifact-store directory "
                              "(default: .repro_cache)")
    p_serve.add_argument("--max-jobs", type=int, default=None, metavar="N",
                         help="concurrent job slots (default: cores // "
                              "workers-per-job; never oversubscribes)")
    p_serve.add_argument("--workers", type=int, default=None, metavar="N",
                         help="engine workers per job (0 = one per core, "
                              "also $REPRO_WORKERS)")
    p_serve.add_argument("--backend", choices=("process", "thread"),
                         default="process",
                         help="job execution backend: 'process' (default) "
                              "runs each job in its own worker process — "
                              "crash isolation and real cancellation; "
                              "'thread' runs executors in-process")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.add_argument("--no-recover", action="store_true",
                         help="skip journal replay on startup (jobs from "
                              "a previous run are NOT requeued)")
    p_serve.add_argument("--heartbeat-timeout", type=float, default=300.0,
                         metavar="S",
                         help="kill a worker silent for S seconds — engine "
                              "checkpoints heartbeat, so a healthy job "
                              "stays loud (default 300; 0 disables)")
    p_serve.add_argument("--max-job-seconds", type=float, default=0.0,
                         metavar="S",
                         help="default per-job wall-clock deadline "
                              "(0 = none; per-request deadline_s "
                              "overrides)")
    p_serve.add_argument("--max-retries", type=int, default=None, metavar="N",
                         help="retries for crashed/hung workers "
                              "(default 2; executor exceptions are "
                              "never retried)")
    p_serve.add_argument("--keyring", default=None, metavar="FILE",
                         help="tenant keyring JSON (see `repro keys`); "
                              "when set, every request except /healthz "
                              "needs a valid API key and per-tenant "
                              "rate/job quotas apply")
    p_serve.set_defaults(func=cmd_serve, engine=None, islands=None,
                         migration_interval=None)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running analysis service"
    )
    p_submit.add_argument(
        "benchmark",
        help="benchmark name (kinds analyze/profile), GA objective "
             "peak|average (kind stressmark), or a comma-separated "
             "subset / 'all' / 'none' (kind conformance)",
    )
    p_submit.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}")
    p_submit.add_argument("--kind", default="analyze",
                          choices=("analyze", "profile", "stressmark",
                                   "conformance"))
    p_submit.add_argument("--fuzz", type=int, default=0, metavar="N",
                          help="kind conformance: fuzz N instruction "
                               "units per engine")
    p_submit.add_argument("--seed", type=int, default=2017,
                          help="kind conformance: fuzz campaign seed")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs first (default 0)")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="print the job id and return immediately")
    p_submit.add_argument("--timeout", type=float, default=600.0,
                          help="seconds to wait for the result")
    p_submit.add_argument("--deadline", type=float, default=0.0, metavar="S",
                          help="server-side wall-clock budget: the job is "
                               "killed and failed past S seconds (0 = none)")
    p_submit.add_argument("--engine", choices=ENGINES, default=None,
                          help="simulation engine the server should use "
                               "for this job (kinds analyze/profile)")
    add_island_knobs(p_submit)
    p_submit.set_defaults(func=cmd_submit)

    p_upload = sub.add_parser(
        "upload",
        help="upload assembly source to a running service's gateway "
             "and print the guaranteed bound",
    )
    p_upload.add_argument("program", help="assembly source file")
    p_upload.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}")
    p_upload.add_argument("--api-key", default=None,
                          help="tenant API key (rk_...; required when the "
                               "server runs with --keyring)")
    p_upload.add_argument("--name", default=None,
                          help="program name (default: the file stem)")
    p_upload.add_argument("--loop-bound", type=int, default=None)
    p_upload.add_argument("--max-cycles", type=int, default=None,
                          help="total simulated-cycle budget (capped at "
                               "the server default)")
    p_upload.add_argument("--max-segments", type=int, default=None,
                          help="execution-tree segment budget (capped at "
                               "the server default)")
    p_upload.add_argument("--no-wait", action="store_true",
                          help="print the job id and return immediately")
    p_upload.add_argument("--timeout", type=float, default=600.0,
                          help="seconds to wait for the result")
    p_upload.add_argument("--json", action="store_true",
                          help="print the result payload as one JSON "
                               "object (bit-exact floats)")
    p_upload.set_defaults(func=cmd_upload)

    p_keys = sub.add_parser(
        "keys", help="administer a gateway keyring file (API keys, quotas)"
    )
    keys_sub = p_keys.add_subparsers(dest="keys_command", required=True)

    def add_keyring_arg(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--keyring", default="keyring.json", metavar="FILE",
            help="keyring JSON file (default: keyring.json)",
        )

    p_keys_add = keys_sub.add_parser(
        "add", help="create a tenant; prints its API key exactly once"
    )
    add_keyring_arg(p_keys_add)
    p_keys_add.add_argument("tenant", help="tenant id ([A-Za-z0-9._-]+)")
    p_keys_add.add_argument("--admin", action="store_true",
                            help="admin tenants may run store maintenance "
                                 "and see every tenant's jobs")
    p_keys_add.add_argument("--requests-per-min", type=float, default=None)
    p_keys_add.add_argument("--burst", type=int, default=None)
    p_keys_add.add_argument("--max-jobs", type=int, default=None,
                            help="concurrent queued+running job quota")
    p_keys_add.add_argument("--max-source-bytes", type=int, default=None)
    p_keys_add.add_argument("--max-job-seconds", type=float, default=None)
    p_keys_add.add_argument("--result-ttl", type=float, default=None,
                            metavar="S",
                            help="seconds an uploaded result stays in the "
                                 "store before gc may evict it")
    p_keys_list = keys_sub.add_parser(
        "list", help="list tenants and their quotas"
    )
    add_keyring_arg(p_keys_list)
    p_keys_revoke = keys_sub.add_parser(
        "revoke", help="revoke a tenant's key (kept in the file for audit)"
    )
    p_keys_revoke.add_argument("tenant")
    add_keyring_arg(p_keys_revoke)
    p_keys.set_defaults(func=cmd_keys)

    p_cache = sub.add_parser(
        "cache", help="inspect or trim the artifact store"
    )
    p_cache.add_argument("--store", default=None, metavar="DIR",
                         help="store directory (default: .repro_cache)")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser(
        "stats", help="entry counts, sizes, hit/miss counters"
    )
    p_gc = cache_sub.add_parser(
        "gc", help="drop stale/legacy artifacts, enforce a size cap"
    )
    p_gc.add_argument("--max-mb", type=float, default=None, metavar="N",
                      help="evict least-recently-used artifacts until the "
                           "store fits in N MB (stale and legacy entries "
                           "go first, cap or no cap)")
    p_cache.set_defaults(func=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CliError as err:
        print(f"repro: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
