"""Command-line interface.

Usage::

    python -m repro analyze  prog.asm [--loop-bound N] [--vcd-dir DIR]
    python -m repro profile  prog.asm --inputs 1,2,3 [--inputs 4,5,6 ...]
    python -m repro coi      prog.asm [--count N]
    python -m repro suite    [--benchmarks mult,tea8,...] [--jobs N]
                             [--no-cache]
    python -m repro bench    [--benchmarks ...] [--output BENCH_suite.json]

``analyze`` prints the guaranteed input-independent peak power and energy
for an assembly program whose ``.input`` regions are symbolic; ``profile``
measures concrete input sets and applies the 4/3 guardband; ``coi`` shows
the cycles of interest with culprit instructions; ``suite`` runs the
Table 4.1 benchmarks end to end (process-parallel, disk-cached);
``bench`` times the scalar vs batched engines and writes a perf-trajectory
JSON artifact.

Engine knobs shared by the analysis commands: ``--engine bitplane``
(default) simulates on packed dual-rail uint64 bit planes, ``--engine
reference`` on the original uint8 evaluator — bit-identical results either
way (also settable via ``REPRO_ENGINE``).  ``--batch-size N`` settles N
execution paths in lock-step (1 = one path at a time; default 32 for the
bitplane engine, 8 for the reference engine, or ``REPRO_BATCH_SIZE``).
``--workers N`` spreads one analysis over N cores — sharded path-queue
exploration, threaded Algorithm 2 kernel, island-parallel GA — with
bit-identical results at any count (``0`` = one per core, also
``REPRO_WORKERS``).  ``suite --no-cache`` (or ``REPRO_NO_CACHE=1``)
bypasses the versioned disk cache; ``suite`` composes ``--jobs``
(benchmark fan-out) with ``--workers`` (per-benchmark sharding) without
oversubscribing the host.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.asm import assemble
from repro.cells import SG65
from repro.core import analyze
from repro.core.baselines import GUARDBAND, input_profiling
from repro.core.coi import cycles_of_interest, dominant_modules
from repro.cpu import build_ulp430
from repro.power import PowerModel


def _load_program(path: str):
    source = Path(path).read_text()
    return assemble(source, Path(path).stem)


def _make_context():
    cpu = build_ulp430()
    model = PowerModel(cpu.netlist, SG65, clock_ns=10.0)
    return cpu, model


def _apply_engine(args: argparse.Namespace) -> None:
    """Export --engine/--workers so everything downstream honors them."""
    if getattr(args, "engine", None):
        os.environ["REPRO_ENGINE"] = args.engine
    if getattr(args, "workers", None) is not None:
        os.environ["REPRO_WORKERS"] = str(args.workers)


def cmd_analyze(args: argparse.Namespace) -> int:
    _apply_engine(args)
    cpu, model = _make_context()
    program = _load_program(args.program)
    report = analyze(
        cpu, program, model,
        loop_bound=args.loop_bound, vcd_dir=args.vcd_dir,
        batch_size=args.batch_size, engine=args.engine,
        workers=args.workers,
    )
    print(report.summary())
    print(f"peak power : {report.peak_power_mw:.3f} mW (all inputs)")
    print(f"peak energy: {report.peak_energy_pj:.1f} pJ over "
          f"{report.peak_energy.path_cycles} cycles")
    print(f"NPE        : {report.npe_pj_per_cycle:.3f} pJ/cycle")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    _apply_engine(args)
    cpu, model = _make_context()
    program = _load_program(args.program)
    input_sets = [
        [int(token, 0) for token in spec.split(",")] for spec in args.inputs
    ]
    profile = input_profiling(
        cpu, program, input_sets, model, batch_size=args.batch_size
    )
    for run in profile.runs:
        print(f"inputs={run.inputs}: peak {run.peak_power_mw:.3f} mW, "
              f"{run.energy_pj:.1f} pJ over {run.cycles} cycles")
    print(f"observed peak : {profile.observed_peak_power_mw:.3f} mW")
    print(f"guardbanded   : {profile.guardbanded_peak_power_mw:.3f} mW "
          f"(x{GUARDBAND:.2f})")
    return 0


def cmd_coi(args: argparse.Namespace) -> int:
    _apply_engine(args)
    cpu, model = _make_context()
    program = _load_program(args.program)
    report = analyze(
        cpu, program, model,
        loop_bound=args.loop_bound, batch_size=args.batch_size,
        engine=args.engine, workers=args.workers,
    )
    reports = cycles_of_interest(
        report.tree, report.peak_power, program, count=args.count
    )
    for coi in reports:
        print(coi.describe())
    print(f"dominant modules: {dominant_modules(reports)[:4]}")
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.bench import runner

    _apply_engine(args)
    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    names = args.benchmarks.split(",") if args.benchmarks else runner.all_names()
    results = runner.run_suite(
        names,
        jobs=args.jobs,
        batch_size=args.batch_size,
        no_cache=args.no_cache,
        engine=args.engine,
        workers=args.workers,
    )
    for result in results:
        print(f"{result.name:>10}: peak {result.peak_power_mw:.3f} mW, "
              f"NPE {result.npe_pj_per_cycle:.2f} pJ/cycle, "
              f"{result.n_segments} segments")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.perf import run_perf_suite, write_report

    _apply_engine(args)

    names = args.benchmarks.split(",") if args.benchmarks else None
    report = run_perf_suite(
        names, batch_size=args.batch_size, repeats=args.repeats,
        workers=args.workers,
    )
    write_report(report, args.output)
    for row in report["benchmarks"]:
        ex = row["explore"]
        print(f"{row['name']:>10}: "
              f"explore bitplane {ex['bitplane_speedup']:.2f}x vs batched "
              f"ref ({ex['batched_s']:.2f}s -> {ex['bitplane_s']:.2f}s; "
              f"scalar ref {ex['scalar_s']:.2f}s), "
              f"peakpower {row['peakpower']['speedup']:.2f}x "
              f"({row['peakpower']['scalar_s']:.2f}s -> "
              f"{row['peakpower']['stacked_s']:.2f}s), "
              f"baselines {row['baselines']['speedup']:.2f}x, "
              f"total {row['total_s']:.2f}s")
    sm = report["stressmark"]
    print(f"stressmark: {sm['speedup']:.2f}x "
          f"({sm['scalar_s']:.2f}s -> {sm['batched_s']:.2f}s)")
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Input-independent peak power/energy bounds for ULP "
                    "processors (ASPLOS 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_batch_size(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--batch-size", type=int, default=None, metavar="N",
            help="settle N execution paths in lock-step (1 = one path at "
                 "a time; default 32 bitplane / 8 reference, or "
                 "$REPRO_BATCH_SIZE)",
        )
        sub_parser.add_argument(
            "--engine", choices=("bitplane", "reference"), default=None,
            help="simulation representation: packed dual-rail bit planes "
                 "(default) or the uint8 reference evaluator; results are "
                 "bit-identical (also $REPRO_ENGINE)",
        )
        sub_parser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="cores per analysis: shard the pending-path queue over N "
                 "worker processes and thread the Algorithm 2 kernel; "
                 "bit-identical at any count (0 = one per core, also "
                 "$REPRO_WORKERS)",
        )

    p_analyze = sub.add_parser("analyze", help="X-based analysis of a program")
    p_analyze.add_argument("program", help="assembly source file")
    p_analyze.add_argument("--loop-bound", type=int, default=None)
    p_analyze.add_argument("--vcd-dir", default=None,
                           help="write even/odd VCD artifacts here")
    add_batch_size(p_analyze)
    p_analyze.set_defaults(func=cmd_analyze)

    p_profile = sub.add_parser("profile", help="guardbanded input profiling")
    p_profile.add_argument("program")
    p_profile.add_argument("--inputs", action="append", required=True,
                           help="comma-separated input words; repeatable")
    add_batch_size(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_coi = sub.add_parser("coi", help="cycles-of-interest report")
    p_coi.add_argument("program")
    p_coi.add_argument("--count", type=int, default=5)
    p_coi.add_argument("--loop-bound", type=int, default=None)
    add_batch_size(p_coi)
    p_coi.set_defaults(func=cmd_coi)

    p_suite = sub.add_parser("suite", help="run Table 4.1 benchmarks")
    p_suite.add_argument("--benchmarks", default=None,
                         help="comma-separated subset (default: all)")
    p_suite.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: one per benchmark, "
                              "capped at the core count; 1 = in-process)")
    p_suite.add_argument("--no-cache", action="store_true",
                         help="bypass the versioned disk cache "
                              "(same as REPRO_NO_CACHE=1)")
    add_batch_size(p_suite)
    p_suite.set_defaults(func=cmd_suite)

    p_bench = sub.add_parser(
        "bench", help="time each pipeline phase scalar vs batched, "
                      "write perf JSON"
    )
    p_bench.add_argument("--benchmarks", default=None,
                         help="comma-separated subset (default: all 14)")
    p_bench.add_argument("--output", default="BENCH_suite.json")
    p_bench.add_argument("--repeats", type=int, default=1)
    add_batch_size(p_bench)
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
