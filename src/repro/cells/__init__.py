"""Synthetic standard-cell libraries.

The paper synthesizes openMSP430 to TSMC 65GP cells and runs Synopsys
PrimeTime for power analysis.  Both are proprietary, so this package
provides synthetic libraries with the properties the analysis actually
consumes:

* per-cell rise/fall switching energy (internal + output load),
* per-cell leakage power,
* the *maximum-power transition* lookup used by Algorithm 2,
* the default input toggle rate used by the design-tool baseline.

``SG65`` is the 65 nm-class library used for the openMSP430-class core
(Chapters 3-5); ``SG130`` is a 130 nm-class scaling used by the
MSP430F1610 measurement-rig substitute (Chapter 2).
"""

from repro.cells.library import (
    SG65,
    SG130,
    Cell,
    CellLibrary,
    sg65_library,
    sg130_library,
)

__all__ = [
    "Cell",
    "CellLibrary",
    "SG65",
    "SG130",
    "sg65_library",
    "sg130_library",
]
