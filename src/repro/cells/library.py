"""Cell definitions and the two synthetic process libraries.

Energies are in femtojoules per output transition and include a nominal
wire/fanout load; leakage is in nanowatts per cell.  The absolute values
are synthetic but chosen so that a ~5k-gate core at 1 V / 100 MHz lands in
the paper's 1.5-3.5 mW peak-power band, keeping figures comparable in
shape and magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic import ONE, ZERO


@dataclass(frozen=True)
class Cell:
    """One standard cell: logic function plus power characterization."""

    kind: str
    n_inputs: int
    area_um2: float
    leakage_nw: float
    e_rise_fj: float
    e_fall_fj: float
    input_cap_ff: float
    #: Clock-pin energy per cycle (sequential cells only): burned every
    #: cycle regardless of data activity, like real flip-flops.  This is
    #: the input-independent power floor that makes peak-power bounds
    #: tight in practice.
    e_clk_fj: float = 0.0

    def transition_energy_fj(self, rising: bool) -> float:
        """Energy of one output transition in femtojoules."""
        return self.e_rise_fj if rising else self.e_fall_fj

    def max_transition_energy_fj(self) -> float:
        """Energy of the cell's most expensive output transition."""
        return max(self.e_rise_fj, self.e_fall_fj)

    def max_power_transition(self) -> tuple[int, int]:
        """(previous value, current value) of the max-power transition.

        This is the ``maxTransition`` look-up of Algorithm 2: when two
        consecutive cycles are both X, assign the pair of values that makes
        the gate burn the most power in the second cycle.
        """
        if self.e_rise_fj >= self.e_fall_fj:
            return (ZERO, ONE)
        return (ONE, ZERO)


class CellLibrary:
    """A named collection of cells addressed by gate kind."""

    def __init__(
        self,
        name: str,
        cells: dict[str, Cell],
        default_toggle_rate: float,
        voltage_v: float,
        mem_read_energy_fj: float,
        mem_write_energy_fj: float,
        mem_leakage_nw: float,
        mem_idle_fj: float = 0.0,
    ):
        self.name = name
        self._cells = dict(cells)
        #: Default per-cycle input toggle rate assumed by the design-tool
        #: baseline when no activity information is available (PrimeTime's
        #: ``set_switching_activity`` default role).
        self.default_toggle_rate = default_toggle_rate
        self.voltage_v = voltage_v
        #: Behavioral energy per program/data memory access (the SRAM macro
        #: is not flattened to gates; see DESIGN.md).
        self.mem_read_energy_fj = mem_read_energy_fj
        self.mem_write_energy_fj = mem_write_energy_fj
        self.mem_leakage_nw = mem_leakage_nw
        #: SRAM clock/precharge energy burned every cycle, access or not.
        self.mem_idle_fj = mem_idle_fj

    def __contains__(self, kind: str) -> bool:
        return kind in self._cells

    def __getitem__(self, kind: str) -> Cell:
        try:
            return self._cells[kind]
        except KeyError:
            raise KeyError(
                f"cell library {self.name!r} has no cell for gate kind {kind!r}"
            ) from None

    def kinds(self) -> list[str]:
        return sorted(self._cells)

    def cell_for_gate(self, kind: str) -> Cell:
        """Cell used to characterize a netlist gate of the given kind.

        Pseudo-gates that never switch on their own (constants, primary
        inputs) are mapped to a zero-energy placeholder.
        """
        if kind in self._cells:
            return self._cells[kind]
        if kind in ("CONST0", "CONST1", "INPUT"):
            return _NULL_CELL
        raise KeyError(f"no characterization for gate kind {kind!r}")


_NULL_CELL = Cell(
    kind="NULL",
    n_inputs=0,
    area_um2=0.0,
    leakage_nw=0.0,
    e_rise_fj=0.0,
    e_fall_fj=0.0,
    input_cap_ff=0.0,
)

# kind: (n_inputs, area, leakage_nw, e_rise_fj, e_fall_fj, cap_ff, clk_fj)
_SG65_DATA = {
    "NOT": (1, 1.1, 9.0, 9.5, 7.0, 1.2, 0.0),
    "BUF": (1, 1.4, 10.0, 11.0, 9.0, 1.1, 0.0),
    "AND": (2, 2.1, 14.0, 16.5, 12.5, 1.5, 0.0),
    "OR": (2, 2.1, 14.5, 17.0, 13.0, 1.5, 0.0),
    "NAND": (2, 1.7, 12.0, 13.0, 10.0, 1.4, 0.0),
    "NOR": (2, 1.7, 12.5, 13.5, 10.5, 1.4, 0.0),
    "XOR": (2, 3.2, 19.0, 24.0, 21.0, 1.9, 0.0),
    "XNOR": (2, 3.2, 19.0, 24.0, 21.0, 1.9, 0.0),
    "MUX": (3, 3.6, 17.0, 22.0, 18.5, 1.8, 0.0),
    "DFF": (1, 6.8, 28.0, 42.0, 38.0, 2.4, 14.0),
}


def sg65_library() -> CellLibrary:
    """Synthetic 65 nm-class library (the TSMC 65GP stand-in)."""
    cells = {
        kind: Cell(kind, n, area, leak, rise, fall, cap, clk)
        for kind, (n, area, leak, rise, fall, cap, clk) in _SG65_DATA.items()
    }
    return CellLibrary(
        name="sg65",
        cells=cells,
        default_toggle_rate=0.45,
        voltage_v=1.0,
        mem_read_energy_fj=2400.0,
        mem_write_energy_fj=2800.0,
        mem_leakage_nw=9000.0,
        mem_idle_fj=3200.0,
    )


def sg130_library() -> CellLibrary:
    """Synthetic 130 nm-class library (the MSP430F1610 stand-in).

    Older node: roughly 5x the dynamic energy and 1/3 the leakage of the
    65 nm library, run at a lower frequency (8 MHz) and higher voltage by
    the measurement rig.
    """
    cells = {
        kind: Cell(
            kind,
            n,
            area * 4.0,
            leak * 0.3,
            rise * 5.0,
            fall * 5.0,
            cap * 3.0,
            clk * 5.0,
        )
        for kind, (n, area, leak, rise, fall, cap, clk) in _SG65_DATA.items()
    }
    return CellLibrary(
        name="sg130",
        cells=cells,
        default_toggle_rate=0.45,
        voltage_v=3.0,
        mem_read_energy_fj=12000.0,
        mem_write_energy_fj=14000.0,
        mem_leakage_nw=3000.0,
        mem_idle_fj=8000.0,
    )


SG65 = sg65_library()
SG130 = sg130_library()
