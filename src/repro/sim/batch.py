"""Lock-step batched simulation of independent machine states.

A :class:`BatchMachine` holds up to B *lanes*, each a complete machine
state (net values, behavioral memory, memory-port registers) loaded from a
:meth:`repro.sim.machine.Machine.snapshot` dict.  One :meth:`step` clocks
every live lane simultaneously: the combinational settle and the activity
marking run as single ``(K, n_nets)`` matrix operations through the
dimension-agnostic :class:`~repro.sim.evaluator.LevelizedEvaluator`, while
the small per-lane parts (behavioral memory, forced inputs, annotations)
stay ordinary Python.

Live lanes are kept compacted in the leading rows of the value matrix
(retiring a lane swaps the last live row into the hole), so the matrix
work always scales with the number of *live* paths: a single-path stretch
costs the same as the scalar engine, a K-path stretch settles per
level-group with one fancy-indexing operation instead of K.

This is the engine behind the batched execution-tree exploration in
:mod:`repro.core.activity`.  Lanes are snapshot-compatible with
:class:`Machine` in both directions, so the explorer can mix engines
freely and the differential tests can compare them record for record.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.netlist.core import Netlist
from repro.sim.evaluator import LevelizedEvaluator
from repro.sim.machine import (
    MemoryPorts,
    PortSpecs,
    _MemRequest,
    compile_bus_spec,
    force_bus,
    force_bus_planes,
    force_inputs_packed,
    read_bus,
    read_bus_planes,
    sample_memory_control,
    sample_memory_control_packed,
    serve_memory_read,
)
from repro.sim.trace import CycleRecord, Trace


class Lane:
    """Handle to one live machine state inside a :class:`BatchMachine`.

    ``row`` is the lane's current row in the value matrix; it changes when
    other lanes retire, so always go through the handle.
    """

    __slots__ = (
        "row",
        "memory",
        "cycle",
        "dout_value",
        "dout_xmask",
        "_request",
        "forced_inputs",
        "next_dff_forces",
        "_forced_src",
        "_forced_masks",
    )

    def __init__(self, row: int, snapshot: dict[str, Any], forces: dict[int, int]):
        self.row = row
        self.memory = snapshot["memory"].fork()
        self.cycle = snapshot["cycle"]
        self.dout_value = snapshot["dout_value"]
        self.dout_xmask = snapshot["dout_xmask"]
        self._request = _MemRequest(**vars(snapshot["request"]))
        self.forced_inputs = dict(snapshot["forced_inputs"])
        self.next_dff_forces = dict(forces)
        #: packed-engine cache of the compiled forced-input masks
        self._forced_src: dict[int, int] | None = None
        self._forced_masks: list[tuple] = []


class LaneView:
    """Read-only :class:`Machine`-shaped window onto one lane.

    Exposes exactly the surface the CPU wrapper's introspection hooks use
    (``values`` and ``peek_bus``), so ``cpu.halted``, ``cpu.pc_next_unknown``,
    ``cpu.branch_fork_assignments`` and ``cpu.annotate`` work unchanged on a
    batched lane.
    """

    __slots__ = ("_batch", "_lane")

    def __init__(self, batch: "BatchMachine", lane: Lane):
        self._batch = batch
        self._lane = lane

    @property
    def values(self) -> np.ndarray:
        batch = self._batch
        if batch.packed:
            if batch.record_packed:
                # packed-record mode keeps no unpacked cache; unpack just
                # this lane's row on the rare direct-row access
                row = batch.evaluator.unpack_values(
                    batch.planes[self._lane.row]
                )
            else:
                # read-only: writes here would bypass the packed planes
                row = batch._values_cache[self._lane.row][:]
            row.setflags(write=False)
            return row
        return batch.values[self._lane.row]

    def peek_bus(self, nets: list[int]) -> tuple[int, int]:
        batch = self._batch
        if batch.packed:
            return read_bus_planes(
                batch.planes[self._lane.row], batch._peek_spec(nets)
            )
        return read_bus(self.values, nets)


class BatchMachine:
    """Up to ``batch_size`` machine states clocked in lock-step."""

    def __init__(
        self,
        netlist: Netlist,
        ports: MemoryPorts,
        evaluator: LevelizedEvaluator,
        batch_size: int,
        annotator: Callable | None = None,
        record_packed: bool = False,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.netlist = netlist
        self.ports = ports
        self.evaluator = evaluator
        self.packed = bool(getattr(evaluator, "packed", False))
        #: emit packed records (value_words/active_words, lazily unpacked
        #: at the trace boundary) instead of unpacking every lane row per
        #: cycle — the fast path for concrete runs, whose per-cycle probes
        #: all read compiled bus specs straight from the planes
        self.record_packed = record_packed and self.packed
        self.batch_size = batch_size
        self.annotator = annotator
        if self.packed:
            #: (B, 3, n_words) uint64 P/N/A planes, one row per lane slot
            self.planes = evaluator.fresh_planes(batch=batch_size)
            self._dout_spec = compile_bus_spec(evaluator.program, ports.dout)
            self._peek_specs: dict[tuple[int, ...], list[tuple]] = {}
            if self.record_packed:
                self._port_specs = PortSpecs.compile(evaluator.program, ports)
            else:
                self._values_cache = np.zeros(
                    (batch_size, netlist.n_nets), dtype=np.uint8
                )
                self._active_cache = np.zeros(
                    (batch_size, netlist.n_nets), dtype=bool
                )
        else:
            self.values = evaluator.fresh_values(batch=batch_size)
            self._prev_active = np.zeros(
                (batch_size, netlist.n_nets), dtype=bool
            )
        self.lanes: list[Lane] = []
        self._dff_pos = {
            int(net): pos for pos, net in enumerate(evaluator.dff_out)
        }

    def _peek_spec(self, nets: list[int]) -> list[tuple]:
        """Compiled packed bus spec for *nets*, cached per net tuple."""
        key = tuple(nets)
        spec = self._peek_specs.get(key)
        if spec is None:
            spec = self._peek_specs[key] = compile_bus_spec(
                self.evaluator.program, nets
            )
        return spec

    # ------------------------------------------------------------------
    # Lane management
    # ------------------------------------------------------------------
    @property
    def n_free(self) -> int:
        return self.batch_size - len(self.lanes)

    def load(self, snapshot: dict[str, Any], forces: dict[int, int]) -> Lane:
        """Restore a :meth:`Machine.snapshot` dict into a fresh lane.

        *forces* are one-shot DFF overrides consumed by the lane's next
        step — the explorer's concrete assumption for an unknown flag.
        """
        if not self.n_free:
            raise ValueError(f"all {self.batch_size} lanes are live")
        lane = Lane(len(self.lanes), snapshot, forces)
        self.lanes.append(lane)
        if self.packed:
            self.planes[lane.row] = snapshot["values"]
            if not self.record_packed:
                self._values_cache[lane.row] = self.evaluator.unpack_values(
                    snapshot["values"]
                )
                self._active_cache[lane.row] = self.evaluator.unpack_active(
                    snapshot["values"]
                )
        else:
            self.values[lane.row] = snapshot["values"]
            self._prev_active[lane.row] = snapshot["prev_active"]
        return lane

    def retire(self, lane: Lane) -> None:
        """Remove *lane*, compacting live rows to the top of the matrix."""
        last = self.lanes.pop()
        if last is not lane:
            if self.packed:
                self.planes[lane.row] = self.planes[last.row]
                if not self.record_packed:
                    self._values_cache[lane.row] = self._values_cache[last.row]
                    self._active_cache[lane.row] = self._active_cache[last.row]
            else:
                self.values[lane.row] = self.values[last.row]
                self._prev_active[lane.row] = self._prev_active[last.row]
            last.row = lane.row
            self.lanes[lane.row] = last
        lane.row = -1

    def lane_view(self, lane: Lane) -> LaneView:
        return LaneView(self, lane)

    def snapshot(self, lane: Lane) -> dict[str, Any]:
        """A :class:`Machine`-compatible snapshot of one lane.

        ``values``/``prev_active`` live in matrix rows that the next step
        mutates in place, so they are copied; ``memory`` is a
        copy-on-write :meth:`~repro.sim.memory.TernaryMemory.fork`.
        """
        if self.packed:
            state = self.planes[lane.row].copy()
            prev_active = None
        else:
            state = self.values[lane.row].copy()
            prev_active = self._prev_active[lane.row].copy()
        return {
            "values": state,
            "memory": lane.memory.fork(),
            "cycle": lane.cycle,
            "dout_value": lane.dout_value,
            "dout_xmask": lane.dout_xmask,
            "request": _MemRequest(**vars(lane._request)),
            "prev_active": prev_active,
            "forced_inputs": dict(lane.forced_inputs),
            "next_dff_forces": dict(lane.next_dff_forces),
        }

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------
    def step(self) -> list[CycleRecord]:
        """Advance every live lane one clock cycle.

        Returns one record per lane, parallel to :attr:`lanes`; records
        match what a scalar :class:`Machine` stepping the same lane state
        would produce, field for field.

        With a single live lane the evaluator is driven with 1-D row
        *views* instead of a ``(1, n_nets)`` matrix: the dimension-agnostic
        evaluator produces identical values either way, but 1-D fancy
        indexing skips the 2-D dispatch overhead, so a single-path stretch
        costs the same as the scalar engine.
        """
        if self.packed:
            return self._step_packed()
        n_live = len(self.lanes)
        evaluator = self.evaluator
        squeeze = n_live == 1
        values = self.values[0] if squeeze else self.values[:n_live]
        prev_active = (
            self._prev_active[0] if squeeze else self._prev_active[:n_live]
        )
        prev_values = values.copy()
        next_dff = evaluator.next_dff_values(values, reset=False)
        mem_counts: list[tuple[float, float]] = []
        for lane in self.lanes:
            if lane.next_dff_forces:
                for net, value in lane.next_dff_forces.items():
                    if squeeze:
                        next_dff[self._dff_pos[net]] = value
                    else:
                        next_dff[lane.row, self._dff_pos[net]] = value
                lane.next_dff_forces = {}
            mem_counts.append(serve_memory_read(lane))
        values[..., evaluator.dff_out] = next_dff
        for lane in self.lanes:
            row = values if squeeze else values[lane.row]
            force_bus(row, self.ports.dout, lane.dout_value, lane.dout_xmask)
            for net, value in lane.forced_inputs.items():
                row[net] = value
        evaluator.eval_comb(values)
        active = evaluator.compute_activity(prev_values, values, prev_active)
        if squeeze:
            self._prev_active[0] = active
        else:
            self._prev_active[:n_live] = active
        records: list[CycleRecord] = []
        for lane, (mem_reads, mem_writes) in zip(self.lanes, mem_counts):
            row_values = values if squeeze else values[lane.row]
            row_active = active if squeeze else active[lane.row]
            sample_memory_control(lane, row_values, self.ports)
            records.append(
                CycleRecord(
                    cycle=lane.cycle,
                    values=row_values.copy(),
                    active=row_active.copy(),
                    mem_reads=mem_reads,
                    mem_writes=mem_writes,
                    annotations=(
                        self.annotator(self.lane_view(lane))
                        if self.annotator
                        else {}
                    ),
                )
            )
            lane.cycle += 1
        return records

    def _step_packed(self) -> list[CycleRecord]:
        """Advance every live lane one cycle on packed bit planes.

        Mirrors the reference :meth:`step` clocking order exactly; the
        settle and the activity marking run fused over the compiled level
        schedule, one sweep for all live lanes.  Lane rows are unpacked
        once per step into the shared ``values``/``active`` caches (the
        trace boundary) that :class:`LaneView` and the records read.
        """
        n_live = len(self.lanes)
        evaluator = self.evaluator
        squeeze = n_live == 1
        # Round the processed row count up to a power of two: the
        # evaluator caches a full scratch/tape set per leading shape, so
        # quantizing bounds it to O(log B) sets instead of one per live
        # count.  The extra rows hold retired-lane garbage; the sweep is
        # pure bitwise, their results are never read, and a later load()
        # overwrites the whole row.
        n_rows = n_live
        if not squeeze:
            n_rows = 2
            while n_rows < n_live:
                n_rows *= 2
            n_rows = min(n_rows, self.batch_size)
        planes = self.planes[0] if squeeze else self.planes[:n_rows]
        evaluator.stash_prev(planes)
        next_dff = evaluator.next_dff_planes(planes, reset=False)
        mem_counts: list[tuple[float, float]] = []
        for lane in self.lanes:
            if lane.next_dff_forces:
                evaluator.force_dff_bits(
                    next_dff if squeeze else next_dff[lane.row],
                    lane.next_dff_forces,
                )
                lane.next_dff_forces = {}
            mem_counts.append(serve_memory_read(lane))
        evaluator.set_dff_planes(planes, next_dff)
        for lane in self.lanes:
            row = planes if squeeze else self.planes[lane.row]
            force_bus_planes(
                row, self._dout_spec, lane.dout_value, lane.dout_xmask
            )
            force_inputs_packed(row, lane, evaluator.program)
        evaluator.settle_and_mark(planes)
        if self.record_packed:
            return self._packed_records(mem_counts)
        live_planes = self.planes[:n_live]
        self._values_cache[:n_live] = evaluator.unpack_values(live_planes)
        self._active_cache[:n_live] = evaluator.unpack_active(live_planes)
        active_words = evaluator.active_words(live_planes)
        records: list[CycleRecord] = []
        for lane, (mem_reads, mem_writes) in zip(self.lanes, mem_counts):
            row_values = self._values_cache[lane.row].copy()
            sample_memory_control(lane, row_values, self.ports)
            records.append(
                CycleRecord(
                    cycle=lane.cycle,
                    values=row_values,
                    active=self._active_cache[lane.row].copy(),
                    mem_reads=mem_reads,
                    mem_writes=mem_writes,
                    annotations=(
                        self.annotator(self.lane_view(lane))
                        if self.annotator
                        else {}
                    ),
                    active_words=active_words[lane.row].copy(),
                )
            )
            lane.cycle += 1
        return records

    def _packed_records(
        self, mem_counts: list[tuple[float, float]]
    ) -> list[CycleRecord]:
        """Build one packed record per lane without unpacking any row.

        The memory-port sampling and any annotator probes read compiled
        bus specs straight from the plane words; records carry the packed
        P/N value planes and activity words plus the ``packing`` needed to
        unpack them lazily at the trace boundary.
        """
        evaluator = self.evaluator
        program = evaluator.program
        records: list[CycleRecord] = []
        for lane, (mem_reads, mem_writes) in zip(self.lanes, mem_counts):
            row_planes = self.planes[lane.row]
            sample_memory_control_packed(lane, row_planes, self._port_specs)
            records.append(
                CycleRecord(
                    cycle=lane.cycle,
                    mem_reads=mem_reads,
                    mem_writes=mem_writes,
                    annotations=(
                        self.annotator(self.lane_view(lane))
                        if self.annotator
                        else {}
                    ),
                    # active_words is freshly allocated by the mask AND;
                    # the value planes are a view and must be copied
                    active_words=evaluator.active_words(row_planes),
                    value_words=row_planes[0:2].copy(),
                    packing=program,
                )
            )
            lane.cycle += 1
        return records


# ----------------------------------------------------------------------
# Batched concrete execution: N independent programs to halt in lock-step.
# ----------------------------------------------------------------------
def run_batch_to_halt(
    cpu,
    machines: list,
    batch_size: int,
    max_cycles: int = 100_000,
) -> list[tuple[Trace, int]]:
    """Run concrete *machines* to the halt idiom, ``batch_size`` at a time.

    The workhorse behind the batched input-profiling and GA-stressmark
    baselines: each machine (already reset, e.g. fresh from
    ``cpu.make_machine``) becomes a lane; lanes retire as they halt and are
    refilled from the remaining machines, so the batch stays full.

    Returns one ``(trace, cycles)`` pair per machine, in input order, with
    exactly the records and cycle count that ``cpu.run_to_halt(machine,
    max_cycles, trace)`` produces for the same machine — the lock-step
    engine is record-for-record identical to the scalar one.

    Raises :class:`repro.cpu.UnresolvedPCError` when any machine's PC goes
    X (missing ``Program.with_inputs``) and :class:`RuntimeError` when a
    machine fails to halt within *max_cycles* of its own cycles.
    """
    from repro.cpu import UnresolvedPCError  # sim must not import cpu at top level

    if not machines:
        return []
    template = machines[0]
    batch = BatchMachine(
        template.netlist,
        template.ports,
        template.evaluator,
        max(1, min(batch_size, len(machines))),
        annotator=template.annotator,
        # concrete runs probe halt/PC through compiled packed bus specs,
        # so lanes never unpack per cycle; traces unpack in bulk on demand
        record_packed=True,
    )
    traces = [Trace(template.netlist.n_nets) for _ in machines]
    if batch.record_packed:
        for trace in traces:
            trace.packing = template.evaluator.program
    cycles: list[int] = [0] * len(machines)
    budget: dict[int, int] = {}  # id(lane) -> remaining step budget
    lane_index: dict[int, int] = {}
    queue = list(enumerate(machines))[::-1]  # pop() order = input order

    def refill() -> None:
        while queue and batch.n_free:
            index, machine = queue.pop()
            lane = batch.load(machine.snapshot(), {})
            lane_index[id(lane)] = index
            budget[id(lane)] = max_cycles

    refill()
    while batch.lanes:
        records = batch.step()
        for lane, record in zip(list(batch.lanes), records):
            index = lane_index[id(lane)]
            traces[index].append(record)
            budget[id(lane)] -= 1
            view = batch.lane_view(lane)
            if cpu.halted(view):
                cycles[index] = lane.cycle
            elif cpu.pc_next_unknown(view):
                raise UnresolvedPCError(
                    "concrete run reached an unknown PC; did you forget "
                    "Program.with_inputs()?"
                )
            elif budget[id(lane)] <= 0:
                raise RuntimeError(f"no halt within {max_cycles} cycles")
            else:
                continue
            batch.retire(lane)
            del lane_index[id(lane)], budget[id(lane)]
        refill()
    return [(trace, n) for trace, n in zip(traces, cycles)]
