"""Lock-step batched simulation of independent machine states.

A :class:`BatchMachine` holds up to B *lanes*, each a complete machine
state (net values, behavioral memory, memory-port registers) loaded from a
:meth:`repro.sim.machine.Machine.snapshot` dict.  One :meth:`step` clocks
every live lane simultaneously: the combinational settle and the activity
marking run as single ``(K, n_nets)`` matrix operations through the
dimension-agnostic :class:`~repro.sim.evaluator.LevelizedEvaluator`, while
the small per-lane parts (behavioral memory, forced inputs, annotations)
stay ordinary Python.

Live lanes are kept compacted in the leading rows of the value matrix
(retiring a lane swaps the last live row into the hole), so the matrix
work always scales with the number of *live* paths: a single-path stretch
costs the same as the scalar engine, a K-path stretch settles per
level-group with one fancy-indexing operation instead of K.

This is the engine behind the batched execution-tree exploration in
:mod:`repro.core.activity`.  Lanes are snapshot-compatible with
:class:`Machine` in both directions, so the explorer can mix engines
freely and the differential tests can compare them record for record.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.netlist.core import Netlist
from repro.sim.evaluator import LevelizedEvaluator
from repro.sim.machine import (
    MemoryPorts,
    _MemRequest,
    force_bus,
    read_bus,
    sample_memory_control,
    serve_memory_read,
)
from repro.sim.trace import CycleRecord


class Lane:
    """Handle to one live machine state inside a :class:`BatchMachine`.

    ``row`` is the lane's current row in the value matrix; it changes when
    other lanes retire, so always go through the handle.
    """

    __slots__ = (
        "row",
        "memory",
        "cycle",
        "dout_value",
        "dout_xmask",
        "_request",
        "forced_inputs",
        "next_dff_forces",
    )

    def __init__(self, row: int, snapshot: dict[str, Any], forces: dict[int, int]):
        self.row = row
        self.memory = snapshot["memory"].copy()
        self.cycle = snapshot["cycle"]
        self.dout_value = snapshot["dout_value"]
        self.dout_xmask = snapshot["dout_xmask"]
        self._request = _MemRequest(**vars(snapshot["request"]))
        self.forced_inputs = dict(snapshot["forced_inputs"])
        self.next_dff_forces = dict(forces)


class LaneView:
    """Read-only :class:`Machine`-shaped window onto one lane.

    Exposes exactly the surface the CPU wrapper's introspection hooks use
    (``values`` and ``peek_bus``), so ``cpu.halted``, ``cpu.pc_next_unknown``,
    ``cpu.branch_fork_assignments`` and ``cpu.annotate`` work unchanged on a
    batched lane.
    """

    __slots__ = ("_batch", "_lane")

    def __init__(self, batch: "BatchMachine", lane: Lane):
        self._batch = batch
        self._lane = lane

    @property
    def values(self) -> np.ndarray:
        return self._batch.values[self._lane.row]

    def peek_bus(self, nets: list[int]) -> tuple[int, int]:
        return read_bus(self.values, nets)


class BatchMachine:
    """Up to ``batch_size`` machine states clocked in lock-step."""

    def __init__(
        self,
        netlist: Netlist,
        ports: MemoryPorts,
        evaluator: LevelizedEvaluator,
        batch_size: int,
        annotator: Callable | None = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.netlist = netlist
        self.ports = ports
        self.evaluator = evaluator
        self.batch_size = batch_size
        self.annotator = annotator
        self.values = evaluator.fresh_values(batch=batch_size)
        self._prev_active = np.zeros((batch_size, netlist.n_nets), dtype=bool)
        self.lanes: list[Lane] = []
        self._dff_pos = {
            int(net): pos for pos, net in enumerate(evaluator.dff_out)
        }

    # ------------------------------------------------------------------
    # Lane management
    # ------------------------------------------------------------------
    @property
    def n_free(self) -> int:
        return self.batch_size - len(self.lanes)

    def load(self, snapshot: dict[str, Any], forces: dict[int, int]) -> Lane:
        """Restore a :meth:`Machine.snapshot` dict into a fresh lane.

        *forces* are one-shot DFF overrides consumed by the lane's next
        step — the explorer's concrete assumption for an unknown flag.
        """
        if not self.n_free:
            raise ValueError(f"all {self.batch_size} lanes are live")
        lane = Lane(len(self.lanes), snapshot, forces)
        self.lanes.append(lane)
        self.values[lane.row] = snapshot["values"]
        self._prev_active[lane.row] = snapshot["prev_active"]
        return lane

    def retire(self, lane: Lane) -> None:
        """Remove *lane*, compacting live rows to the top of the matrix."""
        last = self.lanes.pop()
        if last is not lane:
            self.values[lane.row] = self.values[last.row]
            self._prev_active[lane.row] = self._prev_active[last.row]
            last.row = lane.row
            self.lanes[lane.row] = last
        lane.row = -1

    def lane_view(self, lane: Lane) -> LaneView:
        return LaneView(self, lane)

    def snapshot(self, lane: Lane) -> dict[str, Any]:
        """A :class:`Machine`-compatible snapshot of one lane."""
        return {
            "values": self.values[lane.row].copy(),
            "memory": lane.memory.copy(),
            "cycle": lane.cycle,
            "dout_value": lane.dout_value,
            "dout_xmask": lane.dout_xmask,
            "request": _MemRequest(**vars(lane._request)),
            "prev_active": self._prev_active[lane.row].copy(),
            "forced_inputs": dict(lane.forced_inputs),
            "next_dff_forces": dict(lane.next_dff_forces),
        }

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------
    def step(self) -> list[CycleRecord]:
        """Advance every live lane one clock cycle.

        Returns one record per lane, parallel to :attr:`lanes`; records
        match what a scalar :class:`Machine` stepping the same lane state
        would produce, field for field.
        """
        n_live = len(self.lanes)
        evaluator = self.evaluator
        values = self.values[:n_live]
        prev_active = self._prev_active[:n_live]
        prev_values = values.copy()
        next_dff = evaluator.next_dff_values(values, reset=False)
        mem_counts: list[tuple[float, float]] = []
        for lane in self.lanes:
            if lane.next_dff_forces:
                for net, value in lane.next_dff_forces.items():
                    next_dff[lane.row, self._dff_pos[net]] = value
                lane.next_dff_forces = {}
            mem_counts.append(serve_memory_read(lane))
        values[:, evaluator.dff_out] = next_dff
        for lane in self.lanes:
            row = values[lane.row]
            force_bus(row, self.ports.dout, lane.dout_value, lane.dout_xmask)
            for net, value in lane.forced_inputs.items():
                row[net] = value
        evaluator.eval_comb(values)
        active = evaluator.compute_activity(prev_values, values, prev_active)
        self._prev_active[:n_live] = active
        records: list[CycleRecord] = []
        for lane, (mem_reads, mem_writes) in zip(self.lanes, mem_counts):
            sample_memory_control(lane, values[lane.row], self.ports)
            records.append(
                CycleRecord(
                    cycle=lane.cycle,
                    values=values[lane.row].copy(),
                    active=active[lane.row].copy(),
                    mem_reads=mem_reads,
                    mem_writes=mem_writes,
                    annotations=(
                        self.annotator(self.lane_view(lane))
                        if self.annotator
                        else {}
                    ),
                )
            )
            lane.cycle += 1
        return records
