"""Cycle-by-cycle simulation records.

A :class:`Trace` is the bridge between simulation and power analysis: for
every simulated cycle it stores the settled net values (with Xs), the
activity flags from the paper's marking rule, and the behavioral memory
access energy.  Annotations (program counter, decoded instruction, frontend
state) are attached by the CPU wrapper for the COI analysis of §3.5.

Records come in two layouts:

* **unpacked** — ``values`` (uint8 trits) and ``active`` (bool) rows in
  netlist net order, as the scalar machine produces them, and
* **packed** — dual-rail ``value_words`` (``(2, n_words)`` uint64 P/N
  planes) plus ``active_words``, as the bit-plane engine's concrete
  batches and the sharded explorer produce them.  Packed records unpack
  **lazily** (per record on attribute access, or in one bulk
  ``unpack_trits`` call for whole-trace matrices), so a concrete run to
  halt never pays a per-cycle unpack for rows nobody reads per cycle.

Both layouts expose the same ``values``/``active`` attributes and produce
bit-identical matrices; consumers never need to know which one they got.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class CycleRecord:
    """Everything captured about one simulated clock cycle.

    ``values``/``active`` unpack lazily from ``value_words`` /
    ``active_words`` (via ``packing``) when the record was captured
    packed; the unpacked rows are cached on first access.
    """

    __slots__ = (
        "cycle",
        "_values",
        "_active",
        "mem_reads",
        "mem_writes",
        "annotations",
        "active_words",
        "value_words",
        "packing",
    )

    def __init__(
        self,
        cycle: int,
        values: np.ndarray | None = None,
        active: np.ndarray | None = None,
        mem_reads: float = 0.0,
        mem_writes: float = 0.0,
        annotations: dict[str, Any] | None = None,
        active_words: np.ndarray | None = None,
        value_words: np.ndarray | None = None,
        packing=None,
    ):
        self.cycle = cycle
        self._values = values
        self._active = active
        #: behavioral memory accesses this cycle (1.0 also for may-access
        #: under an X enable — conservative, as peak analysis requires)
        self.mem_reads = mem_reads
        self.mem_writes = mem_writes
        self.annotations = {} if annotations is None else annotations
        #: packed uint64 activity words (bitplane engine only; already
        #: masked to real nets) — whole-trace activity reductions stay packed
        self.active_words = active_words
        #: packed (2, n_words) P/N value planes (packed-record mode only)
        self.value_words = value_words
        #: the :class:`~repro.netlist.program.NetlistProgram` whose bit
        #: order the packed words use; required to unpack lazily
        self.packing = packing

    @property
    def values(self) -> np.ndarray:
        """uint8 trit row in net order, unpacked on demand and cached."""
        if self._values is None and self.value_words is not None:
            row = self.packing.unpack_trits(
                self.value_words[0], self.value_words[1]
            )
            row.setflags(write=False)
            self._values = row
        return self._values

    @property
    def active(self) -> np.ndarray:
        """bool activity row in net order, unpacked on demand and cached."""
        if self._active is None and self.active_words is not None:
            self._active = self.packing.unpack_bits(self.active_words)
        return self._active


class Trace:
    """An ordered list of cycle records with matrix views for analysis."""

    def __init__(self, n_nets: int):
        self.n_nets = n_nets
        self.records: list[CycleRecord] = []
        #: the :class:`~repro.netlist.program.NetlistProgram` whose bit
        #: order the records' packed words use (bitplane traces only)
        self.packing = None

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> CycleRecord:
        return self.records[index]

    def append(self, record: CycleRecord) -> None:
        self.records.append(record)

    def extend(self, other: "Trace") -> None:
        self.records.extend(other.records)

    def values_matrix(self) -> np.ndarray:
        """(n_cycles, n_nets) uint8 matrix of settled values (0/1/X).

        Packed traces unpack in **one** vectorized call over the stacked
        plane words instead of once per cycle — this is what lets packed
        concrete runs defer all unpacking to the power-model boundary.
        """
        if self.packing is not None and self.records and all(
            r._values is None and r.value_words is not None
            for r in self.records
        ):
            words = np.stack([r.value_words for r in self.records])
            return self.packing.unpack_trits(words[:, 0], words[:, 1])
        return np.stack([r.values for r in self.records])

    def active_matrix(self) -> np.ndarray:
        """(n_cycles, n_nets) bool matrix of the activity flags."""
        if self.packing is not None and self.records and all(
            r._active is None and r.active_words is not None
            for r in self.records
        ):
            return self.packing.unpack_bits(
                np.stack([r.active_words for r in self.records])
            )
        return np.stack([r.active for r in self.records])

    def mem_accesses(self) -> np.ndarray:
        """(n_cycles, 2) array of [reads, writes] per cycle."""
        return np.array(
            [[r.mem_reads, r.mem_writes] for r in self.records]
        ).reshape(-1, 2)

    def annotation(self, key: str, default: Any = None) -> list[Any]:
        return [r.annotations.get(key, default) for r in self.records]

    def _packed_active(self) -> np.ndarray | None:
        """(n_cycles, n_words) packed activity, when every record has it."""
        if self.packing is None or not self.records:
            return None
        if any(r.active_words is None for r in self.records):
            return None
        return np.stack([r.active_words for r in self.records])

    def toggled_any(self) -> np.ndarray:
        """Per-net flag: was the net active in *any* cycle of the trace?

        This is the "potentially-toggled" gate set of Figure 3.4.  On
        bitplane traces the union is taken over the packed activity words
        (64 nets per OR) and unpacked once at the end.
        """
        packed = self._packed_active()
        if packed is not None:
            return self.packing.unpack_bits(
                np.bitwise_or.reduce(packed, axis=0)
            )
        flags = np.zeros(self.n_nets, dtype=bool)
        for record in self.records:
            flags |= record.active
        return flags

    def activity_counts(self) -> np.ndarray:
        """Number of active nets per cycle (the paper's activity rate).

        Computed with ``np.bitwise_count`` over the packed activity words
        when the trace came from the bitplane engine; falls back to
        summing the bool rows otherwise.  Both paths count the same set.
        """
        packed = self._packed_active()
        if packed is not None:
            from repro.sim.bitplane import popcount

            return popcount(packed).astype(np.int64)
        return np.array(
            [int(record.active.sum()) for record in self.records],
            dtype=np.int64,
        )
