"""Cycle-by-cycle simulation records.

A :class:`Trace` is the bridge between simulation and power analysis: for
every simulated cycle it stores the settled net values (with Xs), the
activity flags from the paper's marking rule, and the behavioral memory
access energy.  Annotations (program counter, decoded instruction, frontend
state) are attached by the CPU wrapper for the COI analysis of §3.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class CycleRecord:
    """Everything captured about one simulated clock cycle."""

    cycle: int
    values: np.ndarray
    active: np.ndarray
    #: behavioral memory accesses this cycle (1.0 also for may-access
    #: under an X enable — conservative, as peak analysis requires)
    mem_reads: float
    mem_writes: float
    annotations: dict[str, Any] = field(default_factory=dict)
    #: packed uint64 activity words (bitplane engine only; already masked
    #: to real nets) — lets whole-trace activity reductions stay packed
    active_words: np.ndarray | None = None


class Trace:
    """An ordered list of cycle records with matrix views for analysis."""

    def __init__(self, n_nets: int):
        self.n_nets = n_nets
        self.records: list[CycleRecord] = []
        #: the :class:`~repro.netlist.program.NetlistProgram` whose bit
        #: order the records' ``active_words`` use (bitplane traces only)
        self.packing = None

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> CycleRecord:
        return self.records[index]

    def append(self, record: CycleRecord) -> None:
        self.records.append(record)

    def extend(self, other: "Trace") -> None:
        self.records.extend(other.records)

    def values_matrix(self) -> np.ndarray:
        """(n_cycles, n_nets) uint8 matrix of settled values (0/1/X)."""
        return np.stack([r.values for r in self.records])

    def active_matrix(self) -> np.ndarray:
        """(n_cycles, n_nets) bool matrix of the activity flags."""
        return np.stack([r.active for r in self.records])

    def mem_accesses(self) -> np.ndarray:
        """(n_cycles, 2) array of [reads, writes] per cycle."""
        return np.array(
            [[r.mem_reads, r.mem_writes] for r in self.records]
        ).reshape(-1, 2)

    def annotation(self, key: str, default: Any = None) -> list[Any]:
        return [r.annotations.get(key, default) for r in self.records]

    def _packed_active(self) -> np.ndarray | None:
        """(n_cycles, n_words) packed activity, when every record has it."""
        if self.packing is None or not self.records:
            return None
        if any(r.active_words is None for r in self.records):
            return None
        return np.stack([r.active_words for r in self.records])

    def toggled_any(self) -> np.ndarray:
        """Per-net flag: was the net active in *any* cycle of the trace?

        This is the "potentially-toggled" gate set of Figure 3.4.  On
        bitplane traces the union is taken over the packed activity words
        (64 nets per OR) and unpacked once at the end.
        """
        packed = self._packed_active()
        if packed is not None:
            return self.packing.unpack_bits(
                np.bitwise_or.reduce(packed, axis=0)
            )
        flags = np.zeros(self.n_nets, dtype=bool)
        for record in self.records:
            flags |= record.active
        return flags

    def activity_counts(self) -> np.ndarray:
        """Number of active nets per cycle (the paper's activity rate).

        Computed with ``np.bitwise_count`` over the packed activity words
        when the trace came from the bitplane engine; falls back to
        summing the bool rows otherwise.  Both paths count the same set.
        """
        packed = self._packed_active()
        if packed is not None:
            from repro.sim.bitplane import popcount

            return popcount(packed).astype(np.int64)
        return np.array(
            [int(record.active.sum()) for record in self.records],
            dtype=np.int64,
        )
