"""Cycle-by-cycle simulation records.

A :class:`Trace` is the bridge between simulation and power analysis: for
every simulated cycle it stores the settled net values (with Xs), the
activity flags from the paper's marking rule, and the behavioral memory
access energy.  Annotations (program counter, decoded instruction, frontend
state) are attached by the CPU wrapper for the COI analysis of §3.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class CycleRecord:
    """Everything captured about one simulated clock cycle."""

    cycle: int
    values: np.ndarray
    active: np.ndarray
    #: behavioral memory accesses this cycle (1.0 also for may-access
    #: under an X enable — conservative, as peak analysis requires)
    mem_reads: float
    mem_writes: float
    annotations: dict[str, Any] = field(default_factory=dict)


class Trace:
    """An ordered list of cycle records with matrix views for analysis."""

    def __init__(self, n_nets: int):
        self.n_nets = n_nets
        self.records: list[CycleRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> CycleRecord:
        return self.records[index]

    def append(self, record: CycleRecord) -> None:
        self.records.append(record)

    def extend(self, other: "Trace") -> None:
        self.records.extend(other.records)

    def values_matrix(self) -> np.ndarray:
        """(n_cycles, n_nets) uint8 matrix of settled values (0/1/X)."""
        return np.stack([r.values for r in self.records])

    def active_matrix(self) -> np.ndarray:
        """(n_cycles, n_nets) bool matrix of the activity flags."""
        return np.stack([r.active for r in self.records])

    def mem_accesses(self) -> np.ndarray:
        """(n_cycles, 2) array of [reads, writes] per cycle."""
        return np.array(
            [[r.mem_reads, r.mem_writes] for r in self.records]
        ).reshape(-1, 2)

    def annotation(self, key: str, default: Any = None) -> list[Any]:
        return [r.annotations.get(key, default) for r in self.records]

    def toggled_any(self) -> np.ndarray:
        """Per-net flag: was the net active in *any* cycle of the trace?

        This is the "potentially-toggled" gate set of Figure 3.4.
        """
        flags = np.zeros(self.n_nets, dtype=bool)
        for record in self.records:
            flags |= record.active
        return flags
