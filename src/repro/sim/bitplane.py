"""Bit-plane executor for the fused level schedule.

:class:`BitplaneEvaluator` is the packed counterpart of
:class:`~repro.sim.evaluator.LevelizedEvaluator`.  State is a
``(..., 3, n_words)`` uint64 array — the dual-rail ``P``/``N`` value
planes plus the ``A`` activity plane (see :mod:`repro.netlist.program`
for the encoding and the compile step).  One simulation cycle is:

1. ``stash_prev``: snapshot the settled planes (the *previous* values of
   the activity rule) into a persistent scratch buffer,
2. the machine updates the source block (DFF load, forced inputs) with
   word stores and masked read-modify-writes,
3. ``settle_and_mark``: one fused sweep over the compiled levels that
   evaluates the combinational logic **and** applies the paper's
   activity-marking rule in the same pass — per level: one fancy-indexed
   byte gather + ``packbits`` fetches every input bit of every gate (both
   rails) and every input's activity bit, then a fixed handful of
   word-wide ``&``/``|``/``^`` ops computes the outputs, the changed/X
   flags, and the activity word for the whole level.

Everything is dimension-agnostic: a ``(3, n_words)`` state (one machine)
or a ``(B, 3, n_words)`` batch evaluates through the same code; scratch
buffers and the per-level views into them are cached per leading shape so
the steady-state cost is the ufunc dispatches themselves.

Bit identity with the reference engine is a hard contract: for every
input state, unpacking after ``settle_and_mark`` must equal
``LevelizedEvaluator.eval_comb`` + ``compute_activity`` exactly — the
differential suite enforces this per gate (exhaustively over the 3-valued
domain) and per benchmark (whole execution trees).
"""

from __future__ import annotations

import os

import numpy as np

from repro.netlist.core import Netlist
from repro.netlist.program import A_PLANE, N_PLANE, P_PLANE, NetlistProgram

_ONE = np.uint64(1)

#: the simulation engines; ``bitplane`` is the default, ``native`` is the
#: generated-C settle kernel (falls back to bitplane without a C
#: compiler), ``reference`` the original uint8 LevelizedEvaluator
#: retained as the oracle
ENGINES = ("bitplane", "native", "reference")

#: engine used when nothing is specified; override with ``REPRO_ENGINE``
DEFAULT_ENGINE = "bitplane"


def default_engine() -> str:
    """The engine selected by the ``REPRO_ENGINE`` environment variable."""
    raw = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if not raw:
        return DEFAULT_ENGINE
    if raw not in ENGINES:
        raise ValueError(
            f"REPRO_ENGINE must be one of {ENGINES}, got {raw!r}"
        )
    return raw


def make_evaluator(netlist: Netlist, engine: str | None = None):
    """Build the evaluator for *engine* (``None``: honor ``REPRO_ENGINE``)."""
    from repro.sim.evaluator import LevelizedEvaluator

    engine = engine or default_engine()
    if engine == "reference":
        return LevelizedEvaluator(netlist)
    if engine == "bitplane":
        return BitplaneEvaluator(netlist)
    if engine == "native":
        from repro.sim.native import evaluator_or_fallback

        return evaluator_or_fallback(netlist)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


#: popcount LUT fallback for numpy < 2.0 (no ``np.bitwise_count``)
_POPCOUNT8 = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def _bitwise_count(words: np.ndarray) -> np.ndarray:
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    per_byte = _POPCOUNT8[as_bytes].reshape(words.shape + (8,))
    return per_byte.sum(axis=-1, dtype=np.uint64)


def popcount(words: np.ndarray, axis: int | None = -1) -> np.ndarray:
    """Per-row population count of uint64 mask words."""
    counts = _bitwise_count(words)
    return counts.sum(axis=axis) if axis is not None else counts


class _LeadBuffers:
    """Per-leading-shape scratch, compiled into flat instruction tapes.

    Every word-wide boolean op of the fused sweep is pre-assembled as a
    ``(ufunc, a, b, out)`` tuple over *cached views* of the persistent
    scratch buffers, so the per-cycle inner loop is a uniform
    positional-argument dispatch with no slicing, dict lookups, or
    keyword parsing — the Python-side cost per op is one tuple unpack and
    one ufunc call.
    """

    def __init__(self, program: NetlistProgram, lead: tuple[int, ...]):
        self.lead = lead
        n_temp = max(
            program.max_level_words,
            2 * program.max_run_words,  # mux double-width product temp
            program.src_words,
            program.dff_words,
            1,
        )
        self.scratch = np.zeros(
            lead + (max(program.max_scratch_words, 1),), dtype=np.uint64
        )
        self.scratch8 = self.scratch.view(np.uint8)
        self.res = np.zeros(
            lead + (2, max(program.max_level_words, 1)), dtype=np.uint64
        )
        self.t1 = np.zeros(lead + (n_temp,), dtype=np.uint64)
        self.t2 = np.zeros_like(self.t1)
        self.tpn = np.zeros(
            lead + (2, max(program.max_level_words, 1)), dtype=np.uint64
        )
        self.prev = np.zeros(lead + (3, program.n_words), dtype=np.uint64)
        self.prev8 = self.prev.reshape(lead + (3 * program.n_words,)).view(
            np.uint8
        )

        band, bor, bxor = np.bitwise_and, np.bitwise_or, np.bitwise_xor
        S, t1, t2 = self.scratch, self.t1, self.t2

        #: per level: (gather_bytes, gather_masks, gather_buf, scratch8_dst,
        #:             tape, res_pn_view, word0, word1)
        self.levels = []
        for plan in program.levels:
            wl = plan.words
            tape = []
            for run in plan.runs:
                ops = tuple(
                    S[..., off : off + run.words] for off in run.slot_words
                )
                rp = self.res[..., 0, run.res_word : run.res_word + run.words]
                rn = self.res[..., 1, run.res_word : run.res_word + run.words]
                tr1 = t1[..., : run.words]
                tr2 = t2[..., : run.words]
                if run.cls == "copy":
                    # BUF/NOT: the gather already selected the source
                    # rails (inversion folded in); OR-with-self moves them
                    tape.append((bor, ops[0], ops[0], rp))
                    tape.append((bor, ops[1], ops[1], rn))
                elif run.cls == "and":
                    tape.append((band, ops[0], ops[2], rp))
                    tape.append((bor, ops[1], ops[3], rn))
                elif run.cls == "and_swap":
                    tape.append((bor, ops[1], ops[3], rp))
                    tape.append((band, ops[0], ops[2], rn))
                elif run.cls == "mux":
                    # blocks SN,SP,PA,PB,NA,NB are laid out adjacently, so
                    # one double-width AND forms both select products of a
                    # rail; an OR of its halves blends them
                    w = run.words
                    sel2 = S[..., run.slot_words[0] : run.slot_words[0] + 2 * w]
                    p2 = S[..., run.slot_words[2] : run.slot_words[2] + 2 * w]
                    n2 = S[..., run.slot_words[4] : run.slot_words[4] + 2 * w]
                    td = t1[..., : 2 * w]
                    tape.append((band, sel2, p2, td))
                    tape.append((bor, td[..., :w], td[..., w:], rp))
                    tape.append((band, sel2, n2, td))
                    tape.append((bor, td[..., :w], td[..., w:], rn))
                else:  # xor / xor_swap
                    pa, na, pb, nb = ops
                    out_p, out_n = (rn, rp) if run.cls == "xor_swap" else (rp, rn)
                    tape.append((band, pa, nb, tr1))
                    tape.append((band, na, pb, tr2))
                    tape.append((bor, tr1, tr2, out_p))
                    tape.append((band, pa, pb, tr1))
                    tape.append((band, na, nb, tr2))
                    tape.append((bor, tr1, tr2, out_n))

            # activity: t1 = changed, t2 = is_x & driven; the runtime then
            # ORs them straight into the A plane's level window.  The
            # changed XOR runs over both rails at once (the res block and
            # the prev planes expose matching (2, words) windows).
            res_p = self.res[..., 0, :wl]
            res_n = self.res[..., 1, :wl]
            res_pn = self.res[..., :, :wl]
            prev_pn = self.prev[..., 0:2, plan.word0 : plan.word0 + wl]
            tpn = self.tpn[..., :, :wl]
            lt1 = t1[..., :wl]
            lt2 = t2[..., :wl]
            act0 = S[..., plan.act0_word : plan.act0_word + wl]
            act1 = S[..., plan.act1_word : plan.act1_word + wl]
            act_tape = [
                (bxor, res_pn, prev_pn, tpn),
                (bor, tpn[..., 0, :], tpn[..., 1, :], lt1),
                (band, res_p, res_n, lt2),
                (bor, act0, act1, act0),
            ]
            if plan.act2_word is not None:
                act2 = S[
                    ..., plan.act2_word : plan.act2_word + plan.mux_words
                ]
                drv2 = act0[..., wl - plan.mux_words :]
                act_tape.append((bor, drv2, act2, drv2))
            act_tape.append((band, lt2, act0, lt2))
            tape.extend(act_tape)

            self.levels.append(
                (
                    plan.gather_bytes,
                    plan.gather_masks,
                    np.zeros(lead + (plan.scratch_words * 64,), dtype=np.uint8),
                    self.scratch8[..., : plan.scratch_words * 8],
                    tuple(tape),
                    self.res[..., :, :wl],
                    plan.word0,
                    plan.word0 + wl,
                    lt1,
                    lt2,
                )
            )
        sw = program.src_words
        self.src_t1 = self.t1[..., :sw]
        self.src_t2 = self.t2[..., :sw]
        self.src_t3 = np.zeros(lead + (sw,), dtype=np.uint64)
        d0 = program.dff_word0
        d1 = d0 + program.dff_words
        self.src_t2_dff = self.t2[..., d0:d1]
        self.src_t1_dff = self.t1[..., d0:d1]


class BitplaneEvaluator:
    """Executes the compiled fused schedule on packed bit planes."""

    #: machines dispatch on this to pick the packed state representation
    packed = True

    def __init__(self, netlist: Netlist, program: NetlistProgram | None = None):
        self.netlist = netlist
        self.program = program or NetlistProgram(netlist)
        prog = self.program
        self.n_nets = netlist.n_nets
        self.n_words = prog.n_words
        self.depth = prog.depth
        # Reference-compatible index arrays (sim.machine and the explorers
        # use these regardless of engine).
        self.dff_out = prog.dff_out
        self.dff_d = prog.dff_d
        self.dff_reset = prog.dff_reset
        self.input_nets = prog.input_nets
        self.const0_nets = prog.const0_nets
        self.const1_nets = prog.const1_nets

        # fresh-state plane templates: every real net X, constants tied,
        # pads and the zero bit a known 0
        fresh_p = prog.valid_mask.copy()
        fresh_n = np.full(prog.n_words, ~np.uint64(0), dtype=np.uint64)
        for pos in prog.const0_positions:
            fresh_p[pos >> 6] &= ~(_ONE << np.uint64(pos & 63))
        for pos in prog.const1_positions:
            fresh_n[pos >> 6] &= ~(_ONE << np.uint64(pos & 63))
        self._fresh_p = fresh_p
        self._fresh_n = fresh_n

        self._bufs: dict[tuple[int, ...], _LeadBuffers] = {}

    # ------------------------------------------------------------------
    # State construction and conversion
    # ------------------------------------------------------------------
    def fresh_planes(self, batch: int | None = None) -> np.ndarray:
        """All-X packed state with constants tied (cf. ``fresh_values``)."""
        lead = () if batch is None else (batch,)
        planes = np.zeros(lead + (3, self.n_words), dtype=np.uint64)
        planes[..., P_PLANE, :] = self._fresh_p
        planes[..., N_PLANE, :] = self._fresh_n
        return planes

    def fresh_values(self, batch: int | None = None) -> np.ndarray:
        """Reference-compatible uint8 fresh state (unpacked)."""
        return self.unpack_values(self.fresh_planes(batch))

    def pack_state(
        self, values: np.ndarray, active: np.ndarray | None = None
    ) -> np.ndarray:
        """uint8 values (+ optional bool activity) -> packed planes."""
        lead = values.shape[:-1]
        planes = np.zeros(lead + (3, self.n_words), dtype=np.uint64)
        planes[..., 0:2, :] = self.program.pack_values(values)
        if active is not None:
            planes[..., A_PLANE, :] = self.program.pack_active(active)
        return planes

    def unpack_values(self, planes: np.ndarray) -> np.ndarray:
        return self.program.unpack_trits(
            planes[..., P_PLANE, :], planes[..., N_PLANE, :]
        )

    def unpack_active(self, planes: np.ndarray) -> np.ndarray:
        return self.program.unpack_bits(planes[..., A_PLANE, :])

    def active_words(self, planes: np.ndarray) -> np.ndarray:
        """The packed activity row(s), masked to real nets."""
        return planes[..., A_PLANE, :] & self.program.valid_mask

    def count_active(self, planes: np.ndarray) -> np.ndarray:
        """Per-row number of active nets, straight from the A plane."""
        return popcount(self.active_words(planes))

    def state_bytes(self, planes: np.ndarray) -> bytes:
        """Architectural-state fingerprint bytes (the DFF value words)."""
        prog = self.program
        d0 = prog.dff_word0
        return planes[..., 0:2, d0 : d0 + prog.dff_words].tobytes()

    # ------------------------------------------------------------------
    # DFF clocking
    # ------------------------------------------------------------------
    def next_dff_planes(self, planes: np.ndarray, reset: bool) -> np.ndarray:
        """The packed ``(…, 2, dff_words)`` values every DFF will load."""
        prog = self.program
        lead = planes.shape[:-2]
        if reset:
            return np.broadcast_to(
                prog.dff_reset_words, lead + prog.dff_reset_words.shape
            ).copy()
        raw8 = planes.reshape(lead + (3 * self.n_words,)).view(np.uint8)
        g = raw8.take(prog.dff_gather_bytes, -1)
        np.bitwise_and(g, prog.dff_gather_masks, out=g)
        packed = np.packbits(g, axis=-1, bitorder="little").view(np.uint64)
        return packed.reshape(lead + (2, prog.dff_words))

    def force_dff_bits(
        self, dff_planes: np.ndarray, forces: dict[int, int]
    ) -> None:
        """Apply one-shot DFF load overrides to a ``(2, dff_words)`` row."""
        for net, value in forces.items():
            j = self.program.dff_bit_of[int(net)]
            word, mask = j >> 6, _ONE << np.uint64(j & 63)
            if value:
                dff_planes[P_PLANE, word] |= mask
                dff_planes[N_PLANE, word] &= ~mask
            else:
                dff_planes[P_PLANE, word] &= ~mask
                dff_planes[N_PLANE, word] |= mask

    def set_dff_planes(self, planes: np.ndarray, dff_planes: np.ndarray) -> None:
        prog = self.program
        d0 = prog.dff_word0
        planes[..., 0:2, d0 : d0 + prog.dff_words] = dff_planes

    def write_trit(self, planes: np.ndarray, net: int, value: int) -> None:
        """Force one net (0/1/X) in place — the forced-inputs primitive."""
        pos = int(self.program.pos_of[net])
        word, mask = pos >> 6, _ONE << np.uint64(pos & 63)
        if value == 0:
            planes[..., P_PLANE, word] &= ~mask
            planes[..., N_PLANE, word] |= mask
        elif value == 1:
            planes[..., P_PLANE, word] |= mask
            planes[..., N_PLANE, word] &= ~mask
        else:
            planes[..., P_PLANE, word] |= mask
            planes[..., N_PLANE, word] |= mask

    # ------------------------------------------------------------------
    # The fused settle + activity sweep
    # ------------------------------------------------------------------
    def _lead_bufs(self, lead: tuple[int, ...]) -> _LeadBuffers:
        bufs = self._bufs.get(lead)
        if bufs is None:
            bufs = self._bufs[lead] = _LeadBuffers(self.program, lead)
        return bufs

    def stash_prev(self, planes: np.ndarray) -> None:
        """Record the settled pre-step planes (activity's *previous*)."""
        np.copyto(self._lead_bufs(planes.shape[:-2]).prev, planes)

    def settle_and_mark(self, planes: np.ndarray) -> None:
        """Settle all levels and write the A plane, in place.

        ``stash_prev`` must have captured the planes at the end of the
        previous cycle (before the DFF/input updates of this one).
        """
        prog = self.program
        lead = planes.shape[:-2]
        bufs = self._lead_bufs(lead)
        raw8 = planes.reshape(lead + (3 * self.n_words,)).view(np.uint8)
        plane_p = planes[..., P_PLANE, :]
        plane_n = planes[..., N_PLANE, :]
        plane_a = planes[..., A_PLANE, :]
        plane_pn = planes[..., 0:2, :]

        # --- source block: changed | input rule | DFF rule ---
        sw = prog.src_words
        t1, t2, t3 = bufs.src_t1, bufs.src_t2, bufs.src_t3
        np.bitwise_xor(plane_p[..., :sw], bufs.prev[..., P_PLANE, :sw], t1)
        np.bitwise_xor(plane_n[..., :sw], bufs.prev[..., N_PLANE, :sw], t2)
        np.bitwise_or(t1, t2, t1)  # changed
        np.bitwise_and(plane_p[..., :sw], plane_n[..., :sw], t2)  # is_x
        np.bitwise_and(t2, prog.input_mask, t3)
        np.bitwise_or(t1, t3, t1)  # inputs: active when changed or X
        if prog.dff_words:
            g = bufs.prev8.take(prog.dff_act_bytes, -1)
            np.bitwise_and(g, prog.dff_act_masks, g)
            driven = np.packbits(g, axis=-1, bitorder="little").view(np.uint64)
            np.bitwise_and(bufs.src_t2_dff, driven, driven)
            np.bitwise_or(bufs.src_t1_dff, driven, bufs.src_t1_dff)
        plane_a[..., :sw] = t1

        # --- fused level sweep over the compiled instruction tapes ---
        band, bor = np.bitwise_and, np.bitwise_or
        packbits = np.packbits
        copyto = np.copyto
        for gb, gm, gbuf, s8dst, tape, res_pn, w0, w1, lt1, lt2 in bufs.levels:
            raw8.take(gb, -1, gbuf)
            band(gbuf, gm, gbuf)
            copyto(s8dst, packbits(gbuf, axis=-1, bitorder="little"))
            for op, a, b, out in tape:
                op(a, b, out)
            plane_pn[..., w0:w1] = res_pn
            bor(lt1, lt2, plane_a[..., w0:w1])
