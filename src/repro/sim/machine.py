"""The clocked machine: netlist + behavioral memory + forced inputs.

One :class:`Machine` instance is a complete simulatable system.  The same
machine runs both modes of the paper:

* **symbolic mode** — peripheral inputs forced to X, memory input regions
  loaded as X (Algorithm 1's setting), and
* **concrete mode** — all inputs concrete, used for input-based profiling,
  validation, and the baselines.

The machine is snapshot/restorable so the execution-tree explorer can fork
at input-dependent branches, and hashable so visited states are memoized.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.logic import X
from repro.netlist.core import Netlist
from repro.sim.evaluator import LevelizedEvaluator
from repro.sim.memory import TernaryMemory
from repro.sim.trace import CycleRecord, Trace

MASK16 = 0xFFFF


@dataclass
class MemoryPorts:
    """Net ids wiring the netlist to the behavioral memory.

    ``dout`` nets must be INPUT gates (the memory drives them); the rest
    are ordinary netlist outputs sampled after each cycle settles.
    """

    addr: list[int]
    din: list[int]
    dout: list[int]
    we: int
    en: int


@dataclass
class _MemRequest:
    """Memory control sampled at the end of a cycle (sync-SRAM timing)."""

    addr: int | None = None
    addr_known: bool = False
    en: int = 0
    we: int = 0
    din_value: int = 0
    din_xmask: int = MASK16


def read_bus(values: np.ndarray, nets: list[int]) -> tuple[int, int]:
    """Decode an LSB-first bus into ``(value, xmask)`` integers."""
    value = 0
    xmask = 0
    for position, net in enumerate(nets):
        bit = values[net]
        if bit == X:
            xmask |= 1 << position
        elif bit:
            value |= 1 << position
    return value, xmask


def force_bus(
    values: np.ndarray, nets: list[int], value: int, xmask: int = 0
) -> None:
    """Drive an LSB-first bus of INPUT nets with a (value, xmask) word."""
    for position, net in enumerate(nets):
        if (xmask >> position) & 1:
            values[net] = X
        else:
            values[net] = (value >> position) & 1


# ----------------------------------------------------------------------
# Memory-port protocol, shared by Machine and sim.batch.BatchMachine.
# *state* is any object carrying ``memory``, ``dout_value``, ``dout_xmask``
# and ``_request`` attributes; keeping one implementation guarantees the
# scalar and batched engines can never drift apart.
# ----------------------------------------------------------------------
def sample_memory_control(state, values: np.ndarray, ports: "MemoryPorts") -> None:
    """Latch the memory request from settled *values* and commit writes."""
    addr_value, addr_xmask = read_bus(values, ports.addr)
    request = _MemRequest()
    request.addr_known = addr_xmask == 0
    request.addr = addr_value if request.addr_known else None
    request.en = int(values[ports.en])
    request.we = int(values[ports.we])
    request.din_value, request.din_xmask = read_bus(values, ports.din)
    state._request = request
    commit_memory_write(state, request)


def commit_memory_write(state, request: _MemRequest) -> None:
    if request.we == 0:
        return
    if request.we == 1:
        state.memory.write(
            request.addr if request.addr_known else None,
            request.din_value,
            request.din_xmask,
        )
    else:  # we == X: the store may or may not happen
        state.memory.write_uncertain(
            request.addr if request.addr_known else None,
            request.din_value,
            request.din_xmask,
        )


def serve_memory_read(state) -> tuple[float, float]:
    """Update the dout register; return (reads, writes) this cycle."""
    request = state._request
    reads = writes = 0.0
    if request.en == 1:
        value, xmask = state.memory.read(
            request.addr if request.addr_known else None
        )
        state.dout_value, state.dout_xmask = value, xmask
        reads = 1.0
    elif request.en == X:
        value, xmask = state.memory.read(
            request.addr if request.addr_known else None
        )
        differs = (state.dout_value ^ value) | state.dout_xmask | xmask
        state.dout_value &= ~differs & MASK16
        state.dout_xmask = differs & MASK16
        reads = 1.0  # conservative: the access may happen
    if request.we in (1, X):
        writes = 1.0
    return reads, writes


class Machine:
    """A complete clocked system: CPU netlist plus behavioral memory."""

    def __init__(
        self,
        netlist: Netlist,
        ports: MemoryPorts,
        evaluator: LevelizedEvaluator | None = None,
        memory: TernaryMemory | None = None,
    ):
        self.netlist = netlist
        self.ports = ports
        self.evaluator = evaluator or LevelizedEvaluator(netlist)
        self.memory = memory or TernaryMemory()
        self.values = self.evaluator.fresh_values()
        self.cycle = 0
        #: Last-read memory word presented on the dout bus (sync SRAM reg).
        self.dout_value = 0
        self.dout_xmask = MASK16
        self._request = _MemRequest()
        self._prev_active = np.zeros(netlist.n_nets, dtype=bool)
        #: Externally forced input nets (peripheral ports, irq lines, ...).
        self.forced_inputs: dict[int, int] = {}
        #: One-shot DFF load overrides {dff net: value}, consumed by the
        #: next step().  The execution-tree explorer uses this to assume a
        #: concrete value for an unknown status flag on each forked path.
        self.next_dff_forces: dict[int, int] = {}
        self._dff_pos = {
            int(net): pos for pos, net in enumerate(self.evaluator.dff_out)
        }
        #: Copy-on-write marker: True while ``self.values`` may be shared
        #: with a snapshot (or a trace record); :meth:`step` materializes a
        #: private copy before mutating.
        self._values_shared = False
        self.annotator = None
        #: Extra annotations callback: machine -> dict, set by the CPU layer.

    # ------------------------------------------------------------------
    # State management (forking + memoization)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A restorable state capture, copy-on-write where possible.

        ``values`` is shared with the machine until the next :meth:`step`
        (which materializes before mutating); ``memory`` is a
        :meth:`~repro.sim.memory.TernaryMemory.fork`; ``prev_active`` is
        only ever reassigned, never mutated in place, so the reference is
        shared outright.  Snapshots are therefore O(registers) per cycle
        instead of O(memory), which is what makes the per-cycle snapshot
        of the execution explorers affordable.
        """
        self._values_shared = True
        return {
            "values": self.values,
            "memory": self.memory.fork(),
            "cycle": self.cycle,
            "dout_value": self.dout_value,
            "dout_xmask": self.dout_xmask,
            "request": _MemRequest(**vars(self._request)),
            "prev_active": self._prev_active,
            "forced_inputs": dict(self.forced_inputs),
            "next_dff_forces": dict(self.next_dff_forces),
        }

    def restore(self, snap: dict[str, Any]) -> None:
        """Adopt *snap* without invalidating it (copy-on-write adoption)."""
        self.values = snap["values"]
        self._values_shared = True
        self.memory = snap["memory"].fork()
        self.cycle = snap["cycle"]
        self.dout_value = snap["dout_value"]
        self.dout_xmask = snap["dout_xmask"]
        self._request = _MemRequest(**vars(snap["request"]))
        self._prev_active = snap["prev_active"]
        self.forced_inputs = dict(snap["forced_inputs"])
        self.next_dff_forces = dict(snap["next_dff_forces"])

    def state_key(self) -> bytes:
        """Architectural-state fingerprint for execution-tree memoization."""
        return Machine.snapshot_state_key(
            {
                "values": self.values,
                "dout_value": self.dout_value,
                "dout_xmask": self.dout_xmask,
                "memory": self.memory,
                "request": self._request,
            },
            self.evaluator.dff_out,
        )

    @staticmethod
    def snapshot_state_key(snap: dict, dff_out) -> bytes:
        """State fingerprint of a snapshot dict (see :meth:`state_key`).

        Covers everything that determines future behaviour: flip-flop
        values, the registered memory-read word, the pending memory
        request, and the full memory contents.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(snap["values"][dff_out].tobytes())
        h.update(int(snap["dout_value"]).to_bytes(2, "little"))
        h.update(int(snap["dout_xmask"]).to_bytes(2, "little"))
        request = snap["request"]
        h.update(
            repr(
                (
                    request.addr,
                    request.addr_known,
                    request.en,
                    request.we,
                    request.din_value,
                    request.din_xmask,
                )
            ).encode()
        )
        h.update(snap["memory"].digest())
        return h.digest()

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------
    def _apply_inputs(self) -> None:
        force_bus(
            self.values, self.ports.dout, self.dout_value, self.dout_xmask
        )
        for net, value in self.forced_inputs.items():
            self.values[net] = value

    def _sample_memory_control(self) -> None:
        sample_memory_control(self, self.values, self.ports)

    def _serve_read(self) -> tuple[float, float]:
        """Update the dout register; return (reads, writes) this cycle."""
        return serve_memory_read(self)

    def step(self, reset: bool = False, trace: Trace | None = None) -> CycleRecord:
        """Advance one clock cycle and optionally record it into *trace*."""
        if self._values_shared:
            # A snapshot or trace record holds self.values: hand it the old
            # array and mutate a private copy (one copy per cycle total).
            prev_values = self.values
            self.values = prev_values.copy()
            self._values_shared = False
        else:
            prev_values = self.values.copy()
        next_dff = self.evaluator.next_dff_values(self.values, reset)
        if self.next_dff_forces:
            for net, value in self.next_dff_forces.items():
                next_dff[self._dff_pos[net]] = value
            self.next_dff_forces = {}
        mem_reads, mem_writes = self._serve_read()
        self.values[self.evaluator.dff_out] = next_dff
        self._apply_inputs()
        self.evaluator.eval_comb(self.values)
        active = self.evaluator.compute_activity(
            prev_values, self.values, self._prev_active
        )
        self._sample_memory_control()
        record = CycleRecord(
            cycle=self.cycle,
            values=self.values,  # CoW: next step materializes before mutating
            active=active,
            mem_reads=mem_reads,
            mem_writes=mem_writes,
            annotations=self.annotator(self) if self.annotator else {},
        )
        self._values_shared = True
        self._prev_active = active
        self.cycle += 1
        if trace is not None:
            trace.append(record)
        return record

    def reset_sequence(self, cycles: int = 2, trace: Trace | None = None) -> None:
        """Hold reset for *cycles* clock edges (Algorithm 1 line 4)."""
        for _ in range(cycles):
            self.step(reset=True, trace=trace)

    def peek_bus(self, nets: list[int]) -> tuple[int, int]:
        return read_bus(self.values, nets)
