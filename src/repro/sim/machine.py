"""The clocked machine: netlist + behavioral memory + forced inputs.

One :class:`Machine` instance is a complete simulatable system.  The same
machine runs both modes of the paper:

* **symbolic mode** — peripheral inputs forced to X, memory input regions
  loaded as X (Algorithm 1's setting), and
* **concrete mode** — all inputs concrete, used for input-based profiling,
  validation, and the baselines.

The machine is snapshot/restorable so the execution-tree explorer can fork
at input-dependent branches, and hashable so visited states are memoized.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.logic import X
from repro.netlist.core import Netlist
from repro.netlist.program import N_PLANE, P_PLANE
from repro.sim.bitplane import make_evaluator
from repro.sim.evaluator import LevelizedEvaluator
from repro.sim.memory import TernaryMemory
from repro.sim.trace import CycleRecord, Trace

MASK16 = 0xFFFF


@dataclass
class MemoryPorts:
    """Net ids wiring the netlist to the behavioral memory.

    ``dout`` nets must be INPUT gates (the memory drives them); the rest
    are ordinary netlist outputs sampled after each cycle settles.
    """

    addr: list[int]
    din: list[int]
    dout: list[int]
    we: int
    en: int


@dataclass
class _MemRequest:
    """Memory control sampled at the end of a cycle (sync-SRAM timing)."""

    addr: int | None = None
    addr_known: bool = False
    en: int = 0
    we: int = 0
    din_value: int = 0
    din_xmask: int = MASK16


def read_bus(values: np.ndarray, nets: list[int]) -> tuple[int, int]:
    """Decode an LSB-first bus into ``(value, xmask)`` integers."""
    value = 0
    xmask = 0
    for position, net in enumerate(nets):
        bit = values[net]
        if bit == X:
            xmask |= 1 << position
        elif bit:
            value |= 1 << position
    return value, xmask


def force_bus(
    values: np.ndarray, nets: list[int], value: int, xmask: int = 0
) -> None:
    """Drive an LSB-first bus of INPUT nets with a (value, xmask) word."""
    for position, net in enumerate(nets):
        if (xmask >> position) & 1:
            values[net] = X
        else:
            values[net] = (value >> position) & 1


# ----------------------------------------------------------------------
# Packed-state forcing primitives (bit-plane engine), shared by Machine
# and BatchMachine.  Forced nets are INPUT gates, so their packed bits
# live in the source block and are updated with a handful of masked
# read-modify-writes on whole uint64 words — the planes never unpack.
# ----------------------------------------------------------------------
def compile_trit_masks(program, assignments: dict[int, int]) -> list[tuple]:
    """{net: trit} -> per-word (all_bits, p_bits, n_bits) Python-int masks."""
    by_word: dict[int, list[int]] = {}
    for net, value in assignments.items():
        pos = int(program.pos_of[net])
        word, bit = pos >> 6, 1 << (pos & 63)
        masks = by_word.setdefault(word, [0, 0, 0])
        masks[0] |= bit
        if value != 0:  # 1 and X raise the P ("can be 1") rail
            masks[1] |= bit
        if value != 1:  # 0 and X raise the N ("can be 0") rail
            masks[2] |= bit
    return [(w, m[0], m[1], m[2]) for w, m in sorted(by_word.items())]


def apply_trit_masks(planes: np.ndarray, masks: list[tuple]) -> None:
    """Apply :func:`compile_trit_masks` output to one (3, n_words) state."""
    for word, all_bits, p_bits, n_bits in masks:
        planes[P_PLANE, word] = (
            int(planes[P_PLANE, word]) & ~all_bits
        ) | p_bits
        planes[N_PLANE, word] = (
            int(planes[N_PLANE, word]) & ~all_bits
        ) | n_bits


def compile_bus_spec(program, nets: list[int]) -> list[tuple]:
    """Bus nets -> per-word (all_bits, [(bus bit index, plane bit)]) spec."""
    by_word: dict[int, list] = {}
    for position, net in enumerate(nets):
        pos = int(program.pos_of[net])
        word, bit = pos >> 6, 1 << (pos & 63)
        entry = by_word.setdefault(word, [0, []])
        entry[0] |= bit
        entry[1].append((position, bit))
    return [(w, e[0], tuple(e[1])) for w, e in sorted(by_word.items())]


def read_bus_planes(planes: np.ndarray, spec: list[tuple]) -> tuple[int, int]:
    """Decode a compiled bus spec from packed planes into (value, xmask).

    The read mirror of :func:`force_bus_planes`: a handful of whole-word
    plane reads and Python-int bit tests, so probing a 16-bit bus never
    unpacks the full value row.  Semantics match :func:`read_bus` on the
    unpacked row exactly (P&N -> X, P only -> 1, N only -> 0).
    """
    value = 0
    xmask = 0
    for word, _all_bits, bits in spec:
        p = int(planes[P_PLANE, word])
        n = int(planes[N_PLANE, word])
        for position, bit in bits:
            if p & bit:
                if n & bit:
                    xmask |= 1 << position
                else:
                    value |= 1 << position
    return value, xmask


def read_trit_planes(planes: np.ndarray, spec: list[tuple]) -> int:
    """Read a single-net compiled spec as a trit (0/1/X)."""
    value, xmask = read_bus_planes(planes, spec)
    return X if xmask else value


@dataclass
class PortSpecs:
    """Compiled packed bus specs for every memory-port probe.

    Built once per :class:`~repro.sim.batch.BatchMachine` in packed-record
    mode so :func:`sample_memory_control_packed` can latch the memory
    request with word reads instead of unpacking the whole value row.
    """

    addr: list[tuple]
    din: list[tuple]
    en: list[tuple]
    we: list[tuple]

    @classmethod
    def compile(cls, program, ports: "MemoryPorts") -> "PortSpecs":
        return cls(
            addr=compile_bus_spec(program, ports.addr),
            din=compile_bus_spec(program, ports.din),
            en=compile_bus_spec(program, [ports.en]),
            we=compile_bus_spec(program, [ports.we]),
        )


def force_inputs_packed(planes: np.ndarray, state, program) -> None:
    """Apply *state*'s ``forced_inputs`` to one packed (3, n_words) row.

    *state* is a Machine or a batch Lane: anything carrying
    ``forced_inputs`` plus the ``_forced_src``/``_forced_masks`` cache
    slots.  The compiled per-word masks are rebuilt only when the dict
    changes, so both engines share one caching/invalidation rule.
    """
    if not state.forced_inputs:
        return
    if state._forced_src != state.forced_inputs:
        state._forced_src = dict(state.forced_inputs)
        state._forced_masks = compile_trit_masks(program, state.forced_inputs)
    apply_trit_masks(planes, state._forced_masks)


def force_bus_planes(
    planes: np.ndarray, spec: list[tuple], value: int, xmask: int
) -> None:
    """Drive a compiled bus spec with a (value, xmask) word, in place."""
    for word, all_bits, bits in spec:
        p_bits = n_bits = 0
        for position, bit in bits:
            if (xmask >> position) & 1:
                p_bits |= bit
                n_bits |= bit
            elif (value >> position) & 1:
                p_bits |= bit
            else:
                n_bits |= bit
        planes[P_PLANE, word] = (
            int(planes[P_PLANE, word]) & ~all_bits
        ) | p_bits
        planes[N_PLANE, word] = (
            int(planes[N_PLANE, word]) & ~all_bits
        ) | n_bits


# ----------------------------------------------------------------------
# Memory-port protocol, shared by Machine and sim.batch.BatchMachine.
# *state* is any object carrying ``memory``, ``dout_value``, ``dout_xmask``
# and ``_request`` attributes; keeping one implementation guarantees the
# scalar and batched engines can never drift apart.
# ----------------------------------------------------------------------
def sample_memory_control(state, values: np.ndarray, ports: "MemoryPorts") -> None:
    """Latch the memory request from settled *values* and commit writes."""
    addr_value, addr_xmask = read_bus(values, ports.addr)
    request = _MemRequest()
    request.addr_known = addr_xmask == 0
    request.addr = addr_value if request.addr_known else None
    request.en = int(values[ports.en])
    request.we = int(values[ports.we])
    request.din_value, request.din_xmask = read_bus(values, ports.din)
    state._request = request
    commit_memory_write(state, request)


def sample_memory_control_packed(
    state, planes: np.ndarray, specs: PortSpecs
) -> None:
    """Latch the memory request straight from settled packed planes.

    Bit-identical to :func:`sample_memory_control` on the unpacked row —
    the packed-record fast path of concrete lock-step batches.
    """
    addr_value, addr_xmask = read_bus_planes(planes, specs.addr)
    request = _MemRequest()
    request.addr_known = addr_xmask == 0
    request.addr = addr_value if request.addr_known else None
    request.en = read_trit_planes(planes, specs.en)
    request.we = read_trit_planes(planes, specs.we)
    request.din_value, request.din_xmask = read_bus_planes(planes, specs.din)
    state._request = request
    commit_memory_write(state, request)


def commit_memory_write(state, request: _MemRequest) -> None:
    if request.we == 0:
        return
    if request.we == 1:
        state.memory.write(
            request.addr if request.addr_known else None,
            request.din_value,
            request.din_xmask,
        )
    else:  # we == X: the store may or may not happen
        state.memory.write_uncertain(
            request.addr if request.addr_known else None,
            request.din_value,
            request.din_xmask,
        )


def serve_memory_read(state) -> tuple[float, float]:
    """Update the dout register; return (reads, writes) this cycle."""
    request = state._request
    reads = writes = 0.0
    if request.en == 1:
        value, xmask = state.memory.read(
            request.addr if request.addr_known else None
        )
        state.dout_value, state.dout_xmask = value, xmask
        reads = 1.0
    elif request.en == X:
        value, xmask = state.memory.read(
            request.addr if request.addr_known else None
        )
        differs = (state.dout_value ^ value) | state.dout_xmask | xmask
        state.dout_value &= ~differs & MASK16
        state.dout_xmask = differs & MASK16
        reads = 1.0  # conservative: the access may happen
    if request.we in (1, X):
        writes = 1.0
    return reads, writes


class Machine:
    """A complete clocked system: CPU netlist plus behavioral memory."""

    def __init__(
        self,
        netlist: Netlist,
        ports: MemoryPorts,
        evaluator: LevelizedEvaluator | None = None,
        memory: TernaryMemory | None = None,
    ):
        self.netlist = netlist
        self.ports = ports
        #: ``evaluator=None`` honors ``REPRO_ENGINE`` (default: bitplane);
        #: pass a LevelizedEvaluator for the uint8 reference engine.
        self.evaluator = evaluator or make_evaluator(netlist)
        #: True when state lives in packed dual-rail bit planes
        self.packed = bool(getattr(self.evaluator, "packed", False))
        self.memory = memory or TernaryMemory()
        if self.packed:
            #: (3, n_words) uint64 P/N/A planes — the machine state
            self.planes = self.evaluator.fresh_planes()
            self._values_cache: np.ndarray | None = None
            self._dout_spec = None
            self._forced_src: dict[int, int] | None = None
            self._forced_masks: list[tuple] = []
        else:
            self.values = self.evaluator.fresh_values()
        self.cycle = 0
        #: Last-read memory word presented on the dout bus (sync SRAM reg).
        self.dout_value = 0
        self.dout_xmask = MASK16
        self._request = _MemRequest()
        self._prev_active = np.zeros(netlist.n_nets, dtype=bool)
        #: Externally forced input nets (peripheral ports, irq lines, ...).
        self.forced_inputs: dict[int, int] = {}
        #: One-shot DFF load overrides {dff net: value}, consumed by the
        #: next step().  The execution-tree explorer uses this to assume a
        #: concrete value for an unknown status flag on each forked path.
        self.next_dff_forces: dict[int, int] = {}
        self._dff_pos = {
            int(net): pos for pos, net in enumerate(self.evaluator.dff_out)
        }
        #: Copy-on-write marker: True while ``self.values`` may be shared
        #: with a snapshot (or a trace record); :meth:`step` materializes a
        #: private copy before mutating.
        self._values_shared = False
        self.annotator = None
        #: Extra annotations callback: machine -> dict, set by the CPU layer.

    # ------------------------------------------------------------------
    # Values view: the uint8 net-order vector every consumer reads.  The
    # reference engine owns it outright; the bitplane engine stores planes
    # and unpacks on demand (cached per settle).
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        if not self.packed:
            return self._values
        if self._values_cache is None:
            cache = self.evaluator.unpack_values(self.planes)
            # read-only: the cache doubles as the trace record's values
            # row, and element writes here would bypass the planes anyway
            cache.setflags(write=False)
            self._values_cache = cache
        return self._values_cache

    @values.setter
    def values(self, array: np.ndarray) -> None:
        if self.packed:
            raise AttributeError(
                "bitplane machines derive .values from the packed planes; "
                "mutate state through step()/restore()/forced_inputs"
            )
        self._values = array

    # ------------------------------------------------------------------
    # State management (forking + memoization)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A restorable state capture, copy-on-write where possible.

        ``values`` is shared with the machine until the next :meth:`step`
        (which materializes before mutating); ``memory`` is a
        :meth:`~repro.sim.memory.TernaryMemory.fork`; ``prev_active`` is
        only ever reassigned, never mutated in place, so the reference is
        shared outright.  Snapshots are therefore O(registers) per cycle
        instead of O(memory), which is what makes the per-cycle snapshot
        of the execution explorers affordable.
        """
        self._values_shared = True
        return {
            "values": self.planes if self.packed else self.values,
            "memory": self.memory.fork(),
            "cycle": self.cycle,
            "dout_value": self.dout_value,
            "dout_xmask": self.dout_xmask,
            "request": _MemRequest(**vars(self._request)),
            "prev_active": None if self.packed else self._prev_active,
            "forced_inputs": dict(self.forced_inputs),
            "next_dff_forces": dict(self.next_dff_forces),
        }

    def restore(self, snap: dict[str, Any]) -> None:
        """Adopt *snap* without invalidating it (copy-on-write adoption)."""
        if self.packed:
            self.planes = snap["values"]
            self._values_cache = None
        else:
            self.values = snap["values"]
            self._prev_active = snap["prev_active"]
        self._values_shared = True
        self.memory = snap["memory"].fork()
        self.cycle = snap["cycle"]
        self.dout_value = snap["dout_value"]
        self.dout_xmask = snap["dout_xmask"]
        self._request = _MemRequest(**vars(snap["request"]))
        self.forced_inputs = dict(snap["forced_inputs"])
        self.next_dff_forces = dict(snap["next_dff_forces"])

    def state_key(self) -> bytes:
        """Architectural-state fingerprint for execution-tree memoization."""
        return Machine.snapshot_state_key(
            {
                "values": self.planes if self.packed else self.values,
                "dout_value": self.dout_value,
                "dout_xmask": self.dout_xmask,
                "memory": self.memory,
                "request": self._request,
            },
            self.evaluator,
        )

    @staticmethod
    def snapshot_state_key(snap: dict, key_source) -> bytes:
        """State fingerprint of a snapshot dict (see :meth:`state_key`).

        Covers everything that determines future behaviour: flip-flop
        values, the registered memory-read word, the pending memory
        request, and the full memory contents.  *key_source* is the
        machine's evaluator (either engine) or, for backward
        compatibility, a bare ``dff_out`` index array; the packed engine
        fingerprints its DFF plane words directly — a bijective encoding
        of the same flip-flop values, so the induced state-equivalence
        relation (and therefore the execution tree) is identical.
        """
        h = hashlib.blake2b(digest_size=16)
        values = snap["values"]
        if values.dtype == np.uint64:
            h.update(key_source.state_bytes(values))
        else:
            dff_out = getattr(key_source, "dff_out", key_source)
            h.update(values[dff_out].tobytes())
        h.update(int(snap["dout_value"]).to_bytes(2, "little"))
        h.update(int(snap["dout_xmask"]).to_bytes(2, "little"))
        request = snap["request"]
        h.update(
            repr(
                (
                    request.addr,
                    request.addr_known,
                    request.en,
                    request.we,
                    request.din_value,
                    request.din_xmask,
                )
            ).encode()
        )
        h.update(snap["memory"].digest())
        return h.digest()

    # ------------------------------------------------------------------
    # Clocking
    # ------------------------------------------------------------------
    def _apply_inputs(self) -> None:
        force_bus(
            self.values, self.ports.dout, self.dout_value, self.dout_xmask
        )
        for net, value in self.forced_inputs.items():
            self.values[net] = value

    def _apply_inputs_packed(self) -> None:
        program = self.evaluator.program
        if self._dout_spec is None:
            self._dout_spec = compile_bus_spec(program, self.ports.dout)
        force_bus_planes(
            self.planes, self._dout_spec, self.dout_value, self.dout_xmask
        )
        force_inputs_packed(self.planes, self, program)

    def _sample_memory_control(self) -> None:
        sample_memory_control(self, self.values, self.ports)

    def _serve_read(self) -> tuple[float, float]:
        """Update the dout register; return (reads, writes) this cycle."""
        return serve_memory_read(self)

    def step(self, reset: bool = False, trace: Trace | None = None) -> CycleRecord:
        """Advance one clock cycle and optionally record it into *trace*."""
        if self.packed:
            return self._step_packed(reset, trace)
        if self._values_shared:
            # A snapshot or trace record holds self.values: hand it the old
            # array and mutate a private copy (one copy per cycle total).
            prev_values = self.values
            self.values = prev_values.copy()
            self._values_shared = False
        else:
            prev_values = self.values.copy()
        next_dff = self.evaluator.next_dff_values(self.values, reset)
        if self.next_dff_forces:
            for net, value in self.next_dff_forces.items():
                next_dff[self._dff_pos[net]] = value
            self.next_dff_forces = {}
        mem_reads, mem_writes = self._serve_read()
        self.values[self.evaluator.dff_out] = next_dff
        self._apply_inputs()
        self.evaluator.eval_comb(self.values)
        active = self.evaluator.compute_activity(
            prev_values, self.values, self._prev_active
        )
        self._sample_memory_control()
        record = CycleRecord(
            cycle=self.cycle,
            values=self.values,  # CoW: next step materializes before mutating
            active=active,
            mem_reads=mem_reads,
            mem_writes=mem_writes,
            annotations=self.annotator(self) if self.annotator else {},
        )
        self._values_shared = True
        self._prev_active = active
        self.cycle += 1
        if trace is not None:
            trace.append(record)
        return record

    def _step_packed(self, reset: bool, trace: Trace | None) -> CycleRecord:
        """One clock cycle in the packed bit-plane representation.

        Bit-identical to the reference :meth:`step`: the same update
        order, with the combinational settle and the activity marking
        fused into one sweep over the compiled level schedule.  The
        record's ``values``/``active`` rows are unpacked fresh each cycle
        (the trace boundary), so no copy-on-write discipline is needed
        for them; the planes themselves are materialized only when a
        snapshot still shares them.
        """
        evaluator = self.evaluator
        if self._values_shared:
            self.planes = self.planes.copy()
            self._values_shared = False
        evaluator.stash_prev(self.planes)
        next_dff = evaluator.next_dff_planes(self.planes, reset)
        if self.next_dff_forces:
            evaluator.force_dff_bits(next_dff, self.next_dff_forces)
            self.next_dff_forces = {}
        mem_reads, mem_writes = self._serve_read()
        evaluator.set_dff_planes(self.planes, next_dff)
        self._apply_inputs_packed()
        evaluator.settle_and_mark(self.planes)
        values = evaluator.unpack_values(self.planes)
        values.setflags(write=False)  # shared by the cache and the record
        self._values_cache = values
        active = evaluator.unpack_active(self.planes)
        self._sample_memory_control()
        record = CycleRecord(
            cycle=self.cycle,
            values=values,
            active=active,
            mem_reads=mem_reads,
            mem_writes=mem_writes,
            annotations=self.annotator(self) if self.annotator else {},
            active_words=evaluator.active_words(self.planes),
        )
        self.cycle += 1
        if trace is not None:
            if trace.packing is None:
                trace.packing = evaluator.program
            trace.append(record)
        return record

    def reset_sequence(self, cycles: int = 2, trace: Trace | None = None) -> None:
        """Hold reset for *cycles* clock edges (Algorithm 1 line 4)."""
        for _ in range(cycles):
            self.step(reset=True, trace=trace)

    def peek_bus(self, nets: list[int]) -> tuple[int, int]:
        return read_bus(self.values, nets)
