"""Generated-C native settle kernel: one foreign call per cycle.

The bitplane engine executes the compiled level schedule as ~25 numpy
ufunc dispatches per level plus a fancy-indexed gather — fast per *bit*,
but the per-dispatch overhead dominates once the planes fit in cache.
This module removes the interpreter entirely: at first use the
:class:`~repro.netlist.program.NetlistProgram` is lowered to a small C
translation unit (the fused gather + word-op tape as straight-line loops
over the packed uint64 planes, including the source-block activity rule
and the per-level A-plane writes), compiled once with the system C
compiler into a per-netlist shared object, and called through cffi's ABI
mode (ctypes when cffi is unavailable) as::

    void repro_settle(uint64_t *state, const uint64_t *prev, long rows);

``state`` is the C-contiguous ``(rows, 3, n_words)`` plane array settled
in place; ``prev`` the stashed previous-cycle planes of the activity
rule.  Any leading batch shape flattens to ``rows``, so one call settles
a scalar machine or a 64-lane batch alike, and both cffi and ctypes
release the GIL for the duration of the call.

Build products are cached twice: the ELF bytes live in a content-
addressed :class:`~repro.service.store.ArtifactStore` under
``<cache>/native`` keyed ``nativekernel_<fingerprint>`` (the fingerprint
digests the *compiled schedule* — gather tables, run layout, DFF
tables — plus :data:`KERNEL_VERSION`, so any netlist or codegen change
rebuilds), and the dlopen-able file materializes next to it as
``<fingerprint>.so``.  A warm process pays one ``dlopen``; a warm cache
pays zero compiles.

Bit identity with ``bitplane``/``reference`` is a hard contract — the
kernel is generated from the *same* schedule the numpy tape executes,
and the differential suite pins values, A plane and memo ``state_bytes``
on every benchmark.  When no C compiler is present (or the build fails)
:func:`evaluator_or_fallback` degrades to the bitplane engine with a
single process-wide warning, never an error.
"""

from __future__ import annotations

import hashlib
import os
import shlex
import shutil
import subprocess
import tempfile
import threading
import time
import warnings
from pathlib import Path

import numpy as np

from repro.netlist.core import Netlist
from repro.netlist.program import NetlistProgram

#: bump on any change to :func:`generate_c` or the call ABI — it is part
#: of the kernel fingerprint, so stale cached objects are never reused
KERNEL_VERSION = 2

#: compilers probed (after ``$CC``) when building the shared object
_COMPILERS = ("cc", "gcc", "clang")

_CFLAGS = ("-O2", "-shared", "-fPIC", "-fno-math-errno")


class NativeKernelError(RuntimeError):
    """The native kernel could not be built or loaded."""


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def program_fingerprint(program: NetlistProgram) -> str:
    """Digest of everything the generated C depends on.

    Hashes the compiled schedule itself — per-level gather tables, run
    layout, activity block offsets, DFF tables, masks and sizes — rather
    than the netlist, so the fingerprint changes exactly when the
    emitted kernel would.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(f"nativekernel-v{KERNEL_VERSION}".encode())
    h.update(
        np.array(
            [program.n_words, program.src_words, program.dff_word0,
             program.dff_words, program.n_bits, program.depth],
            dtype=np.int64,
        ).tobytes()
    )
    h.update(program.input_mask.tobytes())
    h.update(program.valid_mask.tobytes())
    for plan in program.levels:
        h.update(
            repr(
                (
                    plan.word0, plan.words, plan.act0_word, plan.act1_word,
                    plan.act2_word, plan.mux_words, plan.scratch_words,
                    [
                        (r.cls, r.n_gates, r.res_word, r.words, r.slot_words)
                        for r in plan.runs
                    ],
                )
            ).encode()
        )
        h.update(np.ascontiguousarray(plan.gather_bytes).tobytes())
        h.update(np.ascontiguousarray(plan.gather_masks).tobytes())
    h.update(np.ascontiguousarray(program.dff_act_bytes).tobytes())
    h.update(np.ascontiguousarray(program.dff_act_masks).tobytes())
    h.update(program.dff_reset_words.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# C code generation
# ----------------------------------------------------------------------
def _slot_words_shifts(
    gather_bytes: np.ndarray, gather_masks: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather table -> (uint64-word index into the 3*n_words row, shift)."""
    bit = np.asarray(gather_bytes, dtype=np.int64) * 8 + np.log2(
        np.asarray(gather_masks, dtype=np.int64)
    ).astype(np.int64)
    return (bit >> 6).astype(np.int64), (bit & 63).astype(np.int64)


def _emit_table(name: str, ctype: str, values: np.ndarray) -> str:
    body = ",".join(str(int(v)) for v in values) or "0"
    return f"static const {ctype} {name}[] = {{{body}}};\n"


def _emit_gather(
    out: list[str],
    dst: str,
    sources: list[tuple[int, int]],
    row: str = "row",
) -> None:
    """Emit ``dst = <shift-merged gather of sources>;``.

    *sources* lists the (source word, source shift) of each of the 64
    destination bits.  Bits are grouped by ``(word, shift - bit)``: a
    whole run of bus-aligned slots (bit *i* of a result word reading bit
    *i + d* of one source word — the common case by construction, since
    runs hold gates in elaboration order and buses elaborate
    sequentially) collapses into a single ``(row[w] >> d) & mask`` term
    with immediate constants.  Worst case degenerates to one term per
    bit, which still beats a table-driven loop.
    """
    groups: dict[tuple[int, int], int] = {}
    order: list[tuple[int, int]] = []
    for bit, (word, shift) in enumerate(sources):
        key = (word, shift - bit)
        if key not in groups:
            groups[key] = 0
            order.append(key)
        groups[key] |= 1 << bit
    terms = []
    for word, delta in order:
        mask = groups[(word, delta)]
        if delta > 0:
            expr = f"({row}[{word}] >> {delta})"
        elif delta < 0:
            expr = f"({row}[{word}] << {-delta})"
        else:
            expr = f"{row}[{word}]"
        if mask == (1 << 64) - 1:
            terms.append(expr)
        else:
            terms.append(f"({expr} & {mask:#x}ULL)")
    joined = "\n        | ".join(terms)
    out.append(f"    {dst} = {joined};\n")


def generate_c(program: NetlistProgram) -> str:
    """Lower the compiled schedule to a self-contained C translation unit."""
    nw = program.n_words
    out = [
        "#include <stddef.h>\n",
        "#include <stdint.h>\n",
        f"#define NW {nw}\n",
        f"#define SW {program.src_words}\n",
    ]

    # int64 two's-complement view: large uint64 decimal literals have no
    # portable unsuffixed spelling in C, negative int64 ones do
    out.append(
        _emit_table("INPUT_MASK_I", "int64_t", program.input_mask.view(np.int64))
    )
    out.append("#define INPUT_MASK ((const uint64_t *)INPUT_MASK_I)\n")

    # One function per level: the optimizer's cost on straight-line code
    # grows superlinearly with function size, so a split TU compiles far
    # faster than one settle-sized function at the same -O2 output.
    scratch = max(program.max_scratch_words, 1)
    out.append(
        "\nstatic void source_block(uint64_t *restrict row,"
        " const uint64_t *restrict prev)\n{\n"
    )

    # --- source block: changed | X-input rule | DFF rule ---
    out.append(
        "    for (int k = 0; k < SW; ++k) {\n"
        "        uint64_t chg = (row[k] ^ prev[k]) | (row[NW+k] ^ prev[NW+k]);\n"
        "        row[2*NW+k] = chg | ((row[k] & row[NW+k]) & INPUT_MASK[k]);\n"
        "    }\n"
    )
    if program.dff_words:
        dff_words, dff_shifts = _slot_words_shifts(
            program.dff_act_bytes, program.dff_act_masks
        )
        for w in range(program.dff_words):
            sources = list(
                zip(dff_words[w * 64 : w * 64 + 64],
                    dff_shifts[w * 64 : w * 64 + 64])
            )
            out.append("    {\n    uint64_t driven;\n")
            _emit_gather(out, "driven", sources, row="prev")
            k = program.dff_word0 + w
            out.append(
                f"    row[2*NW+{k}] |= (row[{k}] & row[NW+{k}]) & driven;\n"
                "    }\n"
            )

    out.append("}\n")

    # --- levels ---
    for li, plan in enumerate(program.levels):
        w0, wl = plan.word0, plan.words
        out.append(
            f"\nstatic void level_{li}(uint64_t *restrict row,"
            " const uint64_t *restrict prev,"
            " uint64_t *restrict S)\n{\n"
            f"    /* words [{w0},{w0 + wl}) */\n"
        )
        g_words, g_shifts = _slot_words_shifts(
            plan.gather_bytes, plan.gather_masks
        )
        for w in range(plan.scratch_words):
            sources = list(
                zip(g_words[w * 64 : w * 64 + 64],
                    g_shifts[w * 64 : w * 64 + 64])
            )
            _emit_gather(out, f"S[{w}]", sources)
        for run in plan.runs:
            p0 = w0 + run.res_word
            n0 = nw + p0
            o = run.slot_words
            out.append(f"    for (int k = 0; k < {run.words}; ++k) {{\n")
            if run.cls == "copy":
                out.append(
                    f"        row[{p0}+k] = S[{o[0]}+k];\n"
                    f"        row[{n0}+k] = S[{o[1]}+k];\n"
                )
            elif run.cls == "and":
                out.append(
                    f"        row[{p0}+k] = S[{o[0]}+k] & S[{o[2]}+k];\n"
                    f"        row[{n0}+k] = S[{o[1]}+k] | S[{o[3]}+k];\n"
                )
            elif run.cls == "and_swap":
                out.append(
                    f"        row[{p0}+k] = S[{o[1]}+k] | S[{o[3]}+k];\n"
                    f"        row[{n0}+k] = S[{o[0]}+k] & S[{o[2]}+k];\n"
                )
            elif run.cls in ("xor", "xor_swap"):
                out.append(
                    f"        uint64_t pa = S[{o[0]}+k], na = S[{o[1]}+k];\n"
                    f"        uint64_t pb = S[{o[2]}+k], nb = S[{o[3]}+k];\n"
                )
                straight = "(pa & nb) | (na & pb)"
                inverted = "(pa & pb) | (na & nb)"
                if run.cls == "xor":
                    out.append(
                        f"        row[{p0}+k] = {straight};\n"
                        f"        row[{n0}+k] = {inverted};\n"
                    )
                else:
                    out.append(
                        f"        row[{p0}+k] = {inverted};\n"
                        f"        row[{n0}+k] = {straight};\n"
                    )
            else:  # mux: blocks SN, SP, PA, PB, NA, NB
                out.append(
                    f"        uint64_t sn = S[{o[0]}+k], sp = S[{o[1]}+k];\n"
                    f"        row[{p0}+k] = (sn & S[{o[2]}+k]) | (sp & S[{o[3]}+k]);\n"
                    f"        row[{n0}+k] = (sn & S[{o[4]}+k]) | (sp & S[{o[5]}+k]);\n"
                )
            out.append("    }\n")
        # activity: A = changed | (is_x & (act0 | act1 [| act2 mux tail]))
        mw = plan.mux_words
        plain = wl - mw
        body = (
            "        uint64_t p = row[{p0}+k], n = row[NW+{p0}+k];\n"
            "        uint64_t chg = (p ^ prev[{p0}+k]) | (n ^ prev[NW+{p0}+k]);\n"
        ).format(p0=w0)
        if plain:
            out.append(f"    for (int k = 0; k < {plain}; ++k) {{\n")
            out.append(body)
            out.append(
                f"        uint64_t act = S[{plan.act0_word}+k] | S[{plan.act1_word}+k];\n"
                f"        row[2*NW+{w0}+k] = chg | ((p & n) & act);\n"
                "    }\n"
            )
        if mw:
            out.append(f"    for (int k = {plain}; k < {wl}; ++k) {{\n")
            out.append(body)
            out.append(
                f"        uint64_t act = S[{plan.act0_word}+k] | S[{plan.act1_word}+k]"
                f" | S[{plan.act2_word}+k-{plain}];\n"
                f"        row[2*NW+{w0}+k] = chg | ((p & n) & act);\n"
                "    }\n"
            )
        out.append("}\n")

    out.append(
        "\nstatic void settle_row(uint64_t *restrict row,"
        " const uint64_t *restrict prev)\n{\n"
        f"    uint64_t S[{scratch}];\n"
        "    source_block(row, prev);\n"
    )
    for li in range(len(program.levels)):
        out.append(f"    level_{li}(row, prev, S);\n")
    out.append("}\n")

    out.append(
        "\nvoid repro_settle(uint64_t *state, const uint64_t *prev, long rows)\n"
        "{\n"
        "    for (long r = 0; r < rows; ++r)\n"
        "        settle_row(state + (size_t)r*3*NW, prev + (size_t)r*3*NW);\n"
        "}\n"
    )
    return "".join(out)


# ----------------------------------------------------------------------
# Build + cache
# ----------------------------------------------------------------------
def find_compiler() -> list[str] | None:
    """The C compiler command to use, or ``None`` when none is present.

    ``$CC`` (split shell-style, so flags ride along) wins; otherwise the
    first of ``cc``/``gcc``/``clang`` on ``PATH``.
    """
    env_cc = os.environ.get("CC", "").strip()
    candidates = ([env_cc] if env_cc else []) + list(_COMPILERS)
    for candidate in candidates:
        argv = shlex.split(candidate)
        if argv and shutil.which(argv[0]):
            return argv
    return None


def compile_so(source: str) -> tuple[bytes, float]:
    """Compile *source* to shared-object bytes; returns (bytes, seconds)."""
    argv = find_compiler()
    if argv is None:
        raise NativeKernelError(
            "no C compiler found (tried $CC, " + ", ".join(_COMPILERS) + ")"
        )
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-native-") as tmp:
        c_path = Path(tmp) / "kernel.c"
        so_path = Path(tmp) / "kernel.so"
        c_path.write_text(source)
        proc = subprocess.run(
            argv + list(_CFLAGS) + ["-o", str(so_path), str(c_path)],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise NativeKernelError(
                f"C compile failed ({' '.join(argv)}): "
                f"{proc.stderr.strip()[:500] or proc.stdout.strip()[:500]}"
            )
        try:
            so_bytes = so_path.read_bytes()
        except OSError as exc:
            raise NativeKernelError(f"compiler produced no object: {exc}")
    return so_bytes, time.perf_counter() - started


def _native_cache_dir() -> Path:
    """``<bench cache>/native`` — rides the runner's CACHE_DIR knob so
    tests and ``repro serve --store`` redirect kernels too."""
    from repro.bench import runner

    return Path(runner.CACHE_DIR) / "native"


def kernel_store():
    """The artifact store holding compiled kernel bytes.

    A dedicated subdirectory (its entries are keyed by the *program*
    fingerprint + :data:`KERNEL_VERSION`, not the runner's model
    fingerprint) so the bench store's gc never mistakes live kernels for
    stale results.
    """
    from repro.service.store import ArtifactStore

    return ArtifactStore(_native_cache_dir(), fingerprint=None)


def build_kernel(program: NetlistProgram) -> tuple[Path, float, str]:
    """Materialize the shared object for *program*.

    Returns ``(path to .so, build seconds, fingerprint)``; build seconds
    is 0.0 when the artifact store already held the bytes.
    """
    fingerprint = program_fingerprint(program)
    directory = _native_cache_dir()
    so_path = directory / f"{fingerprint}.so"
    if so_path.is_file():
        return so_path, 0.0, fingerprint
    store = kernel_store()
    key = f"nativekernel_{fingerprint}"
    build_s = 0.0
    try:
        blob = store.get(key)
        so_bytes = blob["so"]
    except (KeyError, TypeError):
        so_bytes, build_s = compile_so(generate_c(program))
        store.put(
            key,
            {
                "so": so_bytes,
                "build_s": build_s,
                "kernel_version": KERNEL_VERSION,
            },
        )
    directory.mkdir(parents=True, exist_ok=True)
    scratch = so_path.with_name(
        f"{so_path.name}.tmp{os.getpid()}-{threading.get_ident()}"
    )
    try:
        scratch.write_bytes(so_bytes)
        os.replace(scratch, so_path)
    except BaseException:
        try:
            scratch.unlink()
        except OSError:
            pass
        raise
    return so_path, build_s, fingerprint


def _load_so(so_path: Path):
    """dlopen the kernel; returns ``call(state, prev, rows)``.

    cffi ABI mode when available (releases the GIL, zero-copy buffer
    casts); plain ctypes otherwise.  Both paths raise
    :class:`NativeKernelError` on a load failure.
    """
    try:
        import cffi
    except ImportError:
        cffi = None
    if cffi is not None:
        try:
            ffi = cffi.FFI()
            ffi.cdef(
                "void repro_settle(uint64_t *state, const uint64_t *prev,"
                " long rows);"
            )
            lib = ffi.dlopen(str(so_path))
        except Exception as exc:
            raise NativeKernelError(f"cffi dlopen failed: {exc}")

        def call(state, prev, rows, _lib=lib, _ffi=ffi):
            _lib.repro_settle(
                _ffi.cast("uint64_t *", _ffi.from_buffer(state)),
                _ffi.cast("uint64_t *", _ffi.from_buffer(prev)),
                rows,
            )

        return call
    import ctypes

    try:
        lib = ctypes.CDLL(str(so_path))
        fn = lib.repro_settle
    except (OSError, AttributeError) as exc:
        raise NativeKernelError(f"ctypes dlopen failed: {exc}")
    fn.argtypes = [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_long]
    fn.restype = None

    def call(state, prev, rows, _fn=fn):
        _fn(state.ctypes.data, prev.ctypes.data, rows)

    return call


class NativeKernel:
    """A loaded per-netlist settle kernel."""

    def __init__(self, fingerprint: str, call, build_s: float, so_path: Path):
        self.fingerprint = fingerprint
        self.call = call
        #: compile seconds actually spent in this process (0.0 on a
        #: cache hit) — surfaced by the perf harness
        self.build_s = build_s
        self.so_path = so_path


#: loaded kernels by fingerprint — dlopen once per process, and the lib
#: object must outlive every evaluator bound to it
_KERNELS: dict[str, NativeKernel] = {}
_KERNEL_LOCK = threading.Lock()


def kernel_for(program: NetlistProgram) -> NativeKernel:
    """Build/load (and memoize) the kernel for *program*."""
    fingerprint = program_fingerprint(program)
    with _KERNEL_LOCK:
        kernel = _KERNELS.get(fingerprint)
        if kernel is None:
            so_path, build_s, fingerprint = build_kernel(program)
            kernel = NativeKernel(
                fingerprint, _load_so(so_path), build_s, so_path
            )
            _KERNELS[fingerprint] = kernel
        return kernel


# ----------------------------------------------------------------------
# Evaluator + fallback
# ----------------------------------------------------------------------
from repro.sim.bitplane import BitplaneEvaluator  # noqa: E402  (cycle-free)


class NativeEvaluator(BitplaneEvaluator):
    """BitplaneEvaluator whose settle sweep is one native call.

    Everything else — packing, DFF clocking, state fingerprints, bus
    peeks — is inherited unchanged, so machines, batch machines, memo
    keys and traces behave identically; only ``stash_prev`` /
    ``settle_and_mark`` bypass the numpy tape (and never build the
    per-lead tape buffers at all).
    """

    engine_name = "native"

    def __init__(
        self,
        netlist: Netlist,
        program: NetlistProgram | None = None,
        kernel: NativeKernel | None = None,
    ):
        super().__init__(netlist, program)
        self.kernel = kernel or kernel_for(self.program)
        self._native_prev: dict[tuple[int, ...], np.ndarray] = {}

    def _prev_planes(self, lead: tuple[int, ...]) -> np.ndarray:
        prev = self._native_prev.get(lead)
        if prev is None:
            prev = self._native_prev[lead] = np.zeros(
                lead + (3, self.n_words), dtype=np.uint64
            )
        return prev

    def stash_prev(self, planes: np.ndarray) -> None:
        np.copyto(self._prev_planes(planes.shape[:-2]), planes)

    def settle_and_mark(self, planes: np.ndarray) -> None:
        lead = planes.shape[:-2]
        prev = self._prev_planes(lead)
        rows = 1
        for dim in lead:
            rows *= dim
        contiguous = planes.flags["C_CONTIGUOUS"]
        state = planes if contiguous else np.ascontiguousarray(planes)
        self.kernel.call(state, prev, rows)
        if not contiguous:
            planes[...] = state


_fallback_warned = False


def warn_fallback(reason: Exception | str) -> None:
    """One process-wide warning when native degrades to bitplane."""
    global _fallback_warned
    if _fallback_warned:
        return
    _fallback_warned = True
    warnings.warn(
        f"native engine unavailable ({reason}); falling back to the "
        "bitplane engine (results are identical, settle is slower)",
        RuntimeWarning,
        stacklevel=3,
    )


def _reset_fallback_warning() -> None:
    """Test hook: arm the fallback warning again."""
    global _fallback_warned
    _fallback_warned = False


def evaluator_or_fallback(
    netlist: Netlist, program: NetlistProgram | None = None
):
    """A :class:`NativeEvaluator`, or a bitplane one when builds fail.

    The compiled program is shared between the attempt and the fallback,
    so a degraded environment pays no extra compile.  Never raises for
    missing toolchains — the paper pipeline must run anywhere.
    """
    program = program or NetlistProgram(netlist)
    try:
        return NativeEvaluator(netlist, program)
    except NativeKernelError as exc:
        warn_fallback(exc)
        return BitplaneEvaluator(netlist, program)
