"""Levelized three-valued gate-level simulation."""

from repro.sim.bitplane import BitplaneEvaluator, default_engine, make_evaluator
from repro.sim.evaluator import LevelizedEvaluator
from repro.sim.memory import MemoryXAddressError, TernaryMemory
from repro.sim.machine import Machine, MemoryPorts
from repro.sim.trace import CycleRecord, Trace
from repro.sim.vcd import read_vcd, write_vcd

__all__ = [
    "BitplaneEvaluator",
    "LevelizedEvaluator",
    "default_engine",
    "make_evaluator",
    "TernaryMemory",
    "MemoryXAddressError",
    "Machine",
    "MemoryPorts",
    "Trace",
    "CycleRecord",
    "write_vcd",
    "read_vcd",
]
